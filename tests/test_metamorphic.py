"""Metamorphic properties of the full simulation stack.

These tests assert *relations between runs* rather than absolute
values — the invariances a correct cost/time model must satisfy no
matter how its constants are calibrated.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import caffenet_accuracy_model, caffenet_time_model
from repro.cloud import (
    CloudInstance,
    CloudSimulator,
    ResourceConfiguration,
    instance_type,
)
from repro.pruning import PruneSpec


@pytest.fixture(scope="module")
def sim():
    return CloudSimulator(caffenet_time_model(), caffenet_accuracy_model())


def _config(*names: str) -> ResourceConfiguration:
    return ResourceConfiguration(
        [CloudInstance(instance_type(n)) for n in names]
    )


class TestWorkloadScaling:
    @given(st.integers(1, 40))
    @settings(max_examples=20, deadline=None)
    def test_time_scales_linearly_at_saturation(self, sim, k):
        """k x images ~ k x time while every shard stays saturated."""
        base = sim.run(PruneSpec.unpruned(), _config("p2.xlarge"), 100_000)
        scaled = sim.run(
            PruneSpec.unpruned(), _config("p2.xlarge"), 100_000 * k
        )
        assert scaled.time_s == pytest.approx(base.time_s * k, rel=0.02)

    def test_time_superlinear_below_saturation(self, sim):
        """Small workloads pay proportionally more (batching overhead)."""
        small = sim.run(PruneSpec.unpruned(), _config("p2.xlarge"), 100)
        big = sim.run(PruneSpec.unpruned(), _config("p2.xlarge"), 100_000)
        assert small.time_s / 100 > big.time_s / 100_000


class TestConfigurationInvariances:
    def test_accuracy_independent_of_configuration(self, sim):
        """Where a model runs cannot change what it predicts."""
        spec = PruneSpec({"conv1": 0.4, "conv2": 0.3})
        a = sim.run(spec, _config("p2.xlarge"), 50_000)
        b = sim.run(spec, _config("g3.16xlarge", "p2.8xlarge"), 50_000)
        assert a.accuracy == b.accuracy

    def test_homogeneous_duplication_halves_time_keeps_cost(self, sim):
        one = sim.run(PruneSpec.unpruned(), _config("p2.xlarge"), 1_000_000)
        two = sim.run(
            PruneSpec.unpruned(),
            _config("p2.xlarge", "p2.xlarge"),
            1_000_000,
        )
        assert two.time_s == pytest.approx(one.time_s / 2, rel=0.02)
        assert two.cost == pytest.approx(one.cost, rel=0.02)

    def test_even_split_not_monotone_in_resources(self, sim):
        """A real artefact of the paper's Eq. 4: adding a *slow*
        resource to an even split can lengthen the makespan (the lone
        M60 instance inherits half of a workload sized for 8 K80s).
        The capacity-proportional split restores monotonicity."""
        from repro.cloud import CloudSimulator
        from repro.calibration import (
            caffenet_accuracy_model,
            caffenet_time_model,
        )

        spec = PruneSpec.unpruned()
        base = sim.run(spec, _config("p2.8xlarge"), 2_000_000)
        more_even = sim.run(
            spec, _config("p2.8xlarge", "g3.4xlarge"), 2_000_000
        )
        assert more_even.time_s > base.time_s  # Eq. 4 anti-monotone!
        proportional = CloudSimulator(
            caffenet_time_model(),
            caffenet_accuracy_model(),
            proportional_split=True,
        )
        more_prop = proportional.run(
            spec, _config("p2.8xlarge", "g3.4xlarge"), 2_000_000
        )
        assert more_prop.time_s <= base.time_s + 1e-6

    def test_cost_monotone_in_price(self, sim):
        """Same makespan structure, pricier fleet => pricier job."""
        spec = PruneSpec.unpruned()
        cheap = sim.run(spec, _config("p2.xlarge"), 500_000)
        rich = sim.run(
            spec, _config("p2.xlarge", "p2.16xlarge"), 500_000
        )
        # Eq. 1 bills everything for the makespan: the second instance
        # raises the rate more than it cuts the (even-split) time here
        assert rich.cost != cheap.cost


class TestPruningMonotonicity:
    @given(st.floats(0.0, 0.85), st.floats(0.0, 0.85))
    @settings(max_examples=30, deadline=None)
    def test_deeper_pruning_never_slower(self, sim, r1, r2):
        lo, hi = sorted([r1, r2])
        spec_lo = PruneSpec({"conv2": lo})
        spec_hi = PruneSpec({"conv2": hi})
        a = sim.run(spec_lo, _config("p2.xlarge"), 50_000)
        b = sim.run(spec_hi, _config("p2.xlarge"), 50_000)
        assert b.time_s <= a.time_s + 1e-6
        assert b.accuracy.top5 <= a.accuracy.top5 + 1e-9

    def test_pruning_never_helps_accuracy(self, sim):
        base = sim.run(PruneSpec.unpruned(), _config("p2.xlarge"), 1000)
        for layer in ("conv1", "conv2", "conv3"):
            for ratio in (0.2, 0.6, 0.9):
                res = sim.run(
                    PruneSpec({layer: ratio}), _config("p2.xlarge"), 1000
                )
                assert res.accuracy.top5 <= base.accuracy.top5 + 1e-9


class TestDeviceScaling:
    def test_uniform_speedup_rescales_time_only(self, sim):
        """Doubling a device's throughput halves time, leaves accuracy."""
        spec = PruneSpec({"conv1": 0.2})
        itype = instance_type("p2.xlarge")
        fast_gpu = dataclasses.replace(
            itype.gpu, inference_speedup=itype.gpu.inference_speedup * 2
        )
        fast_itype = dataclasses.replace(itype, gpu=fast_gpu)
        slow = sim.run(
            spec,
            ResourceConfiguration([CloudInstance(itype)]),
            200_000,
        )
        fast = sim.run(
            spec,
            ResourceConfiguration([CloudInstance(fast_itype)]),
            200_000,
        )
        assert fast.time_s == pytest.approx(slow.time_s / 2, rel=0.02)
        assert fast.accuracy == slow.accuracy

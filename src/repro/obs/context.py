"""Request-scoped trace context: one id that follows a request around.

A live control plane serves many requests at once, across the client's
calling thread, the ``ThreadingHTTPServer`` worker that accepts the
connection, and whatever the handler calls into (`evalspace.evaluate`,
router spans).  Spans alone cannot stitch that together — each thread
starts its own stack — so this module carries a
:class:`TraceContext` in a :mod:`contextvars` variable:

* ``trace_id`` — 16 hex chars naming the whole request tree.  Every
  span opened while a context is active is tagged with it, so a
  Chrome-trace export (or ``repro tail --trace``) can pull one
  request out of interleaved traffic.
* ``parent_span_id`` — the span the *next* root span should attach to.
  :class:`~repro.api.client.PlanningClient` puts its own request span
  here before serialising the context into the ``X-Repro-Trace``
  header; the server parses the header back and activates it, so the
  handler's ``service.request`` span parents onto the client span even
  though it runs on a different thread.  When client and server share
  a process (tests, :class:`~repro.service.loadgen.InProcessTarget`)
  the ids land in one tracer and the tree is fully connected; across
  processes the shared ``trace_id`` still ties the two traces together.

Contexts are *explicitly* activated (:func:`activate`) — new threads
deliberately start blank, which is exactly what a per-request server
wants: whatever the previous request on that pooled thread did cannot
leak into this one.
"""

from __future__ import annotations

import contextvars
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, replace

__all__ = [
    "TRACE_HEADER",
    "TraceContext",
    "activate",
    "current_trace",
    "new_trace_id",
]

#: The HTTP header the planning client/server propagate context in.
TRACE_HEADER = "X-Repro-Trace"


@dataclass(frozen=True)
class TraceContext:
    """One request's identity: a trace id plus the span to parent onto.

    ``parent_span_id`` is a span id in the *originating* tracer; it is
    only meaningful as a parent link when both sides record into the
    same tracer (the in-process case).  ``trace_id`` is always
    meaningful.
    """

    trace_id: str
    parent_span_id: int | None = None

    # ------------------------------------------------------------------
    def child(self, parent_span_id: int | None) -> "TraceContext":
        """The same trace, re-rooted under ``parent_span_id``."""
        return replace(self, parent_span_id=parent_span_id)

    def to_header(self) -> str:
        """Serialise for the ``X-Repro-Trace`` header."""
        if self.parent_span_id is None:
            return self.trace_id
        return f"{self.trace_id}-{self.parent_span_id}"

    @classmethod
    def from_header(cls, value: str | None) -> "TraceContext | None":
        """Parse a header value; ``None`` for absent/garbage input.

        A malformed header must never fail a request — tracing is
        best-effort metadata, not part of the API contract.
        """
        if not value:
            return None
        trace_id, _, parent = value.strip().partition("-")
        if not trace_id or not all(
            c in "0123456789abcdef" for c in trace_id
        ):
            return None
        if not parent:
            return cls(trace_id=trace_id)
        try:
            return cls(trace_id=trace_id, parent_span_id=int(parent))
        except ValueError:
            return None


_CURRENT: contextvars.ContextVar[TraceContext | None] = (
    contextvars.ContextVar("repro_trace_context", default=None)
)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


def current_trace() -> TraceContext | None:
    """The active :class:`TraceContext`, or ``None`` outside a request."""
    return _CURRENT.get()


@contextmanager
def activate(context: TraceContext | None):
    """Make ``context`` current for the duration of a ``with`` block.

    Passing ``None`` activates "no context" — useful to fence off work
    that must not inherit the surrounding request's identity.
    """
    token = _CURRENT.set(context)
    try:
        yield context
    finally:
        _CURRENT.reset(token)

"""Dropout (Srivastava et al.), as deployed in Caffenet's fc layers.

AlexNet/Caffenet train fc1 and fc2 under 50% dropout.  At *inference*
dropout is the identity (Caffe's deploy prototxt keeps the layers but
they pass activations through), so the paper's timing measurements are
unaffected — but a faithful architecture carries them, and the trainer
uses the inverted-dropout mask so small-CNN training can regularise the
same way.
"""

from __future__ import annotations

import numpy as np

from repro.cnn.layers import ITEMSIZE, Layer, LayerStats

__all__ = ["Dropout"]


class Dropout(Layer):
    """Inverted dropout: identity at inference, random mask in training.

    Parameters
    ----------
    name:
        Layer name (``drop6``, ``drop7`` in Caffenet).
    rate:
        Probability of zeroing an activation during training.
    seed:
        Mask stream seed (training only; inference draws nothing).
    """

    def __init__(self, name: str, rate: float = 0.5, seed: int = 0) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.training = False
        self._rng = np.random.default_rng(seed)
        #: mask of the most recent training forward (for backprop).
        self.last_mask: np.ndarray | None = None

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self.last_mask = None
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        self.last_mask = mask
        return x * mask

    def stats(self, input_shape: tuple[int, ...]) -> LayerStats:
        size = 1
        for d in input_shape:
            size *= d
        # inference identity: traffic only, no compute
        return LayerStats(
            flops=0,
            input_bytes=size * ITEMSIZE,
            output_bytes=size * ITEMSIZE,
            weight_bytes=0,
            params=0,
        )

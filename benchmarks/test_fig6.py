"""Benchmark: Figure 6 — Caffenet per-layer pruning sweeps.

Paper: conv2 19 -> 14 min, conv1 19 -> 16.6 min; sweet spots at 30%
(conv1) and 50% (conv2-5); conv1 Top-5 collapses to 0 at 90%.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig6_caffenet_sweeps


def test_fig6_caffenet_sweeps(benchmark):
    result = benchmark(fig6_caffenet_sweeps.run)
    assert result.sweep("conv2").time_min[-1] == pytest.approx(14.0, rel=0.01)
    assert result.sweep("conv1").time_min[-1] == pytest.approx(16.6, rel=0.01)
    assert result.sweep("conv1").sweet_spot.last_sweet_spot == 0.3
    assert result.sweep("conv1").top5[-1] == 0.0

"""Strong-scaling analysis of inference workloads on the cloud.

The paper frames itself against Amdahl's and Gustafson's laws ("the
cloud research community has extended the fixed-workload and fixed-time
scaling on the cloud", Section 1) and its prior work (CELIA [25],
Rathnayake et al. [26]) studies cost-time scaling.  This module provides
the fixed-workload (Amdahl-style) analysis for the inference jobs here:

* ``speedup(N) = T(1) / T(N)`` over instance count ``N``;
* ``efficiency(N) = speedup(N) / N``;
* ``cost(N)`` under per-second billing — ideally flat (pay the same
  GPU-seconds, just sooner), in practice rising where batching
  overheads bite (small per-instance shards run below saturation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration.accuracy_model import AccuracyModel
from repro.cloud.catalog import InstanceType
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.instance import CloudInstance
from repro.cloud.simulator import CloudSimulator
from repro.errors import ConfigurationError
from repro.perf.latency import CalibratedTimeModel
from repro.pruning.base import PruneSpec

__all__ = ["ScalingPoint", "ScalingStudy", "strong_scaling"]


@dataclass(frozen=True)
class ScalingPoint:
    """One fleet size of a strong-scaling sweep."""

    instances: int
    time_s: float
    cost: float
    speedup: float
    efficiency: float
    cost_inflation: float


@dataclass(frozen=True)
class ScalingStudy:
    """A full fixed-workload scaling sweep."""

    itype_name: str
    images: int
    points: tuple[ScalingPoint, ...]

    def point(self, instances: int) -> ScalingPoint:
        """The sweep point for a given fleet size (KeyError if absent)."""
        for p in self.points:
            if p.instances == instances:
                return p
        raise KeyError(instances)

    def max_efficient_instances(self, threshold: float = 0.9) -> int:
        """Largest N whose parallel efficiency is >= ``threshold``."""
        useful = [
            p.instances for p in self.points if p.efficiency >= threshold
        ]
        return max(useful) if useful else 1


def strong_scaling(
    time_model: CalibratedTimeModel,
    accuracy_model: AccuracyModel,
    itype: InstanceType,
    images: int,
    spec: PruneSpec | None = None,
    instance_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> ScalingStudy:
    """Fixed-workload scaling over growing same-type fleets."""
    if images < 1:
        raise ConfigurationError("images must be >= 1")
    spec = spec or PruneSpec.unpruned()
    simulator = CloudSimulator(time_model, accuracy_model)
    baseline = simulator.run(
        spec, ResourceConfiguration([CloudInstance(itype)]), images
    )
    points = []
    for n in instance_counts:
        config = ResourceConfiguration(
            [CloudInstance(itype) for _ in range(n)]
        )
        result = simulator.run(spec, config, images)
        speedup = baseline.time_s / result.time_s
        points.append(
            ScalingPoint(
                instances=n,
                time_s=result.time_s,
                cost=result.cost,
                speedup=speedup,
                efficiency=speedup / n,
                cost_inflation=result.cost / baseline.cost - 1.0,
            )
        )
    return ScalingStudy(
        itype_name=itype.name, images=images, points=tuple(points)
    )

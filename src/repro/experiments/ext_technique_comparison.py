"""Extension: pruning vs quantization vs weight sharing — measured for real.

The paper (Section 2.1) surveys three accuracy-tuning techniques and
argues for pruning on the cloud: quantization and weight sharing cut
*memory*, which clouds have cheaply, while pruning cuts *compute*, which
is what pay-per-use billing charges for.  The paper never measures the
alternatives; this experiment does, end to end on a really-trained small
CNN (no calibration anywhere):

* train once on the synthetic dataset;
* apply each technique at comparable operating points;
* measure true Top-1 accuracy, effective inference FLOPs (what cloud
  time/cost scale with), and stored model bytes (what quantization and
  sharing optimise).

Expected outcome — the paper's §2.1 argument, quantified: only the
pruning rows reduce effective FLOPs; quantization/sharing achieve large
memory compression at (mostly) intact accuracy but leave compute — and
therefore cloud cost — untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cnn.datasets import make_classification_data
from repro.cnn.models import build_small_cnn
from repro.cnn.training import SGDTrainer, evaluate_topk
from repro.experiments.report import format_table
from repro.pruning import (
    L1FilterPruner,
    MagnitudePruner,
    PruneSpec,
    QuantizationTuner,
    WeightSharingTuner,
)

__all__ = ["TechniqueRow", "TechniqueComparison", "run", "render"]


@dataclass(frozen=True)
class TechniqueRow:
    technique: str
    top1: float
    effective_mflops: float
    model_kb: float


@dataclass(frozen=True)
class TechniqueComparison:
    baseline: TechniqueRow
    rows: tuple[TechniqueRow, ...]

    def row(self, technique: str) -> TechniqueRow:
        for r in self.rows:
            if r.technique == technique:
                return r
        raise KeyError(technique)


def _dense_bytes(network) -> int:
    return sum(
        (layer.weights.size + layer.bias.size) * 4
        for layer in network.weighted_layers()
    )


def run(
    train_n: int = 400,
    test_n: int = 200,
    epochs: int = 10,
    seed: int = 11,
) -> TechniqueComparison:
    train = make_classification_data(n=train_n, num_classes=5, seed=seed)
    test = make_classification_data(
        n=test_n, num_classes=5, seed=seed + 1
    )
    network = build_small_cnn(seed=seed, width=12)
    SGDTrainer(network, lr=0.03).fit(train, epochs=epochs, batch_size=32)

    def measure(net, model_bytes: int, name: str) -> TechniqueRow:
        return TechniqueRow(
            technique=name,
            top1=evaluate_topk(net, test, k=1) * 100.0,
            effective_mflops=net.total_stats(effective=True).flops / 1e6,
            model_kb=model_bytes / 1024.0,
        )

    baseline = measure(network, _dense_bytes(network), "float32 dense")

    prune_spec = PruneSpec({"conv1": 0.5, "conv2": 0.5})
    rows = []
    pruned = L1FilterPruner(propagate=True).apply(network, prune_spec)
    # filter pruning stores only surviving filters
    pruned_bytes = int(
        _dense_bytes(network)
        * pruned.total_stats(effective=True).flops
        / network.total_stats().flops
    )
    rows.append(measure(pruned, pruned_bytes, "L1 filter prune 50%"))

    magnitude = MagnitudePruner().apply(
        network,
        PruneSpec.uniform(("conv1", "conv2", "fc1", "fc2"), 0.5),
    )
    # element pruning needs a sparse format: value + index per survivor
    nnz = sum(l.nnz() for l in magnitude.weighted_layers())
    rows.append(
        measure(magnitude, nnz * 8, "magnitude prune 50% (CSR)")
    )

    for bits in (8, 4, 2):
        tuner = QuantizationTuner(bits)
        rows.append(
            measure(
                tuner.apply(network),
                tuner.model_bytes(network),
                tuner.label(),
            )
        )

    for clusters in (16, 4):
        tuner = WeightSharingTuner(clusters)
        rows.append(
            measure(
                tuner.apply(network),
                tuner.model_bytes(network),
                tuner.label(),
            )
        )

    return TechniqueComparison(baseline=baseline, rows=tuple(rows))


def render(result: TechniqueComparison | None = None) -> str:
    result = result or run()
    all_rows = [result.baseline, *result.rows]
    table = format_table(
        ["Technique", "Top-1 (%)", "eff. MFLOPs", "model (KB)"],
        [
            (
                r.technique,
                f"{r.top1:.1f}",
                f"{r.effective_mflops:.2f}",
                f"{r.model_kb:.1f}",
            )
            for r in all_rows
        ],
    )
    return (
        table
        + "\nonly pruning reduces effective FLOPs (=> cloud time & cost);"
        + " quantization/sharing trade memory, which the cloud has cheap"
        + " — the paper's Section 2.1 argument, measured"
    )

"""The paper's primary contribution: cost-accuracy analysis machinery.

* :mod:`repro.core.metrics` — TAR and CAR (Section 3.5);
* :mod:`repro.core.pareto` — Pareto-frontier filtering (Section 3.4);
* :mod:`repro.core.config_space` — resource-configuration enumeration;
* :mod:`repro.core.sweet_spot` — sweet-spot region detection (Obs. 1);
* :mod:`repro.core.allocation` — Algorithm 1 (TAR/CAR greedy) and the
  exponential brute-force baseline it replaces;
* :mod:`repro.core.pipeline` — the end-to-end three-stage approach of
  the paper's Figure 2.
"""

from repro.core.allocation import (
    AllocationResult,
    brute_force_allocate,
    greedy_allocate,
)
from repro.core.config_space import enumerate_configurations
from repro.core.metrics import car, tar
from repro.core.pareto import ParetoPoint, pareto_front, pareto_indices
from repro.core.pipeline import CostAccuracyPipeline, ConfigurationPoint
from repro.core.sweet_spot import SweetSpotRegion, find_sweet_spot

__all__ = [
    "AllocationResult",
    "ConfigurationPoint",
    "CostAccuracyPipeline",
    "ParetoPoint",
    "SweetSpotRegion",
    "brute_force_allocate",
    "car",
    "enumerate_configurations",
    "find_sweet_spot",
    "greedy_allocate",
    "pareto_front",
    "pareto_indices",
    "tar",
]

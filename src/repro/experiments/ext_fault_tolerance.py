"""Extension: spot preemptions — the cost/goodput frontier under faults.

The paper prices perfectly reliable on-demand capacity (Eq. 1).  Real
clouds sell the same GPUs at a deep discount as interruptible *spot*
capacity — Scavenger-style transient computing — where the provider
preempts instances at will.  This experiment extends the paper's
cost-accuracy frontier with the availability axis: the same static
fleet serves the same Poisson load

* **on demand** — full price, zero faults; and
* **on spot** at ~70% off, under seeded fault plans of increasing
  severity (per-worker preemptions at a mean time between failures,
  15 s recovery, a 2-retry budget and a 3 s client timeout).

Each preemption cancels the worker's in-flight batch, requeues the
requests, and burns retry budget; requests queued past the timeout are
dropped.  The table reads as a frontier: as MTBF falls, dollars per
thousand *served* requests keeps falling long after raw availability
starts to sag — the trade an operator actually prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.calibration.caffenet import (
    caffenet_accuracy_model,
    caffenet_time_model,
)
from repro.cloud.catalog import instance_type
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.faults import FaultPlan
from repro.cloud.instance import CloudInstance
from repro.cloud.pricing import spot_rate
from repro.experiments.report import format_table
from repro.pruning.base import PruneSpec
from repro.serving.arrivals import poisson_arrivals
from repro.serving.batcher import BatchPolicy
from repro.serving.simulator import ServingSimulator

__all__ = ["FaultRow", "FaultStudy", "run", "render"]


@dataclass(frozen=True)
class FaultRow:
    name: str
    cost: float
    cost_per_1k: float
    goodput: float
    availability: float
    dropped: int
    retries: int
    preempted: int
    p99_s: float


@dataclass(frozen=True)
class FaultStudy:
    rows: tuple[FaultRow, ...]

    def row(self, name: str) -> FaultRow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)


@lru_cache(maxsize=1)
def run(
    rate: float = 120.0,
    duration_s: float = 90.0,
    fleet: int = 1,
    mtbfs: tuple[float, ...] = (240.0, 60.0, 25.0),
    timeout_s: float = 3.0,
    seed: int = 7,
) -> FaultStudy:
    arrivals = poisson_arrivals(rate, duration_s, seed=seed)
    itype = instance_type("p2.8xlarge")
    config = ResourceConfiguration(
        [CloudInstance(itype) for _ in range(fleet)]
    )
    policy = BatchPolicy(max_batch=32, max_wait_s=0.05)
    tm, am = caffenet_time_model(), caffenet_accuracy_model()
    workers = fleet * itype.gpus

    def simulate(
        name: str, hourly: float | None, plan: FaultPlan | None
    ) -> FaultRow:
        report = ServingSimulator(
            tm,
            am,
            config,
            PruneSpec.unpruned(),
            policy,
            hourly_rate=hourly,
        ).run(arrivals, plan)
        return FaultRow(
            name=name,
            cost=report.cost,
            cost_per_1k=report.cost / report.served * 1000.0,
            goodput=report.goodput,
            availability=report.availability,
            dropped=report.dropped,
            retries=report.retries,
            preempted=report.preempted,
            p99_s=report.p99,
        )

    rows = [simulate("on-demand, reliable", None, None)]
    spot_hourly = spot_rate(config.total_price_per_hour)
    for mtbf in mtbfs:
        plan = FaultPlan.sample(
            duration_s=duration_s,
            workers=workers,
            mtbf_s=mtbf,
            recovery_s=15.0,
            retry_budget=2,
            timeout_s=timeout_s,
            seed=seed + int(mtbf),
        )
        rows.append(
            simulate(f"spot, mtbf {mtbf:.0f}s", spot_hourly, plan)
        )
    return FaultStudy(rows=tuple(rows))


def render(result: FaultStudy | None = None) -> str:
    result = result or run()
    table = format_table(
        [
            "Deployment",
            "Cost ($)",
            "$/1k served",
            "Goodput",
            "Avail",
            "Drops",
            "Retries",
            "Preempt",
            "p99 (s)",
        ],
        [
            (
                r.name,
                f"{r.cost:.4f}",
                f"{r.cost_per_1k:.4f}",
                f"{r.goodput:.1f}/s",
                f"{r.availability:.1%}",
                r.dropped,
                r.retries,
                r.preempted,
                f"{r.p99_s:.2f}",
            )
            for r in result.rows
        ],
    )
    ondemand = result.row("on-demand, reliable")
    worst = result.rows[-1]
    best_spot = min(
        result.rows[1:], key=lambda r: r.cost_per_1k
    )
    return (
        table
        + f"\nspot serves a request for "
        f"{best_spot.cost_per_1k / ondemand.cost_per_1k:.0%} of its "
        f"on-demand price ({best_spot.name}); even at mtbf "
        f"{worst.name.split()[-1]} availability holds at "
        f"{worst.availability:.1%} behind the retry budget"
    )

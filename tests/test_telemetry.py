"""Per-request serving telemetry: histograms, SLO monitors, wiring."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, get_event_bus
from repro.obs.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    GaugeStat,
    LatencyHistogram,
    ServingTelemetry,
    SloMonitor,
    SloPolicy,
    record_report_gauges,
)


class TestLatencyHistogram:
    def test_percentiles_track_numpy_within_bucket_growth(self):
        rng = np.random.default_rng(11)
        samples = rng.lognormal(mean=-2.0, sigma=0.8, size=5000)
        hist = LatencyHistogram()
        hist.observe_many(samples)
        for q in (50, 90, 95, 99):
            exact = float(np.percentile(samples, q))
            estimate = hist.percentile(q)
            # bucket bounds grow 19% per step; the estimate can be off
            # by at most one bucket
            assert estimate == pytest.approx(exact, rel=0.19)

    def test_empty_histogram_is_all_nan(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        for value in (hist.p50, hist.p99, hist.mean, hist.min, hist.max):
            assert math.isnan(value)

    def test_single_sample(self):
        hist = LatencyHistogram()
        hist.observe(0.25)
        assert hist.min == hist.max == 0.25
        for q in (0, 50, 100):
            assert hist.percentile(q) == pytest.approx(0.25, rel=0.19)

    def test_overflow_bucket_bounded_by_observed_max(self):
        hist = LatencyHistogram(bounds=(1.0, 2.0))
        hist.observe_many([5.0, 9.0])
        # the overflow bucket interpolates up to the observed max —
        # never the unbounded "last bucket edge" a naive histogram gives
        assert 2.0 < hist.percentile(99) <= 9.0
        assert hist.percentile(100) == 9.0

    def test_memory_is_fixed(self):
        hist = LatencyHistogram()
        hist.observe_many(float(i % 7) / 10 for i in range(10_000))
        assert len(hist.counts) == len(DEFAULT_LATENCY_BUCKETS) + 1
        assert hist.count == 10_000

    def test_bounds_must_increase(self):
        with pytest.raises(ConfigurationError):
            LatencyHistogram(bounds=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            LatencyHistogram(bounds=())

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)

    def test_as_dict_json_ready(self):
        import json

        hist = LatencyHistogram(bounds=(0.5, 1.0))
        hist.observe_many([0.1, 0.7, 3.0])
        payload = json.loads(json.dumps(hist.as_dict()))
        assert payload["counts"] == [1, 1, 1]
        assert payload["count"] == 3


class TestGaugeStat:
    def test_streaming_stats(self):
        stat = GaugeStat("queue")
        for v in (3.0, 9.0, 1.0):
            stat.observe(v)
        assert stat.last == 1.0
        assert stat.max == 9.0
        assert stat.min == 1.0
        assert stat.mean == pytest.approx(13.0 / 3.0)

    def test_empty_is_nan(self):
        stat = GaugeStat("idle")
        assert math.isnan(stat.mean)
        assert math.isnan(stat.max)
        assert stat.last is None


class TestSloPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SloPolicy(latency_slo_s=0.0)
        with pytest.raises(ConfigurationError):
            SloPolicy(latency_slo_s=1.0, latency_quantile=1.0)
        with pytest.raises(ConfigurationError):
            SloPolicy(latency_slo_s=1.0, availability_target=0.0)
        with pytest.raises(ConfigurationError):
            SloPolicy(latency_slo_s=1.0, window_s=0.5, bucket_s=1.0)
        with pytest.raises(ConfigurationError):
            SloPolicy(latency_slo_s=1.0, burn_alert=0.0)


def _policy(**overrides) -> SloPolicy:
    base = dict(
        latency_slo_s=1.0,
        availability_target=0.9,
        window_s=4.0,
        bucket_s=1.0,
        burn_alert=2.0,
        min_requests=10,
    )
    base.update(overrides)
    return SloPolicy(**base)


class TestSloMonitor:
    def test_quiet_window_never_alerts(self):
        monitor = SloMonitor(_policy())
        for i in range(200):
            monitor.record_served(i * 0.05, 0.1)
        assert monitor.alerts == []
        assert not monitor.burning

    def test_availability_alert_fires_and_resolves(self):
        monitor = SloMonitor(_policy())
        # a burst of drops blows the 10% availability budget ...
        for i in range(30):
            monitor.record_served(i * 0.1, 0.1)
            monitor.record_dropped(i * 0.1)
        fired = [a for a in monitor.alerts if a["kind"] == "slo.alert"]
        assert any(a["slo"] == "availability" for a in fired)
        assert monitor.burning
        # ... then a healthy stretch ages the bad buckets out
        for i in range(100):
            monitor.record_served(10.0 + i * 0.1, 0.1)
        resolved = [
            a for a in monitor.alerts if a["kind"] == "slo.resolve"
        ]
        assert any(a["slo"] == "availability" for a in resolved)
        assert not monitor.burning

    def test_latency_alert_on_slow_requests(self):
        monitor = SloMonitor(_policy(latency_quantile=0.9))
        for i in range(40):
            monitor.record_served(i * 0.1, 5.0)  # all above the SLO
        fired = [a for a in monitor.alerts if a["kind"] == "slo.alert"]
        assert any(a["slo"] == "latency" for a in fired)

    def test_min_requests_suppresses_idle_pages(self):
        monitor = SloMonitor(_policy(min_requests=50))
        for i in range(20):
            monitor.record_dropped(float(i) * 0.01)
        assert monitor.alerts == []

    def test_alerts_are_edge_triggered_not_repeated(self):
        monitor = SloMonitor(_policy())
        for i in range(200):
            monitor.record_dropped(i * 0.01)
        fired = [
            a
            for a in monitor.alerts
            if a["kind"] == "slo.alert" and a["slo"] == "availability"
        ]
        assert len(fired) == 1

    def test_alerts_land_on_the_event_bus(self):
        events = []
        with get_event_bus().subscribed(events.append):
            monitor = SloMonitor(_policy())
            for i in range(30):
                monitor.record_dropped(i * 0.1)
        kinds = [e["kind"] for e in events]
        assert "slo.alert" in kinds

    def test_burn_rates_zero_without_traffic(self):
        monitor = SloMonitor(_policy())
        assert monitor.burn_rates() == {
            "availability": 0.0,
            "latency": 0.0,
        }


def _simulator():
    from repro.calibration import (
        caffenet_accuracy_model,
        caffenet_time_model,
    )
    from repro.cloud.catalog import instance_type
    from repro.cloud.configuration import ResourceConfiguration
    from repro.cloud.instance import CloudInstance
    from repro.pruning.base import PruneSpec
    from repro.serving.batcher import BatchPolicy
    from repro.serving.simulator import ServingSimulator

    return ServingSimulator(
        caffenet_time_model(),
        caffenet_accuracy_model(),
        ResourceConfiguration(
            [CloudInstance(instance_type("p2.xlarge"))]
        ),
        PruneSpec.unpruned(),
        BatchPolicy(max_batch=16, max_wait_s=0.05),
    )


def _fault_plan(duration_s: float):
    from repro.cloud.faults import FaultPlan

    return FaultPlan.sample(
        duration_s=duration_s,
        workers=1,
        mtbf_s=8.0,
        recovery_s=4.0,
        retry_budget=1,
        timeout_s=2.0,
        seed=5,
    )


class TestServingTelemetryWiring:
    def test_report_identical_with_and_without_telemetry(self):
        from repro.serving.arrivals import poisson_arrivals

        arrivals = poisson_arrivals(80.0, 20.0, seed=7)
        plan = _fault_plan(20.0)
        plain = _simulator().run(arrivals, plan)
        telemetry = ServingTelemetry(SloPolicy(latency_slo_s=0.5))
        observed = _simulator().run(arrivals, plan, telemetry=telemetry)
        assert observed.requests == plain.requests
        assert observed.served == plain.served
        assert observed.dropped == plain.dropped
        assert np.array_equal(observed.latencies_s, plain.latencies_s)
        assert observed.cost == plain.cost

    def test_faulty_run_produces_percentiles_and_alerts(self):
        from repro.serving.arrivals import poisson_arrivals

        telemetry = ServingTelemetry(SloPolicy(latency_slo_s=0.5))
        report = _simulator().run(
            poisson_arrivals(80.0, 20.0, seed=7),
            _fault_plan(20.0),
            telemetry=telemetry,
        )
        assert telemetry.latency.count == report.served
        assert 0 < telemetry.latency.p50 <= telemetry.latency.p95
        assert telemetry.latency.p95 <= telemetry.latency.p99
        assert telemetry.alerts_fired >= 1
        assert telemetry.queue_depth.max >= 1
        assert 0 < telemetry.batch_occupancy.mean <= 1.0

    def test_finalize_publishes_headline_gauges(self):
        from repro.serving.arrivals import poisson_arrivals

        telemetry = ServingTelemetry(SloPolicy(latency_slo_s=0.5))
        registry = MetricsRegistry()
        from repro.obs import Tracer, scoped_observability

        with scoped_observability(Tracer(enabled=False), registry):
            _simulator().run(
                poisson_arrivals(50.0, 10.0, seed=1),
                telemetry=telemetry,
            )
        gauges = registry.snapshot()["gauges"]
        for name in (
            "serving.latency_p50_s",
            "serving.latency_p99_s",
            "serving.queue_depth_peak",
            "serving.batch_occupancy_mean",
            "serving.availability",
            "serving.goodput",
        ):
            assert name in gauges, name

    def test_autoscaler_accepts_telemetry(self):
        from repro.calibration import (
            caffenet_accuracy_model,
            caffenet_time_model,
        )
        from repro.cloud.catalog import instance_type
        from repro.pruning.base import PruneSpec
        from repro.serving.arrivals import bursty_arrivals
        from repro.serving.autoscaler import (
            AutoscalePolicy,
            AutoscalingSimulator,
        )
        from repro.serving.batcher import BatchPolicy

        telemetry = ServingTelemetry(SloPolicy(latency_slo_s=1.0))
        simulator = AutoscalingSimulator(
            caffenet_time_model(),
            caffenet_accuracy_model(),
            instance_type("p2.xlarge"),
            PruneSpec.unpruned(),
            BatchPolicy(max_batch=16, max_wait_s=0.05),
            AutoscalePolicy(interval_s=5.0, max_instances=4),
        )
        report = simulator.run(
            bursty_arrivals(40.0, 30.0, seed=3), telemetry=telemetry
        )
        assert telemetry.latency.count == report.served

    def test_availability_summary_registers_gauges(self):
        from repro.obs import Tracer, scoped_observability
        from repro.serving.arrivals import poisson_arrivals
        from repro.serving.metrics import availability_summary

        report = _simulator().run(
            poisson_arrivals(50.0, 10.0, seed=1), _fault_plan(10.0)
        )
        registry = MetricsRegistry()
        with scoped_observability(Tracer(enabled=False), registry):
            summary = availability_summary(report)
        gauges = registry.snapshot()["gauges"]
        # one source of truth: the printed summary and the gauges agree
        assert gauges["serving.availability"] == summary["availability"]
        assert gauges["serving.goodput"] == summary["goodput"]

    def test_record_report_gauges_skips_missing_attrs(self):
        class Partial:
            availability = 0.5
            goodput = None

        registry = MetricsRegistry()
        record_report_gauges(Partial(), prefix="x", registry=registry)
        gauges = registry.snapshot()["gauges"]
        assert gauges == {"x.availability": 0.5}


class TestSloDrivenAutoscaling:
    def test_burn_rate_scale_out_flag(self):
        from repro.calibration import (
            caffenet_accuracy_model,
            caffenet_time_model,
        )
        from repro.cloud.catalog import instance_type
        from repro.pruning.base import PruneSpec
        from repro.serving.arrivals import bursty_arrivals
        from repro.serving.autoscaler import (
            AutoscalePolicy,
            AutoscalingSimulator,
        )
        from repro.serving.batcher import BatchPolicy

        def fleet_sizes(policy, telemetry):
            simulator = AutoscalingSimulator(
                caffenet_time_model(),
                caffenet_accuracy_model(),
                instance_type("p2.xlarge"),
                PruneSpec.unpruned(),
                BatchPolicy(max_batch=16, max_wait_s=0.05),
                policy,
            )
            return simulator.run(
                bursty_arrivals(120.0, 40.0, seed=3),
                telemetry=telemetry,
            )

        # the flag only matters when a telemetry SLO monitor rides along
        passive = fleet_sizes(
            AutoscalePolicy(interval_s=5.0, max_instances=6),
            ServingTelemetry(SloPolicy(latency_slo_s=0.2)),
        )
        reactive = fleet_sizes(
            AutoscalePolicy(
                interval_s=5.0,
                max_instances=6,
                scale_out_on_slo_burn=True,
            ),
            ServingTelemetry(SloPolicy(latency_slo_s=0.2)),
        )
        assert reactive.peak_instances >= passive.peak_instances

"""The operations behind the API types — one implementation, every
transport.

:func:`plan`, :func:`evaluate_fleets` and :func:`cheapest_fleets` take
the request dataclasses from :mod:`repro.api.types` and answer them
against the process-wide content-keyed caches
(:func:`repro.core.evalspace.evaluate`,
:func:`repro.serving.fleet.evaluate_fleet`).  The HTTP service, the
CLI subcommands and library callers all land here, so a query issued
over any transport warms the cache for every other one.

Request resolution is memoized: the (model, grid, workload) fields of
a request map to long-lived :class:`~repro.core.evalspace.SpaceSpec` /
model objects via ``lru_cache``, so a warm planning query costs one
precomputed-hash cache probe plus the vectorised selection — the
property the ``service.plan`` bench scenario measures.  Cache probes
take a process-wide lock, so concurrent identical requests produce
exactly one miss (single-flight).

:func:`fleet_report` and :func:`select_cheapest_fleet` are the
spec-level entry points for callers that already hold
:class:`~repro.serving.fleet.FleetSpec` objects (experiments,
notebooks); they are part of the API surface, unlike the deprecated
free functions in :mod:`repro.core.planner`.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from functools import lru_cache

from repro.api.types import (
    ApiError,
    FleetDesign,
    FleetRequest,
    FleetResponse,
    FleetView,
    PlanPoint,
    PlanRequest,
    PlanResponse,
)
from repro.errors import InfeasibleError, ReproError
from repro.obs import get_tracer

__all__ = [
    "cheapest_fleets",
    "clear_api_caches",
    "evaluate_fleets",
    "fleet_report",
    "goodput_accuracy_frontier",
    "plan",
    "select_cheapest_fleet",
]

#: Single-flight guard over the evaluation caches: concurrent identical
#: requests serialise here, so exactly one of them pays the miss.
_EVAL_LOCK = threading.Lock()


# ----------------------------------------------------------------------
# memoized request resolution
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def _model_pair(name: str):
    """The calibrated (time, accuracy) model pair for ``name``."""
    from repro.calibration import (
        caffenet_accuracy_model,
        caffenet_time_model,
        googlenet_accuracy_model,
        googlenet_time_model,
    )

    if name == "caffenet":
        return caffenet_time_model(), caffenet_accuracy_model()
    if name == "googlenet":
        return googlenet_time_model(), googlenet_accuracy_model()
    raise ApiError("unknown_model", f"unknown model {name!r}")


@lru_cache(maxsize=None)
def _plan_degrees(name: str) -> tuple:
    """The degrees-of-pruning ladder the planner sweeps for ``name``."""
    if name == "caffenet":
        from repro.pruning.schedule import caffenet_variant_set

        return tuple(caffenet_variant_set())
    from repro.experiments.ext_googlenet_pareto import googlenet_variant_set

    return tuple(googlenet_variant_set())


@lru_cache(maxsize=32)
def _plan_space_spec(
    model: str,
    images: int,
    instances_per_type: int,
    catalog: tuple[str, ...] | None,
):
    """The grid spec a plan request resolves to (memoized: repeated
    requests reuse one spec instance, whose cache key hashes once)."""
    from repro.cloud.catalog import EC2_CATALOG, instance_type
    from repro.core.config_space import enumerate_configurations
    from repro.core.evalspace import SpaceSpec

    time_model, accuracy_model = _model_pair(model)
    types = (
        tuple(EC2_CATALOG)
        if catalog is None
        else tuple(instance_type(n) for n in catalog)
    )
    return SpaceSpec.build(
        time_model,
        accuracy_model,
        _plan_degrees(model),
        enumerate_configurations(types, max_per_type=instances_per_type),
        images,
    )


def _evaluate_spec(spec):
    """Single-flight probe of the evaluation-space cache."""
    from repro.core.evalspace import evaluate

    with _EVAL_LOCK:
        return evaluate(spec)


def planning_space(request: PlanRequest):
    """The memoized :class:`~repro.core.planner.PlanningSpace` a plan
    request runs its queries over (evaluated on first use)."""
    from repro.core.planner import PlanningSpace

    try:
        spec = _plan_space_spec(
            request.model,
            request.images,
            request.instances_per_type,
            request.catalog,
        )
    except ReproError as exc:
        raise ApiError.from_exception(exc) from exc
    return PlanningSpace(
        space=_evaluate_spec(spec), metric=request.metric
    )


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
def plan(request: PlanRequest, *, space=None) -> PlanResponse:
    """Answer one :class:`PlanRequest`.

    ``space`` overrides the grid — pass a
    :class:`~repro.core.planner.PlanningSpace` built from your own
    calibrated models to plan over a custom space (the request's
    model/grid fields are then ignored for evaluation but still label
    the response).  Raises :class:`ApiError` (``infeasible`` when no
    grid point satisfies the constraints).
    """
    from repro.core.planner import (
        _iso_accuracy_frontier,
        _min_budget_for,
        _min_deadline_for,
    )

    with get_tracer().span(
        "api.plan", model=request.model, target=request.target
    ) as span:
        if space is None:
            space = planning_space(request)
        target = float(request.target)
        try:
            if request.deadline_h is not None:
                result = _min_budget_for(
                    space, target, request.deadline_h * 3600.0
                )
                if (
                    request.budget is not None
                    and result.cost > request.budget
                ):
                    raise InfeasibleError(
                        f"cheapest plan inside {request.deadline_h:g}h "
                        f"costs ${result.cost:.2f} > budget "
                        f"${request.budget:.2f}"
                    )
                kind, results = "min_budget", [result]
            elif request.budget is not None:
                kind, results = "min_deadline", [
                    _min_deadline_for(space, target, request.budget)
                ]
            else:
                kind, results = "frontier", _iso_accuracy_frontier(
                    space, target
                )
        except ReproError as exc:
            raise ApiError.from_exception(exc) from exc
        if span is not None:
            span.tags["kind"] = kind
        return PlanResponse(
            kind=kind,
            request=request,
            points=tuple(PlanPoint.from_result(r) for r in results),
        )


# ----------------------------------------------------------------------
# fleets
# ----------------------------------------------------------------------
def _bind_design(design: FleetDesign, index: int, model: str):
    """Build the :class:`~repro.serving.fleet.FleetSpec` a declarative
    design describes, bound to ``model``'s calibrated pair."""
    from repro.cloud.catalog import instance_type
    from repro.cloud.configuration import ResourceConfiguration
    from repro.cloud.instance import CloudInstance
    from repro.pruning.base import PruneSpec
    from repro.serving.batcher import BatchPolicy
    from repro.serving.fleet import FleetSpec
    from repro.serving.router import AdmissionPolicy, ReplicaSpec

    time_model, accuracy_model = _model_pair(model)
    policy = BatchPolicy(
        max_batch=design.max_batch, max_wait_s=design.max_wait_s
    )
    replicas = []
    for i, replica in enumerate(design.replicas):
        configuration = ResourceConfiguration(
            [
                CloudInstance(instance_type(replica.instance_type))
                for _ in range(replica.count)
            ]
        )
        name = replica.name
        if name is None:
            name = f"r{i + 1}-{replica.instance_type}" + (
                "-pruned" if replica.spec else ""
            )
        replicas.append(
            ReplicaSpec(
                name=name,
                configuration=configuration,
                spec=PruneSpec(dict(replica.spec)),
                policy=policy,
                weight=replica.weight,
            )
        )
    admission = None
    if (
        design.admission_rate_per_s is not None
        or design.queue_limit is not None
    ):
        admission = AdmissionPolicy(
            rate_per_s=design.admission_rate_per_s,
            burst=design.admission_burst,
            queue_limit=design.queue_limit,
        )
    return FleetSpec(
        time_model=time_model,
        accuracy_model=accuracy_model,
        replicas=tuple(replicas),
        routing=design.routing,
        admission=admission,
    )


def _evaluate_request(request: FleetRequest):
    """Bind and evaluate every design; returns (names, specs, reports)."""
    workload = request.workload()
    names, specs, reports = [], [], []
    try:
        for index, design in enumerate(request.designs):
            spec = _bind_design(design, index, request.model)
            names.append(design.label(index))
            specs.append(spec)
            reports.append(fleet_report(spec, workload))
    except ReproError as exc:
        raise ApiError.from_exception(exc) from exc
    if len(set(names)) != len(names):
        raise ApiError(
            "invalid_request", f"design names must be unique, got {names}"
        )
    return names, specs, reports


def evaluate_fleets(request: FleetRequest) -> FleetResponse:
    """Evaluate every design in ``request`` under its workload."""
    with get_tracer().span(
        "api.fleet.evaluate", designs=len(request.designs)
    ):
        names, specs, reports = _evaluate_request(request)
    return FleetResponse(
        kind="evaluate",
        views=tuple(
            FleetView.from_report(name, spec, report)
            for name, spec, report in zip(names, specs, reports)
        ),
        reports=tuple(reports),
    )


def cheapest_fleets(request: FleetRequest) -> FleetResponse:
    """Pick the cheapest design meeting the request's availability and
    (optional) p99 constraints; every design's view is still returned
    so callers can see why the winner won."""
    import numpy as np

    with get_tracer().span(
        "api.fleet.cheapest", designs=len(request.designs)
    ):
        names, specs, reports = _evaluate_request(request)
    chosen = None
    best_cost = None
    for name, report in zip(names, reports):
        if report.availability < request.availability:
            continue
        if request.p99_s is not None:
            p99 = report.p99
            if not np.isfinite(p99) or p99 > request.p99_s:
                continue
        if best_cost is None or report.cost < best_cost:
            chosen, best_cost = name, report.cost
    if chosen is None:
        constraint = f"availability >= {request.availability:.3f}"
        if request.p99_s is not None:
            constraint += f" and p99 <= {request.p99_s:.3f}s"
        raise ApiError(
            "infeasible",
            f"none of the {len(names)} candidate fleets meets {constraint}",
        )
    return FleetResponse(
        kind="cheapest",
        views=tuple(
            FleetView.from_report(name, spec, report)
            for name, spec, report in zip(names, specs, reports)
        ),
        chosen=chosen,
        reports=tuple(reports),
    )


# ----------------------------------------------------------------------
# spec-level entry points (callers holding FleetSpec objects)
# ----------------------------------------------------------------------
def fleet_report(spec, workload):
    """Evaluate one :class:`~repro.serving.fleet.FleetSpec` under a
    :class:`~repro.serving.fleet.FleetWorkload` through the
    content-keyed fleet cache (single-flight)."""
    from repro.serving.fleet import evaluate_fleet

    with _EVAL_LOCK:
        return evaluate_fleet(spec, workload)


def goodput_accuracy_frontier(
    candidates: Sequence,
    workload,
):
    """The cost / goodput-at-accuracy Pareto frontier over candidate
    :class:`~repro.serving.fleet.FleetSpec` objects.

    Evaluates every candidate under ``workload`` (through the shared
    fleet cache) and keeps the fleets no rival beats on *both* axes —
    lower hourly cost and higher
    :attr:`~repro.serving.router.FleetReport.goodput_at_accuracy`
    (served requests credited at their accuracy floor, per second).
    This is the planner query a degradation policy is judged by: a
    fleet that sheds or over-degrades under load falls off the
    frontier even when its raw goodput looks fine.

    Returns ``(spec, report)`` pairs sorted by ascending hourly cost.
    Raises :class:`ApiError` (``invalid_request``) when no candidates
    are given.
    """
    candidates = tuple(candidates)
    if not candidates:
        raise ApiError(
            "invalid_request",
            "goodput frontier needs at least one candidate",
        )
    evaluated = [
        (spec, fleet_report(spec, workload)) for spec in candidates
    ]
    frontier = []
    for spec, report in evaluated:
        dominated = any(
            (
                other.hourly_rate <= spec.hourly_rate
                and other_report.goodput_at_accuracy
                > report.goodput_at_accuracy
            )
            or (
                other.hourly_rate < spec.hourly_rate
                and other_report.goodput_at_accuracy
                >= report.goodput_at_accuracy
            )
            for other, other_report in evaluated
        )
        if not dominated:
            frontier.append((spec, report))
    frontier.sort(
        key=lambda pair: (
            pair[0].hourly_rate,
            -pair[1].goodput_at_accuracy,
        )
    )
    return frontier


def select_cheapest_fleet(
    candidates: Sequence,
    workload,
    *,
    availability: float = 0.999,
    p99_s: float | None = None,
):
    """Cheapest candidate :class:`~repro.serving.fleet.FleetSpec`
    meeting availability A and p99 L; returns ``(spec, report)``.

    The supported replacement for the deprecated
    :func:`repro.core.planner.cheapest_fleet` free function.  Raises
    :class:`ApiError` (``infeasible``) when no candidate qualifies.
    """
    from repro.core.planner import _cheapest_fleet

    try:
        return _cheapest_fleet(
            candidates, workload, availability=availability, p99_s=p99_s
        )
    except ReproError as exc:
        raise ApiError.from_exception(exc) from exc


# ----------------------------------------------------------------------
# cache hygiene
# ----------------------------------------------------------------------
def clear_api_caches() -> None:
    """Drop every API-layer memo *and* the evaluation caches.

    Benchmarks and tests that count cache traffic must start cold:
    memoized model instances also keep their per-degree
    ``time_fraction`` memos, so anything short of a full clear leaks
    warm state into the next measurement.
    """
    from repro.core.evalspace import clear_space_cache
    from repro.serving.fleet import clear_fleet_cache

    _model_pair.cache_clear()
    _plan_degrees.cache_clear()
    _plan_space_spec.cache_clear()
    clear_space_cache()
    clear_fleet_cache()

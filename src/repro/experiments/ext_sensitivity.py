"""Extension: sensitivity of the paper's conclusions to our calibration.

Several constants in this reproduction were *fitted* to single published
anchors (DESIGN.md §6): the multi-layer synergy exponent gamma (one
Figure 8 point), the accuracy-interaction strength eta (one Figure 8
point), and the M60/K80 inference speedup (the Figure 12 CAR ratio).
If the paper's qualitative conclusions held only at those exact values,
the reproduction would be fragile; this experiment perturbs each
constant across a wide band and re-derives three headline outcomes:

1. multi-layer pruning still roughly halves inference time at ~1/8
   Top-5 cost (Figure 8's claim);
2. the cost-Pareto pick at best accuracy still saves >= 40% (Figure 10);
3. g3 still beats p2 on CAR (Figure 12's category ordering).

A conclusion is *robust* when it holds across the whole band.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.calibration.accuracy_model import AccuracyModel
from repro.calibration.caffenet import (
    caffenet_accuracy_model,
    caffenet_time_model,
)
from repro.cloud.catalog import instance_type
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.instance import CloudInstance
from repro.core.evalspace import SpaceSpec, evaluate
from repro.experiments.report import format_table
from repro.perf.device import K80
from repro.perf.latency import CalibratedTimeModel
from repro.pruning.base import PruneSpec

__all__ = ["SensitivityRow", "SensitivityStudy", "run", "render"]

_ALL_CONV = PruneSpec(
    {"conv1": 0.3, "conv2": 0.5, "conv3": 0.5, "conv4": 0.5, "conv5": 0.5}
)
_FIG12_SPEC = PruneSpec({"conv1": 0.2, "conv2": 0.2})


@dataclass(frozen=True)
class SensitivityRow:
    parameter: str
    value: float
    all_conv_time_fraction: float
    all_conv_top5: float
    car_ratio_p2_over_g3: float

    @property
    def conclusions_hold(self) -> bool:
        """The three headline claims at this parameter value."""
        return (
            self.all_conv_time_fraction <= 0.70  # big multi-layer saving
            and self.all_conv_top5 >= 50.0  # without collapsing accuracy
            and self.car_ratio_p2_over_g3 > 1.0  # g3 stays cheaper
        )


@dataclass(frozen=True)
class SensitivityStudy:
    rows: tuple[SensitivityRow, ...]

    @property
    def all_robust(self) -> bool:
        return all(r.conclusions_hold for r in self.rows)

    def band(self, parameter: str) -> list[SensitivityRow]:
        return [r for r in self.rows if r.parameter == parameter]


def _outcomes(
    time_model: CalibratedTimeModel,
    accuracy_model: AccuracyModel,
    m60_speedup: float,
) -> tuple[float, float, float]:
    """(all-conv time fraction, all-conv Top-5, p2/g3 CAR ratio)."""
    fraction = time_model.time_fraction(_ALL_CONV)
    top5 = accuracy_model.accuracy(_ALL_CONV).top5
    g3_instance = CloudInstance(instance_type("g3.8xlarge"))
    g3_device = dataclasses.replace(
        g3_instance.itype.gpu, inference_speedup=m60_speedup
    )
    g3_itype = dataclasses.replace(g3_instance.itype, gpu=g3_device)
    # one degree x (p2, modified g3) as a two-point evaluation grid
    space = evaluate(
        SpaceSpec.build(
            time_model,
            accuracy_model,
            [_FIG12_SPEC],
            [
                ResourceConfiguration(
                    [CloudInstance(instance_type("p2.8xlarge"))]
                ),
                ResourceConfiguration([CloudInstance(g3_itype)]),
            ],
            50_000,
        )
    )
    car = space.car("top1")
    return fraction, top5, float(car[0] / car[1])


def run() -> SensitivityStudy:
    base_tm = caffenet_time_model()
    base_am = caffenet_accuracy_model()
    rows: list[SensitivityRow] = []

    def add(parameter: str, value: float, tm, am, speedup: float) -> None:
        fraction, top5, ratio = _outcomes(tm, am, speedup)
        rows.append(
            SensitivityRow(
                parameter=parameter,
                value=value,
                all_conv_time_fraction=fraction,
                all_conv_top5=top5,
                car_ratio_p2_over_g3=ratio,
            )
        )

    for gamma in (1.5, 2.0, 2.5, 3.0):
        tm = dataclasses.replace(base_tm, synergy_gamma=gamma)
        add("synergy_gamma", gamma, tm, base_am, 2.06)

    for eta in (7.0, 10.0, 13.0):
        am = dataclasses.replace(base_am, eta_top5=eta)
        add("eta_top5", eta, base_tm, am, 2.06)

    for speedup in (1.6, 2.06, 2.5):
        add("m60_speedup", speedup, base_tm, base_am, speedup)

    for floor in (0.45, 0.556, 0.65):
        tm = dataclasses.replace(base_tm, floor_fraction=floor)
        add("floor_fraction", floor, tm, base_am, 2.06)

    return SensitivityStudy(rows=tuple(rows))


def render(result: SensitivityStudy | None = None) -> str:
    result = result or run()
    table = format_table(
        [
            "Parameter",
            "Value",
            "all-conv time frac",
            "all-conv Top-5",
            "CAR p2/g3",
            "conclusions hold",
        ],
        [
            (
                r.parameter,
                f"{r.value:.3g}",
                f"{r.all_conv_time_fraction:.3f}",
                f"{r.all_conv_top5:.1f}",
                f"{r.car_ratio_p2_over_g3:.2f}",
                "yes" if r.conclusions_hold else "NO",
            )
            for r in result.rows
        ],
    )
    verdict = (
        "all three headline conclusions are robust across the bands"
        if result.all_robust
        else "WARNING: some conclusions depend on the fitted constants"
    )
    return table + "\n" + verdict

"""Edge cases of the serving simulator the happy-path tests skip:
degenerate batch policies, burst arrivals on a single worker, the
error paths, and the zero-duration report guard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import caffenet_accuracy_model, caffenet_time_model
from repro.calibration.accuracy_model import AccuracyPair
from repro.cloud import CloudInstance, ResourceConfiguration, instance_type
from repro.errors import ConfigurationError
from repro.pruning import PruneSpec
from repro.serving import BatchPolicy, ServingSimulator
from repro.serving.batcher import PendingQueue
from repro.serving.simulator import ServingReport


def _simulator(
    instance: str = "p2.xlarge",
    max_batch: int = 32,
    max_wait_s: float = 0.05,
) -> ServingSimulator:
    return ServingSimulator(
        caffenet_time_model(),
        caffenet_accuracy_model(),
        ResourceConfiguration([CloudInstance(instance_type(instance))]),
        PruneSpec.unpruned(),
        BatchPolicy(max_batch=max_batch, max_wait_s=max_wait_s),
    )


class TestSingleWorkerBurst:
    """One GPU, everything arrives at once."""

    def test_burst_at_t0_all_served(self):
        arr = np.zeros(100)
        report = _simulator(max_batch=16).run(arr)
        assert report.requests == 100
        assert report.served == 100
        assert report.batch_sizes.sum() == 100
        assert np.all(report.batch_sizes <= 16)
        assert np.all(report.latencies_s > 0)

    def test_burst_queueing_orders_latency(self):
        # FIFO on one worker: later request ids never finish earlier
        arr = np.zeros(40)
        report = _simulator(max_batch=8).run(arr)
        assert np.all(np.diff(report.latencies_s) >= -1e-12)

    def test_single_request(self):
        report = _simulator().run(np.array([0.0]))
        assert report.served == 1
        assert report.batch_sizes.tolist() == [1]
        assert report.duration_s == pytest.approx(
            report.latencies_s[0]
        )


class TestDegeneratePolicies:
    def test_zero_max_wait_dispatches_immediately(self):
        # with max_wait 0 a lone request never waits for company
        arr = np.array([0.0, 5.0, 10.0])  # far apart: no batching
        report = _simulator(max_wait_s=0.0).run(arr)
        assert report.batch_sizes.tolist() == [1, 1, 1]

    def test_zero_max_wait_still_batches_backlog(self):
        # a busy worker accumulates a queue even with max_wait 0
        arr = np.zeros(30)
        report = _simulator(max_batch=8, max_wait_s=0.0).run(arr)
        assert report.batch_sizes.max() > 1

    def test_cap_one_batches(self):
        arr = np.linspace(0.0, 1.0, 25)
        report = _simulator(max_batch=1, max_wait_s=0.2).run(arr)
        assert np.all(report.batch_sizes == 1)
        assert report.batch_sizes.size == 25

    def test_wait_cap_bounds_queueing_when_underloaded(self):
        # light load: no request waits much longer than max_wait +
        # one service time on an idle fleet
        arr = np.linspace(0.0, 10.0, 11)
        report = _simulator(max_batch=32, max_wait_s=0.3).run(arr)
        single = (
            caffenet_time_model()
            .batching_model(
                PruneSpec.unpruned(), instance_type("p2.xlarge").gpu
            )
            .batch_time(1)
        )
        assert report.latencies_s.max() <= 0.3 + 2 * single + 1e-9


class TestErrorPaths:
    def test_empty_arrivals_rejected(self):
        with pytest.raises(ConfigurationError):
            _simulator().run(np.array([]))

    def test_unsorted_arrivals_rejected(self):
        with pytest.raises(ConfigurationError):
            _simulator().run(np.array([1.0, 0.5, 2.0]))

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            _simulator().run(np.array([-1.0, 0.0]))

    def test_model_mismatch_rejected(self):
        from repro.calibration import googlenet_accuracy_model

        with pytest.raises(ConfigurationError):
            ServingSimulator(
                caffenet_time_model(),
                googlenet_accuracy_model(),
                ResourceConfiguration(
                    [CloudInstance(instance_type("p2.xlarge"))]
                ),
                PruneSpec.unpruned(),
                BatchPolicy(max_batch=4),
            )

    def test_negative_hourly_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            ServingSimulator(
                caffenet_time_model(),
                caffenet_accuracy_model(),
                ResourceConfiguration(
                    [CloudInstance(instance_type("p2.xlarge"))]
                ),
                PruneSpec.unpruned(),
                BatchPolicy(max_batch=4),
                hourly_rate=-1.0,
            )

    def test_pending_queue_empty_oldest_raises(self):
        with pytest.raises(IndexError):
            PendingQueue().oldest_arrival()


class TestPendingQueueRequeue:
    def test_requeue_keeps_arrival_order(self):
        q = PendingQueue()
        q.push(1, 1.0)
        q.push(2, 2.0)
        q.requeue(0, 0.5)  # a preempted, older request
        assert [r for r, _ in q.take(3)] == [0, 1, 2]

    def test_requeue_into_empty_queue(self):
        q = PendingQueue()
        q.requeue(7, 3.0)
        assert q.oldest_arrival() == 3.0

    def test_requeue_after_equal_arrivals(self):
        q = PendingQueue()
        q.push(0, 1.0)
        q.requeue(1, 1.0)  # ties go behind existing equal arrivals
        assert [r for r, _ in q.take(2)] == [0, 1]


def _zero_duration_report() -> ServingReport:
    return ServingReport(
        requests=1,
        duration_s=0.0,
        latencies_s=np.array([0.0]),
        batch_sizes=np.array([1]),
        busy_s=0.0,
        worker_count=1,
        cost=0.0,
        accuracy=AccuracyPair(top1=60.0, top5=80.0),
    )


class TestZeroDurationReport:
    """Regression: a single arrival at t=0 with instant service used to
    divide by duration == 0 in ``utilisation``."""

    def test_utilisation_guarded(self):
        assert _zero_duration_report().utilisation == 0.0

    def test_throughput_and_goodput_guarded(self):
        report = _zero_duration_report()
        assert report.throughput == 0.0
        assert report.goodput == 0.0

    def test_empty_latency_stats_are_nan_not_crash(self):
        report = ServingReport(
            requests=1,
            duration_s=1.0,
            latencies_s=np.array([]),
            batch_sizes=np.array([]),
            busy_s=0.0,
            worker_count=1,
            cost=0.0,
            accuracy=AccuracyPair(top1=60.0, top5=80.0),
            dropped=1,
        )
        assert np.isnan(report.p50)
        assert np.isnan(report.mean_latency)
        assert report.mean_batch == 0.0
        assert report.miss_rate(1.0) == 0.0

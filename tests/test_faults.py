"""Fault-injection layer: plan semantics, simulator invariants,
zero-fault bit-for-bit equivalence, and the spot-pricing experiment."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import caffenet_accuracy_model, caffenet_time_model
from repro.cloud import (
    CloudInstance,
    DEFAULT_SPOT_DISCOUNT,
    FaultPlan,
    Preemption,
    ResourceConfiguration,
    Slowdown,
    instance_type,
    spot_cost,
    spot_rate,
)
from repro.errors import ConfigurationError
from repro.pruning import PruneSpec
from repro.serving import BatchPolicy, ServingSimulator, poisson_arrivals
from repro.serving.autoscaler import AutoscalePolicy, AutoscalingSimulator
from repro.serving.metrics import availability_summary, throughput_series


def _simulator(
    instance: str = "p2.8xlarge",
    max_batch: int = 32,
    max_wait_s: float = 0.05,
    hourly_rate: float | None = None,
) -> ServingSimulator:
    return ServingSimulator(
        caffenet_time_model(),
        caffenet_accuracy_model(),
        ResourceConfiguration([CloudInstance(instance_type(instance))]),
        PruneSpec.unpruned(),
        BatchPolicy(max_batch=max_batch, max_wait_s=max_wait_s),
        hourly_rate=hourly_rate,
    )


def _autoscaler(**overrides) -> AutoscalingSimulator:
    policy = dict(
        interval_s=10.0,
        min_instances=1,
        max_instances=4,
        boot_delay_s=10.0,
    )
    hourly_rate = overrides.pop("hourly_rate", None)
    policy.update(overrides)
    return AutoscalingSimulator(
        caffenet_time_model(),
        caffenet_accuracy_model(),
        instance_type("p2.8xlarge"),
        PruneSpec.unpruned(),
        BatchPolicy(max_batch=32, max_wait_s=0.05),
        AutoscalePolicy(**policy),
        hourly_rate=hourly_rate,
    )


class TestFaultPlan:
    def test_none_is_zero(self):
        assert FaultPlan.none().is_zero

    def test_any_fault_is_not_zero(self):
        assert not FaultPlan(preemptions=(Preemption(0, 1.0),)).is_zero
        assert not FaultPlan(
            slowdowns=(Slowdown(0, 1.0, 2.0, 2.0),)
        ).is_zero
        assert not FaultPlan(timeout_s=5.0).is_zero

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Preemption(-1, 1.0)
        with pytest.raises(ConfigurationError):
            Preemption(0, -1.0)
        with pytest.raises(ConfigurationError):
            Preemption(0, 1.0, recover_after_s=0.0)
        with pytest.raises(ConfigurationError):
            Slowdown(0, 0.0, 1.0, factor=0.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(retry_budget=-1)
        with pytest.raises(ConfigurationError):
            FaultPlan(timeout_s=0.0)

    def test_slowdown_factor_windows(self):
        plan = FaultPlan(
            slowdowns=(
                Slowdown(0, 10.0, 5.0, 2.0),
                Slowdown(0, 12.0, 5.0, 3.0),
                Slowdown(1, 10.0, 5.0, 7.0),
            )
        )
        assert plan.slowdown_factor(0, 9.0) == 1.0
        assert plan.slowdown_factor(0, 10.0) == 2.0
        assert plan.slowdown_factor(0, 13.0) == 6.0  # windows overlap
        assert plan.slowdown_factor(0, 15.0) == 3.0
        assert plan.slowdown_factor(2, 10.0) == 1.0

    def test_sample_deterministic(self):
        kwargs = dict(duration_s=100.0, workers=4, mtbf_s=30.0, seed=3)
        assert FaultPlan.sample(**kwargs) == FaultPlan.sample(**kwargs)

    def test_sample_rate_scales_with_mtbf(self):
        rare = FaultPlan.sample(
            duration_s=500.0, workers=8, mtbf_s=200.0, seed=1
        )
        frequent = FaultPlan.sample(
            duration_s=500.0, workers=8, mtbf_s=20.0, seed=1
        )
        assert len(frequent.preemptions) > len(rare.preemptions)

    def test_sample_permanent_preemption_fails_once(self):
        plan = FaultPlan.sample(
            duration_s=1000.0,
            workers=3,
            mtbf_s=10.0,
            recovery_s=None,
            seed=0,
        )
        targets = [p.target for p in plan.preemptions]
        assert len(targets) == len(set(targets))
        assert all(p.recover_after_s is None for p in plan.preemptions)

    def test_sample_slowdowns(self):
        plan = FaultPlan.sample(
            duration_s=300.0,
            workers=2,
            slow_every_s=30.0,
            slow_factor=4.0,
            seed=2,
        )
        assert plan.slowdowns and not plan.preemptions
        assert all(s.factor == 4.0 for s in plan.slowdowns)

    def test_sample_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.sample(duration_s=0.0, workers=1, mtbf_s=1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan.sample(duration_s=1.0, workers=0, mtbf_s=1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan.sample(duration_s=1.0, workers=1, mtbf_s=-1.0)


class TestSpotPricing:
    def test_discount_applied(self):
        assert spot_rate(10.0) == pytest.approx(
            10.0 * (1 - DEFAULT_SPOT_DISCOUNT)
        )
        assert spot_rate(10.0, discount=0.5) == pytest.approx(5.0)

    def test_spot_cost_below_on_demand(self):
        itype = instance_type("p2.8xlarge")
        from repro.cloud import billed_cost

        assert spot_cost(itype, 3600.0) < billed_cost(itype, 3600.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            spot_rate(-1.0)
        with pytest.raises(ConfigurationError):
            spot_rate(1.0, discount=1.0)


class TestZeroFaultEquivalence:
    """An all-zero plan must reproduce the reliable fleet bit-for-bit."""

    def test_serving_report_identical(self):
        arr = poisson_arrivals(150.0, 20.0, seed=13)
        sim = _simulator()
        base = sim.run(arr)
        zero = sim.run(arr, FaultPlan.none())
        np.testing.assert_array_equal(base.latencies_s, zero.latencies_s)
        np.testing.assert_array_equal(base.batch_sizes, zero.batch_sizes)
        for field in dataclasses.fields(base):
            a = getattr(base, field.name)
            b = getattr(zero, field.name)
            if isinstance(a, np.ndarray):
                np.testing.assert_array_equal(a, b)
            else:
                assert a == b, field.name

    def test_zero_fault_report_has_no_fault_counts(self):
        arr = poisson_arrivals(100.0, 10.0, seed=14)
        report = _simulator().run(arr, FaultPlan.none())
        assert report.retries == 0
        assert report.dropped == 0
        assert report.preempted == 0
        assert report.served == report.requests
        assert report.availability == 1.0
        assert report.goodput == report.throughput

    def test_autoscaler_identical(self):
        arr = poisson_arrivals(200.0, 40.0, seed=15)
        sim = _autoscaler()
        base = sim.run(arr)
        zero = sim.run(arr, FaultPlan.none())
        np.testing.assert_array_equal(base.latencies_s, zero.latencies_s)
        assert base.cost == zero.cost
        assert base.fleet_timeline == zero.fleet_timeline
        assert base.mean_instances == zero.mean_instances

    @given(st.integers(0, 10_000))
    @settings(max_examples=5, deadline=None)
    def test_serving_identical_any_seed(self, seed):
        arr = poisson_arrivals(120.0, 5.0, seed=seed)
        sim = _simulator()
        a = sim.run(arr)
        b = sim.run(arr, FaultPlan.none())
        np.testing.assert_array_equal(a.latencies_s, b.latencies_s)
        assert a.cost == b.cost and a.busy_s == b.busy_s


class TestServingUnderFaults:
    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_conservation_invariant(self, seed):
        """Every request is exactly served or dropped; latencies of
        served requests are non-negative."""
        arr = poisson_arrivals(120.0, 10.0, seed=seed)
        plan = FaultPlan.sample(
            duration_s=10.0,
            workers=8,
            mtbf_s=8.0,
            recovery_s=3.0,
            retry_budget=1,
            timeout_s=2.0,
            seed=seed,
        )
        report = _simulator().run(arr, plan)
        assert report.served + report.dropped == report.requests
        assert report.latencies_s.size == report.served
        assert np.all(report.latencies_s >= 0)
        assert report.retries >= 0 and report.dropped >= 0
        assert 0.0 <= report.availability <= 1.0

    def test_deterministic_under_faults(self):
        arr = poisson_arrivals(120.0, 15.0, seed=31)
        plan = FaultPlan.sample(
            duration_s=15.0, workers=8, mtbf_s=10.0, seed=31
        )
        a = _simulator().run(arr, plan)
        b = _simulator().run(arr, plan)
        np.testing.assert_array_equal(a.latencies_s, b.latencies_s)
        assert a.cost == b.cost and a.retries == b.retries

    def test_preempted_inflight_batch_is_requeued(self):
        # one slow worker, preempted mid-batch, recovers, serves again
        plan = FaultPlan(
            preemptions=(Preemption(0, 0.05, recover_after_s=1.0),),
            retry_budget=2,
        )
        sim = _simulator("p2.xlarge", max_batch=4, max_wait_s=0.0)
        report = sim.run(np.array([0.0, 0.01]), plan)
        assert report.preempted == 1
        assert report.retries >= 1
        assert report.dropped == 0
        assert report.served == 2
        # the retried requests waited for the recovery
        assert report.latencies_s.max() > 1.0

    def test_zero_retry_budget_drops_preempted_requests(self):
        # request 0 is in flight when the preemption hits and has no
        # budget left: dropped.  Request 1 was still queued (the single
        # GPU was busy), so it survives and meets the recovered worker.
        plan = FaultPlan(
            preemptions=(Preemption(0, 0.05, recover_after_s=1.0),),
            retry_budget=0,
        )
        sim = _simulator("p2.xlarge", max_batch=1, max_wait_s=0.0)
        report = sim.run(np.array([0.0, 0.01]), plan)
        assert report.dropped == 1
        assert report.served == 1
        assert report.retries == 0
        assert report.latencies_s[0] > 1.0  # waited out the recovery

    def test_permanent_preemption_without_timeout_drops_backlog(self):
        # the only worker dies before serving anything and never
        # recovers: the run terminates and the backlog is dropped
        plan = FaultPlan(
            preemptions=(Preemption(0, 0.0),), retry_budget=0
        )
        sim = _simulator("p2.xlarge", max_batch=4, max_wait_s=0.5)
        report = sim.run(np.array([0.1, 0.2, 0.3]), plan)
        assert report.served == 0
        assert report.dropped == 3
        assert report.latencies_s.size == 0
        assert np.isnan(report.p99)
        assert report.miss_rate(1.0) == 0.0

    def test_timeout_drops_stale_requests(self):
        # worker down for 10s; with a 1s timeout the queue drains as drops
        plan = FaultPlan(
            preemptions=(Preemption(0, 0.0, recover_after_s=10.0),),
            retry_budget=2,
            timeout_s=1.0,
        )
        sim = _simulator("p2.xlarge", max_batch=4, max_wait_s=0.0)
        report = sim.run(np.array([0.1, 0.2, 11.0]), plan)
        assert report.dropped == 2  # the two early arrivals expire
        assert report.served == 1  # the late one meets the recovered GPU

    def test_slowdown_stretches_service(self):
        arr = poisson_arrivals(100.0, 10.0, seed=17)
        slow = FaultPlan(
            slowdowns=(
                Slowdown(w, 0.0, 20.0, 4.0) for w in range(8)
            ),
        )
        base = _simulator().run(arr)
        slowed = _simulator().run(arr, slow)
        assert slowed.p99 > base.p99
        assert slowed.busy_s > base.busy_s

    def test_faults_reduce_goodput(self):
        arr = poisson_arrivals(150.0, 20.0, seed=18)
        plan = FaultPlan.sample(
            duration_s=20.0,
            workers=8,
            mtbf_s=5.0,
            recovery_s=10.0,
            retry_budget=1,
            timeout_s=2.0,
            seed=18,
        )
        base = _simulator().run(arr)
        faulted = _simulator().run(arr, plan)
        assert faulted.goodput < base.goodput
        assert faulted.preempted > 0

    def test_spot_rate_cuts_reported_cost(self):
        arr = poisson_arrivals(100.0, 10.0, seed=19)
        config_rate = ResourceConfiguration(
            [CloudInstance(instance_type("p2.8xlarge"))]
        ).total_price_per_hour
        base = _simulator().run(arr)
        spot = _simulator(hourly_rate=spot_rate(config_rate)).run(arr)
        assert spot.cost < base.cost
        assert spot.cost == pytest.approx(
            base.cost * (1 - DEFAULT_SPOT_DISCOUNT)
        )


class TestAutoscalerUnderFaults:
    def test_conservation_and_replacement(self):
        arr = poisson_arrivals(150.0, 60.0, seed=23)
        plan = FaultPlan(
            preemptions=(
                Preemption(0, 10.0),
                Preemption(0, 30.0),
            ),
            retry_budget=2,
        )
        report = _autoscaler().run(arr, plan)
        assert report.served + report.dropped == report.requests
        assert report.preempted == 2
        assert np.all(report.latencies_s >= 0)
        # the fleet never stays below the minimum: replacements launch
        assert report.fleet_timeline[-1][1] >= 1

    def test_billing_stops_at_preemption(self):
        """A preempted fleet is cheaper than the same fleet running
        fault-free: the provider stops the meter at reclaim time."""
        arr = poisson_arrivals(100.0, 30.0, seed=24)
        base = _autoscaler(max_instances=1).run(arr)
        preempted = _autoscaler(max_instances=1).run(
            arr,
            FaultPlan(
                preemptions=(Preemption(0, 5.0),), retry_budget=2
            ),
        )
        # base bills one instance for the whole run; the faulted run
        # bills instance 1 for 5s plus a replacement from 5s on, but
        # pays the boot delay in extra duration, not extra billing
        assert preempted.cost <= base.cost + 1e-9 or (
            preempted.duration_s > base.duration_s
        )
        assert preempted.preempted == 1

    def test_deterministic_under_faults(self):
        arr = poisson_arrivals(150.0, 30.0, seed=25)
        plan = FaultPlan.sample(
            duration_s=30.0, workers=8, mtbf_s=15.0, seed=25
        )
        a = _autoscaler().run(arr, plan)
        b = _autoscaler().run(arr, plan)
        np.testing.assert_array_equal(a.latencies_s, b.latencies_s)
        assert a.cost == b.cost

    def test_preemption_of_whole_fleet_recovers_service(self):
        arr = poisson_arrivals(100.0, 40.0, seed=26)
        plan = FaultPlan(
            preemptions=(Preemption(0, 5.0), Preemption(0, 6.0)),
            retry_budget=3,
        )
        report = _autoscaler().run(arr, plan)
        # service resumed after replacement boot: most requests served
        assert report.availability > 0.9


class TestAvailabilityMetrics:
    def test_summary_fields(self):
        arr = poisson_arrivals(120.0, 15.0, seed=27)
        plan = FaultPlan.sample(
            duration_s=15.0,
            workers=8,
            mtbf_s=6.0,
            recovery_s=5.0,
            retry_budget=1,
            timeout_s=2.0,
            seed=27,
        )
        report = _simulator().run(arr, plan)
        summary = availability_summary(report, slo_s=1.0)
        assert summary["availability"] == pytest.approx(
            report.served / report.requests
        )
        assert summary["goodput"] == pytest.approx(report.goodput)
        assert summary["drop_rate"] + summary["availability"] == (
            pytest.approx(1.0)
        )
        assert summary["preemptions"] == report.preempted
        # SLO attainment counts drops as misses: never above availability
        assert summary["slo_attainment"] <= summary["availability"]

    def test_summary_without_slo(self):
        report = _simulator().run(poisson_arrivals(50.0, 5.0, seed=28))
        summary = availability_summary(report)
        assert "slo_attainment" not in summary
        assert summary["availability"] == 1.0

    def test_slo_validation(self):
        report = _simulator().run(poisson_arrivals(50.0, 5.0, seed=28))
        with pytest.raises(ValueError):
            availability_summary(report, slo_s=0.0)

    def test_throughput_series_rejects_dropped_runs(self):
        arr = np.array([0.1, 0.2, 0.3])
        plan = FaultPlan(
            preemptions=(Preemption(0, 0.0),), retry_budget=0
        )
        report = _simulator("p2.xlarge").run(arr, plan)
        assert report.dropped > 0
        with pytest.raises(ValueError):
            throughput_series(arr, report)


class TestFaultToleranceStudy:
    @pytest.fixture(scope="class")
    def study(self):
        from repro.experiments import ext_fault_tolerance

        ext_fault_tolerance.run.cache_clear()
        return ext_fault_tolerance.run()

    def test_on_demand_is_fully_available(self, study):
        ondemand = study.row("on-demand, reliable")
        assert ondemand.availability == 1.0
        assert ondemand.dropped == 0 and ondemand.preempted == 0

    def test_spot_is_cheaper_per_served_request(self, study):
        ondemand = study.row("on-demand, reliable")
        for row in study.rows[1:]:
            assert row.cost_per_1k < ondemand.cost_per_1k

    def test_severity_degrades_goodput(self, study):
        goodputs = [r.goodput for r in study.rows[1:]]
        assert goodputs == sorted(goodputs, reverse=True)

    def test_worst_case_shows_drops(self, study):
        assert study.rows[-1].dropped > 0
        assert study.rows[-1].availability < 1.0

    def test_renders_via_run_all(self):
        from repro.experiments.runner import run_all

        [output] = run_all(("ext-fault-tolerance",))
        assert "on-demand, reliable" in output.text
        assert "spot, mtbf" in output.text
        assert "Goodput" in output.text

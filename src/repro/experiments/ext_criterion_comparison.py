"""Extension: pruning-criterion comparison — why saliency ranking matters.

The paper adopts Li et al.'s L1-norm filter ranking "for simplicity and
implementation convenience" (Section 3.2.1), citing Anwar et al.'s more
complex scoring as an alternative.  This experiment justifies the choice
empirically on a really-trained CNN: at matched prune ratios,

* L1 and L2 ranking behave nearly identically (their orders agree on
  the small/large filters that matter);
* random filter removal — the control — loses accuracy far earlier,
  i.e. the sweet spots the whole paper builds on *come from* the
  saliency ranking, not from network redundancy alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.cnn.datasets import make_classification_data
from repro.cnn.models import build_small_cnn
from repro.cnn.training import SGDTrainer, evaluate_topk
from repro.experiments.report import format_table
from repro.pruning.base import PruneSpec
from repro.pruning.l1_filter import L1FilterPruner

__all__ = ["CriterionSweep", "CriterionStudy", "run", "render"]

_RATIOS = (0.0, 0.25, 0.5, 0.75)
_CRITERIA = ("l1", "l2", "random")


@dataclass(frozen=True)
class CriterionSweep:
    criterion: str
    ratios: tuple[float, ...]
    top1: tuple[float, ...]

    def accuracy_at(self, ratio: float) -> float:
        return self.top1[self.ratios.index(ratio)]


@dataclass(frozen=True)
class CriterionStudy:
    sweeps: tuple[CriterionSweep, ...]

    def sweep(self, criterion: str) -> CriterionSweep:
        for s in self.sweeps:
            if s.criterion == criterion:
                return s
        raise KeyError(criterion)

    def saliency_advantage(self, ratio: float = 0.5) -> float:
        """L1-over-random accuracy gap (points, averaged over seeds)."""
        return self.sweep("l1").accuracy_at(ratio) - self.sweep(
            "random"
        ).accuracy_at(ratio)


@lru_cache(maxsize=1)
def run(
    layer: str = "conv2",
    seed: int = 17,
    random_seeds: tuple[int, ...] = (0, 1, 2),
) -> CriterionStudy:
    train = make_classification_data(n=400, num_classes=5, seed=seed)
    test = make_classification_data(n=200, num_classes=5, seed=seed + 1)
    network = build_small_cnn(seed=seed, width=12)
    SGDTrainer(network, lr=0.03).fit(train, epochs=10, batch_size=32)

    sweeps = []
    for criterion in _CRITERIA:
        accs = []
        for ratio in _RATIOS:
            spec = PruneSpec({layer: ratio})
            if criterion == "random":
                # average the control over several permutations
                vals = []
                for rs in random_seeds:
                    pruner = L1FilterPruner(
                        propagate=True, criterion="random", seed=rs
                    )
                    pruned = pruner.apply(network, spec)
                    vals.append(evaluate_topk(pruned, test, k=1))
                accs.append(100.0 * sum(vals) / len(vals))
            else:
                pruner = L1FilterPruner(
                    propagate=True, criterion=criterion
                )
                pruned = pruner.apply(network, spec)
                accs.append(evaluate_topk(pruned, test, k=1) * 100.0)
        sweeps.append(
            CriterionSweep(
                criterion=criterion,
                ratios=_RATIOS,
                top1=tuple(accs),
            )
        )
    return CriterionStudy(sweeps=tuple(sweeps))


def render(result: CriterionStudy | None = None) -> str:
    result = result or run()
    rows = []
    for i, ratio in enumerate(_RATIOS):
        rows.append(
            (
                f"{ratio:.0%}",
                *(f"{s.top1[i]:.1f}" for s in result.sweeps),
            )
        )
    table = format_table(
        ["Prune ratio"]
        + [f"{s.criterion} Top-1 (%)" for s in result.sweeps],
        rows,
    )
    return (
        table
        + f"\nsaliency advantage at 50% pruning: "
        f"{result.saliency_advantage(0.5):.1f} points over random — the "
        "sweet spots exist because of the ranking, not just redundancy"
    )

"""Caffenet calibration: every constant cites its paper anchor.

Time anchors (Amazon EC2 p2.xlarge, one K80, 50 000 ImageNet images):

* unpruned batched inference: **19 min** (Figure 6, all subplots at 0%);
* single inference: **0.09 s** unpruned, **0.05 s** at 90% uniform prune
  (Figure 4) — fixing the sparse-compute floor at 0.05/0.09 ~= 0.556;
* per-layer 90%-prune endpoints: conv1 19 -> 16.6 min, conv2 19 -> 14 min
  (Section 4.3.1); conv3-5 scaled by their Figure 3 time shares;
* multi-layer synergy: conv1@30+conv2@50 -> 13 min (Figure 8) fixes the
  synergy exponent at gamma = 2.0 (see CalibratedTimeModel); the same
  exponent then predicts all-conv at ~10.6 min vs the measured 11 min.

Accuracy anchors:

* baseline Top-5 ~= 80%, Top-1 ~= 55% (Figures 6, 8, 9);
* sweet spots: conv1 knee at 30%, conv2-conv5 at 50% (Section 4.3.1);
* conv1 Top-5 falls to 0% at 90% prune; conv2-5 fall to ~25% (Obs. 2);
* interaction: conv1-2 combo costs 10 Top-5 points (80 -> 70, Figure 8),
  fixing eta_top5 = 10; all-conv is then predicted at 60% vs measured 62%.

Execution-time distribution (Figure 3, batched inference):
conv1 51%, conv2 16%, conv3 9%, conv4 10%, conv5 7%, everything else 7%.
"""

from __future__ import annotations

from repro.calibration.accuracy_model import AccuracyModel, AccuracyPair
from repro.calibration.curves import PiecewiseCurve
from repro.perf.latency import CalibratedTimeModel

__all__ = [
    "CAFFENET_TIME_SHARES",
    "CAFFENET_SWEET_SPOTS",
    "CAFFENET_BASELINE",
    "caffenet_time_model",
    "caffenet_accuracy_model",
    "CAFFENET_T0_MINUTES",
    "CAFFENET_IMAGES",
]

#: Figure 3: measured share of batched inference time per layer.
CAFFENET_TIME_SHARES: dict[str, float] = {
    "conv1": 0.51,
    "conv2": 0.16,
    "conv3": 0.09,
    "conv4": 0.10,
    "conv5": 0.07,
}

#: Section 4.3.1: last sweet spot (knee ratio) per convolution layer.
CAFFENET_SWEET_SPOTS: dict[str, float] = {
    "conv1": 0.3,
    "conv2": 0.5,
    "conv3": 0.5,
    "conv4": 0.5,
    "conv5": 0.5,
}

#: Unpruned accuracy (percent) — Figures 6/8/9 baselines.
CAFFENET_BASELINE = AccuracyPair(top1=55.0, top5=80.0)

#: Unpruned 50k-image inference time on one K80 (minutes) — Figure 6.
CAFFENET_T0_MINUTES = 19.0

#: The paper's inference set size.
CAFFENET_IMAGES = 50_000

#: Remaining-time fraction at 90% single-layer prune (Section 4.3.1:
#: conv1 19->16.6 min, conv2 19->14 min; conv3-5 from Figure 6 subplots).
_TIME_FRACTION_AT_90: dict[str, float] = {
    "conv1": 16.6 / 19.0,
    "conv2": 14.0 / 19.0,
    "conv3": 0.92,
    "conv4": 0.91,
    "conv5": 0.935,
}

#: Top-5 percentage points lost at 90% single-layer prune (Obs. 2:
#: conv1 falls 80 -> 0; the rest fall 80 -> ~25).
_TOP5_DROP_AT_90: dict[str, float] = {
    "conv1": 80.0,
    "conv2": 55.0,
    "conv3": 55.0,
    "conv4": 55.0,
    "conv5": 55.0,
}

#: Top-1 percentage points lost at 90% (same pattern, 55% baseline).
_TOP1_DROP_AT_90: dict[str, float] = {
    "conv1": 55.0,
    "conv2": 38.0,
    "conv3": 38.0,
    "conv4": 38.0,
    "conv5": 38.0,
}


def caffenet_time_model() -> CalibratedTimeModel:
    """The calibrated Caffenet inference-time model (see module docstring)."""
    from repro.perf.device import K80
    from repro.perf.latency import anchor_to_total_time

    curves = {
        layer: PiecewiseCurve.linear(0.0, 1.0, 0.9, frac)
        for layer, frac in _TIME_FRACTION_AT_90.items()
    }
    model = CalibratedTimeModel(
        name="caffenet",
        t_saturated_k80=CAFFENET_T0_MINUTES * 60.0 / CAFFENET_IMAGES,
        single_inference_s=0.09,
        time_curves=curves,
        synergy_gamma=2.0,
        floor_fraction=0.05 / 0.09,
        per_image_mb=5.0,
        model_mb=244.0,  # 61 M float32 parameters
        saturation_batch=300,
    )
    # pin the headline anchor exactly: 19 min for 50k images on one K80
    return anchor_to_total_time(
        model, CAFFENET_IMAGES, K80, CAFFENET_T0_MINUTES * 60.0
    )


def caffenet_accuracy_model() -> AccuracyModel:
    """The calibrated Caffenet accuracy model (see module docstring)."""
    top5_curves = {
        layer: PiecewiseCurve.flat_then_linear(
            knee_x=CAFFENET_SWEET_SPOTS[layer],
            end_x=0.9,
            start_y=0.0,
            end_y=_TOP5_DROP_AT_90[layer],
        )
        for layer in CAFFENET_SWEET_SPOTS
    }
    top1_curves = {
        layer: PiecewiseCurve.flat_then_linear(
            knee_x=CAFFENET_SWEET_SPOTS[layer],
            end_x=0.9,
            start_y=0.0,
            end_y=_TOP1_DROP_AT_90[layer],
        )
        for layer in CAFFENET_SWEET_SPOTS
    }
    return AccuracyModel(
        name="caffenet",
        baseline=CAFFENET_BASELINE,
        drop_curves_top1=top1_curves,
        drop_curves_top5=top5_curves,
        sweet_spots=CAFFENET_SWEET_SPOTS,
        eta_top1=7.0,
        eta_top5=10.0,
        default_knee=0.5,
        default_drop_scale=0.3,
    )

"""Tests for quantization and weight sharing (the paper's §2.1 alternatives)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnn import build_small_cnn
from repro.cnn.datasets import make_classification_data
from repro.cnn.training import SGDTrainer, evaluate_topk
from repro.errors import PruningError
from repro.pruning import QuantizationTuner, WeightSharingTuner
from repro.pruning.quantization import quantize_array, quantized_model_bytes
from repro.pruning.weight_sharing import share_weights, shared_model_bytes


class TestQuantizeArray:
    def test_one_bit_two_levels(self, rng):
        w = rng.standard_normal(1000).astype(np.float32)
        q = quantize_array(w, bits=1)
        assert np.unique(q).size <= 2

    def test_levels_bounded_by_bits(self, rng):
        w = rng.standard_normal(5000).astype(np.float32)
        q = quantize_array(w, bits=3)
        assert np.unique(q).size <= 8

    def test_high_bits_near_lossless(self, rng):
        w = rng.standard_normal(100).astype(np.float32)
        q = quantize_array(w, bits=16)
        np.testing.assert_allclose(q, w, atol=1e-3)

    def test_preserves_range(self, rng):
        w = rng.standard_normal(100).astype(np.float32)
        q = quantize_array(w, bits=4)
        assert q.min() == pytest.approx(w.min(), abs=1e-6)
        assert q.max() == pytest.approx(w.max(), abs=1e-6)

    def test_constant_array_unchanged(self):
        w = np.full((3, 3), 0.5, dtype=np.float32)
        np.testing.assert_array_equal(quantize_array(w, 2), w)

    def test_invalid_bits(self):
        w = np.zeros(4, dtype=np.float32)
        with pytest.raises(PruningError):
            quantize_array(w, 0)
        with pytest.raises(PruningError):
            quantize_array(w, 33)

    @given(st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_error_shrinks_with_bits(self, bits):
        rng = np.random.default_rng(0)
        w = rng.standard_normal(2000).astype(np.float32)
        err_lo = np.abs(quantize_array(w, bits) - w).max()
        err_hi = np.abs(quantize_array(w, bits + 1) - w).max()
        assert err_hi <= err_lo + 1e-7


class TestQuantizationTuner:
    def test_apply_clones_by_default(self, small_cnn):
        before = small_cnn.layer("fc1").weights.copy()
        QuantizationTuner(bits=2).apply(small_cnn)
        np.testing.assert_array_equal(
            small_cnn.layer("fc1").weights, before
        )

    def test_compression_ratio_scales_with_bits(self, small_cnn):
        r8 = QuantizationTuner(bits=8).compression_ratio(small_cnn)
        r4 = QuantizationTuner(bits=4).compression_ratio(small_cnn)
        assert r4 > r8 > 1.0

    def test_model_bytes_formula(self, small_cnn):
        n_weights = sum(
            l.weights.size for l in small_cnn.weighted_layers()
        )
        n_bias = sum(l.bias.size for l in small_cnn.weighted_layers())
        expected = n_weights + n_bias * 4 + 8 * len(
            small_cnn.weighted_layers()
        )
        assert quantized_model_bytes(small_cnn, 8) == expected

    def test_accuracy_degrades_gracefully(self, small_cnn):
        """8-bit quantization is near-lossless on a trained model;
        1-bit is destructive — the accuracy/memory trade the paper
        describes."""
        data = make_classification_data(n=200, num_classes=5, seed=5)
        SGDTrainer(small_cnn, lr=0.03).fit(data, epochs=8, batch_size=25)
        base = evaluate_topk(small_cnn, data, k=1)
        q8 = evaluate_topk(
            QuantizationTuner(8).apply(small_cnn), data, k=1
        )
        q1 = evaluate_topk(
            QuantizationTuner(1).apply(small_cnn), data, k=1
        )
        assert base > 0.5
        assert q8 >= base - 0.05
        assert q1 < q8

    def test_invalid_bits_rejected(self):
        with pytest.raises(PruningError):
            QuantizationTuner(bits=0)


class TestShareWeights:
    def test_cluster_count_bound(self, rng):
        w = rng.standard_normal(3000).astype(np.float32)
        shared = share_weights(w, clusters=8)
        assert np.unique(shared).size <= 8

    def test_centroids_represent_values(self, rng):
        w = rng.standard_normal(3000).astype(np.float32)
        shared = share_weights(w, clusters=16)
        # k-means with quantile seeding: small mean displacement
        assert np.abs(shared - w).mean() < 0.15

    def test_degenerate_input_unchanged(self):
        w = np.array([1.0, 1.0, 2.0], dtype=np.float32)
        np.testing.assert_array_equal(share_weights(w, 4), w)

    def test_shape_preserved(self, rng):
        w = rng.standard_normal((8, 4, 3, 3)).astype(np.float32)
        assert share_weights(w, 4).shape == w.shape

    def test_invalid_clusters(self, rng):
        with pytest.raises(PruningError):
            share_weights(np.zeros(10, dtype=np.float32), 1)

    @given(st.integers(2, 64))
    @settings(max_examples=15, deadline=None)
    def test_more_clusters_less_error(self, clusters):
        rng = np.random.default_rng(3)
        w = rng.standard_normal(2000).astype(np.float32)
        err = np.abs(share_weights(w, clusters) - w).mean()
        err2 = np.abs(share_weights(w, clusters * 2) - w).mean()
        assert err2 <= err + 1e-3


class TestWeightSharingTuner:
    def test_apply(self, small_cnn):
        shared = WeightSharingTuner(clusters=16).apply(small_cnn)
        for layer in shared.weighted_layers():
            assert np.unique(layer.weights).size <= 16

    def test_compression_ratio(self, small_cnn):
        tuner = WeightSharingTuner(clusters=16)  # 4-bit indices
        ratio = tuner.compression_ratio(small_cnn)
        assert ratio > 4.0  # ~8x for weight-dominated layers

    def test_shared_bytes_smaller_than_dense(self, small_cnn):
        dense = sum(
            (l.weights.size + l.bias.size) * 4
            for l in small_cnn.weighted_layers()
        )
        assert shared_model_bytes(small_cnn, 16) < dense

    def test_forward_still_works(self, small_cnn, rng):
        shared = WeightSharingTuner(clusters=32).apply(small_cnn)
        x = rng.standard_normal((2, 1, 16, 16)).astype(np.float32)
        out = shared.forward(x)
        assert out.shape == (2, 5)
        assert np.isfinite(out).all()

    def test_labels(self):
        assert QuantizationTuner(4).label() == "quant@4bit"
        assert WeightSharingTuner(16).label() == "share@16"

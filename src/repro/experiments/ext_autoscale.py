"""Extension: static vs autoscaled fleets — elasticity meets accuracy.

The paper's evaluation allocates statically; its related work (Section
2.2) is all about elastic scaling.  This experiment serves a three-phase
load (quiet -> 9x surge -> quiet) three ways:

* a **static peak** fleet sized for the surge (the paper's allocation
  style — meets the SLO always, pays for the peak always);
* a **reactive autoscaler** on the unpruned model (pays for what it
  uses, but the scale-out lag during the surge punishes tail latency);
* the **autoscaler on the sweet-spot pruned model** — faster batches
  both drain the backlog quicker *and* need fewer instances, so pruning
  buys back most of the latency the elasticity costs.

The cost/latency triangle the table shows is the paper's cost-accuracy
trade extended with the elasticity axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.calibration.caffenet import (
    caffenet_accuracy_model,
    caffenet_time_model,
)
from repro.cloud.catalog import instance_type
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.instance import CloudInstance
from repro.experiments.report import format_table
from repro.pruning.base import PruneSpec
from repro.serving.arrivals import poisson_arrivals
from repro.serving.autoscaler import AutoscalePolicy, AutoscalingSimulator
from repro.serving.batcher import BatchPolicy
from repro.serving.simulator import ServingSimulator

__all__ = ["AutoscaleRow", "AutoscaleStudy", "run", "render"]

_SWEET_SPOT = PruneSpec({"conv1": 0.3, "conv2": 0.5})


@dataclass(frozen=True)
class AutoscaleRow:
    name: str
    cost: float
    p99_s: float
    mean_fleet: float
    peak_fleet: int
    top5: float


@dataclass(frozen=True)
class AutoscaleStudy:
    rows: tuple[AutoscaleRow, ...]

    def row(self, name: str) -> AutoscaleRow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)


def _three_phase_load(
    base: float, surge: float, phase_s: float, seed: int
) -> np.ndarray:
    quiet1 = poisson_arrivals(base, phase_s, seed=seed)
    heavy = phase_s + poisson_arrivals(surge, phase_s, seed=seed + 1)
    quiet2 = 2 * phase_s + poisson_arrivals(base, phase_s, seed=seed + 2)
    return np.concatenate([quiet1, heavy, quiet2])


@lru_cache(maxsize=1)
def run(
    base_rate: float = 100.0,
    surge_rate: float = 900.0,
    phase_s: float = 100.0,
    peak_fleet: int = 8,
    seed: int = 5,
) -> AutoscaleStudy:
    arrivals = _three_phase_load(base_rate, surge_rate, phase_s, seed)
    itype = instance_type("p2.8xlarge")
    policy = BatchPolicy(max_batch=32, max_wait_s=0.05)
    autoscale = AutoscalePolicy(
        interval_s=10.0,
        min_instances=1,
        max_instances=peak_fleet,
        boot_delay_s=15.0,
    )
    tm, am = caffenet_time_model(), caffenet_accuracy_model()
    rows = []

    static = ServingSimulator(
        tm,
        am,
        ResourceConfiguration(
            [CloudInstance(itype) for _ in range(peak_fleet)]
        ),
        PruneSpec.unpruned(),
        policy,
    ).run(arrivals)
    rows.append(
        AutoscaleRow(
            name="static peak fleet",
            cost=static.cost,
            p99_s=static.p99,
            mean_fleet=float(peak_fleet),
            peak_fleet=peak_fleet,
            top5=static.accuracy.top5,
        )
    )

    for name, spec in (
        ("autoscaled, unpruned", PruneSpec.unpruned()),
        ("autoscaled, conv1-2 pruned", _SWEET_SPOT),
    ):
        report = AutoscalingSimulator(
            tm, am, itype, spec, policy, autoscale
        ).run(arrivals)
        rows.append(
            AutoscaleRow(
                name=name,
                cost=report.cost,
                p99_s=report.p99,
                mean_fleet=report.mean_instances,
                peak_fleet=report.peak_instances,
                top5=am.accuracy(spec).top5,
            )
        )
    return AutoscaleStudy(rows=tuple(rows))


def render(result: AutoscaleStudy | None = None) -> str:
    result = result or run()
    table = format_table(
        ["Deployment", "Cost ($)", "p99 (s)", "mean fleet", "peak", "Top-5"],
        [
            (
                r.name,
                f"{r.cost:.3f}",
                f"{r.p99_s:.2f}",
                f"{r.mean_fleet:.2f}",
                r.peak_fleet,
                f"{r.top5:.0f}%",
            )
            for r in result.rows
        ],
    )
    static = result.row("static peak fleet")
    pruned = result.row("autoscaled, conv1-2 pruned")
    return (
        table
        + f"\nautoscaling + sweet-spot pruning costs "
        f"{pruned.cost / static.cost:.0%} of the static peak fleet"
        f" (p99 {pruned.p99_s:.1f}s vs {static.p99_s:.1f}s)"
    )

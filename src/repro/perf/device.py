"""GPU device models for the two accelerators in the paper's Table 3.

``K80`` (Kepler GK210, p2 instances) and ``M60`` (Maxwell GM204, g3
instances) carry their public hardware specifications plus one calibrated
quantity: ``inference_speedup`` — per-GPU CNN inference throughput relative
to the K80.  The paper never states it directly, but its Figure 12 CAR
values (p2 ≈ $0.57, g3 ≈ $0.35 per unit accuracy, with p2 costing
$0.90/GPU-h and g3 $1.14/GPU-h) imply

    t_K80 / t_M60 = (CAR_p2 / CAR_g3) x (price_g3 / price_p2)
                  = (0.57 / 0.35) x (1.14 / 0.90) ~= 2.06

i.e. the newer M60 delivers roughly twice the inference throughput per
GPU, which matches its higher clocks and single-precision efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUDevice", "K80", "M60", "DEVICE_BY_NAME"]


@dataclass(frozen=True)
class GPUDevice:
    """One physical (virtualised) GPU.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"NVIDIA K80"``.
    cuda_cores:
        Parallel cores — the paper quotes 2496 (K80) and 2048 (M60).
    memory_gb:
        Device memory per GPU, bounds the maximum inference batch.
    bandwidth_gbs:
        Peak memory bandwidth (GB/s), the roofline memory ceiling.
    peak_gflops:
        Peak single-precision GFLOP/s, the roofline compute ceiling.
    inference_speedup:
        Calibrated CNN-inference throughput relative to the K80
        (see module docstring).
    """

    name: str
    cuda_cores: int
    memory_gb: float
    bandwidth_gbs: float
    peak_gflops: float
    inference_speedup: float = 1.0

    def max_batch(self, per_image_mb: float, model_mb: float = 0.0) -> int:
        """Largest inference batch fitting in device memory.

        The paper's symbol ``b_i`` — "max parallel inference (batch size)
        of i" (Table 2).  A fixed 10% of memory is reserved for runtime
        overheads, mirroring framework allocator headroom.
        """
        if per_image_mb <= 0:
            raise ValueError("per_image_mb must be positive")
        usable_mb = self.memory_gb * 1024 * 0.9 - model_mb
        return max(1, int(usable_mb / per_image_mb))


#: Kepler GK210 (one of the two dies on a K80 board) — p2 instances.
K80 = GPUDevice(
    name="NVIDIA K80",
    cuda_cores=2496,
    memory_gb=12.0,
    bandwidth_gbs=240.0,
    peak_gflops=2800.0,
    inference_speedup=1.0,
)

#: Maxwell GM204 — g3 instances.
M60 = GPUDevice(
    name="NVIDIA M60",
    cuda_cores=2048,
    memory_gb=8.0,
    bandwidth_gbs=160.0,
    peak_gflops=4800.0,
    inference_speedup=2.06,
)

DEVICE_BY_NAME: dict[str, GPUDevice] = {"K80": K80, "M60": M60}

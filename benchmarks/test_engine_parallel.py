"""Benchmark: serial vs parallel experiment-engine wall time.

Times the same artefact selection through ``run_experiments`` with
``jobs=1`` and ``jobs=4`` (cache off, so both runs do real work) and
asserts the parallel run is no slower than serial beyond scheduling
noise — the speedup itself depends on host core count, so only the
regression direction is asserted, and both wall times are recorded by
pytest-benchmark for comparison across commits.
"""

from __future__ import annotations

import time

from repro.experiments.engine import run_experiments

#: artefacts heavy enough to amortise process start-up, light enough
#: for a benchmark suite.
SELECTION = ("table1", "fig4", "fig5", "fig8", "fig11", "fig12")


def _run(jobs: int):
    return run_experiments(
        SELECTION,
        jobs=jobs,
        use_cache=False,
        cache_dir=None,
        write_manifest=False,
    )


def test_engine_serial(benchmark):
    run = benchmark.pedantic(_run, args=(1,), rounds=1, iterations=1)
    assert all(r.ok for r in run.results)


def test_engine_parallel_no_slower_than_serial(benchmark):
    t0 = time.perf_counter()
    serial = _run(1)
    serial_s = time.perf_counter() - t0

    parallel = benchmark.pedantic(
        _run, args=(4,), rounds=1, iterations=1
    )
    parallel_s = parallel.manifest.wall_s

    assert [r.text for r in parallel.results] == [
        r.text for r in serial.results
    ]
    # allow generous head-room for fork + import overhead on small hosts
    assert parallel_s < serial_s * 1.5 + 2.0

"""Amazon EC2 cloud substrate: catalog, pricing, configurations, simulator.

Everything the paper's Table 3 and Section 3.4 equations describe:

* :mod:`repro.cloud.catalog` — the six GPU instance types (Table 3);
* :mod:`repro.cloud.pricing` — hourly prices pro-rated to the second;
* :mod:`repro.cloud.instance` — an allocated instance with its virtual
  GPUs and per-GPU batch capacity;
* :mod:`repro.cloud.configuration` — a resource configuration *R* (a
  multiset of instances) with workload distribution (Eq. 4), makespan
  (Eq. 2-3) and cost (Eq. 1);
* :mod:`repro.cloud.simulator` — runs a (pruned CNN, W images) job on a
  configuration, producing time/cost/accuracy records;
* :mod:`repro.cloud.faults` — seeded preemption/slowdown schedules and
  retry/timeout policy for unreliable (spot) capacity.
"""

from repro.cloud.catalog import (
    EC2_CATALOG,
    G3_TYPES,
    P2_TYPES,
    InstanceType,
    instance_type,
)
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.faults import FaultPlan, Preemption, Slowdown
from repro.cloud.instance import CloudInstance
from repro.cloud.pricing import (
    DEFAULT_SPOT_DISCOUNT,
    billed_cost,
    billed_seconds,
    spot_cost,
    spot_rate,
)
from repro.cloud.simulator import CloudSimulator, SimulationResult

__all__ = [
    "CloudInstance",
    "CloudSimulator",
    "DEFAULT_SPOT_DISCOUNT",
    "EC2_CATALOG",
    "FaultPlan",
    "G3_TYPES",
    "InstanceType",
    "P2_TYPES",
    "Preemption",
    "ResourceConfiguration",
    "SimulationResult",
    "Slowdown",
    "billed_cost",
    "billed_seconds",
    "instance_type",
    "spot_cost",
    "spot_rate",
]

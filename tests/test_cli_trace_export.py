"""Tests for the CLI ``trace`` and ``export`` subcommands."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestTraceCommand:
    def test_even_split_shows_straggler(self, capsys):
        code = main(
            [
                "trace",
                "--instances",
                "p2.xlarge",
                "g3.16xlarge",
                "--images",
                "1000000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "straggler" in out
        assert "p2.xlarge" in out

    def test_proportional_flag_balances(self, capsys):
        code = main(
            [
                "trace",
                "--instances",
                "p2.xlarge",
                "g3.16xlarge",
                "--images",
                "1000000",
                "--proportional",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # balanced split: both instances essentially fully busy
        assert "mean utilisation 99%" in out or "mean utilisation 100%" in out

    def test_pruned_trace(self, capsys):
        code = main(
            [
                "trace",
                "--instances",
                "p2.xlarge",
                "--spec",
                "conv2=0.5",
                "--images",
                "50000",
            ]
        )
        assert code == 0
        assert "makespan" in capsys.readouterr().out


class TestExportCommand:
    def test_export_selected(self, tmp_path, capsys):
        code = main(["export", str(tmp_path), "table3", "fig8"])
        assert code == 0
        assert (tmp_path / "table3.txt").exists()
        assert (tmp_path / "fig8.csv").exists()
        manifest = json.loads((tmp_path / "index.json").read_text())
        assert len(manifest) == 2

    def test_export_unknown_artefact(self, tmp_path, capsys):
        code = main(["export", str(tmp_path), "fig99"])
        assert code == 2
        assert "unknown" in capsys.readouterr().err

"""Tests for the batch-width/latency trade study and autoscaler fuzzing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import ext_batch_policy


class TestBatchPolicyStudy:
    @pytest.fixture(scope="class")
    def study(self):
        ext_batch_policy.run.cache_clear()
        return ext_batch_policy.run(
            rate_per_s=400.0, duration_s=40.0, instances=3
        )

    def test_width_one_overloads(self, study):
        # unbatched serving cannot keep up: p99 explodes
        assert study.point(1).p99_s > 5 * study.point(8).p99_s

    def test_u_shape_minimum_interior(self, study):
        best = study.best_width()
        widths = [p.max_batch for p in study.points]
        assert best not in (widths[0], widths[-1])

    def test_wide_batches_floor_latency(self, study):
        # each dispatched batch's own service time lower-bounds p50
        for p in study.points:
            if p.mean_batch >= p.max_batch * 0.9:  # batches run full
                assert p.p50_s >= p.single_batch_service_s * 0.5

    def test_service_time_grows_with_width(self, study):
        services = [p.single_batch_service_s for p in study.points]
        assert services == sorted(services)

    def test_render(self, study):
        assert "best p99" in ext_batch_policy.render(study)


class TestAutoscalerFuzz:
    """Property-based stress: random loads and policies never violate
    the autoscaler's invariants."""

    @given(
        rate=st.floats(20.0, 400.0),
        min_i=st.integers(1, 3),
        extra=st.integers(0, 5),
        boot=st.floats(0.0, 30.0),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=12, deadline=None)
    def test_invariants(self, rate, min_i, extra, boot, seed):
        from repro.calibration import (
            caffenet_accuracy_model,
            caffenet_time_model,
        )
        from repro.cloud import instance_type
        from repro.pruning import PruneSpec
        from repro.serving import BatchPolicy, poisson_arrivals
        from repro.serving.autoscaler import (
            AutoscalePolicy,
            AutoscalingSimulator,
        )

        arrivals = poisson_arrivals(rate, 30.0, seed=seed)
        simulator = AutoscalingSimulator(
            caffenet_time_model(),
            caffenet_accuracy_model(),
            instance_type("p2.8xlarge"),
            PruneSpec.unpruned(),
            BatchPolicy(max_batch=32, max_wait_s=0.05),
            AutoscalePolicy(
                interval_s=5.0,
                min_instances=min_i,
                max_instances=min_i + extra,
                boot_delay_s=boot,
            ),
        )
        report = simulator.run(arrivals)
        # every request served exactly once, positive latency
        assert report.requests == arrivals.size
        assert np.all(report.latencies_s > 0)
        # fleet bounds respected
        counts = [n for _, n in report.fleet_timeline]
        assert max(counts) <= min_i + extra
        assert min(counts) >= min_i
        # billing is positive and bounded by max fleet running always
        upper = (
            (min_i + extra)
            * instance_type("p2.8xlarge").price_per_hour
            * (report.duration_s + 1)
            / 3600.0
        ) + (min_i + extra) / 3600.0
        assert 0 < report.cost <= upper + 0.01

"""Accuracy-response model: per-layer sweet-spot curves + interaction.

Single-layer behaviour (paper Figures 6, 7) is a *sweet spot*: Top-1 and
Top-5 accuracy stay at the unpruned baseline until a layer-specific knee
ratio, then decline.  Each layer gets one calibrated drop curve per
metric (percentage points lost as a function of prune ratio).

Multi-layer behaviour (paper Figure 8 and Section 4.3.2) shows an
*interaction*: combining layers pruned *within* their individual sweet
spots still costs accuracy (conv1@30 + conv2@50 individually cost ~0
points each but 10 Top-5 points together).  We model this with a latent
damage term: each pruned layer contributes ``q_l = p_l / knee_l`` of
normalised stress, and the visible interaction penalty is

    I = eta * sqrt(max(0, sum q_l^2 - max q_l^2))

i.e. the excess latent damage beyond the single most-stressed layer.
By construction single-layer sweeps are untouched (``I = 0``), the
conv1-2 anchor fixes ``eta`` (10 Top-5 points), and the all-conv anchor
is then predicted at ~20 points vs the paper's measured 18.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.calibration.curves import PiecewiseCurve
from repro.errors import CalibrationError
from repro.pruning.base import PruneSpec

__all__ = ["AccuracyPair", "AccuracyModel"]


@dataclass(frozen=True)
class AccuracyPair:
    """Top-1 / Top-5 accuracy in percent (the paper's two metrics)."""

    top1: float
    top5: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.top1 <= 100.0 and 0.0 <= self.top5 <= 100.0):
            raise CalibrationError(
                f"accuracy out of range: {self.top1}, {self.top5}"
            )

    @property
    def top1_fraction(self) -> float:
        """Top-1 as the a in [0, 1] used by TAR/CAR (paper Section 3.5)."""
        return self.top1 / 100.0

    @property
    def top5_fraction(self) -> float:
        return self.top5 / 100.0

    def get(self, metric: str) -> float:
        if metric == "top1":
            return self.top1
        if metric == "top5":
            return self.top5
        raise KeyError(f"unknown accuracy metric {metric!r}")


@dataclass(frozen=True)
class AccuracyModel:
    """Calibrated accuracy response of one CNN to degrees of pruning.

    Attributes
    ----------
    name:
        CNN name.
    baseline:
        Unpruned Top-1/Top-5 accuracy.
    drop_curves_top1, drop_curves_top5:
        Per-layer curves mapping prune ratio to percentage points lost
        (0 inside the sweet spot).
    sweet_spots:
        Per-layer knee ratio ``knee_l`` (the "last sweet spot").
    eta_top1, eta_top5:
        Interaction strength in percentage points (see module docstring).
    default_knee, default_drop_scale:
        Response for layers without dedicated calibration (deep
        Googlenet inception convs): knee at ``default_knee``, end drop
        equal to ``default_drop_scale`` x the baseline.
    """

    name: str
    baseline: AccuracyPair
    drop_curves_top1: Mapping[str, PiecewiseCurve]
    drop_curves_top5: Mapping[str, PiecewiseCurve]
    sweet_spots: Mapping[str, float]
    eta_top1: float
    eta_top5: float
    default_knee: float = 0.5
    default_drop_scale: float = 0.3

    # ------------------------------------------------------------------
    def fingerprint(self) -> tuple:
        """Content-based identity for cross-instance cache keying.

        Mirrors :meth:`CalibratedTimeModel.fingerprint`: the model holds
        unhashable curve mappings and constructors return fresh instances
        per call, so value-equal models must key caches by their content
        (scalars plus every curve's anchor points).
        """

        def _curves(mapping) -> tuple:
            return tuple(
                (layer, tuple(map(tuple, curve.points)))
                for layer, curve in sorted(mapping.items())
            )

        return (
            self.name,
            (self.baseline.top1, self.baseline.top5),
            _curves(self.drop_curves_top1),
            _curves(self.drop_curves_top5),
            tuple(sorted(self.sweet_spots.items())),
            self.eta_top1,
            self.eta_top5,
            self.default_knee,
            self.default_drop_scale,
        )

    def knee(self, layer: str) -> float:
        """Last sweet-spot ratio for ``layer``."""
        return self.sweet_spots.get(layer, self.default_knee)

    def _drop(self, layer: str, ratio: float, metric: str) -> float:
        curves = (
            self.drop_curves_top1 if metric == "top1" else self.drop_curves_top5
        )
        curve = curves.get(layer)
        if curve is not None:
            return float(curve(ratio))
        # default sweet-spot response for uncalibrated layers
        base = self.baseline.get(metric)
        knee = self.default_knee
        if ratio <= knee:
            return 0.0
        end_drop = self.default_drop_scale * base
        return end_drop * (ratio - knee) / (0.9 - knee)

    def _interaction(self, spec: PruneSpec, eta: float) -> float:
        if len(spec.ratios) < 2:
            return 0.0
        q2 = np.array(
            [
                (ratio / self.knee(layer)) ** 2
                for layer, ratio in spec.ratios
            ]
        )
        excess = q2.sum() - q2.max()
        return eta * float(np.sqrt(excess)) if excess > 0 else 0.0

    # ------------------------------------------------------------------
    def accuracy(self, spec: PruneSpec) -> AccuracyPair:
        """Predicted Top-1/Top-5 accuracy under ``spec``."""
        top1 = self.baseline.top1
        top5 = self.baseline.top5
        for layer, ratio in spec.ratios:
            top1 -= self._drop(layer, ratio, "top1")
            top5 -= self._drop(layer, ratio, "top5")
        top1 -= self._interaction(spec, self.eta_top1)
        top5 -= self._interaction(spec, self.eta_top5)
        return AccuracyPair(
            top1=float(np.clip(top1, 0.0, 100.0)),
            top5=float(np.clip(top5, 0.0, 100.0)),
        )

    def is_within_sweet_spot(
        self, spec: PruneSpec, tolerance_points: float = 0.5
    ) -> bool:
        """True when ``spec`` costs at most ``tolerance_points`` Top-5."""
        return (
            self.baseline.top5 - self.accuracy(spec).top5
        ) <= tolerance_points

"""The serving event loop and its report.

Each GPU of each instance in the configuration is one worker; service
time for a batch of ``b`` requests comes from the calibrated batching
model (``batch_time(b)``), so all the paper's machinery — pruning's time
fraction, device speedups, batch-size saturation — shapes the latency
distribution.  Billing is per-second pro-rated from simulation start to
the last completion, on every instance (the paper's Eq. 1 discipline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.calibration.accuracy_model import AccuracyModel, AccuracyPair
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.pricing import hourly_rate_cost
from repro.errors import ConfigurationError
from repro.perf.batching import BatchingModel
from repro.perf.latency import CalibratedTimeModel
from repro.pruning.base import PruneSpec
from repro.serving.batcher import BatchPolicy, PendingQueue
from repro.serving.events import EventQueue

__all__ = ["ServingSimulator", "ServingReport"]


@dataclass(frozen=True)
class ServingReport:
    """Outcome of one serving simulation."""

    requests: int
    duration_s: float
    latencies_s: np.ndarray
    batch_sizes: np.ndarray
    busy_s: float
    worker_count: int
    cost: float
    accuracy: AccuracyPair

    # ------------------------------------------------------------------
    def latency_percentile(self, q: float) -> float:
        """Latency percentile in seconds (q in [0, 100])."""
        return float(np.percentile(self.latencies_s, q))

    @property
    def p50(self) -> float:
        return self.latency_percentile(50)

    @property
    def p99(self) -> float:
        return self.latency_percentile(99)

    @property
    def mean_latency(self) -> float:
        return float(self.latencies_s.mean())

    @property
    def mean_batch(self) -> float:
        return float(self.batch_sizes.mean())

    @property
    def throughput(self) -> float:
        """Served requests per second of simulated time."""
        return self.requests / self.duration_s

    @property
    def utilisation(self) -> float:
        """Busy fraction across all workers over the run."""
        return self.busy_s / (self.worker_count * self.duration_s)

    def miss_rate(self, slo_s: float) -> float:
        """Fraction of requests exceeding a latency SLO."""
        return float((self.latencies_s > slo_s).mean())


class ServingSimulator:
    """Online inference serving over a cloud resource configuration.

    Parameters
    ----------
    time_model, accuracy_model:
        Calibrated models of the CNN being served.
    configuration:
        Instances whose GPUs form the worker pool.
    spec:
        Degree of pruning of the deployed model.
    policy:
        Batch-forming policy; ``max_batch`` is clamped to each device's
        memory-limited batch size.
    """

    def __init__(
        self,
        time_model: CalibratedTimeModel,
        accuracy_model: AccuracyModel,
        configuration: ResourceConfiguration,
        spec: PruneSpec,
        policy: BatchPolicy,
    ) -> None:
        if time_model.name != accuracy_model.name:
            raise ConfigurationError("time/accuracy model mismatch")
        self.time_model = time_model
        self.accuracy_model = accuracy_model
        self.configuration = configuration
        self.spec = spec
        self.policy = policy
        # one worker per GPU in use; each carries its batching model
        self._workers: list[tuple[BatchingModel, int]] = []
        for instance in configuration.instances:
            device = instance.itype.gpu
            batching = time_model.batching_model(spec, device)
            cap = min(policy.max_batch, time_model.max_batch(device))
            self._workers.extend(
                (batching, cap) for _ in range(instance.gpus_used)
            )

    # ------------------------------------------------------------------
    def run(self, arrivals: np.ndarray) -> ServingReport:
        """Serve all ``arrivals`` (sorted seconds); returns the report."""
        arrivals = np.asarray(arrivals, dtype=float)
        if arrivals.size == 0:
            raise ConfigurationError("no arrivals to serve")
        if np.any(np.diff(arrivals) < 0):
            raise ConfigurationError("arrivals must be sorted")

        events = EventQueue()
        for idx, t in enumerate(arrivals):
            events.push(float(t), "arrival", idx)

        pending = PendingQueue()
        free_workers = list(range(len(self._workers)))
        latencies = np.empty(arrivals.size)
        batch_sizes: list[int] = []
        busy_s = 0.0
        timer_at: float | None = None
        now = 0.0

        def dispatch(now: float) -> None:
            nonlocal busy_s, timer_at
            while free_workers and pending.should_dispatch(
                now, self.policy
            ):
                worker_id = free_workers.pop()
                batching, cap = self._workers[worker_id]
                batch = pending.take(cap)
                service = batching.batch_time(len(batch))
                busy_s += service
                batch_sizes.append(len(batch))
                events.push(
                    now + service, "done", (worker_id, batch)
                )
            if pending and free_workers:
                # waiting on max_wait: arm a timer for the oldest request
                due = pending.oldest_arrival() + self.policy.max_wait_s
                if timer_at is None or due < timer_at:
                    timer_at = due
                    events.push(max(due, now), "timer", None)

        while events:
            event = events.pop()
            now = event.time
            if event.kind == "arrival":
                pending.push(event.payload, now)
            elif event.kind == "done":
                worker_id, batch = event.payload
                free_workers.append(worker_id)
                for request_id, arrival_s in batch:
                    latencies[request_id] = now - arrival_s
            elif event.kind == "timer":
                timer_at = None
            dispatch(now)

        duration = now  # last completion time
        cost = hourly_rate_cost(
            self.configuration.total_price_per_hour, duration
        )
        return ServingReport(
            requests=arrivals.size,
            duration_s=duration,
            latencies_s=latencies,
            batch_sizes=np.asarray(batch_sizes),
            busy_s=busy_s,
            worker_count=len(self._workers),
            cost=cost,
            accuracy=self.accuracy_model.accuracy(self.spec),
        )

"""Execution traces for batch inference jobs.

The model's Equations 1-4 collapse a job to (T, C); operators debugging
a configuration want to see *where the time goes*: how the workload was
split, how many batches each instance ran, and how long each instance
idles waiting for the makespan-setting straggler.  :func:`trace_job`
expands a configuration evaluation into per-instance traces, and
:func:`render_gantt` draws them as an ASCII utilisation chart — which
makes the even-split straggler effect (the Eq. 4 artefact the split
ablation quantifies) directly visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.configuration import ResourceConfiguration
from repro.errors import ConfigurationError
from repro.perf.latency import CalibratedTimeModel
from repro.pruning.base import PruneSpec

__all__ = ["InstanceTrace", "JobTrace", "trace_job", "render_gantt"]


@dataclass(frozen=True)
class InstanceTrace:
    """One instance's share of a batch job."""

    label: str
    gpus_used: int
    images: int
    batch_width: int
    batches_per_gpu: int
    busy_s: float
    idle_s: float

    @property
    def utilisation(self) -> float:
        total = self.busy_s + self.idle_s
        return self.busy_s / total if total > 0 else 0.0


@dataclass(frozen=True)
class JobTrace:
    """A whole job: per-instance traces plus the makespan."""

    instances: tuple[InstanceTrace, ...]
    makespan_s: float
    straggler: str

    @property
    def mean_utilisation(self) -> float:
        return sum(t.utilisation for t in self.instances) / len(
            self.instances
        )

    @property
    def wasted_gpu_seconds(self) -> float:
        """Idle GPU-seconds billed because of the makespan coupling."""
        return sum(t.idle_s * t.gpus_used for t in self.instances)


def trace_job(
    time_model: CalibratedTimeModel,
    spec: PruneSpec,
    configuration: ResourceConfiguration,
    images: int,
    proportional_split: bool = False,
) -> JobTrace:
    """Expand one configuration evaluation into per-instance traces."""
    if images < 1:
        raise ConfigurationError("images must be >= 1")
    if proportional_split:
        allocation = configuration.split_workload_proportional(
            images, time_model, spec
        )
    else:
        allocation = configuration.split_workload(images)
    traces = []
    finish_times = []
    for instance, share in zip(configuration.instances, allocation):
        device = instance.itype.gpu
        per_gpu = -(-share // instance.gpus_used) if share else 0
        batch = max(1, min(time_model.max_batch(device), per_gpu or 1))
        n_batches = -(-per_gpu // batch) if per_gpu else 0
        busy = instance.inference_time(time_model, spec, share)
        finish_times.append(busy)
        traces.append(
            (instance, share, batch, n_batches, busy)
        )
    makespan = max(finish_times)
    out = []
    straggler = ""
    for (instance, share, batch, n_batches, busy), finish in zip(
        traces, finish_times
    ):
        label = str(instance)
        if finish == makespan and not straggler:
            straggler = label
        out.append(
            InstanceTrace(
                label=label,
                gpus_used=instance.gpus_used,
                images=share,
                batch_width=batch,
                batches_per_gpu=n_batches,
                busy_s=busy,
                idle_s=makespan - busy,
            )
        )
    return JobTrace(
        instances=tuple(out), makespan_s=makespan, straggler=straggler
    )


def render_gantt(trace: JobTrace, width: int = 50) -> str:
    """ASCII utilisation chart: '#' busy, '.' idle-until-makespan."""
    if trace.makespan_s <= 0:
        raise ConfigurationError("empty trace")
    label_width = max(len(t.label) for t in trace.instances)
    lines = []
    for t in trace.instances:
        busy_cols = int(round(width * t.busy_s / trace.makespan_s))
        bar = "#" * busy_cols + "." * (width - busy_cols)
        marker = "  <- straggler" if t.label == trace.straggler else ""
        lines.append(
            f"{t.label.ljust(label_width)} |{bar}| "
            f"{t.utilisation:4.0%} busy, {t.images} images{marker}"
        )
    lines.append(
        f"makespan {trace.makespan_s:.1f}s, mean utilisation "
        f"{trace.mean_utilisation:.0%}, wasted "
        f"{trace.wasted_gpu_seconds:.0f} GPU-seconds"
    )
    return "\n".join(lines)

"""Figure 11: time-accuracy of degrees of pruning, labelled with TAR.

Paper setup (Section 4.5.1): Caffenet on one p2.xlarge, conv1 swept
0-40% and conv2 swept 0-50% in 10% steps inside their sweet-spot regions
(a 5x6 grid of degrees), each point labelled with its TAR.  For any
accuracy, the degree with the lowest TAR is the one delivering that
accuracy in the least time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration.caffenet import (
    caffenet_accuracy_model,
    caffenet_time_model,
)
from repro.cloud.catalog import instance_type
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.instance import CloudInstance
from repro.core.evalspace import SpaceSpec, evaluate
from repro.experiments.report import format_table
from repro.pruning.schedule import multi_layer_grid

__all__ = ["Fig11Point", "Fig11Result", "run", "compute", "render"]

#: The grid of Figure 11: conv1 0-40%, conv2 0-50%, 10% increments.
CONV1_RATIOS = (0.0, 0.1, 0.2, 0.3, 0.4)
CONV2_RATIOS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


@dataclass(frozen=True)
class Fig11Point:
    label: str
    time_min: float
    top1: float
    top5: float
    tar_top1: float
    tar_top5: float


@dataclass(frozen=True)
class Fig11Result:
    points: tuple[Fig11Point, ...]

    def best_by_tar(self, metric: str = "top5") -> Fig11Point:
        key = (
            (lambda p: p.tar_top1)
            if metric == "top1"
            else (lambda p: p.tar_top5)
        )
        return min(self.points, key=key)


def run(images: int = 50_000) -> Fig11Result:
    degrees = multi_layer_grid(
        {"conv1": CONV1_RATIOS, "conv2": CONV2_RATIOS}
    )
    space = evaluate(
        SpaceSpec.build(
            caffenet_time_model(),
            caffenet_accuracy_model(),
            degrees,
            [ResourceConfiguration([CloudInstance(instance_type("p2.xlarge"))])],
            images,
        )
    )
    tar1 = space.tar("top1")
    tar5 = space.tar("top5")
    return Fig11Result(
        points=tuple(
            Fig11Point(
                label=degree.label,
                time_min=res.time_s / 60.0,
                top1=res.accuracy.top1,
                top5=res.accuracy.top5,
                tar_top1=float(tar1[i]),
                tar_top5=float(tar5[i]),
            )
            for i, (degree, res) in enumerate(zip(degrees, space.results))
        )
    )


def compute(images: int = 50_000) -> dict:
    """Structured data for Figure 11 (the TAR-labelled 5x6 grid)."""
    result = run(images)
    return {
        "images": images,
        "points": [
            {
                "label": p.label,
                "time_min": p.time_min,
                "top1": p.top1,
                "top5": p.top5,
                "tar_top1": p.tar_top1,
                "tar_top5": p.tar_top5,
            }
            for p in result.points
        ],
    }


def render(data: dict | Fig11Result | None = None) -> str:
    if data is None:
        data = compute()
    elif isinstance(data, Fig11Result):
        data = {
            "points": [
                {
                    "label": p.label,
                    "time_min": p.time_min,
                    "top1": p.top1,
                    "top5": p.top5,
                    "tar_top1": p.tar_top1,
                    "tar_top5": p.tar_top5,
                }
                for p in data.points
            ]
        }
    points = data["points"]
    rows = [
        (
            p["label"],
            f"{p['time_min']:.2f}",
            f"{p['top1']:.1f}",
            f"{p['top5']:.1f}",
            f"{p['tar_top1']:.3f}",
            f"{p['tar_top5']:.3f}",
        )
        for p in sorted(points, key=lambda p: -p["top5"])
    ]
    table = format_table(
        ["Degree", "Time (min)", "Top-1", "Top-5", "TAR(top1)", "TAR(top5)"],
        rows,
    )
    best = min(points, key=lambda p: p["tar_top5"])
    return (
        table
        + f"\nlowest TAR(top5): {best['label']} ({best['tar_top5']:.3f})"
    )

"""Request-scoped trace context: header codec, contextvar scoping,
thread behaviour, and the end-to-end client -> server -> handler ->
evalspace span tree the observability tentpole promises.

The cross-thread test is the load-bearing one: ``PlanningServer``
dispatches on ``ThreadingHTTPServer`` worker threads, where
contextvars do *not* propagate from the client — the server must
rebuild the context from the ``X-Repro-Trace`` header for the spans
to join up.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import PlanRequest, PlanningClient, clear_api_caches
from repro.obs import MetricsRegistry, Tracer, scoped_observability
from repro.obs.context import (
    TRACE_HEADER,
    TraceContext,
    activate,
    current_trace,
    new_trace_id,
)
from repro.obs.export import chrome_trace

SMALL = {
    "catalog": ("p2.16xlarge", "p2.8xlarge"),
    "instances_per_type": 2,
    "images": 1_000_000,
}


class TestHeaderCodec:
    def test_round_trip_with_parent(self):
        context = TraceContext("ab12cd34ef56ab78", parent_span_id=17)
        parsed = TraceContext.from_header(context.to_header())
        assert parsed == context

    def test_round_trip_without_parent(self):
        context = TraceContext(new_trace_id())
        parsed = TraceContext.from_header(context.to_header())
        assert parsed == context
        assert parsed.parent_span_id is None

    def test_child_reroots_parent_only(self):
        context = TraceContext("ab12cd34ef56ab78")
        child = context.child(5)
        assert child.trace_id == context.trace_id
        assert child.parent_span_id == 5
        assert context.parent_span_id is None  # frozen original

    @pytest.mark.parametrize(
        "garbage",
        [None, "", "   ", "not hex!", "zz-17", "ab12-xyz", "a-b-c-d"],
    )
    def test_garbage_headers_are_rejected_not_fatal(self, garbage):
        assert TraceContext.from_header(garbage) is None

    def test_new_trace_ids_are_distinct_hex(self):
        ids = {new_trace_id() for _ in range(32)}
        assert len(ids) == 32
        assert all(int(i, 16) >= 0 and len(i) == 16 for i in ids)


class TestActivation:
    def test_default_is_no_context(self):
        assert current_trace() is None

    def test_activate_scopes_and_restores(self):
        outer = TraceContext(new_trace_id())
        inner = TraceContext(new_trace_id(), parent_span_id=3)
        with activate(outer):
            assert current_trace() is outer
            with activate(inner):
                assert current_trace() is inner
            assert current_trace() is outer
        assert current_trace() is None

    def test_new_threads_start_blank(self):
        seen = []
        with activate(TraceContext(new_trace_id())):
            thread = threading.Thread(
                target=lambda: seen.append(current_trace())
            )
            thread.start()
            thread.join()
        assert seen == [None]


class TestTracerIntegration:
    def test_root_span_parents_onto_active_context(self):
        tracer = Tracer(enabled=True)
        context = TraceContext("ab12cd34ef56ab78", parent_span_id=41)
        with activate(context):
            with tracer.span("work") as span:
                pass
        assert span.parent_id == 41
        assert span.tags["trace_id"] == "ab12cd34ef56ab78"

    def test_nested_spans_keep_thread_stack_parentage(self):
        tracer = Tracer(enabled=True)
        with activate(TraceContext("ab12cd34ef56ab78", 41)):
            with tracer.span("outer") as outer:
                with tracer.span("inner") as inner:
                    pass
        assert outer.parent_id == 41
        assert inner.parent_id == outer.span_id

    def test_spans_without_context_have_no_trace_tag(self):
        tracer = Tracer(enabled=True)
        with tracer.span("plain") as span:
            pass
        assert span.parent_id is None
        assert "trace_id" not in span.tags

    def test_per_thread_stacks_do_not_interleave(self):
        tracer = Tracer(enabled=True)
        ready = threading.Barrier(2)
        spans = {}

        def worker(name):
            with tracer.span(name) as outer:
                ready.wait()
                with tracer.span(f"{name}.child") as child:
                    pass
            spans[name] = (outer, child)

        threads = [
            threading.Thread(target=worker, args=(n,))
            for n in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for name in ("a", "b"):
            outer, child = spans[name]
            assert outer.parent_id is None
            assert child.parent_id == outer.span_id


class TestEndToEndTree:
    @pytest.fixture()
    def tracer(self):
        clear_api_caches()
        return Tracer(enabled=True)

    def test_one_request_is_one_connected_tree(self, tracer):
        from repro.service import PlanningServer

        with scoped_observability(tracer, MetricsRegistry()):
            with PlanningServer(port=0) as server:
                client = PlanningClient(server.url)
                client.plan(
                    PlanRequest(target=78.0, deadline_h=6.0, **SMALL)
                )
        by_name = {s.name: s for s in tracer.spans}
        chain = [
            "client.request",
            "service.request",
            "api.plan",
            "evalspace.evaluate",
        ]
        assert set(chain) <= set(by_name)
        # one trace id across client and server threads
        trace_ids = {
            s.tags["trace_id"] for s in tracer.spans if s.name in chain
        }
        assert len(trace_ids) == 1
        # correct parentage link by link
        for parent, child in zip(chain, chain[1:]):
            assert by_name[child].parent_id == by_name[parent].span_id
        assert by_name["client.request"].parent_id is None
        assert by_name["service.request"].tags["status"] == 200

    def test_chrome_export_carries_the_shared_trace_id(self, tracer):
        from repro.service import PlanningServer

        with scoped_observability(tracer, MetricsRegistry()):
            with PlanningServer(port=0) as server:
                client = PlanningClient(server.url)
                client.plan(
                    PlanRequest(target=78.0, deadline_h=6.0, **SMALL)
                )
        document = chrome_trace(tracer)
        spans = [
            e
            for e in document["traceEvents"]
            if e.get("ph") == "X" and "trace_id" in e.get("args", {})
        ]
        assert len(spans) >= 4
        assert len({e["args"]["trace_id"] for e in spans}) == 1

    def test_client_header_travels_even_when_tracing_is_off(self):
        from repro.service import PlanningService

        captured = {}

        class SpyService(PlanningService):
            def dispatch(self, method, path, body=b"", headers=None):
                if headers is not None:
                    captured["header"] = headers.get(TRACE_HEADER)
                return super().dispatch(method, path, body, headers)

        from repro.service.server import PlanningServer

        server = PlanningServer(port=0)
        server.service = SpyService()
        server._http.service = server.service
        with server:
            client = PlanningClient(server.url)
            client.healthz()
        # default scope = disabled tracer: no span, but the trace id
        # header still travels (bare, no parent segment)
        context = TraceContext.from_header(captured["header"])
        assert context is not None
        assert context.parent_span_id is None

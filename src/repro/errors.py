"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch one type to handle any library-originated failure while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ShapeError",
    "ConfigurationError",
    "PruningError",
    "CalibrationError",
    "InfeasibleError",
    "MeasurementError",
    "UnknownArtefactError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """A tensor or layer was given data of an incompatible shape."""


class ConfigurationError(ReproError, ValueError):
    """A cloud resource configuration or catalog entry is invalid."""


class PruningError(ReproError, ValueError):
    """A pruning specification is invalid (bad ratio, unknown layer, ...)."""


class CalibrationError(ReproError, ValueError):
    """Calibration constants are missing or inconsistent for a model."""


class InfeasibleError(ReproError, RuntimeError):
    """No resource allocation satisfies the given deadline/budget."""


class MeasurementError(ReproError, RuntimeError):
    """A measurement run failed or produced no samples."""


class UnknownArtefactError(ReproError, KeyError):
    """An experiment selection named artefact ids that are not registered."""

    def __init__(self, unknown, available) -> None:
        self.unknown = tuple(unknown)
        self.available = tuple(available)
        super().__init__(
            f"unknown artefact ids {sorted(self.unknown)}; "
            f"available: {sorted(self.available)}"
        )

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]

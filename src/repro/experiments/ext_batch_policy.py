"""Extension: the batch-width/latency trade in online serving.

The paper's Figure 5 says *bigger batches are better* — true for batch
throughput, and exactly wrong for online tail latency: a full 128-wide
Caffenet batch takes ~3.7 s on a K80 by itself, so no fleet size can
meet a 2-second p99 at that width.  This study sweeps the batcher's
maximum width at a fixed fleet and load, exposing the U-shape:

* too narrow — the GPU runs far below its saturation knee, throughput
  starves, queues build;
* too wide — each dispatched batch is its own latency floor;
* the sweet spot sits where one batch's service time is a small
  fraction of the SLO while width still amortises the launch overhead.

This is the serving-side counterpart of Figure 5's saturation analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.calibration.caffenet import (
    caffenet_accuracy_model,
    caffenet_time_model,
)
from repro.cloud.catalog import instance_type
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.instance import CloudInstance
from repro.experiments.report import format_table
from repro.pruning.base import PruneSpec
from repro.serving.arrivals import poisson_arrivals
from repro.serving.batcher import BatchPolicy
from repro.serving.simulator import ServingSimulator

__all__ = ["BatchPolicyPoint", "BatchPolicyStudy", "run", "render"]

_WIDTHS = (1, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class BatchPolicyPoint:
    max_batch: int
    p50_s: float
    p99_s: float
    mean_batch: float
    utilisation: float
    single_batch_service_s: float


@dataclass(frozen=True)
class BatchPolicyStudy:
    rate_per_s: float
    points: tuple[BatchPolicyPoint, ...]

    def best_width(self) -> int:
        """Width with the lowest p99."""
        return min(self.points, key=lambda p: p.p99_s).max_batch

    def point(self, width: int) -> BatchPolicyPoint:
        for p in self.points:
            if p.max_batch == width:
                return p
        raise KeyError(width)


@lru_cache(maxsize=1)
def run(
    rate_per_s: float = 500.0,
    duration_s: float = 60.0,
    instances: int = 3,
    seed: int = 13,
) -> BatchPolicyStudy:
    arrivals = poisson_arrivals(rate_per_s, duration_s, seed=seed)
    tm, am = caffenet_time_model(), caffenet_accuracy_model()
    itype = instance_type("p2.8xlarge")
    config = ResourceConfiguration(
        [CloudInstance(itype) for _ in range(instances)]
    )
    batching = tm.batching_model(PruneSpec.unpruned(), itype.gpu)
    points = []
    for width in _WIDTHS:
        simulator = ServingSimulator(
            tm,
            am,
            config,
            PruneSpec.unpruned(),
            BatchPolicy(max_batch=width, max_wait_s=0.02),
        )
        report = simulator.run(arrivals)
        points.append(
            BatchPolicyPoint(
                max_batch=width,
                p50_s=report.p50,
                p99_s=report.p99,
                mean_batch=report.mean_batch,
                utilisation=report.utilisation,
                single_batch_service_s=batching.batch_time(width),
            )
        )
    return BatchPolicyStudy(rate_per_s=rate_per_s, points=tuple(points))


def render(result: BatchPolicyStudy | None = None) -> str:
    result = result or run()
    table = format_table(
        [
            "max batch",
            "p50 (s)",
            "p99 (s)",
            "mean width",
            "util",
            "one-batch service (s)",
        ],
        [
            (
                p.max_batch,
                f"{p.p50_s:.2f}",
                f"{p.p99_s:.2f}",
                f"{p.mean_batch:.1f}",
                f"{p.utilisation:.2f}",
                f"{p.single_batch_service_s:.2f}",
            )
            for p in result.points
        ],
    )
    return (
        f"{result.rate_per_s:.0f} req/s Poisson on 3x p2.8xlarge\n"
        + table
        + f"\nbest p99 at max batch = {result.best_width()} — wider pays "
        "its own service time as a latency floor, narrower starves "
        "throughput"
    )

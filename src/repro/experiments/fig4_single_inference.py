"""Figure 4: time for a single inference vs uniform prune ratio.

Paper result: pruning all convolution layers uniformly from 0% to 90%
drops a single Caffenet inference from 0.09 s to 0.05 s (about half) and
a single Googlenet inference from 0.16 s to 0.10 s (about a third off) —
evidence that "inference performance has not hit the wall".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration.caffenet import caffenet_time_model
from repro.calibration.googlenet import (
    GOOGLENET_SWEET_SPOTS,
    googlenet_time_model,
)
from repro.cnn.models import CAFFENET_CONV_LAYERS
from repro.experiments.report import format_table
from repro.perf.device import K80
from repro.pruning.base import PruneSpec
from repro.pruning.schedule import DEFAULT_RATIOS

__all__ = ["Fig4Result", "run", "render"]


@dataclass(frozen=True)
class Fig4Result:
    """Single-inference seconds per uniform prune ratio, both CNNs."""

    ratios: tuple[float, ...]
    caffenet_s: tuple[float, ...]
    googlenet_s: tuple[float, ...]

    @property
    def caffenet_reduction(self) -> float:
        return 1.0 - self.caffenet_s[-1] / self.caffenet_s[0]

    @property
    def googlenet_reduction(self) -> float:
        return 1.0 - self.googlenet_s[-1] / self.googlenet_s[0]


def run(ratios: tuple[float, ...] = DEFAULT_RATIOS) -> Fig4Result:
    caffe_tm = caffenet_time_model()
    google_tm = googlenet_time_model()
    google_layers = tuple(GOOGLENET_SWEET_SPOTS)
    caffe, google = [], []
    for r in ratios:
        caffe.append(
            caffe_tm.single_inference(
                PruneSpec.uniform(CAFFENET_CONV_LAYERS, r), K80
            )
        )
        google.append(
            google_tm.single_inference(
                PruneSpec.uniform(google_layers, r), K80
            )
        )
    return Fig4Result(
        ratios=tuple(ratios),
        caffenet_s=tuple(caffe),
        googlenet_s=tuple(google),
    )


def render(result: Fig4Result | None = None) -> str:
    result = result or run()
    rows = [
        (f"{r * 100:.0f}%", f"{c:.4f}", f"{g:.4f}")
        for r, c, g in zip(
            result.ratios, result.caffenet_s, result.googlenet_s
        )
    ]
    table = format_table(
        ["Prune ratio", "Caffenet (s)", "Googlenet (s)"], rows
    )
    return (
        table
        + f"\nCaffenet reduction: {result.caffenet_reduction * 100:.0f}%"
        + f" | Googlenet reduction: {result.googlenet_reduction * 100:.0f}%"
    )

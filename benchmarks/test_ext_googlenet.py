"""Benchmark: extension — Googlenet Pareto study over a mixed p2+g3 space.

The paper limits its configuration-space study to Caffenet on p2; this
extension confirms the Figure 12 implication at scale: every
cost-Pareto-optimal configuration is g3-based.
"""

from __future__ import annotations

from repro.experiments import ext_googlenet_pareto


def test_ext_googlenet_pareto(benchmark):
    ext_googlenet_pareto.run.cache_clear()
    result = benchmark.pedantic(
        ext_googlenet_pareto.run, rounds=1, iterations=1
    )
    assert result.cost_front_categories() == {"g3"}
    assert len(result.cost_front) >= 2

"""Tests for the planning queries and composite workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import caffenet_accuracy_model, caffenet_time_model
from repro.cloud import CloudSimulator, P2_TYPES
from repro.core.config_space import enumerate_configurations
from repro.core.planner import (
    PlanningSpace,
    iso_accuracy_frontier,
    min_budget_for,
    min_deadline_for,
)
from repro.errors import InfeasibleError
from repro.pruning import PruneSpec
from repro.pruning.schedule import DegreeOfPruning, single_layer_sweep
from repro.serving.workloads import (
    diurnal_arrivals,
    phase_rates,
    replay_trace,
)


@pytest.fixture(scope="module")
def space():
    simulator = CloudSimulator(
        caffenet_time_model(), caffenet_accuracy_model()
    )
    degrees = [DegreeOfPruning.of(PruneSpec.unpruned())] + (
        single_layer_sweep("conv2", [0.3, 0.5, 0.7])
    )
    configurations = enumerate_configurations(P2_TYPES, max_per_type=2)
    return PlanningSpace.evaluate(
        simulator, degrees, configurations, images=5_000_000
    )


class TestPlanner:
    def test_min_budget_meets_both_constraints(self, space):
        result = min_budget_for(
            space, target_accuracy=80.0, deadline_s=2 * 3600.0
        )
        assert result.accuracy.top5 >= 80.0
        assert result.time_s <= 2 * 3600.0

    def test_min_budget_is_minimal(self, space):
        best = min_budget_for(space, 80.0, 2 * 3600.0)
        for r in space.results:
            if r.accuracy.top5 >= 80.0 and r.time_s <= 2 * 3600.0:
                assert r.cost >= best.cost - 1e-9

    def test_tighter_deadline_costs_more(self, space):
        loose = min_budget_for(space, 80.0, 10 * 3600.0)
        tight = min_budget_for(space, 80.0, 1 * 3600.0)
        assert tight.cost >= loose.cost

    def test_min_deadline_respects_budget(self, space):
        result = min_deadline_for(space, 80.0, budget=30.0)
        assert result.cost <= 30.0
        assert result.accuracy.top5 >= 80.0

    def test_richer_budget_is_faster(self, space):
        poor = min_deadline_for(space, 80.0, budget=30.0)
        rich = min_deadline_for(space, 80.0, budget=200.0)
        assert rich.time_s <= poor.time_s

    def test_infeasible_raises(self, space):
        with pytest.raises(InfeasibleError):
            min_budget_for(space, 99.0, 3600.0)  # accuracy unreachable
        with pytest.raises(InfeasibleError):
            min_deadline_for(space, 80.0, budget=0.001)

    def test_iso_accuracy_frontier_trades_time_for_money(self, space):
        front = iso_accuracy_frontier(space, 80.0)
        assert len(front) >= 2
        times = [r.time_s for r in front]
        costs = [r.cost for r in front]
        # ordered by the filter: time increases as cost decreases
        assert times == sorted(times)
        assert costs == sorted(costs, reverse=True)

    def test_reachable_accuracy(self, space):
        assert space.reachable_accuracy() == pytest.approx(80.0)


class TestPlannerInfeasibleEdges:
    """Infeasible-target edge cases: messages, boundaries, empty sets."""

    def test_unreachable_target_message_names_constraint(self, space):
        with pytest.raises(
            InfeasibleError, match=r"99\.0% top5 within 3600s"
        ):
            min_budget_for(space, 99.0, 3600.0)
        with pytest.raises(
            InfeasibleError, match=r"99\.0% top5 within \$5\.00"
        ):
            min_deadline_for(space, 99.0, budget=5.0)

    def test_target_exactly_at_reachable_accuracy_is_feasible(self, space):
        target = space.reachable_accuracy()
        result = min_budget_for(space, target, deadline_s=100 * 3600.0)
        assert result.accuracy.top5 >= target

    def test_target_just_above_reachable_is_infeasible(self, space):
        target = space.reachable_accuracy() + 1e-6
        with pytest.raises(InfeasibleError):
            min_budget_for(space, target, deadline_s=100 * 3600.0)
        with pytest.raises(InfeasibleError):
            iso_accuracy_frontier(space, target)

    def test_reachable_accuracy_but_impossible_deadline(self, space):
        # the accuracy filter alone is non-empty; the deadline empties it
        with pytest.raises(InfeasibleError):
            min_budget_for(space, 80.0, deadline_s=1.0)

    def test_reachable_accuracy_but_zero_budget(self, space):
        with pytest.raises(InfeasibleError):
            min_deadline_for(space, 80.0, budget=0.0)

    def test_iso_frontier_unconstrained_by_time_or_money(self, space):
        # the frontier query has no (T', C') box: any reachable target
        # yields at least one point even when budgets would be absurd
        front = iso_accuracy_frontier(space, space.reachable_accuracy())
        assert len(front) >= 1
        assert all(
            r.accuracy.top5 >= space.reachable_accuracy() for r in front
        )


class TestWorkloads:
    def test_phase_rates_average_preserved(self):
        rates = phase_rates(100.0, 24, 0.7)
        assert rates.mean() == pytest.approx(100.0)
        assert rates.min() > 0

    def test_phase_rates_validation(self):
        with pytest.raises(ValueError):
            phase_rates(100.0, 24, 1.0)
        with pytest.raises(ValueError):
            phase_rates(100.0, 0, 0.5)

    def test_diurnal_mean_rate(self):
        arr = diurnal_arrivals(
            100.0, duration_s=400.0, cycle_s=200.0, seed=2
        )
        assert arr.size == pytest.approx(40_000, rel=0.1)
        assert np.all(np.diff(arr) >= 0)

    def test_diurnal_has_day_night_contrast(self):
        arr = diurnal_arrivals(
            100.0, duration_s=200.0, cycle_s=200.0, amplitude=0.9, seed=3
        )
        # first quarter (rising sine) should far out-arrive the third
        q = 50.0
        day = ((arr >= 0) & (arr < q)).sum()
        night = ((arr >= 2 * q) & (arr < 3 * q)).sum()
        assert day > 2 * night

    def test_diurnal_deterministic(self):
        a = diurnal_arrivals(50.0, 100.0, 50.0, seed=7)
        b = diurnal_arrivals(50.0, 100.0, 50.0, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_replay_trace_normalises(self):
        out = replay_trace([5.0, 3.0, 9.0], time_scale=0.5, offset_s=1.0)
        np.testing.assert_allclose(out, [1.0, 2.0, 4.0])

    def test_replay_validation(self):
        with pytest.raises(ValueError):
            replay_trace([])
        with pytest.raises(ValueError):
            replay_trace([1.0], time_scale=0.0)

    def test_autoscaler_follows_diurnal_load(self):
        """End-to-end: the fleet tracks the day-night cycle."""
        from repro.serving.autoscaler import (
            AutoscalePolicy,
            AutoscalingSimulator,
        )
        from repro.serving.batcher import BatchPolicy
        from repro.cloud import instance_type

        arrivals = diurnal_arrivals(
            250.0, duration_s=300.0, cycle_s=300.0, amplitude=0.8, seed=4
        )
        simulator = AutoscalingSimulator(
            caffenet_time_model(),
            caffenet_accuracy_model(),
            instance_type("p2.8xlarge"),
            PruneSpec.unpruned(),
            BatchPolicy(max_batch=32, max_wait_s=0.05),
            AutoscalePolicy(
                interval_s=10.0,
                min_instances=1,
                max_instances=6,
                boot_delay_s=10.0,
            ),
        )
        report = simulator.run(arrivals)
        assert report.peak_instances > 1
        assert report.mean_instances < report.peak_instances

"""Time Accuracy Ratio (TAR) and Cost Accuracy Ratio (CAR).

The paper's Section 3.5 defines

    TAR = t / a        CAR = c / a

with ``t, c in (0, inf)`` and ``a in [0, 1]``: the time (cost) needed to
achieve one unit of accuracy.  Lower is better for both.  The paper's
figures use hours for ``t`` and dollars for ``c``; these functions are
unit-agnostic but the library consistently passes hours/dollars.
"""

from __future__ import annotations

import numpy as np

__all__ = ["tar", "car", "tar_array", "car_array"]


def _ratio(value: float, accuracy: float, what: str) -> float:
    if value < 0:
        raise ValueError(f"{what} must be non-negative, got {value}")
    if not 0.0 < accuracy <= 1.0:
        raise ValueError(
            f"accuracy must be in (0, 1], got {accuracy} "
            "(a zero-accuracy configuration has no meaningful ratio)"
        )
    return value / accuracy


def tar(time: float, accuracy: float) -> float:
    """Time Accuracy Ratio: time per unit of accuracy (lower is better)."""
    return _ratio(time, accuracy, "time")


def car(cost: float, accuracy: float) -> float:
    """Cost Accuracy Ratio: cost per unit of accuracy (lower is better)."""
    return _ratio(cost, accuracy, "cost")


def tar_array(times: np.ndarray, accuracies: np.ndarray) -> np.ndarray:
    """Vectorised TAR; zero-accuracy entries map to ``inf``."""
    times = np.asarray(times, dtype=float)
    accuracies = np.asarray(accuracies, dtype=float)
    if np.any(times < 0):
        raise ValueError("times must be non-negative")
    if np.any(accuracies < 0) or np.any(accuracies > 1):
        raise ValueError("accuracies must be in [0, 1]")
    with np.errstate(divide="ignore"):
        out = np.where(accuracies > 0, times / np.maximum(accuracies, 1e-300), np.inf)
    return out


def car_array(costs: np.ndarray, accuracies: np.ndarray) -> np.ndarray:
    """Vectorised CAR; zero-accuracy entries map to ``inf``."""
    return tar_array(costs, accuracies)

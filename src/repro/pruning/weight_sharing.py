"""Weight sharing — the paper's second alternative accuracy knob.

Section 2.1: "weight sharing [1] is a technique to cluster parameters in
CNNs together based on a 'closeness' measure.  Multiple parameters that
have values close to each other would be reduced to one parameter.  This
also has a direct impact on the memory and storage usage of the CNN
rather than the execution time."

:class:`WeightSharingTuner` clusters each layer's weights into
``clusters`` groups with a 1-D Lloyd's (k-means) iteration seeded at
value quantiles, then replaces every weight by its cluster centroid.
Stored size becomes a per-layer codebook of centroids plus a
``log2(clusters)``-bit index per weight.  Execution time is unchanged,
matching the paper's observation.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass

import numpy as np

from repro.cnn.layers import DTYPE
from repro.cnn.network import Network
from repro.errors import PruningError

__all__ = ["WeightSharingTuner", "share_weights", "shared_model_bytes"]


def share_weights(
    weights: np.ndarray, clusters: int, iterations: int = 8
) -> np.ndarray:
    """Cluster values into ``clusters`` centroids (1-D k-means).

    Returns a float32 array with every entry replaced by its centroid.
    Degenerate layers (fewer distinct values than clusters) are
    returned unchanged.
    """
    if clusters < 2:
        raise PruningError(f"need >= 2 clusters, got {clusters}")
    flat = weights.ravel().astype(np.float64)
    if np.unique(flat).size <= clusters:
        return weights.astype(DTYPE, copy=True)
    # quantile seeding spreads centroids over the value distribution
    centroids = np.quantile(
        flat, np.linspace(0.0, 1.0, clusters)
    )
    for _ in range(iterations):
        # assign each weight to the nearest centroid via sorted bins
        order = np.argsort(centroids)
        centroids = centroids[order]
        edges = (centroids[:-1] + centroids[1:]) / 2.0
        assignment = np.searchsorted(edges, flat)
        sums = np.bincount(assignment, weights=flat, minlength=clusters)
        counts = np.bincount(assignment, minlength=clusters)
        occupied = counts > 0
        centroids[occupied] = sums[occupied] / counts[occupied]
    edges = (np.sort(centroids)[:-1] + np.sort(centroids)[1:]) / 2.0
    assignment = np.searchsorted(edges, flat)
    shared = np.sort(centroids)[assignment]
    return shared.reshape(weights.shape).astype(DTYPE)


def shared_model_bytes(network: Network, clusters: int) -> int:
    """Stored size: per-weight index + per-layer codebook + biases."""
    index_bits = max(1, math.ceil(math.log2(clusters)))
    total = 0
    for layer in network.weighted_layers():
        total += (layer.weights.size * index_bits + 7) // 8
        total += clusters * 4  # codebook (float32 centroids)
        total += layer.bias.size * 4
    return total


@dataclass(frozen=True)
class WeightSharingTuner:
    """Share weights across ``clusters`` centroids in every layer."""

    clusters: int
    iterations: int = 8

    def __post_init__(self) -> None:
        if self.clusters < 2:
            raise PruningError(
                f"need >= 2 clusters, got {self.clusters}"
            )

    def apply(self, network: Network, inplace: bool = False) -> Network:
        """Produce the weight-shared version of ``network``."""
        target = network if inplace else copy.deepcopy(network)
        for layer in target.weighted_layers():
            layer.weights[...] = share_weights(
                layer.weights, self.clusters, self.iterations
            )
        return target

    def model_bytes(self, network: Network) -> int:
        return shared_model_bytes(network, self.clusters)

    def compression_ratio(self, network: Network) -> float:
        dense = sum(
            (layer.weights.size + layer.bias.size) * 4
            for layer in network.weighted_layers()
        )
        return dense / self.model_bytes(network)

    def label(self) -> str:
        return f"share@{self.clusters}"

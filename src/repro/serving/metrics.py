"""Post-hoc analysis of serving runs.

:class:`ServingReport` carries raw latencies; operators want views:
per-second throughput series, a latency histogram, and the SLO-headroom
summary.  These are pure functions over the report, used by the CLI's
``serve`` output and the serving tests.
"""

from __future__ import annotations

import numpy as np

from repro.serving.simulator import ServingReport

__all__ = [
    "throughput_series",
    "latency_histogram",
    "render_histogram",
    "slo_headroom",
    "availability_summary",
]


def throughput_series(
    arrivals: np.ndarray, report: ServingReport, bin_s: float = 1.0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(bin starts, offered rate, completion rate) per time bin.

    Offered = arrivals per bin; completed = request completions per bin
    (arrival time + latency).  A persistent gap means the fleet is
    underwater.
    """
    if bin_s <= 0:
        raise ValueError("bin_s must be positive")
    if report.latencies_s.size != np.asarray(arrivals).size:
        raise ValueError(
            "throughput_series needs one latency per arrival; runs with "
            "dropped requests don't have that — use availability_summary"
        )
    completions = arrivals + report.latencies_s
    horizon = float(completions.max())
    edges = np.arange(0.0, horizon + bin_s, bin_s)
    offered, _ = np.histogram(arrivals, bins=edges)
    completed, _ = np.histogram(completions, bins=edges)
    return edges[:-1], offered / bin_s, completed / bin_s


def latency_histogram(
    report: ServingReport, bins: int = 12
) -> tuple[np.ndarray, np.ndarray]:
    """(bin edges, counts) over the latency distribution."""
    if bins < 1:
        raise ValueError("bins must be >= 1")
    counts, edges = np.histogram(report.latencies_s, bins=bins)
    return edges, counts


def render_histogram(
    report: ServingReport, bins: int = 12, width: int = 40
) -> str:
    """ASCII latency histogram with percentile markers."""
    edges, counts = latency_histogram(report, bins)
    peak = counts.max() if counts.size else 1
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * int(round(width * count / peak)) if peak else ""
        lines.append(
            f"{edges[i]:7.2f}-{edges[i + 1]:7.2f}s |{bar.ljust(width)}| "
            f"{count}"
        )
    lines.append(
        f"p50 {report.p50:.3f}s   p95 {report.latency_percentile(95):.3f}s"
        f"   p99 {report.p99:.3f}s"
    )
    return "\n".join(lines)


def slo_headroom(report: ServingReport, slo_s: float) -> dict[str, float]:
    """How close a run sails to its SLO.

    Returns the miss rate, the p99/SLO ratio (>1 = violating) and the
    latency margin (seconds between p99 and the SLO; negative when
    violating).
    """
    if slo_s <= 0:
        raise ValueError("slo_s must be positive")
    return {
        "miss_rate": report.miss_rate(slo_s),
        "p99_over_slo": report.p99 / slo_s,
        "margin_s": slo_s - report.p99,
    }


def availability_summary(
    report: ServingReport, slo_s: float | None = None
) -> dict[str, float]:
    """Reliability view of a (possibly faulted) serving run.

    Returns availability (served fraction), goodput (served req/s),
    drop and retry rates; with an SLO it adds ``slo_attainment`` — the
    fraction of *all offered* requests that were served within the SLO,
    so a dropped request counts as a miss (the client-side view, per
    the SLO-under-faults framing of Perseus-style tail studies).

    The same aggregates are registered as ``serving.*`` gauges in the
    current metrics registry (via
    :func:`repro.obs.telemetry.record_report_gauges`), so exports and
    the rendered summary always agree — one source of truth.
    """
    from repro.obs.telemetry import record_report_gauges

    if slo_s is not None and slo_s <= 0:
        raise ValueError("slo_s must be positive")
    record_report_gauges(report, prefix="serving")
    summary = {
        "availability": report.availability,
        "goodput": report.goodput,
        "drop_rate": report.drop_rate,
        "retry_rate": report.retries / report.requests,
        "preemptions": float(report.preempted),
    }
    if slo_s is not None:
        within = float((report.latencies_s <= slo_s).sum())
        summary["slo_attainment"] = within / report.requests
    return summary

"""An allocated cloud instance: type + number of GPUs in use.

The paper's Table 2 models each resource *i* with ``v_i`` GPUs, a unit
cost ``c_i`` and a max parallel-inference capacity ``b_i``.  Section 4.5.2
additionally studies using only one of an instance's GPUs versus all of
them (Figure 12), so the GPU-in-use count is explicit here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.catalog import InstanceType
from repro.errors import ConfigurationError
from repro.perf.latency import CalibratedTimeModel

__all__ = ["CloudInstance"]


@dataclass(frozen=True)
class CloudInstance:
    """One rented instance.

    Attributes
    ----------
    itype:
        The EC2 instance type.
    gpus_used:
        GPUs actually running inference; defaults to all of them ("it is
        ideal to utilize all GPUs in the allocated resource", Sec. 4.5.2).
        Billing always charges the whole instance regardless.
    """

    itype: InstanceType
    gpus_used: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.gpus_used == -1:
            object.__setattr__(self, "gpus_used", self.itype.gpus)
        if not 1 <= self.gpus_used <= self.itype.gpus:
            raise ConfigurationError(
                f"{self.itype.name} has {self.itype.gpus} GPUs; "
                f"cannot use {self.gpus_used}"
            )

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.itype.name

    @property
    def price_per_hour(self) -> float:
        """c_i: unit cost of the whole instance (Table 2)."""
        return self.itype.price_per_hour

    def max_batch(self, time_model: CalibratedTimeModel) -> int:
        """b_i: max parallel inferences across the GPUs in use (Eq. 3)."""
        return self.gpus_used * time_model.max_batch(self.itype.gpu)

    def inference_time(
        self, time_model: CalibratedTimeModel, spec, images: int
    ) -> float:
        """Seconds for this instance to infer ``images`` (Eqs. 2-3).

        Images are spread evenly across the GPUs in use; the instance
        finishes when its most-loaded GPU does.
        """
        if images <= 0:
            return 0.0
        per_gpu = -(-images // self.gpus_used)  # ceil split
        return time_model.inference_time(spec, per_gpu, self.itype.gpu)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}[{self.gpus_used}gpu]"

"""The structured experiment engine.

Replaces the old ``EXPERIMENTS: dict[id, (title, renderer)]`` registry
with first-class :class:`Experiment` descriptors and a parallel,
cached, observable executor:

* every artefact runs inside its own observability scope (a fresh
  :class:`~repro.obs.Tracer` + :class:`~repro.obs.MetricsRegistry`), so
  each :class:`ExperimentResult` carries a queryable trace and metric
  snapshot alongside the rendered text;
* ``jobs > 1`` fans independent artefacts out over a
  ``ProcessPoolExecutor`` — collected outputs are always reported in
  registry order, so parallel output equals serial output exactly;
* results are cached on disk keyed by *content* (a hash of the whole
  ``repro`` package source, the artefact's module source, and the
  engine schema), so an unchanged artefact is a cache hit and any
  source edit invalidates it;
* a failing artefact is isolated into ``status == "error"`` (with its
  traceback) instead of aborting the batch;
* every run writes a :class:`~repro.obs.RunManifest` JSON under
  ``results/`` recording per-artefact wall time, status, cache-hit
  flag and environment provenance.

Modules migrated to the structured API expose ``compute() -> data``
(JSON-serializable rows/series) and ``render(data) -> str``; legacy
modules exposing only ``render()`` still work, with ``data=None``.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any

from repro.errors import UnknownArtefactError
from repro.obs import (
    MetricsRegistry,
    RunManifest,
    Tracer,
    get_event_bus,
    scoped_observability,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "EngineRun",
    "REGISTRY",
    "run_experiments",
    "experiment_config_hash",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_MANIFEST_PATH",
]

#: Bump to invalidate every cache entry when the result schema changes.
SCHEMA_VERSION = 1

DEFAULT_CACHE_DIR = Path("results") / ".expcache"
DEFAULT_MANIFEST_PATH = Path("results") / "run_manifest.json"


# ----------------------------------------------------------------------
# data model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentResult:
    """One executed artefact: structured data *and* rendered text.

    ``data`` is the module's ``compute()`` output (``None`` for legacy
    render-only modules), already normalised to JSON-safe types.
    ``text`` is the exact table/series the paper comparison uses — the
    field the old ``ExperimentOutput`` carried.
    """

    artefact: str
    title: str
    category: str
    text: str
    data: Any = None
    status: str = "ok"  # "ok" | "error"
    error: str | None = None
    wall_s: float = 0.0
    cpu_s: float = 0.0
    cache_hit: bool = False
    config_hash: str = ""
    trace: tuple[dict, ...] = ()
    metrics: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True)
class Experiment:
    """A registered artefact: identity plus how to produce it.

    ``module`` is a fully qualified module name.  When the module has
    ``compute_attr`` the structured path runs (``compute()`` then
    ``render(data)``); otherwise the legacy ``render()`` is called and
    ``data`` stays ``None``.
    """

    artefact: str
    title: str
    category: str
    module: str
    compute_attr: str | None = "compute"
    render_attr: str = "render"

    def load(self):
        return importlib.import_module(self.module)

    def source_hash(self) -> str:
        """Hash of the artefact module's own source file."""
        module = self.load()
        digest = hashlib.sha256()
        path = getattr(module, "__file__", None)
        if path and os.path.exists(path):
            digest.update(Path(path).read_bytes())
        return digest.hexdigest()

    def execute(self) -> tuple[Any, str]:
        """Produce ``(data, text)`` for this artefact."""
        module = self.load()
        compute = (
            getattr(module, self.compute_attr, None)
            if self.compute_attr
            else None
        )
        if compute is not None:
            data = compute()
            text = getattr(module, self.render_attr)(data)
            return _jsonable(data), text
        return None, getattr(module, self.render_attr)()

    def render_text(self) -> str:
        """Just the rendered text (legacy-registry compatibility)."""
        return self.execute()[1]

    def run(self) -> ExperimentResult:
        """Execute this artefact alone, uncached, in-process."""
        return _execute_experiment(
            self, experiment_config_hash(self), None, False
        )


@dataclass(frozen=True)
class EngineRun:
    """Everything one engine invocation produced."""

    results: tuple[ExperimentResult, ...]
    manifest: RunManifest
    manifest_path: Path | None

    def result(self, artefact: str) -> ExperimentResult:
        for r in self.results:
            if r.artefact == artefact:
                return r
        raise KeyError(artefact)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def _exp(
    artefact: str,
    title: str,
    category: str,
    module: str,
    **kwargs,
) -> Experiment:
    return Experiment(
        artefact, title, category, f"repro.experiments.{module}", **kwargs
    )


#: artefact id -> Experiment, in canonical (paper) order.
REGISTRY: dict[str, Experiment] = {
    e.artefact: e
    for e in (
        _exp(
            "table1",
            "Caffenet layers",
            "table",
            "tables",
            compute_attr=None,
            render_attr="render_table1",
        ),
        _exp(
            "table3",
            "EC2 cloud resource types",
            "table",
            "tables",
            compute_attr=None,
            render_attr="render_table3",
        ),
        _exp("fig2", "The three-stage approach, executed", "figure", "fig2_pipeline"),
        _exp("fig3", "Execution time distribution", "figure", "fig3_time_distribution"),
        _exp("fig4", "Time for a single inference", "figure", "fig4_single_inference"),
        _exp("fig5", "Parallel inference on a GPU", "figure", "fig5_parallel_inference"),
        _exp("fig6", "Caffenet individual-layer pruning", "figure", "fig6_caffenet_sweeps"),
        _exp("fig7", "Googlenet individual-layer pruning", "figure", "fig7_googlenet_sweeps"),
        _exp("fig8", "Caffenet multi-layer pruning", "figure", "fig8_multilayer"),
        _exp("fig9", "Impact of accuracy on execution time", "figure", "fig9_time_pareto"),
        _exp("fig10", "Impact of accuracy on cloud cost", "figure", "fig10_cost_pareto"),
        _exp("fig11", "Time-accuracy with TAR", "figure", "fig11_tar"),
        _exp("fig12", "CAR across resource types", "figure", "fig12_car"),
        _exp("algorithm1", "Greedy vs brute-force allocation", "algorithm", "algorithm1"),
        _exp(
            "ext-techniques",
            "Extension: pruning vs quantization vs weight sharing (real)",
            "extension",
            "ext_technique_comparison",
        ),
        _exp(
            "ext-googlenet-pareto",
            "Extension: Googlenet Pareto study over mixed p2+g3 space",
            "extension",
            "ext_googlenet_pareto",
        ),
        _exp(
            "ext-finetune",
            "Extension: fine-tuning recovery widens sweet spots (real)",
            "extension",
            "ext_finetune_recovery",
        ),
        _exp(
            "ext-serving-slo",
            "Extension: latency-SLO serving under bursty traffic",
            "extension",
            "ext_serving_slo",
        ),
        _exp(
            "ext-sensitivity",
            "Extension: sensitivity of conclusions to fitted constants",
            "extension",
            "ext_sensitivity",
        ),
        _exp(
            "ext-split",
            "Extension: even (Eq. 4) vs proportional workload split at scale",
            "extension",
            "ext_split_pareto",
        ),
        _exp(
            "ext-scaling",
            "Extension: strong scaling of the inference workload",
            "extension",
            "ext_scaling",
        ),
        _exp(
            "ext-autoscale",
            "Extension: static vs autoscaled fleets under surge load",
            "extension",
            "ext_autoscale",
        ),
        _exp(
            "ext-fault-tolerance",
            "Extension: spot preemptions — cost vs goodput under faults",
            "extension",
            "ext_fault_tolerance",
        ),
        _exp(
            "ext-real-pipeline",
            "Extension: the whole methodology with zero paper constants",
            "extension",
            "ext_real_pipeline",
        ),
        _exp(
            "ext-criteria",
            "Extension: L1 vs L2 vs random pruning criteria (real)",
            "extension",
            "ext_criterion_comparison",
        ),
        _exp(
            "ext-batch-policy",
            "Extension: batch-width vs tail latency in online serving",
            "extension",
            "ext_batch_policy",
        ),
        _exp(
            "ext-noise",
            "Extension: the min-of-3 measurement protocol, justified",
            "extension",
            "ext_noise_protocol",
        ),
        _exp(
            "ext-fleet-routing",
            "Extension: routed heterogeneous fleets — tiered accuracy at fleet scale",
            "extension",
            "ext_fleet_routing",
        ),
        _exp(
            "ext-adaptive-accuracy",
            "Extension: per-request adaptive accuracy — degrade before you shed",
            "extension",
            "ext_adaptive_accuracy",
        ),
    )
}


# ----------------------------------------------------------------------
# content-keyed cache
# ----------------------------------------------------------------------
@lru_cache(maxsize=1)
def package_hash() -> str:
    """Hash of every ``.py`` file under the installed repro package.

    Conservative by design: *any* library change invalidates every
    cached artefact, so a cache hit is always as trustworthy as a
    fresh run.
    """
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


def experiment_config_hash(experiment: Experiment) -> str:
    """Content key for one artefact's cache entry and manifest record."""
    digest = hashlib.sha256()
    digest.update(
        "|".join(
            (
                str(SCHEMA_VERSION),
                package_hash(),
                experiment.artefact,
                experiment.module,
                str(experiment.compute_attr),
                experiment.render_attr,
                experiment.source_hash(),
            )
        ).encode()
    )
    return digest.hexdigest()[:16]


def _cache_path(cache_dir: Path, experiment: Experiment, key: str) -> Path:
    return Path(cache_dir) / f"{experiment.artefact}-{key}.json"


def _cache_load(path: Path) -> dict | None:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if payload.get("schema") != SCHEMA_VERSION:
        return None
    return payload


def _cache_store(path: Path, result: ExperimentResult) -> None:
    payload = {
        "schema": SCHEMA_VERSION,
        "artefact": result.artefact,
        "config_hash": result.config_hash,
        "data": result.data,
        "text": result.text,
    }
    try:
        encoded = json.dumps(payload)
    except (TypeError, ValueError):
        return  # non-serializable data: simply don't cache
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(encoded)
        os.replace(tmp, path)
    except OSError:
        pass  # caching is best-effort; never fail the run over it


def _jsonable(value: Any) -> Any:
    """Normalise compute() output to plain JSON types.

    Serial and parallel runs, and cache round-trips, then all yield the
    *same* Python structures (tuples become lists, numpy scalars become
    Python numbers).
    """
    import numpy as np

    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, np.bool_):
        return bool(value)
    return value


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _execute_experiment(
    experiment: Experiment,
    config_hash: str,
    cache_dir: str | os.PathLike | None,
    use_cache: bool,
) -> ExperimentResult:
    """Run (or cache-load) one artefact.  Top-level so worker processes
    can execute it; never raises — failures become ``status='error'``."""
    bus = get_event_bus()
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    if bus.active:
        bus.emit(
            "experiment.start",
            artefact=experiment.artefact,
            config_hash=config_hash,
        )
    if use_cache and cache_dir is not None:
        cached = _cache_load(
            _cache_path(Path(cache_dir), experiment, config_hash)
        )
        if cached is not None:
            result = ExperimentResult(
                artefact=experiment.artefact,
                title=experiment.title,
                category=experiment.category,
                text=cached["text"],
                data=cached["data"],
                cache_hit=True,
                config_hash=config_hash,
                wall_s=time.perf_counter() - wall0,
                cpu_s=time.process_time() - cpu0,
            )
            if bus.active:
                bus.emit(
                    "experiment.end",
                    artefact=experiment.artefact,
                    status=result.status,
                    cache_hit=True,
                    wall_s=result.wall_s,
                )
            return result

    tracer = Tracer()
    metrics = MetricsRegistry()
    status, error, data, text = "ok", None, None, ""
    with scoped_observability(tracer, metrics):
        with tracer.span("experiment", artefact=experiment.artefact):
            try:
                data, text = experiment.execute()
            except Exception:
                status = "error"
                error = traceback.format_exc()
    wall = time.perf_counter() - wall0
    metrics.timer("engine.artefact_s").observe(wall)
    result = ExperimentResult(
        artefact=experiment.artefact,
        title=experiment.title,
        category=experiment.category,
        text=text,
        data=data,
        status=status,
        error=error,
        wall_s=wall,
        cpu_s=time.process_time() - cpu0,
        cache_hit=False,
        config_hash=config_hash,
        trace=tracer.as_dicts(),
        metrics=metrics.snapshot(),
    )
    if status == "ok" and use_cache and cache_dir is not None:
        _cache_store(
            _cache_path(Path(cache_dir), experiment, config_hash), result
        )
    if bus.active:
        bus.emit(
            "experiment.end",
            artefact=experiment.artefact,
            status=status,
            cache_hit=False,
            wall_s=wall,
        )
    return result


def _resolve(
    only: tuple[str, ...] | None,
    registry: dict[str, Experiment],
) -> list[Experiment]:
    """Selected experiments in registry (canonical) order."""
    if only is None:
        return list(registry.values())
    unknown = [i for i in only if i not in registry]
    if unknown:
        raise UnknownArtefactError(unknown, registry)
    wanted = set(only)
    return [e for a, e in registry.items() if a in wanted]


def run_experiments(
    only: tuple[str, ...] | None = None,
    *,
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: str | os.PathLike | None = DEFAULT_CACHE_DIR,
    registry: dict[str, Experiment] | None = None,
    write_manifest: bool = True,
    manifest_path: str | os.PathLike | None = None,
) -> EngineRun:
    """Execute all (or selected) artefacts; returns results + manifest.

    Parameters
    ----------
    only:
        Artefact ids to run (``None`` = every registered experiment).
        Unknown ids raise :class:`~repro.errors.UnknownArtefactError`.
    jobs:
        Worker processes.  ``1`` runs in-process; results are returned
        in registry order either way, so output is identical.
    use_cache, cache_dir:
        Content-keyed on-disk result cache.  ``cache_dir=None``
        disables storage even with ``use_cache=True``.
    registry:
        Override the default :data:`REGISTRY` (tests, custom suites).
    write_manifest, manifest_path:
        Write the :class:`~repro.obs.RunManifest` JSON (default
        ``results/run_manifest.json``).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    registry = REGISTRY if registry is None else registry
    selected = _resolve(only, registry)
    keys = {e.artefact: experiment_config_hash(e) for e in selected}
    bus = get_event_bus()
    wall0 = time.perf_counter()
    if bus.active:
        # per-artefact start/end events fire from _execute_experiment —
        # in this process for jobs=1; worker processes have their own
        # (subscriber-less) bus, so with jobs>1 only run.* events land.
        bus.emit(
            "run.start",
            artefacts=[e.artefact for e in selected],
            jobs=jobs,
            use_cache=use_cache,
        )
    if jobs == 1 or len(selected) <= 1:
        results = [
            _execute_experiment(e, keys[e.artefact], cache_dir, use_cache)
            for e in selected
        ]
    else:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(selected))
        ) as pool:
            futures = {
                e.artefact: pool.submit(
                    _execute_experiment,
                    e,
                    keys[e.artefact],
                    None if cache_dir is None else str(cache_dir),
                    use_cache,
                )
                for e in selected
            }
            # deterministic collection: registry order, not completion order
            results = [futures[e.artefact].result() for e in selected]
    manifest = RunManifest.collect(
        results,
        jobs=jobs,
        use_cache=use_cache,
        wall_s=time.perf_counter() - wall0,
    )
    path = None
    if write_manifest:
        path = manifest.write(
            DEFAULT_MANIFEST_PATH if manifest_path is None else manifest_path
        )
    if bus.active:
        bus.emit(
            "run.end",
            artefacts=len(results),
            ok=sum(r.status == "ok" for r in results),
            errors=sum(r.status == "error" for r in results),
            cache_hits=sum(r.cache_hit for r in results),
            wall_s=manifest.wall_s,
        )
    return EngineRun(
        results=tuple(results), manifest=manifest, manifest_path=path
    )

"""Pay-per-use pricing, pro-rated to the second.

The paper notes (Section 4.1.2) that although EC2 quotes hourly prices,
"the hourly price mentioned in the specification is pro-rated to the
nearest second" — so a job is billed for ``ceil(seconds)`` at the hourly
rate divided by 3600.
"""

from __future__ import annotations

import math

from repro.cloud.catalog import InstanceType
from repro.errors import ConfigurationError

__all__ = ["billed_seconds", "billed_cost", "hourly_rate_cost"]


def billed_seconds(elapsed_s: float) -> int:
    """Seconds billed for an ``elapsed_s``-second run (round up)."""
    if elapsed_s < 0:
        raise ConfigurationError("elapsed time must be non-negative")
    return int(math.ceil(elapsed_s))


def billed_cost(itype: InstanceType, elapsed_s: float) -> float:
    """Dollars billed for running ``itype`` for ``elapsed_s`` seconds."""
    return billed_seconds(elapsed_s) * itype.price_per_hour / 3600.0


def hourly_rate_cost(rate_per_hour: float, elapsed_s: float) -> float:
    """Dollars for an arbitrary hourly rate, per-second pro-rated."""
    if rate_per_hour < 0:
        raise ConfigurationError("rate must be non-negative")
    return billed_seconds(elapsed_s) * rate_per_hour / 3600.0

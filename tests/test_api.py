"""The versioned request/response API surface (``repro.api``).

Covers the v1 contract: request validation with stable error codes,
lossless ``to_dict``/``from_dict`` round-trips, byte-identical parity
between ``PlanResponse.render()`` and the historical ``repro plan``
CLI output, the deprecation shims, and the source-tree grep gate that
keeps internal callers off the deprecated free functions.
"""

from __future__ import annotations

import json
import re
import warnings
from pathlib import Path

import pytest

from repro import api
from repro.api import (
    API_SCHEMA,
    ERROR_STATUS,
    ApiError,
    FleetDesign,
    FleetReplica,
    FleetRequest,
    PlanRequest,
    PlanResponse,
)
from repro.cli import main
from repro.errors import (
    ConfigurationError,
    InfeasibleError,
    ReproError,
    UnknownArtefactError,
)

#: a small grid (two P2 types, 2 instances each) keeping API tests fast
SMALL = {"catalog": ("p2.16xlarge", "p2.8xlarge"), "instances_per_type": 2}


class TestApiError:
    def test_codes_map_to_canonical_statuses(self):
        assert ERROR_STATUS["invalid_request"] == 400
        assert ERROR_STATUS["unknown_model"] == 404
        assert ERROR_STATUS["not_found"] == 404
        assert ERROR_STATUS["infeasible"] == 422
        assert ERROR_STATUS["overloaded"] == 503
        assert ERROR_STATUS["internal"] == 500
        for code, status in ERROR_STATUS.items():
            assert ApiError(code, "x").http_status == status

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            ApiError("no_such_code", "x")

    def test_round_trip(self):
        err = ApiError("infeasible", "too poor", detail={"budget": 1})
        body = err.to_dict()
        assert body["schema"] == API_SCHEMA
        restored = ApiError.from_dict(json.loads(json.dumps(body)))
        assert restored.code == "infeasible"
        assert restored.http_status == 422
        assert str(restored) == "too poor"
        assert restored.detail == {"budget": 1}

    def test_from_exception_maps_the_hierarchy(self):
        assert ApiError.from_exception(InfeasibleError("x")).code == "infeasible"
        assert (
            ApiError.from_exception(
                UnknownArtefactError(["x"], ["a", "b"])
            ).code
            == "unknown_artefact"
        )
        assert (
            ApiError.from_exception(ConfigurationError("x")).code
            == "invalid_request"
        )
        assert (
            ApiError.from_exception(ReproError("x")).code == "invalid_request"
        )
        assert ApiError.from_exception(RuntimeError("x")).code == "internal"
        passthrough = ApiError("overloaded", "x")
        assert ApiError.from_exception(passthrough) is passthrough


class TestPlanRequest:
    def test_round_trips_losslessly(self):
        request = PlanRequest(
            target=78.0,
            deadline_h=6.0,
            budget=100.0,
            catalog=("p2.xlarge", "p2.8xlarge"),
        )
        body = json.loads(json.dumps(request.to_dict()))
        assert PlanRequest.from_dict(body) == request
        assert PlanRequest.from_dict(body).cache_key() == request.cache_key()

    def test_unknown_model_is_404(self):
        with pytest.raises(ApiError) as exc:
            PlanRequest(target=78.0, model="resnet")
        assert exc.value.code == "unknown_model"
        assert exc.value.http_status == 404

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target": 0.0},
            {"target": 120.0},
            {"target": True},
            {"target": 78.0, "metric": "top3"},
            {"target": 78.0, "deadline_h": -1.0},
            {"target": 78.0, "budget": 0.0},
            {"target": 78.0, "images": 0},
            {"target": 78.0, "instances_per_type": 0},
            {"target": 78.0, "catalog": ()},
        ],
    )
    def test_invalid_fields_are_400(self, kwargs):
        with pytest.raises(ApiError) as exc:
            PlanRequest(**kwargs)
        assert exc.value.code == "invalid_request"
        assert exc.value.http_status == 400

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ApiError) as exc:
            PlanRequest.from_dict({"target": 78.0, "deadline": 6.0})
        assert exc.value.code == "invalid_request"
        assert "deadline" in str(exc.value)

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ApiError, match="repro.api/v1"):
            PlanRequest.from_dict({"schema": "repro.api/v2", "target": 78.0})

    def test_from_dict_rejects_non_integer_counts(self):
        for field, value in (("images", 2.5), ("images", True),
                             ("instances_per_type", "2")):
            with pytest.raises(ApiError) as exc:
                PlanRequest.from_dict({"target": 78.0, field: value})
            assert exc.value.code == "invalid_request"

    def test_from_dict_requires_target(self):
        with pytest.raises(ApiError, match="target"):
            PlanRequest.from_dict({})


class TestPlan:
    def test_min_budget_answer(self):
        response = api.plan(
            PlanRequest(target=78.0, deadline_h=6.0, **SMALL)
        )
        assert response.kind == "min_budget"
        assert response.best.top5 >= 78.0
        assert response.best.time_h <= 6.0

    def test_response_round_trips_byte_identically(self):
        response = api.plan(
            PlanRequest(target=78.0, deadline_h=6.0, **SMALL)
        )
        wire = json.dumps(response.to_dict(), sort_keys=True)
        restored = PlanResponse.from_dict(json.loads(wire))
        assert json.dumps(restored.to_dict(), sort_keys=True) == wire
        assert restored.render() == response.render()

    def test_frontier_is_fastest_first(self):
        response = api.plan(PlanRequest(target=78.0, **SMALL))
        assert response.kind == "frontier"
        times = [p.time_s for p in response.points]
        assert times == sorted(times)

    def test_infeasible_is_422(self):
        with pytest.raises(ApiError) as exc:
            api.plan(PlanRequest(target=78.0, metric="top1", **SMALL))
        assert exc.value.code == "infeasible"
        assert exc.value.http_status == 422

    def test_budget_cap_on_deadline_query(self):
        with pytest.raises(ApiError) as exc:
            api.plan(
                PlanRequest(
                    target=78.0, deadline_h=6.0, budget=0.01, **SMALL
                )
            )
        assert exc.value.code == "infeasible"
        assert "budget $0.01" in str(exc.value)


class TestCliParity:
    """`repro plan` output must be byte-identical through the API."""

    CASES = [
        ["plan", "--target", "78", "--deadline", "6"],
        ["plan", "--target", "78", "--budget", "100"],
        ["plan", "--target", "80"],
    ]

    @pytest.mark.parametrize("argv", CASES, ids=lambda a: " ".join(a[1:]))
    def test_render_matches_cli_stdout(self, argv, capsys):
        assert main(argv) == 0
        out = capsys.readouterr().out
        namespace = _parse(argv)
        response = api.plan(
            PlanRequest(
                target=namespace.target,
                metric=namespace.metric,
                deadline_h=namespace.deadline,
                budget=namespace.budget,
                images=namespace.images,
                instances_per_type=namespace.instances_per_type,
            )
        )
        assert out == response.render() + "\n"

    def test_infeasible_goes_to_stderr_with_exit_1(self, capsys):
        rc = main(["plan", "--target", "80", "--metric", "top1"])
        captured = capsys.readouterr()
        assert rc == 1
        assert captured.out == ""
        assert (
            captured.err
            == "infeasible: no configuration reaches 80.0% top1\n"
        )

    def test_budget_capped_deadline_is_infeasible(self, capsys):
        rc = main(
            ["plan", "--target", "78", "--deadline", "6", "--budget", "40"]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert captured.err.startswith(
            "infeasible: cheapest plan inside 6h costs $"
        )


def _parse(argv):
    from repro.cli import build_parser

    return build_parser().parse_args(argv)


class TestFleetRequest:
    def test_round_trips(self):
        request = FleetRequest(
            designs=(
                FleetDesign(
                    replicas=(
                        FleetReplica("p2.8xlarge"),
                        FleetReplica(
                            "p2.xlarge",
                            count=2,
                            spec=(("conv1", 0.3), ("conv2", 0.5)),
                        ),
                    ),
                    routing="tiered",
                ),
            ),
            rate_per_s=100.0,
            duration_s=30.0,
            floors=((0.0, 0.7), (75.0, 0.3)),
        )
        body = json.loads(json.dumps(request.to_dict()))
        assert FleetRequest.from_dict(body) == request

    def test_evaluate_and_cheapest(self):
        request = FleetRequest(
            designs=(
                FleetDesign(
                    replicas=(FleetReplica("p2.xlarge"),), name="solo"
                ),
            ),
            rate_per_s=20.0,
            duration_s=10.0,
        )
        evaluated = api.evaluate_fleets(request)
        assert evaluated.kind == "evaluate"
        (view,) = evaluated.views
        assert view.name == "solo"
        assert view.served > 0
        cheapest = api.cheapest_fleets(request)
        assert cheapest.chosen == "solo"

    def test_duplicate_design_names_rejected(self):
        request = FleetRequest(
            designs=(
                FleetDesign(replicas=(FleetReplica("p2.xlarge"),), name="a"),
                FleetDesign(replicas=(FleetReplica("p2.xlarge"),), name="a"),
            ),
            rate_per_s=20.0,
            duration_s=10.0,
        )
        with pytest.raises(ApiError) as exc:
            api.evaluate_fleets(request)
        assert exc.value.code == "invalid_request"

    def test_unmeetable_constraints_are_infeasible(self):
        request = FleetRequest(
            designs=(
                FleetDesign(
                    replicas=(FleetReplica("p2.xlarge"),), name="solo"
                ),
            ),
            rate_per_s=20.0,
            duration_s=10.0,
            p99_s=1e-9,
        )
        with pytest.raises(ApiError) as exc:
            api.cheapest_fleets(request)
        assert exc.value.code == "infeasible"


class TestGoodputAccuracyFrontier:
    @staticmethod
    def _spec(routing, replicas, admission=None):
        from repro.calibration import (
            caffenet_accuracy_model,
            caffenet_time_model,
        )
        from repro.serving import FleetSpec

        return FleetSpec(
            caffenet_time_model(),
            caffenet_accuracy_model(),
            replicas,
            routing=routing,
            admission=admission,
        )

    @staticmethod
    def _replica(name, spec=None):
        from repro.cloud.catalog import instance_type
        from repro.cloud.configuration import ResourceConfiguration
        from repro.cloud.instance import CloudInstance
        from repro.pruning.base import PruneSpec
        from repro.serving import BatchPolicy, ReplicaSpec

        return ReplicaSpec(
            name,
            ResourceConfiguration(
                [CloudInstance(instance_type("p2.xlarge"))]
            ),
            spec if spec is not None else PruneSpec.unpruned(),
            BatchPolicy(max_batch=32, max_wait_s=0.05),
        )

    def test_empty_candidates_rejected(self):
        from repro.serving import FleetWorkload

        with pytest.raises(ApiError) as exc:
            api.goodput_accuracy_frontier(
                (), FleetWorkload(10.0, 5.0)
            )
        assert exc.value.code == "invalid_request"

    def test_dominated_candidate_falls_off_the_frontier(self):
        from repro.pruning.base import PruneSpec
        from repro.serving import AdmissionPolicy, FleetWorkload

        sweet = PruneSpec({"conv1": 0.3, "conv2": 0.5})
        fleet = (
            self._replica("gold"),
            self._replica("cheap", sweet),
        )
        # sustained overload of the floored tier: static sheds at the
        # queue limit, adaptive degrades and keeps serving
        workload = FleetWorkload(
            70.0,
            20.0,
            seed=3,
            floors=((0.0, 0.5), (75.0, 0.5)),
            deadlines=((0.4, 0.5), (1.2, 0.5)),
        )
        static = self._spec(
            "tiered", fleet, AdmissionPolicy(queue_limit=40.0)
        )
        adaptive = self._spec(
            "adaptive",
            fleet,
            AdmissionPolicy(queue_limit=40.0, degrade_limit=20.0),
        )
        frontier = api.goodput_accuracy_frontier(
            (static, adaptive), workload
        )
        specs = [spec for spec, _ in frontier]
        # equal hourly rate: only the higher goodput@accuracy survives
        assert len(specs) == 1
        pairs = [
            (s, api.fleet_report(s, workload))
            for s in (static, adaptive)
        ]
        best, _ = max(
            pairs, key=lambda p: p[1].goodput_at_accuracy
        )
        assert specs[0] is best
        assert best is adaptive

    def test_sorted_by_cost_and_single_candidate_survives(self):
        from repro.serving import FleetWorkload

        workload = FleetWorkload(20.0, 10.0, seed=1)
        small = self._spec("jsq", (self._replica("solo"),))
        big = self._spec(
            "jsq",
            (self._replica("a"), self._replica("b")),
        )
        frontier = api.goodput_accuracy_frontier(
            (big, small), workload
        )
        rates = [spec.hourly_rate for spec, _ in frontier]
        assert rates == sorted(rates)
        only = api.goodput_accuracy_frontier((small,), workload)
        assert only[0][0] is small


class TestDeprecatedShims:
    def test_planner_free_functions_warn_and_delegate(self):
        from repro.core.planner import (
            iso_accuracy_frontier,
            min_budget_for,
            min_deadline_for,
        )

        space = api.planning_space(PlanRequest(target=78.0, **SMALL))
        with pytest.warns(DeprecationWarning, match="repro.api.plan"):
            budget = min_budget_for(space, 78.0, 24 * 3600.0)
        with pytest.warns(DeprecationWarning):
            deadline = min_deadline_for(space, 78.0, budget.cost)
        with pytest.warns(DeprecationWarning):
            front = iso_accuracy_frontier(space, 78.0)
        assert deadline.cost <= budget.cost
        assert budget in front or front

    def test_api_path_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api.plan(PlanRequest(target=78.0, deadline_h=24.0, **SMALL))


class TestGrepGate:
    """No non-shim src module imports the deprecated free functions.

    Mirrors the CI gate so the contract is enforced locally too;
    ``repro.core.planner`` itself (definitions + shims) is the only
    file allowed to name them.
    """

    PATTERNS = [
        re.compile(
            r"from repro\.core\.planner import [^\n]*"
            r"\b(min_budget_for|min_deadline_for"
            r"|iso_accuracy_frontier|cheapest_fleet)\b"
        ),
        re.compile(
            r"\b(min_budget_for|min_deadline_for"
            r"|iso_accuracy_frontier|cheapest_fleet)\("
        ),
    ]
    ALLOWED = {"src/repro/core/planner.py"}

    def test_src_tree_is_clean(self):
        root = Path(__file__).resolve().parent.parent
        bad = []
        for path in sorted((root / "src").rglob("*.py")):
            relative = path.relative_to(root).as_posix()
            if relative in self.ALLOWED:
                continue
            for i, line in enumerate(path.read_text().splitlines(), 1):
                if any(p.search(line) for p in self.PATTERNS):
                    bad.append(f"{relative}:{i}: {line.strip()}")
        assert not bad, (
            "deprecated planner free functions used outside the shim "
            f"module:\n" + "\n".join(bad)
        )

"""Extension: fleet-scale routing — tiered accuracy beats a single tier.

The paper prices one model on one static configuration; its motivating
scenario (near-real-time filtering of 350 M daily uploads) is served by
a *fleet* of heterogeneous replicas behind a router.  This experiment
wires the reproduction's routed-fleet layer
(:mod:`repro.serving.router`) into the cost-accuracy story three ways:

1. **Routing policies** — the same heterogeneous fleet (one unpruned
   p2.8xlarge "gold" replica + two pruned p2.xlarge "cheap" replicas)
   under round-robin, join-shortest-queue and
   weighted-by-throughput routing: weighting by modelled capacity keeps
   tail latency down because it stops over-assigning the narrow
   replicas.
2. **Accuracy-tiered vs single-tier** — 30% of requests carry a Top-5
   floor of 75% (only the unpruned model clears it), the rest carry
   none.  A single-tier fleet must provision *every* request on
   unpruned p2.8xlarge capacity; the tiered fleet routes floor-free
   traffic to pruned p2.xlarge replicas.  Both serve everything
   (equal availability), the tiered fleet at a fraction of the cost —
   the paper's sweet-spot argument, lifted from one model to a fleet
   mix.  The planner query
   (:func:`repro.api.select_cheapest_fleet`) picks the tiered fleet
   from the candidate set under the same constraints.
3. **Overload** — a single narrow replica offered ~2.6x its capacity,
   with and without admission control (token bucket + queue-depth
   shedding): unprotected, every request is eventually served but p99
   collapses into the tens of seconds; with admission the fleet sheds
   load and the requests it accepts keep sub-second tails.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.calibration.caffenet import (
    caffenet_accuracy_model,
    caffenet_time_model,
)
from repro.cloud.catalog import instance_type
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.instance import CloudInstance
from repro.api import select_cheapest_fleet
from repro.experiments.report import format_kv, format_table
from repro.pruning.base import PruneSpec
from repro.serving.batcher import BatchPolicy
from repro.serving.fleet import (
    FleetSpec,
    FleetWorkload,
    evaluate_fleet,
)
from repro.serving.router import AdmissionPolicy, ReplicaSpec

__all__ = [
    "FleetRoutingStudy",
    "OverloadRow",
    "PolicyRow",
    "TierRow",
    "run",
    "render",
]

#: the paper's Figure 8 sweet-spot combination (70% Top-5)
_SWEET_SPOT = PruneSpec({"conv1": 0.3, "conv2": 0.5})
_BATCH = BatchPolicy(max_batch=32, max_wait_s=0.05)


@dataclass(frozen=True)
class PolicyRow:
    """One routing policy's outcome on the heterogeneous fleet."""

    policy: str
    p99_s: float
    mean_s: float
    utilisation: float
    availability: float


@dataclass(frozen=True)
class TierRow:
    """One fleet design's outcome under the floor-mixture workload."""

    name: str
    rate_per_h: float
    availability: float
    p99_s: float
    cost: float
    top5_served: float


@dataclass(frozen=True)
class OverloadRow:
    """One admission setting's outcome under 2.6x overload."""

    name: str
    shed: int
    availability: float
    p99_s: float
    goodput: float


@dataclass(frozen=True)
class FleetRoutingStudy:
    """Everything the fleet-routing extension measured."""

    policies: tuple[PolicyRow, ...]
    tiers: tuple[TierRow, ...]
    overload: tuple[OverloadRow, ...]
    planner_pick: str
    planner_cost: float
    cost_reduction_pct: float

    def tier(self, name: str) -> TierRow:
        """The tier-comparison row named ``name``."""
        for row in self.tiers:
            if row.name == name:
                return row
        raise KeyError(name)


def _gold(n: int = 1) -> ResourceConfiguration:
    return ResourceConfiguration(
        [CloudInstance(instance_type("p2.8xlarge")) for _ in range(n)]
    )


def _cheap() -> ResourceConfiguration:
    return ResourceConfiguration(
        [CloudInstance(instance_type("p2.xlarge"))]
    )


def _heterogeneous() -> tuple[ReplicaSpec, ...]:
    return (
        ReplicaSpec("gold", _gold(), PruneSpec.unpruned(), _BATCH),
        ReplicaSpec("cheap-a", _cheap(), _SWEET_SPOT, _BATCH),
        ReplicaSpec("cheap-b", _cheap(), _SWEET_SPOT, _BATCH),
    )


@lru_cache(maxsize=1)
def run(
    rate: float = 100.0,
    duration_s: float = 60.0,
    floor_top5: float = 75.0,
    floor_fraction: float = 0.3,
    seed: int = 11,
) -> FleetRoutingStudy:
    """Run the three fleet studies; deterministic for fixed arguments."""
    tm, am = caffenet_time_model(), caffenet_accuracy_model()
    replicas = _heterogeneous()
    plain = FleetWorkload(rate, duration_s, seed=seed)

    # 1. routing policies over the same fleet and load ----------------
    policies = []
    for policy in ("round-robin", "jsq", "weighted"):
        report = evaluate_fleet(
            FleetSpec(tm, am, replicas, routing=policy), plain
        )
        policies.append(
            PolicyRow(
                policy=policy,
                p99_s=report.p99,
                mean_s=float(report.latencies_s.mean()),
                utilisation=report.utilisation,
                availability=report.availability,
            )
        )

    # 2. tiered vs single-tier under the floor mixture ----------------
    floored = FleetWorkload(
        rate,
        duration_s,
        seed=seed,
        floors=((0.0, 1.0 - floor_fraction), (floor_top5, floor_fraction)),
    )
    single_tier = FleetSpec(
        tm,
        am,
        (
            ReplicaSpec("gold-a", _gold(), PruneSpec.unpruned(), _BATCH),
            ReplicaSpec("gold-b", _gold(), PruneSpec.unpruned(), _BATCH),
        ),
        routing="round-robin",
    )
    tiered = FleetSpec(tm, am, replicas, routing="tiered")
    tiers = []
    for name, spec in (
        ("single-tier", single_tier),
        ("accuracy-tiered", tiered),
    ):
        report = evaluate_fleet(spec, floored)
        served = max(report.served, 1)
        top5 = sum(
            o.served * am.accuracy(o.spec.spec).top5
            for o in report.outcomes
        ) / served
        tiers.append(
            TierRow(
                name=name,
                rate_per_h=spec.hourly_rate,
                availability=report.availability,
                p99_s=report.p99,
                cost=report.cost,
                top5_served=top5,
            )
        )
    reduction = 100.0 * (1.0 - tiers[1].cost / tiers[0].cost)

    # ... and let the planner pick from the full candidate set
    pick, pick_report = select_cheapest_fleet(
        (single_tier, tiered),
        floored,
        availability=0.999,
        p99_s=2.0,
    )
    planner_pick = (
        "accuracy-tiered" if pick is tiered else "single-tier"
    )

    # 3. overload with and without admission control ------------------
    surge = FleetWorkload(120.0, 30.0, seed=seed + 1)
    narrow = (ReplicaSpec("cheap", _cheap(), _SWEET_SPOT, _BATCH),)
    overload = []
    for name, admission in (
        ("no admission", None),
        (
            "token bucket + shed",
            AdmissionPolicy(
                rate_per_s=40.0, burst=20, queue_limit=200.0
            ),
        ),
    ):
        report = evaluate_fleet(
            FleetSpec(tm, am, narrow, routing="jsq", admission=admission),
            surge,
        )
        overload.append(
            OverloadRow(
                name=name,
                shed=report.shed,
                availability=report.availability,
                p99_s=report.p99,
                goodput=report.goodput,
            )
        )

    return FleetRoutingStudy(
        policies=tuple(policies),
        tiers=tuple(tiers),
        overload=tuple(overload),
        planner_pick=planner_pick,
        planner_cost=pick_report.cost,
        cost_reduction_pct=reduction,
    )


def render(study: FleetRoutingStudy | None = None) -> str:
    """Render the study as the three tables + planner verdict."""
    study = run() if study is None else study
    parts = [
        "Routing policies over a heterogeneous fleet "
        "(1x p2.8xlarge unpruned + 2x p2.xlarge pruned, 100 req/s):",
        format_table(
            ["policy", "p99 (s)", "mean (s)", "util", "availability"],
            [
                [
                    r.policy,
                    f"{r.p99_s:.3f}",
                    f"{r.mean_s:.3f}",
                    f"{r.utilisation:.0%}",
                    f"{r.availability:.3f}",
                ]
                for r in study.policies
            ],
        ),
        "",
        "Accuracy-tiered vs single-tier fleet (30% of requests need "
        "Top-5 >= 75%):",
        format_table(
            [
                "fleet",
                "$/h",
                "availability",
                "p99 (s)",
                "cost ($)",
                "served top5 (%)",
            ],
            [
                [
                    r.name,
                    f"{r.rate_per_h:.2f}",
                    f"{r.availability:.3f}",
                    f"{r.p99_s:.3f}",
                    f"{r.cost:.4f}",
                    f"{r.top5_served:.1f}",
                ]
                for r in study.tiers
            ],
        ),
        "",
        format_kv(
            [
                (
                    "cost reduction",
                    f"{study.cost_reduction_pct:.0f}% at equal "
                    "availability",
                ),
                (
                    "planner pick",
                    f"{study.planner_pick} "
                    f"(cheapest fleet meeting availability >= 0.999, "
                    f"p99 <= 2s; ${study.planner_cost:.4f})",
                ),
            ]
        ),
        "",
        "Overload (120 req/s onto one ~46 req/s replica):",
        format_table(
            ["admission", "shed", "availability", "p99 (s)", "goodput"],
            [
                [
                    r.name,
                    r.shed,
                    f"{r.availability:.3f}",
                    f"{r.p99_s:.3f}",
                    f"{r.goodput:.1f}",
                ]
                for r in study.overload
            ],
        ),
    ]
    return "\n".join(parts)

"""The unified, versioned request/response API (schema ``repro.api/v1``).

One typed surface for every planner and fleet query, shared verbatim
by the :mod:`repro.service` HTTP control plane, the ``repro plan`` /
``repro service`` CLI subcommands and library callers:

* build a frozen request (:class:`PlanRequest`, :class:`FleetRequest`),
* hand it to an operation (:func:`plan`, :func:`evaluate_fleets`,
  :func:`cheapest_fleets`) — or to a
  :class:`~repro.api.client.PlanningClient` pointed at a server,
* get a frozen response (:class:`PlanResponse`,
  :class:`FleetResponse`) whose ``to_dict()`` is the wire format and
  whose views are plain data;
* failures raise :class:`ApiError` with a stable machine code mapped
  to a canonical HTTP status (:data:`ERROR_STATUS`).

The legacy free functions in :mod:`repro.core.planner`
(``min_budget_for`` and friends) still work but emit
``DeprecationWarning`` — new code goes through this package.
"""

from repro.api.client import PlanningClient
from repro.api.handlers import (
    cheapest_fleets,
    clear_api_caches,
    evaluate_fleets,
    fleet_report,
    goodput_accuracy_frontier,
    plan,
    planning_space,
    select_cheapest_fleet,
)
from repro.api.types import (
    API_SCHEMA,
    ERROR_STATUS,
    ApiError,
    FleetDesign,
    FleetReplica,
    FleetRequest,
    FleetResponse,
    FleetView,
    PlanPoint,
    PlanRequest,
    PlanResponse,
    ReplicaView,
)

__all__ = [
    "API_SCHEMA",
    "ERROR_STATUS",
    "ApiError",
    "FleetDesign",
    "FleetReplica",
    "FleetRequest",
    "FleetResponse",
    "FleetView",
    "PlanPoint",
    "PlanRequest",
    "PlanResponse",
    "PlanningClient",
    "ReplicaView",
    "cheapest_fleets",
    "clear_api_caches",
    "evaluate_fleets",
    "fleet_report",
    "goodput_accuracy_frontier",
    "plan",
    "planning_space",
    "select_cheapest_fleet",
]

"""The experiment engine: parallelism, caching, failure isolation."""

from __future__ import annotations

import importlib
import sys
import textwrap

import pytest

from repro.errors import ReproError, UnknownArtefactError
from repro.experiments.engine import (
    REGISTRY,
    Experiment,
    experiment_config_hash,
    run_experiments,
)

#: cheap artefacts — the parallel/serial comparison stays fast.
FAST = ("table3", "fig4", "fig5", "fig11", "fig12")


def _run(only=FAST, **kwargs):
    kwargs.setdefault("use_cache", False)
    kwargs.setdefault("cache_dir", None)
    kwargs.setdefault("write_manifest", False)
    return run_experiments(only, **kwargs)


def _write_synthetic(path, marker="one", fail=False):
    body = "raise RuntimeError('synthetic failure')" if fail else (
        "return {'marker': MARKER}"
    )
    path.write_text(
        textwrap.dedent(
            f"""
            MARKER = {marker!r}

            def compute():
                {body}

            def render(data):
                return "marker=" + data["marker"]
            """
        )
    )


@pytest.fixture
def synthetic_module(tmp_path):
    """A throwaway experiment module importable by name."""
    path = tmp_path / "synthmod_engine_test.py"
    _write_synthetic(path)
    sys.path.insert(0, str(tmp_path))
    try:
        yield "synthmod_engine_test", path
    finally:
        sys.path.remove(str(tmp_path))
        sys.modules.pop("synthmod_engine_test", None)


class TestParallelEqualsSerial:
    def test_texts_and_data_identical(self):
        serial = _run(jobs=1)
        parallel = _run(jobs=3)
        assert [r.artefact for r in serial.results] == [
            r.artefact for r in parallel.results
        ]
        for s, p in zip(serial.results, parallel.results):
            assert s.text == p.text, s.artefact
            assert s.data == p.data, s.artefact
            assert p.ok

    def test_collection_order_is_registry_order(self):
        run = _run(("fig12", "fig4", "table3"), jobs=2)
        assert [r.artefact for r in run.results] == [
            "table3",
            "fig4",
            "fig12",
        ]

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            _run(jobs=0)


class TestCache:
    def test_second_run_hits_and_matches(self, tmp_path):
        first = run_experiments(
            ("fig11",),
            cache_dir=tmp_path,
            write_manifest=False,
        )
        second = run_experiments(
            ("fig11",),
            cache_dir=tmp_path,
            write_manifest=False,
        )
        assert not first.result("fig11").cache_hit
        assert second.result("fig11").cache_hit
        assert second.result("fig11").text == first.result("fig11").text
        assert second.result("fig11").data == first.result("fig11").data

    def test_no_cache_flag_recomputes(self, tmp_path):
        run_experiments(
            ("fig11",), cache_dir=tmp_path, write_manifest=False
        )
        fresh = run_experiments(
            ("fig11",),
            cache_dir=tmp_path,
            use_cache=False,
            write_manifest=False,
        )
        assert not fresh.result("fig11").cache_hit

    def test_source_change_invalidates(
        self, tmp_path, synthetic_module
    ):
        name, path = synthetic_module
        experiment = Experiment(
            artefact="synth", title="Synthetic", category="test",
            module=name,
        )
        registry = {"synth": experiment}
        cache = tmp_path / "cache"

        first = run_experiments(
            ("synth",),
            registry=registry,
            cache_dir=cache,
            write_manifest=False,
        )
        assert first.result("synth").text == "marker=one"
        key_one = experiment_config_hash(experiment)

        _write_synthetic(path, marker="two")
        importlib.reload(sys.modules[name])
        assert experiment_config_hash(experiment) != key_one

        second = run_experiments(
            ("synth",),
            registry=registry,
            cache_dir=cache,
            write_manifest=False,
        )
        assert not second.result("synth").cache_hit
        assert second.result("synth").text == "marker=two"


class TestFailureIsolation:
    def test_error_status_does_not_abort_batch(
        self, tmp_path, synthetic_module
    ):
        name, path = synthetic_module
        _write_synthetic(path, fail=True)
        registry = {
            "boom": Experiment(
                artefact="boom", title="Failing", category="test",
                module=name,
            ),
            "table3": REGISTRY["table3"],
        }
        run = run_experiments(
            ("boom", "table3"),
            registry=registry,
            use_cache=False,
            cache_dir=None,
            write_manifest=False,
        )
        boom = run.result("boom")
        assert boom.status == "error"
        assert not boom.ok
        assert "synthetic failure" in boom.error
        assert "Traceback" in boom.error
        assert run.result("table3").ok
        assert run.manifest.errors == ("boom",)

    def test_errors_are_never_cached(self, tmp_path, synthetic_module):
        name, path = synthetic_module
        _write_synthetic(path, fail=True)
        registry = {
            "boom": Experiment(
                artefact="boom", title="Failing", category="test",
                module=name,
            )
        }
        run_experiments(
            ("boom",),
            registry=registry,
            cache_dir=tmp_path / "cache",
            write_manifest=False,
        )
        assert not list((tmp_path / "cache").glob("boom-*.json"))


class TestSelection:
    def test_unknown_ids_raise_listing_both_sides(self):
        with pytest.raises(UnknownArtefactError) as excinfo:
            _run(("fig99", "nope"))
        message = str(excinfo.value)
        assert "fig99" in message and "nope" in message
        assert "table1" in message  # the available set is listed
        assert isinstance(excinfo.value, ReproError)

    def test_single_experiment_run(self):
        result = REGISTRY["table3"].run()
        assert result.ok
        assert "p2.xlarge" in result.text
        # each artefact runs in its own enabled observability scope
        assert any(s["name"] == "experiment" for s in result.trace)
        assert result.metrics["timers"]["engine.artefact_s"]["count"] == 1


class TestManifestOutput:
    def test_manifest_written_with_per_artefact_records(self, tmp_path):
        from repro.obs import RunManifest

        path = tmp_path / "manifest.json"
        run = run_experiments(
            ("table3", "fig4"),
            jobs=2,
            use_cache=False,
            cache_dir=None,
            manifest_path=path,
        )
        assert run.manifest_path == path
        restored = RunManifest.read(path)
        assert [r.artefact for r in restored.records] == [
            "table3",
            "fig4",
        ]
        for record in restored.records:
            assert record.status == "ok"
            assert record.wall_s >= 0.0
            assert record.cache_hit is False
            assert record.config_hash
        assert restored.jobs == 2


class TestStructuredData:
    def test_migrated_modules_expose_data_and_text(self):
        run = _run(("fig11", "fig12"))
        fig11 = run.result("fig11").data
        assert fig11["images"] == 50_000
        assert {p["label"] for p in fig11["points"]}
        fig12 = run.result("fig12").data
        assert len(fig12["rows"]) == 6

    def test_legacy_render_only_modules_have_none_data(self):
        run = _run(("table3",))
        assert run.result("table3").data is None
        assert run.result("table3").text

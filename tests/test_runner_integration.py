"""Integration: the experiment registry regenerates every artefact."""

from __future__ import annotations

import pytest

from repro.experiments import runner
from repro.experiments.runner import REGISTRY, run_all

FAST_ARTEFACTS = (
    "table1",
    "table3",
    "fig4",
    "fig5",
    "fig8",
    "fig11",
    "fig12",
)


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        for artefact in (
            ["table1", "table3"]
            + [f"fig{i}" for i in range(3, 13)]
            + ["algorithm1"]
        ):
            assert artefact in REGISTRY, artefact

    def test_twelve_extensions_registered(self):
        extensions = [a for a in REGISTRY if a.startswith("ext-")]
        assert len(extensions) >= 12

    def test_titles_unique_and_nonempty(self):
        titles = [e.title for e in REGISTRY.values()]
        assert all(titles)
        assert len(set(titles)) == len(titles)

    def test_ids_match_descriptors(self):
        for artefact, experiment in REGISTRY.items():
            assert experiment.artefact == artefact
            assert experiment.category in {
                "table",
                "figure",
                "algorithm",
                "extension",
            }


class TestRunAll:
    def test_fast_subset_renders(self):
        outputs = run_all(FAST_ARTEFACTS)
        assert {o.artefact for o in outputs} == set(FAST_ARTEFACTS)
        for output in outputs:
            assert output.text.strip()
            assert output.title
            assert output.ok

    def test_selection_order_follows_registry(self):
        outputs = run_all(("fig5", "fig4"))
        assert [o.artefact for o in outputs] == ["fig4", "fig5"]

    def test_unknown_artefact_raises_repro_error(self):
        from repro.errors import ReproError, UnknownArtefactError

        with pytest.raises(UnknownArtefactError) as excinfo:
            run_all(("fig99", "table1"))
        assert isinstance(excinfo.value, ReproError)
        assert "fig99" in str(excinfo.value)
        assert "table1" in str(excinfo.value)  # lists what IS available

    @pytest.mark.slow
    def test_every_artefact_renders(self):
        outputs = run_all()
        assert len(outputs) == len(REGISTRY)
        for output in outputs:
            assert len(output.text) > 50, output.artefact


class TestDeprecatedShims:
    def test_experiments_dict_warns_and_matches_registry(self):
        with pytest.deprecated_call():
            legacy = runner.EXPERIMENTS
        assert set(legacy) == set(REGISTRY)
        title, renderer = legacy["table3"]
        assert title == REGISTRY["table3"].title
        assert "p2.xlarge" in renderer()

    def test_experiment_output_warns_and_aliases_result(self):
        from repro.experiments.engine import ExperimentResult

        with pytest.deprecated_call():
            legacy_cls = runner.ExperimentOutput
        assert legacy_cls is ExperimentResult

    def test_run_all_keeps_old_output_shape(self):
        (output,) = run_all(("table3",))
        # the fields the old ExperimentOutput namedtuple-style carried
        assert output.artefact == "table3"
        assert output.title
        assert output.text

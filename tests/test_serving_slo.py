"""Tests for the latency-SLO serving extension experiment."""

from __future__ import annotations

import pytest

from repro.experiments import ext_serving_slo


@pytest.fixture(scope="module")
def study():
    # smaller workload than the default for test speed
    return ext_serving_slo.run(
        rate_per_s=600.0, duration_s=30.0, slo_s=2.0, max_instances=8
    )


class TestServingSLO:
    def test_all_points_meet_slo(self, study):
        for row in study.rows:
            assert row.p99_s <= study.slo_s

    def test_pruning_shrinks_fleet(self, study):
        non = study.row("nonpruned")
        allc = study.row("all-conv sweet spot")
        assert allc.instances_needed < non.instances_needed
        assert allc.hourly_cost < non.hourly_cost

    def test_accuracy_ladder(self, study):
        accs = [r.top5 for r in study.rows]
        assert accs == sorted(accs, reverse=True)

    def test_utilisation_sane(self, study):
        for row in study.rows:
            assert 0.0 < row.utilisation <= 1.0

    def test_render(self, study):
        text = ext_serving_slo.render(study)
        assert "p99 SLO" in text and "nonpruned" in text

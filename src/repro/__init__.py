"""repro — reproduction of "Characterizing the Cost-Accuracy Performance of
Cloud Applications" (Rathnayake, Ramapantulu, Teo; ICPP Workshops 2020).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.  Subpackages:

* :mod:`repro.cnn`        — NumPy CNN inference engine (Caffenet, Googlenet)
* :mod:`repro.pruning`    — L1-filter / magnitude pruning, sparse compute
* :mod:`repro.perf`       — GPU device + roofline latency + batching models
* :mod:`repro.cloud`      — EC2 catalog, pricing, configurations, simulator
* :mod:`repro.calibration`— paper-calibrated accuracy/time response curves
* :mod:`repro.core`       — TAR/CAR, Pareto filter, Algorithm 1, pipeline
* :mod:`repro.experiments`— regeneration of every table and figure

Quickstart::

    from repro import (
        CloudSimulator, PruneSpec, ResourceConfiguration, CloudInstance,
        caffenet_time_model, caffenet_accuracy_model, instance_type,
    )

    sim = CloudSimulator(caffenet_time_model(), caffenet_accuracy_model())
    spec = PruneSpec({"conv1": 0.3, "conv2": 0.5})
    config = ResourceConfiguration([CloudInstance(instance_type("p2.xlarge"))])
    result = sim.run(spec, config, images=50_000)
    print(result.time_s, result.cost, result.accuracy, result.tar(), result.car())
"""

from __future__ import annotations

from repro.calibration import (
    AccuracyModel,
    AccuracyPair,
    caffenet_accuracy_model,
    caffenet_time_model,
    googlenet_accuracy_model,
    googlenet_time_model,
)
from repro.cloud import (
    CloudInstance,
    CloudSimulator,
    EC2_CATALOG,
    InstanceType,
    ResourceConfiguration,
    SimulationResult,
    instance_type,
)
from repro.cnn import Network, build_caffenet, build_googlenet, build_small_cnn
from repro.core import (
    CostAccuracyPipeline,
    brute_force_allocate,
    car,
    enumerate_configurations,
    find_sweet_spot,
    greedy_allocate,
    pareto_front,
    tar,
)
from repro.errors import ReproError
from repro.perf import BatchingModel, CalibratedTimeModel, K80, M60
from repro.pruning import (
    DegreeOfPruning,
    L1FilterPruner,
    MagnitudePruner,
    PruneSpec,
    single_layer_sweep,
    uniform_sweep,
)

__version__ = "1.0.0"

__all__ = [
    "AccuracyModel",
    "AccuracyPair",
    "BatchingModel",
    "CalibratedTimeModel",
    "CloudInstance",
    "CloudSimulator",
    "CostAccuracyPipeline",
    "DegreeOfPruning",
    "EC2_CATALOG",
    "InstanceType",
    "K80",
    "L1FilterPruner",
    "M60",
    "MagnitudePruner",
    "Network",
    "PruneSpec",
    "ReproError",
    "ResourceConfiguration",
    "SimulationResult",
    "brute_force_allocate",
    "build_caffenet",
    "build_googlenet",
    "build_small_cnn",
    "caffenet_accuracy_model",
    "caffenet_time_model",
    "car",
    "enumerate_configurations",
    "find_sweet_spot",
    "googlenet_accuracy_model",
    "googlenet_time_model",
    "greedy_allocate",
    "instance_type",
    "pareto_front",
    "single_layer_sweep",
    "tar",
    "uniform_sweep",
]

"""Golden-artefact regression tests.

The rendered text of the paper's headline artefacts is snapshotted in
``tests/golden/``; any refactor that silently changes a paper number
(or even its formatting) fails here with a diff.  If a change is
*intentional*, regenerate the snapshots and review the diff in the PR:

    PYTHONPATH=src python tests/test_golden.py --regen
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.runner import run_all

GOLDEN_DIR = Path(__file__).parent / "golden"

#: artefacts pinned byte-for-byte (the paper's headline numbers, plus
#: the routed-fleet extension whose cost-reduction claim CI enforces)
GOLDEN_ARTEFACTS = (
    "table1",
    "fig9",
    "fig10",
    "algorithm1",
    "ext-fleet-routing",
    "ext-adaptive-accuracy",
)


def _render(artefact: str) -> str:
    [output] = run_all((artefact,))
    return output.text


class TestGoldenArtefacts:
    @pytest.mark.parametrize("artefact", GOLDEN_ARTEFACTS)
    def test_matches_snapshot(self, artefact):
        path = GOLDEN_DIR / f"{artefact}.txt"
        assert path.exists(), (
            f"missing snapshot {path}; regenerate with "
            "`PYTHONPATH=src python tests/test_golden.py --regen`"
        )
        assert _render(artefact) == path.read_text(), (
            f"{artefact} drifted from its golden snapshot — if the "
            "change is intentional, regenerate and review the diff"
        )

    def test_snapshots_are_nontrivial(self):
        for artefact in GOLDEN_ARTEFACTS:
            text = (GOLDEN_DIR / f"{artefact}.txt").read_text()
            assert len(text) > 100, artefact


def _regen() -> None:  # pragma: no cover - maintenance helper
    GOLDEN_DIR.mkdir(exist_ok=True)
    for artefact in GOLDEN_ARTEFACTS:
        path = GOLDEN_DIR / f"{artefact}.txt"
        path.write_text(_render(artefact))
        print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)

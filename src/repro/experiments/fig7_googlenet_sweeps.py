"""Figure 7: Googlenet per-layer pruning sweeps (six selected layers).

Paper results reproduced here: for the selected layers (two stem
convolutions and four inception-branch convolutions) accuracy stays flat
until ~60% pruning while time decreases; ``conv2-3x3`` has the strongest
time impact (13 -> 9 min, ~30%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration.googlenet import (
    googlenet_accuracy_model,
    googlenet_time_model,
)
from repro.cloud.simulator import CloudSimulator
from repro.cnn.models import GOOGLENET_SELECTED_LAYERS
from repro.experiments.fig6_caffenet_sweeps import LayerSweep, sweep_layer
from repro.experiments.report import format_table

__all__ = ["Fig7Result", "run", "render"]


@dataclass(frozen=True)
class Fig7Result:
    sweeps: tuple[LayerSweep, ...]

    def sweep(self, layer: str) -> LayerSweep:
        for s in self.sweeps:
            if s.layer == layer:
                return s
        raise KeyError(layer)


def run(images: int = 50_000) -> Fig7Result:
    simulator = CloudSimulator(
        googlenet_time_model(), googlenet_accuracy_model()
    )
    return Fig7Result(
        sweeps=tuple(
            sweep_layer(simulator, layer, images=images)
            for layer in GOOGLENET_SELECTED_LAYERS
        )
    )


def render(result: Fig7Result | None = None) -> str:
    result = result or run()
    blocks = []
    for sweep in result.sweeps:
        rows = [
            (f"{r * 100:.0f}%", f"{t:.2f}", f"{a1:.1f}", f"{a5:.1f}")
            for r, t, a1, a5 in zip(
                sweep.ratios, sweep.time_min, sweep.top1, sweep.top5
            )
        ]
        blocks.append(
            f"== {sweep.layer} (last sweet spot: "
            f"{sweep.sweet_spot.last_sweet_spot * 100:.0f}%) ==\n"
            + format_table(
                ["Prune", "Time (min)", "Top-1 (%)", "Top-5 (%)"], rows
            )
        )
    return "\n\n".join(blocks)

"""Figure 2: the three-stage approach, executed end to end.

The paper's Figure 2 is its methodology diagram — application
characterization feeding measurements feeding the model + Pareto
optimization.  This artefact *runs* the diagram via
:class:`~repro.core.pipeline.CostAccuracyPipeline` on Caffenet and
prints each stage's output: the characterization fingerprint, the
measurement table (the "list of degrees of pruning with their inference
time, cost, TAR, and CAR" of Section 3.3), and the Pareto stage's
feasible/front counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration.caffenet import (
    CAFFENET_TIME_SHARES,
    caffenet_accuracy_model,
    caffenet_time_model,
)
from repro.cloud.catalog import P2_TYPES
from repro.core.config_space import enumerate_configurations
from repro.core.pipeline import Characterization, CostAccuracyPipeline
from repro.experiments.report import format_kv, format_table
from repro.perf.measurement import MeasurementRecord
from repro.pruning.schedule import DegreeOfPruning, single_layer_sweep

__all__ = ["Fig2Result", "run", "render"]


@dataclass(frozen=True)
class Fig2Result:
    characterization: Characterization
    measurements: tuple[MeasurementRecord, ...]
    n_points: int
    n_feasible: int
    n_pareto_time: int
    n_pareto_cost: int


def run(images: int = 50_000) -> Fig2Result:
    pipeline = CostAccuracyPipeline(
        caffenet_time_model(), caffenet_accuracy_model()
    )
    # stage 1: characterization
    characterization = pipeline.characterize(CAFFENET_TIME_SHARES)
    # stage 2: measurements over a degrees-of-pruning ladder
    degrees = single_layer_sweep("conv2") + single_layer_sweep("conv1")
    seen: set[str] = set()
    unique: list[DegreeOfPruning] = []
    for d in degrees:
        if d.label not in seen:
            seen.add(d.label)
            unique.append(d)
    measurements = tuple(pipeline.measure(unique, images))
    # stage 3: model + Pareto over a configuration space
    configurations = enumerate_configurations(P2_TYPES, max_per_type=2)
    points = pipeline.explore(
        unique,
        configurations,
        images=20_000_000,
        deadline_s=10 * 3600.0,
        budget=300.0,
    )
    feasible = pipeline.feasible(points)
    time_front = pipeline.pareto(points, objective="time", metric="top5")
    cost_front = pipeline.pareto(points, objective="cost", metric="top5")
    return Fig2Result(
        characterization=characterization,
        measurements=measurements,
        n_points=len(points),
        n_feasible=len(feasible),
        n_pareto_time=len(time_front),
        n_pareto_cost=len(cost_front),
    )


def render(result: Fig2Result | None = None) -> str:
    result = result or run()
    ch = result.characterization
    stage1 = format_kv(
        [
            ("single inference (s)", f"{ch.single_inference_s:.3f}"),
            (
                "single inference, 90% pruned (s)",
                f"{ch.single_inference_pruned_s:.3f}",
            ),
            ("GPU saturation batch", ch.saturation_batch),
            (
                "heaviest layers",
                ", ".join(
                    f"{l} {s:.0%}"
                    for l, s in sorted(
                        ch.layer_time_shares.items(),
                        key=lambda kv: -kv[1],
                    )[:2]
                ),
            ),
        ]
    )
    rows = [
        (
            r.label,
            f"{r.time_s / 60:.2f}",
            f"{r.cost:.3f}",
            f"{r.top5:.1f}",
            f"{r.tar('top5'):.3f}",
            f"{r.car('top5'):.3f}",
        )
        for r in result.measurements[:8]
    ]
    stage2 = format_table(
        ["Degree", "Time (min)", "Cost ($)", "Top-5", "TAR", "CAR"],
        rows,
    )
    stage3 = format_kv(
        [
            ("configuration points", result.n_points),
            ("feasible (T' and C')", result.n_feasible),
            ("time-accuracy Pareto points", result.n_pareto_time),
            ("cost-accuracy Pareto points", result.n_pareto_cost),
        ]
    )
    return (
        "== stage 1: application characterization ==\n"
        + stage1
        + "\n\n== stage 2: measurements (first rows) ==\n"
        + stage2
        + "\n\n== stage 3: model + Pareto optimization ==\n"
        + stage3
    )

"""Inverse planning queries over the configuration space.

The paper answers "what fits inside (T', C')?"; a consumer budgeting a
project asks the inverse questions:

* :func:`min_budget_for` — the cheapest money that buys a target
  accuracy within a deadline;
* :func:`min_deadline_for` — the shortest completion time a budget can
  buy at a target accuracy;
* :func:`iso_accuracy_frontier` — the (deadline, budget) trade curve
  for one accuracy target: every point is a different Pareto-optimal
  configuration for the same result quality.

All three scan a (degrees x configurations) space evaluated through the
same simulator as everything else.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.simulator import CloudSimulator, SimulationResult
from repro.core.pareto import pareto_front
from repro.errors import InfeasibleError
from repro.pruning.schedule import DegreeOfPruning

__all__ = [
    "PlanningSpace",
    "min_budget_for",
    "min_deadline_for",
    "iso_accuracy_frontier",
]


@dataclass(frozen=True)
class PlanningSpace:
    """An evaluated (degree x configuration) space to plan over."""

    results: tuple[SimulationResult, ...]
    metric: str = "top5"

    @classmethod
    def evaluate(
        cls,
        simulator: CloudSimulator,
        degrees: Sequence[DegreeOfPruning],
        configurations: Sequence[ResourceConfiguration],
        images: int,
        metric: str = "top5",
    ) -> "PlanningSpace":
        results = tuple(
            simulator.run(d.spec, c, images)
            for d in degrees
            for c in configurations
        )
        return cls(results=results, metric=metric)

    # ------------------------------------------------------------------
    def _accurate_enough(self, target: float):
        return [
            r
            for r in self.results
            if r.accuracy.get(self.metric) >= target
        ]

    def reachable_accuracy(self) -> float:
        """Best accuracy anywhere in the space (no constraints)."""
        return max(r.accuracy.get(self.metric) for r in self.results)


def min_budget_for(
    space: PlanningSpace,
    target_accuracy: float,
    deadline_s: float,
) -> SimulationResult:
    """Cheapest configuration reaching ``target_accuracy`` in time."""
    candidates = [
        r
        for r in space._accurate_enough(target_accuracy)
        if r.time_s <= deadline_s
    ]
    if not candidates:
        raise InfeasibleError(
            f"no configuration reaches {target_accuracy}% "
            f"{space.metric} within {deadline_s:.0f}s"
        )
    return min(candidates, key=lambda r: (r.cost, r.time_s))


def min_deadline_for(
    space: PlanningSpace,
    target_accuracy: float,
    budget: float,
) -> SimulationResult:
    """Fastest configuration reaching ``target_accuracy`` on budget."""
    candidates = [
        r
        for r in space._accurate_enough(target_accuracy)
        if r.cost <= budget
    ]
    if not candidates:
        raise InfeasibleError(
            f"no configuration reaches {target_accuracy}% "
            f"{space.metric} within ${budget:.2f}"
        )
    return min(candidates, key=lambda r: (r.time_s, r.cost))


def iso_accuracy_frontier(
    space: PlanningSpace, target_accuracy: float
) -> list[SimulationResult]:
    """The (time, cost) Pareto curve at one accuracy target.

    Points are mutually non-dominated in (time, cost) among all
    configurations meeting the accuracy bar; walking the curve trades
    money for completion time at constant result quality.
    """
    candidates = space._accurate_enough(target_accuracy)
    if not candidates:
        raise InfeasibleError(
            f"no configuration reaches {target_accuracy}% {space.metric}"
        )
    # reuse the 2-D filter with accuracy := -time (maximise -time)
    front = pareto_front(
        [(-r.time_s, r.cost, r) for r in candidates]
    )
    return [p.payload for p in front]

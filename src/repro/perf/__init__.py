"""GPU performance models.

The paper measures CNN inference on virtualised EC2 GPUs (NVIDIA K80 and
M60).  Without that hardware we model it, in three parts:

* :mod:`repro.perf.device` — device descriptions (cores, memory,
  bandwidth, peak compute) for the two GPU types of the paper's Table 3;
* :mod:`repro.perf.latency` — a roofline per-layer latency model driven by
  the CNN engine's FLOP/byte accounting, plus the calibrated whole-network
  time model used by the cloud simulator;
* :mod:`repro.perf.batching` — the parallel-inference saturation model
  behind Figure 5 (GPU saturates around 300 concurrent inferences);
* :mod:`repro.perf.measurement` — the paper's measurement protocol
  (three runs, keep the minimum) and measurement records.
"""

from repro.perf.batching import BatchingModel
from repro.perf.device import K80, M60, GPUDevice
from repro.perf.latency import CalibratedTimeModel, RooflineLatencyModel
from repro.perf.measurement import MeasurementRecord, measure_min

__all__ = [
    "BatchingModel",
    "CalibratedTimeModel",
    "GPUDevice",
    "K80",
    "M60",
    "MeasurementRecord",
    "RooflineLatencyModel",
    "measure_min",
]

"""Unit tests for individual layer types: shapes, values, cost stats."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnn.activations import ReLU, Softmax
from repro.cnn.conv import ConvLayer, conv_output_hw, im2col
from repro.cnn.dense import DenseLayer, Flatten
from repro.cnn.layers import ITEMSIZE, LayerStats
from repro.cnn.normalization import LocalResponseNorm
from repro.cnn.pooling import AvgPool, GlobalAvgPool, MaxPool
from repro.errors import ShapeError


class TestConvOutputHW:
    def test_basic(self):
        assert conv_output_hw(227, 227, 11, 4, 0) == (55, 55)

    def test_padded(self):
        assert conv_output_hw(27, 27, 5, 1, 2) == (27, 27)

    def test_stride_two(self):
        assert conv_output_hw(224, 224, 7, 2, 3) == (112, 112)

    def test_too_small_raises(self):
        with pytest.raises(ShapeError):
            conv_output_hw(4, 4, 7, 1, 0)


class TestIm2col:
    def test_identity_kernel_one(self):
        x = np.arange(2 * 3 * 4 * 4, dtype=np.float32).reshape(2, 3, 4, 4)
        cols, oh, ow = im2col(x, kernel=1, stride=1, pad=0)
        assert (oh, ow) == (4, 4)
        np.testing.assert_array_equal(cols, x.reshape(2, 3, 16))

    def test_known_patch(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        cols, oh, ow = im2col(x, kernel=2, stride=2, pad=0)
        assert (oh, ow) == (2, 2)
        # first output position sees pixels (0,0),(0,1),(1,0),(1,1) = 0,1,4,5
        np.testing.assert_array_equal(cols[0, :, 0], [0, 1, 4, 5])
        # last position sees 10,11,14,15
        np.testing.assert_array_equal(cols[0, :, 3], [10, 11, 14, 15])

    def test_padding_zeroes_border(self):
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        cols, oh, ow = im2col(x, kernel=3, stride=1, pad=1)
        assert (oh, ow) == (2, 2)
        # corner window: 4 zeros from padding + ... total sum = 4 ones
        assert cols[0, :, 0].sum() == 4.0


class TestConvLayer:
    def test_matches_naive_convolution(self, rng):
        layer = ConvLayer("c", 2, 3, kernel=3, stride=1, pad=1, rng=rng)
        x = rng.standard_normal((2, 2, 5, 5)).astype(np.float32)
        out = layer.forward(x)
        # naive direct convolution
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros_like(out)
        for n in range(2):
            for o in range(3):
                for i in range(5):
                    for j in range(5):
                        patch = xp[n, :, i : i + 3, j : j + 3]
                        ref[n, o, i, j] = (
                            patch * layer.weights[o]
                        ).sum() + layer.bias[o]
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_grouped_conv_isolates_groups(self, rng):
        layer = ConvLayer("g", 4, 4, kernel=1, groups=2, rng=rng)
        x = rng.standard_normal((1, 4, 3, 3)).astype(np.float32)
        base = layer.forward(x)
        # perturbing group-2 input channels must not change group-1 output
        x2 = x.copy()
        x2[:, 2:] += 10.0
        out = layer.forward(x2)
        np.testing.assert_allclose(out[:, :2], base[:, :2], rtol=1e-5)
        assert not np.allclose(out[:, 2:], base[:, 2:])

    def test_stride_and_shape(self, rng):
        layer = ConvLayer("c", 3, 96, kernel=11, stride=4, rng=rng)
        assert layer.output_shape((3, 227, 227)) == (96, 55, 55)

    def test_channel_mismatch_raises(self, rng):
        layer = ConvLayer("c", 3, 8, kernel=3, rng=rng)
        with pytest.raises(ShapeError):
            layer.output_shape((4, 10, 10))

    def test_bad_groups_raises(self):
        with pytest.raises(ShapeError):
            ConvLayer("c", 3, 8, kernel=3, groups=2)

    def test_stats_flops_formula(self, rng):
        layer = ConvLayer("c", 3, 96, kernel=11, stride=4, rng=rng)
        stats = layer.stats((3, 227, 227))
        assert stats.flops == 2 * 55 * 55 * 96 * 11 * 11 * 3
        assert stats.params == 96 * 3 * 11 * 11 + 96

    def test_effective_stats_tracks_density(self, rng):
        layer = ConvLayer("c", 4, 8, kernel=3, rng=rng)
        dense = layer.stats((4, 10, 10))
        layer.weights[:4] = 0.0  # kill half the filters
        eff = layer.effective_stats((4, 10, 10))
        assert eff.flops == pytest.approx(dense.flops / 2, rel=0.01)
        assert eff.weight_bytes < dense.weight_bytes

    def test_filter_shape_matches_table1(self, rng):
        conv2 = ConvLayer("conv2", 96, 256, kernel=5, pad=2, groups=2, rng=rng)
        assert conv2.filter_shape == (5, 5, 48)


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = MaxPool("p", kernel=2, stride=2).forward(x)
        np.testing.assert_array_equal(
            out[0, 0], [[5.0, 7.0], [13.0, 15.0]]
        )

    def test_maxpool_negative_input_with_padding(self):
        # zero padding would wrongly win over all-negative activations
        x = -np.ones((1, 1, 3, 3), dtype=np.float32)
        out = MaxPool("p", kernel=3, stride=2, pad=1).forward(x)
        assert (out == -1.0).all()

    def test_avgpool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = AvgPool("p", kernel=2, stride=2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_global_avgpool(self):
        x = np.arange(8, dtype=np.float32).reshape(1, 2, 2, 2)
        out = GlobalAvgPool("g").forward(x)
        assert out.shape == (1, 2, 1, 1)
        np.testing.assert_allclose(out.ravel(), [1.5, 5.5])

    def test_overlapping_pool_shape(self):
        # Caffenet pool1: 55 -> 27 with 3x3 stride 2
        p = MaxPool("p", kernel=3, stride=2)
        assert p.output_shape((96, 55, 55)) == (96, 27, 27)


class TestDense:
    def test_affine_values(self, rng):
        layer = DenseLayer("d", 3, 2, rng=rng)
        layer.weights = np.array([[1, 0, 0], [0, 2, 0]], dtype=np.float32)
        layer.bias = np.array([1, -1], dtype=np.float32)
        x = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
        np.testing.assert_allclose(layer.forward(x), [[2.0, 3.0]])

    def test_feature_mismatch_raises(self, rng):
        layer = DenseLayer("d", 3, 2, rng=rng)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((1, 4), dtype=np.float32))

    def test_flatten_roundtrip(self, rng):
        x = rng.standard_normal((2, 3, 4, 5)).astype(np.float32)
        out = Flatten("f").forward(x)
        assert out.shape == (2, 60)
        np.testing.assert_array_equal(out[1], x[1].ravel())


class TestActivations:
    def test_relu(self):
        x = np.array([[-1.0, 0.0, 2.0]], dtype=np.float32)
        np.testing.assert_array_equal(
            ReLU("r").forward(x), [[0.0, 0.0, 2.0]]
        )

    def test_softmax_rows_sum_to_one(self, rng):
        x = rng.standard_normal((4, 10)).astype(np.float32) * 50
        out = Softmax("s").forward(x)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-5)
        assert (out >= 0).all()

    def test_softmax_stability_large_logits(self):
        x = np.array([[1000.0, 1000.0]], dtype=np.float32)
        out = Softmax("s").forward(x)
        np.testing.assert_allclose(out, [[0.5, 0.5]])


class TestLRN:
    def test_matches_direct_computation(self, rng):
        lrn = LocalResponseNorm("n", local_size=3, alpha=0.1, beta=0.5, k=2.0)
        x = rng.standard_normal((1, 5, 2, 2)).astype(np.float32)
        out = lrn.forward(x)
        # direct per-channel windowed computation
        sq = x * x
        for c in range(5):
            lo, hi = max(0, c - 1), min(5, c + 2)
            denom = (2.0 + (0.1 / 3) * sq[:, lo:hi].sum(axis=1)) ** 0.5
            np.testing.assert_allclose(
                out[:, c], x[:, c] / denom, rtol=1e-5
            )

    def test_preserves_shape(self, rng):
        lrn = LocalResponseNorm("n")
        x = rng.standard_normal((2, 96, 27, 27)).astype(np.float32)
        assert lrn.forward(x).shape == x.shape

    def test_even_local_size_rejected(self):
        with pytest.raises(ShapeError):
            LocalResponseNorm("n", local_size=4)


class TestLayerStats:
    def test_addition(self):
        a = LayerStats(1, 2, 3, 4, 5)
        b = LayerStats(10, 20, 30, 40, 50)
        c = a + b
        assert (c.flops, c.params) == (11, 55)
        assert c.total_bytes == (2 + 3 + 4) + (20 + 30 + 40)

    @given(
        st.integers(1, 8),
        st.integers(1, 8),
        st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_dense_stats_consistent(self, inf, outf, _batch):
        layer = DenseLayer("d", inf, outf)
        stats = layer.stats((inf,))
        assert stats.flops == 2 * inf * outf
        assert stats.params == inf * outf + outf
        assert stats.input_bytes == inf * ITEMSIZE

"""Resource configurations: the paper's *R* and Equations 1-4.

A :class:`ResourceConfiguration` is a multiset of allocated instances.
Evaluating a (degree of pruning, configuration) pair applies the paper's
model:

    W_i = W / |R|                  (Eq. 4 — even split across resources)
    n_i = W_i / b_i                (Eq. 3 — batches per resource)
    T   = max_i n_i * t_{b,a}      (Eq. 2 — makespan)
    C   = T * sum_i c_i            (Eq. 1 — every instance is billed for
                                    the whole makespan)

Equation 1 bills *all* resources for the makespan ``T`` (instances are
released together), which is how the paper couples its time and cost
Pareto frontiers.  A capacity-proportional split alternative is provided
for the workload-split ablation.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.cloud.instance import CloudInstance
from repro.cloud.pricing import hourly_rate_cost
from repro.errors import ConfigurationError
from repro.perf.latency import CalibratedTimeModel
from repro.pruning.base import PruneSpec

__all__ = ["ResourceConfiguration"]


@dataclass(frozen=True)
class ResourceConfiguration:
    """A multiset of allocated cloud instances (the paper's *R*)."""

    instances: tuple[CloudInstance, ...]

    def __init__(self, instances: Iterable[CloudInstance]) -> None:
        items = tuple(instances)
        if not items:
            raise ConfigurationError("a configuration needs >= 1 instance")
        object.__setattr__(self, "instances", items)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instances)

    @property
    def total_price_per_hour(self) -> float:
        """sum_i c_i of Equation 1."""
        return sum(inst.price_per_hour for inst in self.instances)

    @property
    def total_gpus(self) -> int:
        return sum(inst.gpus_used for inst in self.instances)

    def label(self) -> str:
        """Compact multiset label, e.g. ``2xp2.xlarge+1xp2.8xlarge``."""
        counts = Counter(inst.name for inst in self.instances)
        return "+".join(f"{n}x{name}" for name, n in sorted(counts.items()))

    # ------------------------------------------------------------------
    def split_workload(self, images: int) -> list[int]:
        """Eq. 4: even split, remainder spread over the first instances."""
        if images < 0:
            raise ConfigurationError("images must be non-negative")
        base, extra = divmod(images, len(self.instances))
        return [
            base + (1 if i < extra else 0)
            for i in range(len(self.instances))
        ]

    def split_workload_proportional(
        self, images: int, time_model: CalibratedTimeModel, spec: PruneSpec
    ) -> list[int]:
        """Capacity-proportional split (the Ablation C alternative).

        Shares are proportional to each instance's saturated throughput
        for the pruned model, so heterogeneous configurations finish
        near-simultaneously instead of waiting for the slowest resource.
        """
        rates = np.array(
            [
                inst.gpus_used
                * inst.itype.gpu.inference_speedup
                for inst in self.instances
            ],
            dtype=float,
        )
        shares = rates / rates.sum()
        alloc = np.floor(shares * images).astype(int)
        # hand the remainder to the fastest instances
        remainder = images - int(alloc.sum())
        order = np.argsort(-rates, kind="stable")
        for i in range(remainder):
            alloc[order[i % len(alloc)]] += 1
        return alloc.tolist()

    # ------------------------------------------------------------------
    def makespan(
        self,
        time_model: CalibratedTimeModel,
        spec: PruneSpec,
        images: int,
        proportional_split: bool = False,
    ) -> float:
        """T of Equation 2, in seconds."""
        if proportional_split:
            allocation = self.split_workload_proportional(
                images, time_model, spec
            )
        else:
            allocation = self.split_workload(images)
        return max(
            inst.inference_time(time_model, spec, w)
            for inst, w in zip(self.instances, allocation)
        )

    def cost(
        self,
        time_model: CalibratedTimeModel,
        spec: PruneSpec,
        images: int,
        proportional_split: bool = False,
    ) -> float:
        """C of Equation 1: makespan x total hourly rate (per-second billed)."""
        t = self.makespan(
            time_model, spec, images, proportional_split=proportional_split
        )
        return hourly_rate_cost(self.total_price_per_hour, t)

    def evaluate(
        self,
        time_model: CalibratedTimeModel,
        spec: PruneSpec,
        images: int,
        proportional_split: bool = False,
    ) -> tuple[float, float]:
        """(T seconds, C dollars) in one pass."""
        t = self.makespan(
            time_model, spec, images, proportional_split=proportional_split
        )
        return t, hourly_rate_cost(self.total_price_per_hour, t)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label()

"""Extension: per-request adaptive accuracy under a flash crowd.

The paper's tiered-fleet argument (``ext-fleet-routing``) freezes the
pruning degree per replica and per request class: a floor either maps
to a replica tier or the request is shed.  This experiment promotes the
degree to a *per-request decision* — the ``adaptive`` routing policy
picks the highest-accuracy replica whose estimated wait fits the
request's deadline, and past the admission policy's ``degrade_limit``
the floor itself is waived so overload is served at reduced accuracy
*before* anything is shed.  Three views:

1. **Flash crowd, whole run** — the same heterogeneous fleet (one
   unpruned p2.xlarge "gold" + two sweet-spot-pruned p2.xlarge
   "cheap" replicas) under a quiet/crowd/quiet arrival profile, once
   with static ``tiered`` routing + queue-limit shedding and once with
   ``adaptive`` routing + graceful degradation.  The static fleet
   funnels every 75%-floor request onto gold, whose backlog trips the
   queue limit and sheds *everyone*; the adaptive fleet spills floored
   requests onto the pruned replicas instead.
2. **Crowd segment** — per-decision accounting restricted to the
   crowd window: offered, shed, served-at-floor and degraded counts,
   where dynamic degradation must beat the static policy's
   goodput-at-accuracy (the acceptance bar for this study).
3. **Frontier** — :func:`repro.api.goodput_accuracy_frontier` over
   static and adaptive variants at two fleet sizes: the planner view
   of what degradation buys per dollar.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.calibration.caffenet import (
    caffenet_accuracy_model,
    caffenet_time_model,
)
from repro.cloud.catalog import instance_type
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.instance import CloudInstance
from repro.api import fleet_report, goodput_accuracy_frontier
from repro.experiments.report import format_kv, format_table
from repro.pruning.base import PruneSpec
from repro.serving.arrivals import poisson_arrivals
from repro.serving.batcher import BatchPolicy
from repro.serving.fleet import FleetSpec, FleetWorkload
from repro.serving.router import AdmissionPolicy, ReplicaSpec

__all__ = [
    "AdaptiveAccuracyStudy",
    "CrowdRow",
    "FleetRow",
    "FrontierRow",
    "run",
    "render",
]

#: the paper's Figure 8 sweet-spot combination (70% Top-5)
_SWEET_SPOT = PruneSpec({"conv1": 0.3, "conv2": 0.5})
_BATCH = BatchPolicy(max_batch=32, max_wait_s=0.05)

_QUIET_RATE = 40.0
_CROWD_RATE = 110.0
_SEGMENT_S = 60.0
_FLOOR_TOP5 = 75.0
_QUEUE_LIMIT = 50.0
_DEGRADE_LIMIT = 25.0


@dataclass(frozen=True)
class FleetRow:
    """One policy's whole-run outcome under the flash crowd."""

    name: str
    shed: int
    degraded: int
    availability: float
    p99_s: float
    goodput: float
    goodput_at_accuracy: float


@dataclass(frozen=True)
class CrowdRow:
    """Per-decision accounting inside the crowd window."""

    name: str
    offered: int
    shed: int
    at_floor: int
    degraded: int


@dataclass(frozen=True)
class FrontierRow:
    """One candidate fleet on the goodput-at-accuracy frontier query."""

    name: str
    rate_per_h: float
    goodput_at_accuracy: float
    on_frontier: bool


@dataclass(frozen=True)
class AdaptiveAccuracyStudy:
    """Everything the adaptive-accuracy extension measured."""

    flash: tuple[FleetRow, ...]
    crowd: tuple[CrowdRow, ...]
    frontier: tuple[FrontierRow, ...]
    crowd_goodput_gain_pct: float

    def flash_row(self, name: str) -> FleetRow:
        """The whole-run row named ``name``."""
        for row in self.flash:
            if row.name == name:
                return row
        raise KeyError(name)

    def crowd_row(self, name: str) -> CrowdRow:
        """The crowd-window row named ``name``."""
        for row in self.crowd:
            if row.name == name:
                return row
        raise KeyError(name)


def _xlarge() -> ResourceConfiguration:
    return ResourceConfiguration(
        [CloudInstance(instance_type("p2.xlarge"))]
    )


def _replicas(cheap: int) -> tuple[ReplicaSpec, ...]:
    gold = ReplicaSpec("gold", _xlarge(), PruneSpec.unpruned(), _BATCH)
    names = ("cheap-a", "cheap-b")
    return (gold,) + tuple(
        ReplicaSpec(names[i], _xlarge(), _SWEET_SPOT, _BATCH)
        for i in range(cheap)
    )


def _flash_crowd(seed: int) -> np.ndarray:
    """Quiet / crowd / quiet Poisson segments, concatenated."""
    quiet_a = poisson_arrivals(_QUIET_RATE, _SEGMENT_S, seed=seed)
    crowd = poisson_arrivals(_CROWD_RATE, _SEGMENT_S, seed=seed + 1)
    quiet_b = poisson_arrivals(_QUIET_RATE, _SEGMENT_S, seed=seed + 2)
    return np.concatenate(
        [quiet_a, crowd + _SEGMENT_S, quiet_b + 2 * _SEGMENT_S]
    )


def _request_mixtures(
    n: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Floors and deadlines for ``n`` arrivals, seeded like
    :class:`~repro.serving.fleet.FleetWorkload` derives its own."""
    floors = np.random.default_rng(seed + 0x0F100).choice(
        [0.0, _FLOOR_TOP5], size=n, p=[0.6, 0.4]
    )
    deadlines = np.random.default_rng(seed + 0x0D1E5).choice(
        [0.6, 3.0], size=n, p=[0.5, 0.5]
    )
    return floors, deadlines


@lru_cache(maxsize=1)
def run(seed: int = 17) -> AdaptiveAccuracyStudy:
    """Run the flash-crowd comparison; deterministic for a fixed seed."""
    tm, am = caffenet_time_model(), caffenet_accuracy_model()
    replicas = _replicas(cheap=2)
    arrivals = _flash_crowd(seed)
    floors, deadlines = _request_mixtures(arrivals.size, seed)

    static_spec = FleetSpec(
        tm,
        am,
        replicas,
        routing="tiered",
        admission=AdmissionPolicy(queue_limit=_QUEUE_LIMIT),
    )
    adaptive_spec = FleetSpec(
        tm,
        am,
        replicas,
        routing="adaptive",
        admission=AdmissionPolicy(
            queue_limit=_QUEUE_LIMIT, degrade_limit=_DEGRADE_LIMIT
        ),
    )

    top5 = np.array(
        [am.accuracy(r.spec).top5 for r in replicas], dtype=float
    )
    crowd_mask = (arrivals >= _SEGMENT_S) & (
        arrivals < 2 * _SEGMENT_S
    )

    flash, crowd = [], []
    crowd_at_floor = {}
    for name, spec in (
        ("static tiered", static_spec),
        ("adaptive", adaptive_spec),
    ):
        report = spec.router().run(
            arrivals, floors=floors, deadlines=deadlines
        )
        flash.append(
            FleetRow(
                name=name,
                shed=report.shed,
                degraded=report.degraded,
                availability=report.availability,
                p99_s=report.p99,
                goodput=report.goodput,
                goodput_at_accuracy=report.goodput_at_accuracy,
            )
        )
        # decision-level accounting inside the crowd window: a fresh
        # router so route() replays the same admission state
        assignment = spec.router().route(arrivals, floors, deadlines)
        admitted = assignment >= 0
        met = np.zeros(arrivals.size, dtype=bool)
        met[admitted] = (
            top5[assignment[admitted]] >= floors[admitted] - 1e-9
        )
        offered = int(np.count_nonzero(crowd_mask))
        shed = int(np.count_nonzero(crowd_mask & ~admitted))
        at_floor = int(np.count_nonzero(crowd_mask & met))
        crowd.append(
            CrowdRow(
                name=name,
                offered=offered,
                shed=shed,
                at_floor=at_floor,
                degraded=offered - shed - at_floor,
            )
        )
        crowd_at_floor[name] = at_floor

    gain = 100.0 * (
        crowd_at_floor["adaptive"] / max(crowd_at_floor["static tiered"], 1)
        - 1.0
    )

    # planner frontier: what does degradation buy per dollar?  A
    # sustained overload of the gold tier (40% of 100 req/s needs the
    # 75% floor vs ~31 req/s of unpruned capacity) — degradation pays
    # only where there is pruned capacity to degrade *into*.
    frontier_workload = FleetWorkload(
        100.0,
        60.0,
        seed=seed + 3,
        floors=((0.0, 0.6), (_FLOOR_TOP5, 0.4)),
        deadlines=((0.4, 0.5), (1.2, 0.5)),
    )
    candidates = []
    for size, label in ((1, "lean"), (2, "full")):
        fleet = _replicas(cheap=size)
        candidates.append(
            (
                f"{label} static",
                FleetSpec(
                    tm,
                    am,
                    fleet,
                    routing="tiered",
                    admission=AdmissionPolicy(
                        queue_limit=_QUEUE_LIMIT
                    ),
                ),
            )
        )
        candidates.append(
            (
                f"{label} adaptive",
                FleetSpec(
                    tm,
                    am,
                    fleet,
                    routing="adaptive",
                    admission=AdmissionPolicy(
                        queue_limit=_QUEUE_LIMIT,
                        degrade_limit=_DEGRADE_LIMIT,
                    ),
                ),
            )
        )
    frontier_specs = goodput_accuracy_frontier(
        tuple(spec for _, spec in candidates), frontier_workload
    )
    surviving = {id(spec) for spec, _ in frontier_specs}
    reports = {id(spec): report for spec, report in frontier_specs}
    frontier = []
    for label, spec in candidates:
        report = reports.get(id(spec))
        if report is None:
            report = fleet_report(spec, frontier_workload)
        frontier.append(
            FrontierRow(
                name=label,
                rate_per_h=spec.hourly_rate,
                goodput_at_accuracy=report.goodput_at_accuracy,
                on_frontier=id(spec) in surviving,
            )
        )

    return AdaptiveAccuracyStudy(
        flash=tuple(flash),
        crowd=tuple(crowd),
        frontier=tuple(frontier),
        crowd_goodput_gain_pct=gain,
    )


def render(study: AdaptiveAccuracyStudy | None = None) -> str:
    """Render the study as the flash-crowd tables + frontier."""
    study = run() if study is None else study
    parts = [
        "Flash crowd (40 -> 110 -> 40 req/s) over 1x unpruned + "
        "2x pruned p2.xlarge; 40% of requests need Top-5 >= 75%:",
        format_table(
            [
                "policy",
                "shed",
                "degraded",
                "availability",
                "p99 (s)",
                "goodput",
                "goodput@accuracy",
            ],
            [
                [
                    r.name,
                    r.shed,
                    r.degraded,
                    f"{r.availability:.3f}",
                    f"{r.p99_s:.3f}",
                    f"{r.goodput:.1f}",
                    f"{r.goodput_at_accuracy:.1f}",
                ]
                for r in study.flash
            ],
        ),
        "",
        "Crowd window only (60s <= t < 120s), per routing decision:",
        format_table(
            ["policy", "offered", "shed", "at floor", "degraded"],
            [
                [r.name, r.offered, r.shed, r.at_floor, r.degraded]
                for r in study.crowd
            ],
        ),
        "",
        format_kv(
            [
                (
                    "crowd at-floor gain",
                    f"{study.crowd_goodput_gain_pct:.0f}% more "
                    "requests served at their accuracy floor by "
                    "dynamic degradation",
                )
            ]
        ),
        "",
        "Goodput-at-accuracy frontier (sustained 100 req/s, 40% "
        "floored; gold tier alone is ~31 req/s):",
        format_table(
            ["fleet", "$/h", "goodput@accuracy", "on frontier"],
            [
                [
                    r.name,
                    f"{r.rate_per_h:.2f}",
                    f"{r.goodput_at_accuracy:.1f}",
                    "yes" if r.on_frontier else "no",
                ]
                for r in study.frontier
            ],
        ),
    ]
    return "\n".join(parts)

"""Local response normalisation and channel concatenation.

LRN is the AlexNet-era cross-channel normalisation Caffenet applies after
pool1 and pool2; :class:`Concat` joins inception-branch outputs along the
channel axis.
"""

from __future__ import annotations

import numpy as np

from repro.cnn.layers import ITEMSIZE, Layer, LayerStats
from repro.errors import ShapeError

__all__ = ["LocalResponseNorm", "Concat"]


class LocalResponseNorm(Layer):
    """Cross-channel LRN: ``y = x / (k + alpha/n * sum x^2)^beta``.

    Defaults match Caffe's Caffenet deployment (``local_size=5``,
    ``alpha=1e-4``, ``beta=0.75``, ``k=1``).
    """

    def __init__(
        self,
        name: str,
        local_size: int = 5,
        alpha: float = 1e-4,
        beta: float = 0.75,
        k: float = 1.0,
    ) -> None:
        super().__init__(name)
        if local_size < 1 or local_size % 2 == 0:
            raise ShapeError(f"{name}: local_size must be odd and positive")
        self.local_size = local_size
        self.alpha = alpha
        self.beta = beta
        self.k = k

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._require_rank(x, 4)
        sq = x * x
        c = x.shape[1]
        half = self.local_size // 2
        # cumulative sum along channels gives each sliding window in O(c)
        csum = np.cumsum(
            np.pad(sq, ((0, 0), (1, 0), (0, 0), (0, 0))), axis=1
        )
        lo = np.clip(np.arange(c) - half, 0, c)
        hi = np.clip(np.arange(c) + half + 1, 0, c)
        window = csum[:, hi] - csum[:, lo]
        scale = (self.k + (self.alpha / self.local_size) * window) ** self.beta
        return (x / scale).astype(x.dtype, copy=False)

    def stats(self, input_shape: tuple[int, ...]) -> LayerStats:
        c, h, w = input_shape
        size = c * h * w
        # square + windowed sum + pow + divide ~ local_size + 3 ops/element
        return LayerStats(
            flops=(self.local_size + 3) * size,
            input_bytes=size * ITEMSIZE,
            output_bytes=size * ITEMSIZE,
            weight_bytes=0,
            params=0,
        )


class Concat(Layer):
    """Concatenate a list of equal-spatial-size maps along channels.

    Unlike other layers, ``forward`` takes a *list* of arrays; it is only
    used internally by :class:`repro.cnn.inception.InceptionModule`.
    """

    def output_shape_multi(
        self, input_shapes: list[tuple[int, ...]]
    ) -> tuple[int, ...]:
        if not input_shapes:
            raise ShapeError("concat of zero inputs")
        _, h, w = input_shapes[0]
        for shape in input_shapes[1:]:
            if shape[1:] != (h, w):
                raise ShapeError(
                    f"{self.name}: mismatched spatial sizes {input_shapes}"
                )
        return (sum(s[0] for s in input_shapes), h, w)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def forward(self, xs: list[np.ndarray]) -> np.ndarray:  # type: ignore[override]
        return np.concatenate(xs, axis=1)

    def stats(self, input_shape: tuple[int, ...]) -> LayerStats:
        c, h, w = input_shape
        size = c * h * w
        return LayerStats(
            flops=0,
            input_bytes=size * ITEMSIZE,
            output_bytes=size * ITEMSIZE,
            weight_bytes=0,
            params=0,
        )

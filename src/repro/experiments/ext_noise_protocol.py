"""Extension: why the paper measures min-of-3 (Section 3.3).

"To minimize the measurement error, we run each experiment three times
and record the minimum time measurement."  Under the *asymmetric* noise
of virtualised cloud GPUs (interference only ever slows a run), the
minimum is the right estimator; this experiment quantifies it by
replaying the same measurement campaign through the noisy time model at
several noise levels and comparing three estimators' mean absolute
relative error against the clean ground truth.

Expected shape: ``min`` beats ``single`` and beats ``mean`` at every
noise level, and its advantage grows with the noise — the paper's
protocol, justified.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.calibration.caffenet import caffenet_time_model
from repro.experiments.report import format_table
from repro.perf.device import K80
from repro.perf.noise import NoisyTimeModel, estimator_errors
from repro.pruning.base import PruneSpec

__all__ = ["NoiseRow", "NoiseStudy", "run", "render"]


@dataclass(frozen=True)
class NoiseRow:
    spread: float
    err_single: float
    err_mean: float
    err_min: float

    @property
    def min_wins(self) -> bool:
        return (
            self.err_min <= self.err_single
            and self.err_min <= self.err_mean
        )


@dataclass(frozen=True)
class NoiseStudy:
    rows: tuple[NoiseRow, ...]
    runs_per_trial: int

    @property
    def protocol_always_best(self) -> bool:
        return all(r.min_wins for r in self.rows)


@lru_cache(maxsize=1)
def run(
    spreads: tuple[float, ...] = (0.02, 0.05, 0.10, 0.20),
    trials: int = 300,
    runs_per_trial: int = 3,
    seed: int = 23,
) -> NoiseStudy:
    clean = caffenet_time_model()
    rows = []
    for spread in spreads:
        noisy = NoisyTimeModel(clean, spread=spread, sigma=1.0, seed=seed)
        errors = estimator_errors(
            noisy,
            PruneSpec.unpruned(),
            50_000,
            K80,
            trials=trials,
            runs_per_trial=runs_per_trial,
        )
        rows.append(
            NoiseRow(
                spread=spread,
                err_single=errors["single"],
                err_mean=errors["mean"],
                err_min=errors["min"],
            )
        )
    return NoiseStudy(rows=tuple(rows), runs_per_trial=runs_per_trial)


def render(result: NoiseStudy | None = None) -> str:
    result = result or run()
    table = format_table(
        [
            "noise spread",
            "single-run error",
            f"mean-of-{result.runs_per_trial} error",
            f"min-of-{result.runs_per_trial} error (paper)",
        ],
        [
            (
                f"{r.spread:.0%}",
                f"{r.err_single:.2%}",
                f"{r.err_mean:.2%}",
                f"{r.err_min:.2%}",
            )
            for r in result.rows
        ],
    )
    verdict = (
        "min-of-N is the best estimator at every noise level"
        if result.protocol_always_best
        else "WARNING: min-of-N lost somewhere"
    )
    return table + "\n" + verdict

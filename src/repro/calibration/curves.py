"""Piecewise-linear response curves.

The calibration tables store a handful of anchor points per layer
(read from the paper's published sweeps); :class:`PiecewiseCurve`
interpolates between them and clamps outside the anchored range.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import CalibrationError

__all__ = ["PiecewiseCurve"]


class PiecewiseCurve:
    """Monotone-x piecewise-linear interpolation through anchor points.

    Parameters
    ----------
    points:
        ``(x, y)`` pairs with strictly increasing ``x``.  Evaluation
        outside ``[x_min, x_max]`` clamps to the boundary values.
    """

    def __init__(self, points: Sequence[tuple[float, float]]) -> None:
        if len(points) < 2:
            raise CalibrationError("curve needs at least two points")
        xs = np.asarray([p[0] for p in points], dtype=float)
        ys = np.asarray([p[1] for p in points], dtype=float)
        if np.any(np.diff(xs) <= 0):
            raise CalibrationError(
                f"curve x-values must be strictly increasing, got {xs}"
            )
        self._xs = xs
        self._ys = ys

    # ------------------------------------------------------------------
    def __call__(self, x: float | np.ndarray) -> float | np.ndarray:
        y = np.interp(x, self._xs, self._ys)
        return float(y) if np.isscalar(x) else y

    @property
    def points(self) -> list[tuple[float, float]]:
        return list(zip(self._xs.tolist(), self._ys.tolist()))

    @property
    def x_range(self) -> tuple[float, float]:
        return float(self._xs[0]), float(self._xs[-1])

    def is_nonincreasing(self) -> bool:
        """True when the curve never rises (time/accuracy responses)."""
        return bool(np.all(np.diff(self._ys) <= 1e-12))

    # ------------------------------------------------------------------
    @classmethod
    def flat_then_linear(
        cls, knee_x: float, end_x: float, start_y: float, end_y: float
    ) -> "PiecewiseCurve":
        """The sweet-spot shape: constant until ``knee_x``, then linear.

        This is the response family the paper observes for accuracy
        under pruning (flat plateau, then gradual decline).
        """
        if not 0.0 <= knee_x < end_x:
            raise CalibrationError("need 0 <= knee_x < end_x")
        points = []
        if knee_x > 0.0:
            points.append((0.0, start_y))
        points.append((knee_x, start_y))
        points.append((end_x, end_y))
        return cls(points)

    @classmethod
    def linear(
        cls, x0: float, y0: float, x1: float, y1: float
    ) -> "PiecewiseCurve":
        """Straight line through two points (clamped outside)."""
        return cls([(x0, y0), (x1, y1)])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PiecewiseCurve({self.points})"

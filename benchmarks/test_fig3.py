"""Benchmark: Figure 3 — Caffenet execution-time distribution.

Paper: conv1 51%, conv2 16%, conv3 9%, conv4 10%, conv5 7%.
"""

from __future__ import annotations

import pytest

from repro.cnn.models import build_caffenet
from repro.experiments import fig3_time_distribution


def test_fig3_time_distribution(benchmark):
    network = build_caffenet(init="const")
    result = benchmark.pedantic(
        fig3_time_distribution.run,
        args=(network,),
        rounds=3,
        iterations=1,
    )
    assert result.shares["conv1"] == pytest.approx(0.51, abs=0.01)
    assert result.shares["conv2"] == pytest.approx(0.16, abs=0.01)
    assert result.conv_share > 0.90

#!/usr/bin/env python
"""Docstring-coverage gate for the public API.

Walks the given source directories and reports every *public* module,
class, function and method without a docstring.  Public means: name
does not start with ``_`` and is not nested inside a private scope.
``__init__``/dunder methods, ``@overload`` stubs and trivial
``property`` deleters are exempt — the docstring belongs on the class.

Usage (CI runs this over the layers the docs handbook covers):

    python tools/check_docstrings.py src/repro/serving src/repro/core

Exit status 1 and one line per gap when coverage is incomplete.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: decorator names whose defs need no own docstring
EXEMPT_DECORATORS = {"overload"}


def _decorator_names(node: ast.AST) -> set[str]:
    names = set()
    for decorator in getattr(node, "decorator_list", []):
        target = decorator
        if isinstance(target, ast.Call):
            target = target.func
        if isinstance(target, ast.Attribute):
            names.add(target.attr)
        elif isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _walk(node: ast.AST, path: Path, prefix: str, gaps: list[str]) -> None:
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            if not _is_public(child.name):
                continue
            if _decorator_names(child) & EXEMPT_DECORATORS:
                continue
            qualified = f"{prefix}{child.name}"
            if ast.get_docstring(child) is None:
                kind = (
                    "class"
                    if isinstance(child, ast.ClassDef)
                    else "function"
                )
                gaps.append(
                    f"{path}:{child.lineno}: {kind} {qualified} "
                    "has no docstring"
                )
            if isinstance(child, ast.ClassDef):
                _walk(child, path, f"{qualified}.", gaps)


def check_file(path: Path) -> list[str]:
    """Return the docstring gaps in one python source file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    gaps: list[str] = []
    if ast.get_docstring(tree) is None:
        gaps.append(f"{path}:1: module has no docstring")
    _walk(tree, path, "", gaps)
    return gaps


def check_paths(roots: list[Path]) -> list[str]:
    """Return every gap under the given files or directories."""
    gaps: list[str] = []
    for root in roots:
        files = (
            sorted(root.rglob("*.py")) if root.is_dir() else [root]
        )
        for path in files:
            gaps.extend(check_file(path))
    return gaps


def main(argv: list[str]) -> int:
    """CLI entry point: print gaps, exit 1 when any exist."""
    if not argv:
        print(__doc__)
        return 2
    roots = [Path(arg) for arg in argv]
    missing = [root for root in roots if not root.exists()]
    if missing:
        print(f"no such path: {missing}", file=sys.stderr)
        return 2
    gaps = check_paths(roots)
    for gap in gaps:
        print(gap)
    if gaps:
        print(
            f"\n{len(gaps)} public definitions lack docstrings",
            file=sys.stderr,
        )
        return 1
    print("docstring coverage: 100% of public definitions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

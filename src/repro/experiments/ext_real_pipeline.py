"""Extension: the paper's whole methodology with zero paper constants.

Every other big-model experiment leans on curves calibrated to the
paper's published anchors.  This one runs the complete measurement-
driven pipeline (the paper's Figure 2) on a system we can measure for
real, end to end:

1. **characterize/measure** — train a small CNN, sweep L1-filter
   pruning per layer, measure true Top-1/Top-5 accuracy and true
   effective-FLOP cost with the engine (3 runs, min — Section 3.3);
2. **fit** — build an :class:`AccuracyModel` and a
   :class:`CalibratedTimeModel` from those measurements alone with
   :mod:`repro.calibration.fitting`;
3. **model + Pareto** — run the fitted models through the identical
   cloud machinery (EC2 configurations, Eqs. 1-4, Pareto filter, TAR)
   and extract the cost-accuracy frontier.

If the methodology is sound, the fitted pipeline must show the paper's
qualitative structure — sweet spots, a multi-point Pareto frontier,
cost savings at equal accuracy — on a model the paper never saw.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.calibration.accuracy_model import AccuracyPair
from repro.calibration.fitting import fit_accuracy_model, fit_time_model
from repro.cloud.catalog import P2_TYPES
from repro.cnn.datasets import make_classification_data
from repro.cnn.models import build_small_cnn
from repro.cnn.training import SGDTrainer, evaluate_topk
from repro.core.config_space import enumerate_configurations
from repro.core.evalspace import SpaceSpec, evaluate
from repro.experiments.report import format_kv, format_table
from repro.pruning.base import PruneSpec
from repro.pruning.l1_filter import L1FilterPruner
from repro.pruning.schedule import DegreeOfPruning

__all__ = ["RealPipelineResult", "run", "render"]

_LAYERS = ("conv1", "conv2")
_RATIOS = (0.0, 0.25, 0.5, 0.75)


@dataclass(frozen=True)
class RealPipelineResult:
    baseline: AccuracyPair
    sweet_spots: dict[str, float]
    n_feasible: int
    n_pareto: int
    pareto_rows: tuple[tuple[str, str, float, float], ...]
    cost_saving_at_best: float


def _measure_sweeps(network, test):
    """Real per-layer sweeps: accuracy from the engine, time proxied by
    effective FLOPs (the quantity GPU time scales with)."""
    pruner = L1FilterPruner(propagate=True)
    top1, top5, times = {}, {}, {}
    for layer in _LAYERS:
        a1, a5, flops = [], [], []
        for ratio in _RATIOS:
            pruned = pruner.apply(network, PruneSpec({layer: ratio}))
            a1.append(evaluate_topk(pruned, test, k=1) * 100.0)
            a5.append(evaluate_topk(pruned, test, k=3) * 100.0)
            flops.append(pruned.total_stats(effective=True).flops)
        top1[layer] = (_RATIOS, tuple(a1))
        top5[layer] = (_RATIOS, tuple(a5))
        times[layer] = (_RATIOS, tuple(flops))
    return top1, top5, times


@lru_cache(maxsize=1)
def run(seed: int = 31) -> RealPipelineResult:
    # stage 1: train + measure
    train = make_classification_data(n=400, num_classes=5, seed=seed)
    test = make_classification_data(n=200, num_classes=5, seed=seed + 1)
    network = build_small_cnn(seed=seed, width=12)
    SGDTrainer(network, lr=0.03).fit(train, epochs=10, batch_size=32)
    top1_sweeps, top5_sweeps, time_sweeps = _measure_sweeps(network, test)
    baseline = AccuracyPair(
        top1=top1_sweeps[_LAYERS[0]][1][0],
        top5=top5_sweeps[_LAYERS[0]][1][0],
    )

    # a measured multi-layer combination anchors interaction + synergy
    combo = {"conv1": 0.5, "conv2": 0.5}
    pruner = L1FilterPruner(propagate=True)
    combo_net = pruner.apply(network, PruneSpec(combo))
    combo_top5 = evaluate_topk(combo_net, test, k=3) * 100.0
    combo_fraction = (
        combo_net.total_stats(effective=True).flops
        / network.total_stats().flops
    )

    # stage 2: fit models from the measurements alone
    accuracy_model = fit_accuracy_model(
        "small-cnn",
        baseline,
        top1_sweeps,
        top5_sweeps,
        combo_ratios=combo,
        combo_top5=combo_top5,
    )
    # per-image time: scale measured FLOPs to a nominal device rate
    base_flops = network.total_stats().flops
    t_sat = base_flops / 50e9  # nominal 50 GFLOP/s served throughput
    time_model = fit_time_model(
        "small-cnn",
        t_saturated=t_sat,
        single_inference_s=t_sat * 4.0,
        time_sweeps=time_sweeps,
        combo_ratios=combo,
        combo_fraction=combo_fraction,
        per_image_mb=0.5,
        model_mb=1.0,
    )

    # stage 3: the paper's cloud analysis on the fitted models
    degrees = [DegreeOfPruning.of(PruneSpec.unpruned())] + [
        DegreeOfPruning.of(PruneSpec({layer: ratio}))
        for layer in _LAYERS
        for ratio in _RATIOS[1:]
    ] + [DegreeOfPruning.of(PruneSpec(combo))]
    configurations = enumerate_configurations(P2_TYPES, max_per_type=2)
    # workload sized so costs land in whole dollars and the budget binds
    space = evaluate(
        SpaceSpec.build(
            time_model, accuracy_model, degrees, configurations, 2_000_000_000
        )
    )
    budget = 40.0
    feasible = space.feasible(budget=budget)
    front = list(space.front("top1", "cost", budget=budget))
    best = front[0]
    peers = [
        r.cost
        for r in feasible
        if abs(r.accuracy.top1 - best.accuracy.top1) < 1e-9
    ]
    saving = 1.0 - best.cost / max(peers)
    return RealPipelineResult(
        baseline=baseline,
        sweet_spots=dict(accuracy_model.sweet_spots),
        n_feasible=len(feasible),
        n_pareto=len(front),
        pareto_rows=tuple(
            (
                r.spec.label(),
                r.configuration.label(),
                r.accuracy.top1,
                r.cost,
            )
            for r in front
        ),
        cost_saving_at_best=saving,
    )


def render(result: RealPipelineResult | None = None) -> str:
    result = result or run()
    summary = format_kv(
        [
            (
                "measured baseline",
                f"top1 {result.baseline.top1:.1f}% / "
                f"top5 {result.baseline.top5:.1f}%",
            ),
            (
                "fitted sweet spots",
                ", ".join(
                    f"{l}@{k:.0%}" for l, k in result.sweet_spots.items()
                ),
            ),
            ("feasible configurations", result.n_feasible),
            ("Pareto-optimal", result.n_pareto),
            (
                "cost saving at best accuracy",
                f"{result.cost_saving_at_best * 100:.0f}%",
            ),
        ]
    )
    table = format_table(
        ["Degree", "Configuration", "Top-1 (%)", "Cost ($)"],
        [
            (d, c, f"{a:.1f}", f"{cost:.1f}")
            for d, c, a, cost in result.pareto_rows
        ],
    )
    return (
        summary
        + "\n\ncost-accuracy frontier (all numbers trace to real"
        " measurements):\n"
        + table
    )

"""Layer and network latency models.

Two models live here, used for different parts of the reproduction:

:class:`RooflineLatencyModel`
    A physics-style model: each layer costs the larger of its compute
    time (FLOPs / achievable FLOP/s) and its memory time (bytes /
    achievable bandwidth), optionally scaled by per-layer efficiency
    factors fitted to measured data.  Driven by the CNN engine's exact
    per-layer stats; used for the Figure 3 layer-time distribution and
    the roofline-vs-FLOPs ablation.

:class:`CalibratedTimeModel`
    The measurement-driven whole-network model behind every wall-clock
    figure (4, 6-12).  Its per-layer *time response curves*
    ``f_l(p) = layer time fraction remaining at prune ratio p`` come from
    the paper's published sweep endpoints; multi-layer degrees of pruning
    combine multiplicatively with a synergy exponent ``gamma`` fitted to
    the paper's Figure 8 ``conv1-2`` anchor (pruning layers together
    saves super-additively in the measured system — see DESIGN.md §6).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # avoid perf <-> calibration import cycle
    from repro.calibration.curves import PiecewiseCurve

from repro.cnn.layers import LayerStats
from repro.cnn.network import Network
from repro.errors import CalibrationError
from repro.obs import get_metrics
from repro.perf.batching import BatchingModel
from repro.perf.device import GPUDevice
from repro.pruning.base import PruneSpec

__all__ = ["RooflineLatencyModel", "CalibratedTimeModel", "fit_layer_scales"]


class RooflineLatencyModel:
    """Roofline per-layer latency: max(compute time, memory time).

    Parameters
    ----------
    device:
        The GPU executing the network.
    compute_efficiency, memory_efficiency:
        Achievable fraction of the device's peak FLOP/s and bandwidth.
        CNN frameworks on virtualised cloud GPUs land far below peak;
        the defaults reflect the paper's measured Caffenet throughput.
    layer_scales:
        Optional per-layer multipliers fitted to measurements (see
        :func:`fit_layer_scales`); layers absent default to 1.0.
    """

    def __init__(
        self,
        device: GPUDevice,
        compute_efficiency: float = 0.05,
        memory_efficiency: float = 0.25,
        layer_scales: Mapping[str, float] | None = None,
    ) -> None:
        if not 0 < compute_efficiency <= 1 or not 0 < memory_efficiency <= 1:
            raise CalibrationError("efficiencies must be in (0, 1]")
        self.device = device
        self.compute_efficiency = compute_efficiency
        self.memory_efficiency = memory_efficiency
        self.layer_scales = dict(layer_scales or {})

    # ------------------------------------------------------------------
    def layer_time(self, name: str, stats: LayerStats) -> float:
        """Seconds for one layer at batch size 1."""
        compute_s = stats.flops / (
            self.compute_efficiency * self.device.peak_gflops * 1e9
        )
        memory_s = stats.total_bytes / (
            self.memory_efficiency * self.device.bandwidth_gbs * 1e9
        )
        return max(compute_s, memory_s) * self.layer_scales.get(name, 1.0)

    def network_times(
        self, network: Network, effective: bool = True
    ) -> dict[str, float]:
        """Per-top-level-layer seconds for a single inference."""
        return {
            name: self.layer_time(name, stats)
            for name, stats in network.layer_stats(
                effective=effective
            ).items()
        }

    def network_time(self, network: Network, effective: bool = True) -> float:
        """Whole-network single-inference seconds."""
        return sum(self.network_times(network, effective=effective).values())

    def time_distribution(
        self, network: Network, effective: bool = True
    ) -> dict[str, float]:
        """Per-layer share of total time (sums to 1) — Figure 3's quantity."""
        times = self.network_times(network, effective=effective)
        total = sum(times.values())
        return {name: t / total for name, t in times.items()}


def fit_layer_scales(
    network: Network,
    model: RooflineLatencyModel,
    target_shares: Mapping[str, float],
) -> dict[str, float]:
    """Fit per-layer multipliers so the model reproduces measured shares.

    ``target_shares`` maps layer names to their measured fraction of
    total time (the paper's Figure 3).  Layers not mentioned keep scale
    1.0 and absorb the residual share.  This is the "measurement-driven"
    calibration step of the paper's approach: run once against published
    measurements, then reuse the scaled model for predictions.
    """
    total_target = sum(target_shares.values())
    if not 0 < total_target <= 1.0 + 1e-9:
        raise CalibrationError(
            f"target shares must sum to at most 1, got {total_target}"
        )
    base = model.network_times(network, effective=False)
    rest_base = sum(
        t for name, t in base.items() if name not in target_shares
    )
    rest_share = 1.0 - total_target
    if rest_base <= 0 or rest_share <= 0:
        raise CalibrationError("residual layers must have non-zero share")
    # choose total time so the *unscaled* residual layers carry exactly
    # the residual share, then scale each targeted layer to its share.
    total_time = rest_base / rest_share
    scales = {}
    for name, share in target_shares.items():
        if name not in base:
            raise CalibrationError(f"unknown layer {name!r} in targets")
        scales[name] = share * total_time / base[name]
    return scales


# ----------------------------------------------------------------------
# calibrated whole-network model
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CalibratedTimeModel:
    """Measurement-anchored inference-time model for one CNN.

    Attributes
    ----------
    name:
        Model name ("caffenet", "googlenet").
    t_saturated_k80:
        Per-image seconds at full batch utilisation on one K80, unpruned
        (Caffenet: 19 min / 50 000 images = 22.8 ms).
    single_inference_s:
        Batch-1 seconds on one K80, unpruned (Caffenet: 0.09 s).
    time_curves:
        Per-layer remaining-time-fraction curves ``f_l(p)``; ``f_l(0)=1``.
    synergy_gamma:
        Multi-layer synergy exponent: a degree of pruning touching
        ``m >= 2`` layers costs ``(prod f_l)^gamma`` of the base time.
        Fitted to Figure 8's conv1-2 anchor (gamma ~= 2.35 for Caffenet).
    floor_fraction:
        Lower bound on the remaining-time fraction — the memory-bound
        floor no amount of weight sparsity can cross.
    per_image_mb:
        Activation memory per in-flight inference, bounding batch size.
    model_mb:
        Resident model size (weights) in MB.
    batch_overhead_k:
        Dimensionless batching-overhead coefficient of the saturation
        law (see :class:`~repro.perf.batching.BatchingModel`).
    """

    name: str
    t_saturated_k80: float
    single_inference_s: float
    time_curves: Mapping[str, PiecewiseCurve]
    synergy_gamma: float = 1.0
    floor_fraction: float = 0.40
    per_image_mb: float = 5.0
    model_mb: float = 250.0
    saturation_batch: int = 300
    batch_overhead_k: float = 2.95

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        # Per-instance memo of time_fraction keyed by the spec's exact
        # ratio tuple.  Installed here (not as a field) so it never
        # participates in equality/repr and ``dataclasses.replace``
        # always produces an instance with a fresh, empty cache.
        object.__setattr__(self, "_fraction_cache", {})

    def fingerprint(self) -> tuple:
        """Content-based identity for cross-instance cache keying.

        The model holds :class:`PiecewiseCurve` mappings (unhashable, and
        constructors hand out fresh instances per call), so value-equal
        models need a value-derived key: every scalar parameter plus each
        curve's anchor points.
        """
        curves = tuple(
            (layer, tuple(map(tuple, curve.points)))
            for layer, curve in sorted(self.time_curves.items())
        )
        return (
            self.name,
            self.t_saturated_k80,
            self.single_inference_s,
            self.synergy_gamma,
            self.floor_fraction,
            self.per_image_mb,
            self.model_mb,
            self.saturation_batch,
            self.batch_overhead_k,
            curves,
        )

    def time_fraction(self, spec: PruneSpec) -> float:
        """Remaining fraction of inference time under ``spec``.

        Single-layer specs follow their calibrated curve exactly;
        multi-layer specs combine multiplicatively raised to the synergy
        exponent, clamped at the memory floor.  Results are memoized per
        spec: grid evaluations call this once per (model, degree) instead
        of once per (degree, instance, split) — the counter
        ``perf.time_model_evals`` counts true (uncached) evaluations.
        """
        cached = self._fraction_cache.get(spec.ratios)
        if cached is not None:
            return cached
        fraction = self._time_fraction_uncached(spec)
        self._fraction_cache[spec.ratios] = fraction
        return fraction

    def _time_fraction_uncached(self, spec: PruneSpec) -> float:
        get_metrics().counter("perf.time_model_evals").inc()
        if spec.is_unpruned():
            return 1.0
        product = 1.0
        pruned_layers = 0
        for layer, ratio in spec.ratios:
            curve = self.time_curves.get(layer)
            if curve is None:
                # layer without calibrated data: assume time-neutral
                continue
            product *= curve(ratio)
            pruned_layers += 1
        if pruned_layers >= 2:
            product **= self.synergy_gamma
        return max(self.floor_fraction, product)

    # ------------------------------------------------------------------
    def saturated_per_image(
        self, spec: PruneSpec, device: GPUDevice
    ) -> float:
        """Saturated per-image seconds for the pruned model on ``device``."""
        return (
            self.t_saturated_k80
            * self.time_fraction(spec)
            / device.inference_speedup
        )

    def single_inference(self, spec: PruneSpec, device: GPUDevice) -> float:
        """Batch-1 seconds (the Figure 4 quantity)."""
        return (
            self.single_inference_s
            * self.time_fraction(spec)
            / device.inference_speedup
        )

    def batching_model(
        self, spec: PruneSpec, device: GPUDevice
    ) -> BatchingModel:
        """Batch-size-aware time model for the pruned network on ``device``."""
        t_sat = self.saturated_per_image(spec, device)
        return BatchingModel(
            t_saturated=t_sat,
            overhead_k=self.batch_overhead_k,
            saturation_batch=self.saturation_batch,
        )

    def max_batch(self, device: GPUDevice) -> int:
        """Memory-bound maximum parallel inferences on ``device`` (b_i)."""
        return device.max_batch(self.per_image_mb, self.model_mb)

    def inference_time(
        self,
        spec: PruneSpec,
        images: int,
        device: GPUDevice,
        batch: int | None = None,
    ) -> float:
        """Total seconds to infer ``images`` on one GPU (Eqs. 2-3).

        ``batch`` defaults to the memory-bound maximum, the paper's
        operating point ("it is ideal to utilize all GPUs ... with
        maximum parallel inferences").
        """
        b = batch if batch is not None else self.max_batch(device)
        # never launch a batch wider than the workload or device memory
        b = max(1, min(b, self.max_batch(device), images))
        return self.batching_model(spec, device).total_time(images, b)


def layer_latency_report(
    network,
    model: RooflineLatencyModel,
    effective: bool = True,
) -> list[tuple[str, float, float]]:
    """Per-layer predicted latency rows: (layer, milliseconds, share).

    Uses the sparsity-aware (``effective``) stats by default, so the
    report shows where a *pruned* network's time now goes — the view an
    engineer uses to pick the next layer to prune.
    """
    times = model.network_times(network, effective=effective)
    total = sum(times.values())
    return [
        (name, seconds * 1e3, seconds / total if total else 0.0)
        for name, seconds in times.items()
    ]


def anchor_to_total_time(
    model: CalibratedTimeModel,
    images: int,
    device: GPUDevice,
    target_seconds: float,
) -> CalibratedTimeModel:
    """Rescale ``t_saturated_k80`` so an unpruned run hits a measured anchor.

    The paper's headline anchor is a *total* batched time (e.g. 19 min
    for 50 000 Caffenet images on p2.xlarge); total time is linear in
    the saturated per-image time, so one exact rescale suffices.
    """
    import dataclasses

    from repro.pruning.base import PruneSpec

    if target_seconds <= 0:
        raise CalibrationError("target_seconds must be positive")
    achieved = model.inference_time(PruneSpec.unpruned(), images, device)
    return dataclasses.replace(
        model,
        t_saturated_k80=model.t_saturated_k80 * target_seconds / achieved,
    )

"""Experiment registry: run the whole evaluation in one call.

``run_all()`` regenerates every table and figure and returns rendered
outputs keyed by artefact id — the data EXPERIMENTS.md is built from.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

__all__ = ["ExperimentOutput", "EXPERIMENTS", "run_all"]


@dataclass(frozen=True)
class ExperimentOutput:
    """One regenerated artefact."""

    artefact: str
    title: str
    text: str


def _tables1() -> str:
    from repro.experiments.tables import render_table1

    return render_table1()


def _tables3() -> str:
    from repro.experiments.tables import render_table3

    return render_table3()


def _fig(module_name: str) -> Callable[[], str]:
    def runner() -> str:
        import importlib

        module = importlib.import_module(
            f"repro.experiments.{module_name}"
        )
        return module.render()

    return runner


#: artefact id -> (title, renderer)
EXPERIMENTS: dict[str, tuple[str, Callable[[], str]]] = {
    "table1": ("Caffenet layers", _tables1),
    "table3": ("EC2 cloud resource types", _tables3),
    "fig2": ("The three-stage approach, executed", _fig("fig2_pipeline")),
    "fig3": ("Execution time distribution", _fig("fig3_time_distribution")),
    "fig4": ("Time for a single inference", _fig("fig4_single_inference")),
    "fig5": ("Parallel inference on a GPU", _fig("fig5_parallel_inference")),
    "fig6": ("Caffenet individual-layer pruning", _fig("fig6_caffenet_sweeps")),
    "fig7": ("Googlenet individual-layer pruning", _fig("fig7_googlenet_sweeps")),
    "fig8": ("Caffenet multi-layer pruning", _fig("fig8_multilayer")),
    "fig9": ("Impact of accuracy on execution time", _fig("fig9_time_pareto")),
    "fig10": ("Impact of accuracy on cloud cost", _fig("fig10_cost_pareto")),
    "fig11": ("Time-accuracy with TAR", _fig("fig11_tar")),
    "fig12": ("CAR across resource types", _fig("fig12_car")),
    "algorithm1": ("Greedy vs brute-force allocation", _fig("algorithm1")),
    "ext-techniques": (
        "Extension: pruning vs quantization vs weight sharing (real)",
        _fig("ext_technique_comparison"),
    ),
    "ext-googlenet-pareto": (
        "Extension: Googlenet Pareto study over mixed p2+g3 space",
        _fig("ext_googlenet_pareto"),
    ),
    "ext-finetune": (
        "Extension: fine-tuning recovery widens sweet spots (real)",
        _fig("ext_finetune_recovery"),
    ),
    "ext-serving-slo": (
        "Extension: latency-SLO serving under bursty traffic",
        _fig("ext_serving_slo"),
    ),
    "ext-sensitivity": (
        "Extension: sensitivity of conclusions to fitted constants",
        _fig("ext_sensitivity"),
    ),
    "ext-split": (
        "Extension: even (Eq. 4) vs proportional workload split at scale",
        _fig("ext_split_pareto"),
    ),
    "ext-scaling": (
        "Extension: strong scaling of the inference workload",
        _fig("ext_scaling"),
    ),
    "ext-autoscale": (
        "Extension: static vs autoscaled fleets under surge load",
        _fig("ext_autoscale"),
    ),
    "ext-fault-tolerance": (
        "Extension: spot preemptions — cost vs goodput under faults",
        _fig("ext_fault_tolerance"),
    ),
    "ext-real-pipeline": (
        "Extension: the whole methodology with zero paper constants",
        _fig("ext_real_pipeline"),
    ),
    "ext-criteria": (
        "Extension: L1 vs L2 vs random pruning criteria (real)",
        _fig("ext_criterion_comparison"),
    ),
    "ext-batch-policy": (
        "Extension: batch-width vs tail latency in online serving",
        _fig("ext_batch_policy"),
    ),
    "ext-noise": (
        "Extension: the min-of-3 measurement protocol, justified",
        _fig("ext_noise_protocol"),
    ),
}


def run_all(
    only: tuple[str, ...] | None = None,
) -> list[ExperimentOutput]:
    """Regenerate all (or selected) artefacts."""
    outputs = []
    for artefact, (title, renderer) in EXPERIMENTS.items():
        if only is not None and artefact not in only:
            continue
        outputs.append(
            ExperimentOutput(
                artefact=artefact, title=title, text=renderer()
            )
        )
    return outputs


def main() -> None:  # pragma: no cover - CLI convenience
    import sys

    only = tuple(sys.argv[1:]) or None
    for output in run_all(only):
        print(f"\n{'=' * 72}\n{output.artefact}: {output.title}\n{'=' * 72}")
        print(output.text)


if __name__ == "__main__":  # pragma: no cover
    main()

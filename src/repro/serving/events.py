"""Minimal discrete-event machinery: a time-ordered event queue.

Events are ``(time, sequence, kind, payload)`` tuples in a heap; the
sequence number makes ordering total and deterministic when several
events share a timestamp (arrival before completion before timeout is
decided purely by insertion order, which the simulator controls).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """One scheduled event; comparison orders by (time, seq)."""

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Deterministic min-heap of events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def push(self, time: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event; same-time events pop in push order."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time=time, seq=self._seq, kind=kind, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest scheduled event."""
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def next_time(self) -> float:
        """Time of the earliest event without popping it."""
        if not self._heap:
            raise IndexError("empty event queue")
        return self._heap[0].time

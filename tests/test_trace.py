"""Tests for batch-job execution traces."""

from __future__ import annotations

import pytest

from repro.calibration import caffenet_time_model
from repro.cloud import CloudInstance, ResourceConfiguration, instance_type
from repro.cloud.trace import render_gantt, trace_job
from repro.errors import ConfigurationError
from repro.pruning import PruneSpec


@pytest.fixture(scope="module")
def tm():
    return caffenet_time_model()


def _config(*names):
    return ResourceConfiguration(
        [CloudInstance(instance_type(n)) for n in names]
    )


class TestTraceJob:
    def test_homogeneous_no_idle(self, tm):
        trace = trace_job(
            tm,
            PruneSpec.unpruned(),
            _config("p2.xlarge", "p2.xlarge"),
            100_000,
        )
        for t in trace.instances:
            assert t.idle_s == pytest.approx(0.0, abs=1.0)
        assert trace.mean_utilisation > 0.99

    def test_heterogeneous_straggler_identified(self, tm):
        trace = trace_job(
            tm,
            PruneSpec.unpruned(),
            _config("p2.xlarge", "g3.16xlarge"),
            1_000_000,
        )
        # even split: the single-K80 instance takes far longer
        assert trace.straggler == "p2.xlarge[1gpu]"
        fast = next(
            t for t in trace.instances if t.label.startswith("g3")
        )
        assert fast.idle_s > 0
        assert trace.wasted_gpu_seconds > 0

    def test_proportional_split_removes_idle(self, tm):
        config = _config("p2.xlarge", "g3.16xlarge")
        even = trace_job(
            tm, PruneSpec.unpruned(), config, 1_000_000
        )
        prop = trace_job(
            tm,
            PruneSpec.unpruned(),
            config,
            1_000_000,
            proportional_split=True,
        )
        assert prop.wasted_gpu_seconds < 0.1 * even.wasted_gpu_seconds
        assert prop.makespan_s < even.makespan_s

    def test_workload_conserved(self, tm):
        trace = trace_job(
            tm,
            PruneSpec.unpruned(),
            _config("p2.8xlarge", "g3.4xlarge", "p2.xlarge"),
            123_457,
        )
        assert sum(t.images for t in trace.instances) == 123_457

    def test_makespan_matches_configuration(self, tm):
        config = _config("p2.xlarge", "g3.8xlarge")
        trace = trace_job(tm, PruneSpec.unpruned(), config, 500_000)
        assert trace.makespan_s == pytest.approx(
            config.makespan(tm, PruneSpec.unpruned(), 500_000)
        )

    def test_rejects_empty_workload(self, tm):
        with pytest.raises(ConfigurationError):
            trace_job(tm, PruneSpec.unpruned(), _config("p2.xlarge"), 0)


class TestGantt:
    def test_render_contains_bars_and_summary(self, tm):
        trace = trace_job(
            tm,
            PruneSpec.unpruned(),
            _config("p2.xlarge", "g3.16xlarge"),
            1_000_000,
        )
        text = render_gantt(trace)
        assert "#" in text and "straggler" in text
        assert "makespan" in text

    def test_busy_bar_lengths_reflect_utilisation(self, tm):
        trace = trace_job(
            tm,
            PruneSpec.unpruned(),
            _config("p2.xlarge", "g3.16xlarge"),
            1_000_000,
        )
        lines = render_gantt(trace, width=40).splitlines()
        straggler_line = next(l for l in lines if "straggler" in l)
        assert straggler_line.count("#") == 40

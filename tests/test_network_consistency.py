"""Cross-cutting consistency checks of the CNN engine's accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnn import build_caffenet, build_googlenet, build_small_cnn
from repro.cnn.layers import DTYPE
from repro.perf.device import K80
from repro.perf.latency import RooflineLatencyModel, layer_latency_report
from repro.pruning import L1FilterPruner, MagnitudePruner, PruneSpec


class TestStatsConsistency:
    def test_inception_stats_equal_branch_sums(self, googlenet_const):
        module = googlenet_const.layer("inception-3a")
        in_shape = googlenet_const.input_shape_of("inception-3a")
        total = module.stats(in_shape)
        manual = module.pool.stats(in_shape)
        manual += module.b1.stats(in_shape)
        manual += module.b2_reduce.stats(in_shape)
        manual += module.b2.stats(module.b2_reduce.output_shape(in_shape))
        manual += module.b3_reduce.stats(in_shape)
        manual += module.b3.stats(module.b3_reduce.output_shape(in_shape))
        manual += module.b4.stats(in_shape)
        assert total == manual

    def test_total_params_matches_breakdown(self, caffenet_const):
        from repro.cnn.flops import param_breakdown

        assert (
            sum(param_breakdown(caffenet_const).values())
            == caffenet_const.total_params()
        )

    def test_effective_stats_never_exceed_dense(self, small_cnn):
        MagnitudePruner().apply(
            small_cnn, PruneSpec({"conv1": 0.5, "fc1": 0.7}), inplace=True
        )
        dense = small_cnn.total_stats(effective=False)
        effective = small_cnn.total_stats(effective=True)
        assert effective.flops <= dense.flops
        assert effective.weight_bytes <= dense.weight_bytes
        assert effective.params == dense.params  # shape preserved

    def test_unpruned_effective_equals_dense(self, caffenet_const):
        assert caffenet_const.total_stats(
            effective=True
        ) == caffenet_const.total_stats(effective=False)

    def test_googlenet_effective_tracks_inception_pruning(self):
        net = build_googlenet(seed=1, init="random")
        dense = net.total_stats().flops
        L1FilterPruner(propagate=False).apply(
            net, PruneSpec({"inception-4e-5x5": 0.5}), inplace=True
        )
        effective = net.total_stats(effective=True).flops
        assert effective < dense


class TestDtypePreservation:
    def test_forward_stays_float32(self, small_cnn, rng):
        x = rng.standard_normal((2, 1, 16, 16)).astype(DTYPE)
        out = small_cnn.forward(x)
        assert out.dtype == DTYPE

    def test_caffenet_forward_stays_float32(self, caffenet_const):
        x = np.zeros((1, 3, 227, 227), dtype=DTYPE)
        assert caffenet_const.forward(x).dtype == DTYPE


class TestActivationProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_softmax_shift_invariance(self, seed):
        from repro.cnn.activations import Softmax

        rng = np.random.default_rng(seed)
        x = rng.standard_normal((3, 7)).astype(np.float32)
        s = Softmax("s")
        shifted = s.forward(x + 100.0)
        np.testing.assert_allclose(s.forward(x), shifted, atol=1e-5)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_maxpool_dominates_avgpool(self, seed):
        from repro.cnn.pooling import AvgPool, MaxPool

        rng = np.random.default_rng(seed)
        x = rng.random((1, 2, 8, 8)).astype(np.float32)
        mx = MaxPool("m", 2, 2).forward(x)
        av = AvgPool("a", 2, 2).forward(x)
        assert (mx >= av - 1e-7).all()

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_lrn_shrinks_magnitudes(self, seed):
        from repro.cnn.normalization import LocalResponseNorm

        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1, 8, 4, 4)).astype(np.float32)
        out = LocalResponseNorm("n").forward(x)
        # k=1 and a positive windowed term: |out| <= |x| everywhere
        assert (np.abs(out) <= np.abs(x) + 1e-6).all()


class TestLatencyReport:
    def test_rows_cover_layers_and_shares_sum(self, caffenet_const):
        model = RooflineLatencyModel(K80)
        rows = layer_latency_report(caffenet_const, model)
        assert len(rows) == len(caffenet_const.layers)
        assert sum(share for _, _, share in rows) == pytest.approx(1.0)

    def test_pruning_shifts_the_report(self):
        net = build_caffenet(seed=2)
        model = RooflineLatencyModel(K80)
        before = dict(
            (n, ms) for n, ms, _ in layer_latency_report(net, model)
        )
        L1FilterPruner(propagate=False).apply(
            net, PruneSpec({"conv3": 0.8}), inplace=True
        )
        after = dict(
            (n, ms) for n, ms, _ in layer_latency_report(net, model)
        )
        assert after["conv3"] < before["conv3"]
        assert after["conv1"] == pytest.approx(before["conv1"])

"""Tests for the sensitivity and workload-split extension studies."""

from __future__ import annotations

import pytest

from repro.experiments import ext_sensitivity, ext_split_pareto


class TestSensitivity:
    @pytest.fixture(scope="class")
    def study(self):
        return ext_sensitivity.run()

    def test_all_conclusions_robust(self, study):
        assert study.all_robust

    def test_bands_covered(self, study):
        for parameter in (
            "synergy_gamma",
            "eta_top5",
            "m60_speedup",
            "floor_fraction",
        ):
            assert len(study.band(parameter)) >= 3

    def test_eta_moves_accuracy_not_time(self, study):
        band = study.band("eta_top5")
        times = {r.all_conv_time_fraction for r in band}
        accs = {r.all_conv_top5 for r in band}
        assert len(times) == 1
        assert len(accs) == len(band)

    def test_speedup_moves_car_ratio_monotonically(self, study):
        band = sorted(study.band("m60_speedup"), key=lambda r: r.value)
        ratios = [r.car_ratio_p2_over_g3 for r in band]
        assert ratios == sorted(ratios)

    def test_floor_bounds_time_fraction(self, study):
        for row in study.band("floor_fraction"):
            assert row.all_conv_time_fraction >= row.value - 1e-9

    def test_render(self, study):
        text = ext_sensitivity.render(study)
        assert "robust" in text


class TestSplitStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return ext_split_pareto.run()

    def test_proportional_split_widens_feasible_set(self, study):
        assert study.proportional_feasible > study.even_feasible

    def test_proportional_frontier_dominates(self, study):
        assert study.hypervolume_gain > 0.0
        assert study.best_accuracy_speedup > 1.2

    def test_even_front_has_positive_epsilon(self, study):
        # the even-split frontier cannot cover the proportional one
        assert study.even_epsilon_vs_proportional > 0.0

    def test_same_best_accuracy_both_splits(self, study):
        # the split changes time, not what accuracy is reachable
        assert study.even_front[0].accuracy.top1 == pytest.approx(
            study.proportional_front[0].accuracy.top1
        )

    def test_render(self, study):
        assert "frontier gain" in ext_split_pareto.render(study)

"""The unified (degree of pruning x configuration) evaluation space.

Every headline result of the paper — the Figure 9/10 Pareto frontiers,
the TAR/CAR figures (11, 12), Algorithm 1's T/C estimation and the
inverse planner queries — is a query over the same evaluation grid:
degrees of pruning crossed with resource configurations, scored by the
calibrated time and accuracy models.  This module evaluates that grid
*once* and answers every downstream question from columnar arrays.

Two layers of reuse make grid evaluation cheap:

* **model memoization** — :meth:`CalibratedTimeModel.time_fraction` and
  the simulator's accuracy lookup are memoized per degree, so a 60 x 63
  grid performs ~60 time-model evaluations instead of 3 780;
* **a process-wide keyed cache** — :func:`evaluate` keys finished
  :class:`EvaluatedSpace` objects by the *content* of their spec (model
  fingerprints, exact prune ratios, configurations, workload, split
  policy), so two experiments asking for the same grid share one
  evaluation even when they built the models independently.

Queries (:meth:`EvaluatedSpace.feasible_mask`,
:meth:`~EvaluatedSpace.pareto`, :meth:`~EvaluatedSpace.tar`/
:meth:`~EvaluatedSpace.car` and the argmin helpers) are vectorised over
numpy columns but preserve the exact tie-breaking of the historical
per-row Python code: stable sorts with original row order as the final
key, so refactored callers render byte-identical artefacts.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.metrics import car_array, tar_array
from repro.core.pareto import pareto_indices
from repro.errors import ConfigurationError
from repro.obs import get_metrics, get_tracer
from repro.pruning.base import PruneSpec

if TYPE_CHECKING:  # import cycle: the cloud simulator imports core.metrics
    from repro.calibration.accuracy_model import AccuracyModel
    from repro.cloud.configuration import ResourceConfiguration
    from repro.cloud.simulator import CloudSimulator, SimulationResult
    from repro.perf.latency import CalibratedTimeModel

__all__ = [
    "SpaceSpec",
    "EvaluatedSpace",
    "evaluate",
    "clear_space_cache",
    "space_cache_info",
]

#: Bound on retained evaluated spaces; oldest entries evicted first.
_CACHE_MAX_ENTRIES = 32

_CACHE: dict["_HashedKey", "EvaluatedSpace"] = {}


class _HashedKey:
    """A cache key with its hash computed once.

    Content keys embed every configuration object in the grid, so
    hashing one from scratch walks hundreds of dataclasses — a ~2 ms
    tax per lookup that dominates a warm-cache planning query.  Specs
    memoize one of these, so repeated lookups hash in O(1) and dict
    probes short-circuit on identity.
    """

    __slots__ = ("parts", "hash")

    def __init__(self, parts: tuple) -> None:
        self.parts = parts
        self.hash = hash(parts)

    def __hash__(self) -> int:
        return self.hash

    def __eq__(self, other: object) -> bool:
        return self.parts == getattr(other, "parts", other)


def _as_spec(degree) -> PruneSpec:
    """Accept both ``PruneSpec`` and ``DegreeOfPruning`` elements."""
    if isinstance(degree, PruneSpec):
        return degree
    spec = getattr(degree, "spec", None)
    if isinstance(spec, PruneSpec):
        return spec
    raise ConfigurationError(
        f"expected PruneSpec or DegreeOfPruning, got {type(degree).__name__}"
    )


@dataclass(frozen=True)
class SpaceSpec:
    """Declarative description of one evaluation grid.

    The grid is ``specs x configurations`` at a fixed workload size and
    split policy, scored by one calibrated (time, accuracy) model pair.
    Rows are degree-major: point ``(i, j)`` lands at flat index
    ``i * len(configurations) + j``.
    """

    time_model: "CalibratedTimeModel"
    accuracy_model: "AccuracyModel"
    specs: tuple[PruneSpec, ...]
    configurations: tuple["ResourceConfiguration", ...]
    images: int
    proportional_split: bool = False

    def __post_init__(self) -> None:
        if not self.specs:
            raise ConfigurationError("SpaceSpec needs >= 1 degree of pruning")
        if not self.configurations:
            raise ConfigurationError("SpaceSpec needs >= 1 configuration")
        if self.images < 1:
            raise ConfigurationError("images must be >= 1")

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        time_model: "CalibratedTimeModel",
        accuracy_model: "AccuracyModel",
        degrees: Iterable,
        configurations: Iterable["ResourceConfiguration"],
        images: int,
        proportional_split: bool = False,
    ) -> "SpaceSpec":
        """Normalise ``degrees`` (specs or labelled degrees) into a spec."""
        return cls(
            time_model=time_model,
            accuracy_model=accuracy_model,
            specs=tuple(_as_spec(d) for d in degrees),
            configurations=tuple(configurations),
            images=images,
            proportional_split=proportional_split,
        )

    @classmethod
    def from_simulator(
        cls,
        simulator: "CloudSimulator",
        degrees: Iterable,
        configurations: Iterable["ResourceConfiguration"],
        images: int,
    ) -> "SpaceSpec":
        """Inherit models and split policy from an existing simulator."""
        return cls.build(
            simulator.time_model,
            simulator.accuracy_model,
            degrees,
            configurations,
            images,
            proportional_split=simulator.proportional_split,
        )

    # ------------------------------------------------------------------
    @property
    def n_specs(self) -> int:
        """Number of degrees of pruning in the grid."""
        return len(self.specs)

    @property
    def n_configurations(self) -> int:
        """Number of resource configurations in the grid."""
        return len(self.configurations)

    @property
    def n_points(self) -> int:
        """Total grid size (degrees x configurations)."""
        return self.n_specs * self.n_configurations

    def cache_key(self) -> tuple:
        """Content key: equal grids share one evaluation process-wide.

        Model *fingerprints* (not object identity) make the key robust
        to constructors returning fresh model instances per call; exact
        ratio tuples (not rounded labels) keep distinct degrees distinct.
        """
        return (
            self.time_model.fingerprint(),
            self.accuracy_model.fingerprint(),
            tuple(s.ratios for s in self.specs),
            self.configurations,
            self.images,
            self.proportional_split,
        )

    def _hashed_key(self) -> _HashedKey:
        """The content key with its hash memoized on this instance.

        Long-lived specs (the planning service resolves each request to
        a memoized spec) pay the full key hash once; every later cache
        lookup reuses it, keeping warm planning queries sub-millisecond.
        """
        cached = getattr(self, "_key_cache", None)
        if cached is None:
            cached = _HashedKey(self.cache_key())
            object.__setattr__(self, "_key_cache", cached)
        return cached


@dataclass(frozen=True, eq=False)
class EvaluatedSpace:
    """A fully evaluated grid: row records plus columnar numpy views.

    ``results`` holds one :class:`SimulationResult` per point in
    degree-major order; ``time_s``/``cost``/``top1``/``top5`` are the
    same points as flat float columns for vectorised queries.
    """

    space: SpaceSpec
    results: tuple["SimulationResult", ...]
    time_s: np.ndarray = field(repr=False)
    cost: np.ndarray = field(repr=False)
    top1: np.ndarray = field(repr=False)
    top5: np.ndarray = field(repr=False)

    # ------------------------------------------------------------------
    @property
    def n_specs(self) -> int:
        """Number of degrees of pruning in the grid."""
        return self.space.n_specs

    @property
    def n_configurations(self) -> int:
        """Number of resource configurations in the grid."""
        return self.space.n_configurations

    def __len__(self) -> int:
        return len(self.results)

    @property
    def time_hours(self) -> np.ndarray:
        """Makespan column in hours."""
        return self.time_s / 3600.0

    def accuracy(self, metric: str = "top5") -> np.ndarray:
        """Accuracy column in percent for ``metric``."""
        if metric == "top1":
            return self.top1
        if metric == "top5":
            return self.top5
        raise KeyError(f"unknown accuracy metric {metric!r}")

    def objective(self, objective: str) -> np.ndarray:
        """Objective column: ``"time"`` in hours or ``"cost"`` in dollars."""
        if objective == "time":
            return self.time_hours
        if objective == "cost":
            return self.cost
        raise ValueError(
            f"objective must be 'time' or 'cost', got {objective!r}"
        )

    def tar(self, metric: str = "top5") -> np.ndarray:
        """Vectorised TAR column (hours per unit accuracy; 0% -> inf)."""
        return tar_array(self.time_hours, self.accuracy(metric) / 100.0)

    def car(self, metric: str = "top5") -> np.ndarray:
        """Vectorised CAR column (dollars per unit accuracy; 0% -> inf)."""
        return car_array(self.cost, self.accuracy(metric) / 100.0)

    # ------------------------------------------------------------------
    def result_at(self, i_spec: int, i_config: int) -> "SimulationResult":
        """The row for degree ``i_spec`` on configuration ``i_config``."""
        return self.results[i_spec * self.n_configurations + i_config]

    def grid(self, column: np.ndarray) -> np.ndarray:
        """Reshape a flat column to ``(n_specs, n_configurations)``."""
        return column.reshape(self.n_specs, self.n_configurations)

    # ------------------------------------------------------------------
    def feasible_mask(
        self,
        deadline_s: float | None = None,
        budget: float | None = None,
    ) -> np.ndarray:
        """Boolean column: rows inside the (T', C') constraint box."""
        mask = np.ones(len(self.results), dtype=bool)
        if deadline_s is not None:
            mask &= self.time_s <= deadline_s
        if budget is not None:
            mask &= self.cost <= budget
        return mask

    def feasible_indices(
        self,
        deadline_s: float | None = None,
        budget: float | None = None,
    ) -> np.ndarray:
        """Global row indices passing the deadline/budget filter."""
        return np.flatnonzero(self.feasible_mask(deadline_s, budget))

    def feasible(
        self,
        deadline_s: float | None = None,
        budget: float | None = None,
    ) -> tuple["SimulationResult", ...]:
        """Feasible rows in original (degree-major) order."""
        return tuple(
            self.results[i] for i in self.feasible_indices(deadline_s, budget)
        )

    # ------------------------------------------------------------------
    def pareto(
        self,
        metric: str = "top5",
        objective: str = "time",
        deadline_s: float | None = None,
        budget: float | None = None,
    ) -> np.ndarray:
        """Global indices of the Pareto front over the feasible set.

        Maximises accuracy, minimises the objective; indices come back
        ordered by descending accuracy with first-occurrence tie-breaks,
        matching :func:`repro.core.pareto.pareto_front` over the same
        rows.
        """
        candidates = self.feasible_indices(deadline_s, budget)
        if candidates.size == 0:
            return candidates
        local = pareto_indices(
            self.accuracy(metric)[candidates],
            self.objective(objective)[candidates],
        )
        return candidates[local]

    def front(
        self,
        metric: str = "top5",
        objective: str = "time",
        deadline_s: float | None = None,
        budget: float | None = None,
    ) -> tuple["SimulationResult", ...]:
        """Pareto-front rows (descending accuracy)."""
        return tuple(
            self.results[i]
            for i in self.pareto(metric, objective, deadline_s, budget)
        )

    # ------------------------------------------------------------------
    def argmin_tar(
        self, metric: str = "top5", mask: np.ndarray | None = None
    ) -> int:
        """Global index of the lowest-TAR row (first occurrence on ties)."""
        return self._argmin(self.tar(metric), mask)

    def argmin_car(
        self, metric: str = "top5", mask: np.ndarray | None = None
    ) -> int:
        """Global index of the lowest-CAR row (first occurrence on ties)."""
        return self._argmin(self.car(metric), mask)

    def _argmin(self, column: np.ndarray, mask: np.ndarray | None) -> int:
        if mask is None:
            return int(np.argmin(column))
        candidates = np.flatnonzero(mask)
        if candidates.size == 0:
            raise ConfigurationError("argmin over an empty feasible set")
        return int(candidates[np.argmin(column[candidates])])


# ----------------------------------------------------------------------
# evaluation + process-wide cache
# ----------------------------------------------------------------------


def _evaluate_uncached(spec: SpaceSpec) -> EvaluatedSpace:
    from repro.cloud.simulator import CloudSimulator

    simulator = CloudSimulator(
        spec.time_model,
        spec.accuracy_model,
        proportional_split=spec.proportional_split,
    )
    with get_tracer().span(
        "evalspace.evaluate",
        degrees=spec.n_specs,
        configurations=spec.n_configurations,
        images=spec.images,
    ):
        results = tuple(
            simulator.run(degree, config, spec.images)
            for degree in spec.specs
            for config in spec.configurations
        )
    return EvaluatedSpace(
        space=spec,
        results=results,
        time_s=np.array([r.time_s for r in results], dtype=float),
        cost=np.array([r.cost for r in results], dtype=float),
        top1=np.array([r.accuracy.top1 for r in results], dtype=float),
        top5=np.array([r.accuracy.top5 for r in results], dtype=float),
    )


def evaluate(spec: SpaceSpec) -> EvaluatedSpace:
    """Evaluate ``spec`` once; content-equal grids hit the shared cache."""
    key = spec._hashed_key()
    cached = _CACHE.get(key)
    if cached is not None:
        get_metrics().counter("evalspace.cache_hits").inc()
        return cached
    get_metrics().counter("evalspace.cache_misses").inc()
    evaluated = _evaluate_uncached(spec)
    while len(_CACHE) >= _CACHE_MAX_ENTRIES:
        _CACHE.pop(next(iter(_CACHE)))  # dicts iterate oldest-first
    _CACHE[key] = evaluated
    return evaluated


def clear_space_cache() -> None:
    """Drop every cached :class:`EvaluatedSpace` (tests, benchmarks)."""
    _CACHE.clear()


def space_cache_info() -> dict[str, int]:
    """Current cache occupancy (entries and total cached grid points)."""
    return {
        "entries": len(_CACHE),
        "points": sum(len(s.results) for s in _CACHE.values()),
    }

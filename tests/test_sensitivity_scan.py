"""Tests for the layer-sensitivity scanner and the noise-protocol study."""

from __future__ import annotations

import math

import pytest

from repro.cnn import build_small_cnn
from repro.cnn.datasets import make_classification_data
from repro.cnn.training import SGDTrainer
from repro.pruning.sensitivity import (
    LayerSensitivity,
    rank_layers,
    scan_sensitivity,
)


@pytest.fixture(scope="module")
def trained_with_data():
    network = build_small_cnn(seed=19, width=12)
    train = make_classification_data(n=300, num_classes=5, seed=19)
    test = make_classification_data(n=150, num_classes=5, seed=20)
    SGDTrainer(network, lr=0.03).fit(train, epochs=8, batch_size=30)
    return network, test


class TestScan:
    def test_scans_all_conv_layers(self, trained_with_data):
        network, test = trained_with_data
        scan = scan_sensitivity(network, test, probe_ratio=0.5)
        assert {s.layer for s in scan} == {"conv1", "conv2"}

    def test_drops_nonnegative_and_savings_positive(self, trained_with_data):
        network, test = trained_with_data
        for s in scan_sensitivity(network, test):
            assert s.accuracy_drop >= 0.0
            assert 0.0 < s.flop_saving < 1.0

    def test_network_untouched(self, trained_with_data):
        network, test = trained_with_data
        before = network.layer("conv1").weights.copy()
        scan_sensitivity(network, test)
        import numpy as np

        np.testing.assert_array_equal(
            network.layer("conv1").weights, before
        )

    def test_custom_layer_list(self, trained_with_data):
        network, test = trained_with_data
        scan = scan_sensitivity(network, test, layers=["fc1"])
        assert [s.layer for s in scan] == ["fc1"]


class TestRanking:
    def test_free_layers_rank_first(self):
        free = LayerSensitivity("a", 0.5, 0.0, 0.2, 100)
        costly = LayerSensitivity("b", 0.5, 10.0, 0.4, 100)
        assert rank_layers([costly, free])[0].layer == "a"

    def test_saving_per_point_ordering(self):
        efficient = LayerSensitivity("a", 0.5, 2.0, 0.4, 100)  # 0.2/pt
        wasteful = LayerSensitivity("b", 0.5, 10.0, 0.4, 100)  # 0.04/pt
        ranked = rank_layers([wasteful, efficient])
        assert [s.layer for s in ranked] == ["a", "b"]

    def test_saving_per_point_infinite_for_free(self):
        free = LayerSensitivity("a", 0.5, 0.0, 0.1, 1)
        assert math.isinf(free.saving_per_point)

    def test_observation2_params_do_not_predict_rank(
        self, trained_with_data
    ):
        """The paper's Observation 2 on a real network: the ranking by
        saving-per-point need not follow the parameter counts."""
        network, test = trained_with_data
        ranked = rank_layers(scan_sensitivity(network, test))
        by_params = sorted(ranked, key=lambda s: -s.params)
        # both orders exist; they are well-formed even if they disagree
        assert {s.layer for s in ranked} == {s.layer for s in by_params}


class TestNoiseProtocolStudy:
    @pytest.fixture(scope="class")
    def study(self):
        from repro.experiments import ext_noise_protocol

        ext_noise_protocol.run.cache_clear()
        return ext_noise_protocol.run(
            spreads=(0.05, 0.15), trials=150
        )

    def test_min_estimator_always_best(self, study):
        assert study.protocol_always_best

    def test_errors_grow_with_noise(self, study):
        assert study.rows[1].err_single > study.rows[0].err_single

    def test_render(self, study):
        from repro.experiments import ext_noise_protocol

        text = ext_noise_protocol.render(study)
        assert "best estimator" in text

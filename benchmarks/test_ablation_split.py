"""Ablation C: even workload split (paper Eq. 4) vs capacity-proportional.

DESIGN.md design-choice #3: the paper divides W evenly across resources.
On heterogeneous configurations the slowest resource then dictates the
makespan; a capacity-proportional split finishes strictly earlier.  This
ablation quantifies the gap on a mixed p2/g3 configuration.
"""

from __future__ import annotations

from repro.calibration import caffenet_time_model
from repro.cloud import CloudInstance, ResourceConfiguration, instance_type
from repro.pruning import PruneSpec

IMAGES = 1_000_000


def _hetero_config() -> ResourceConfiguration:
    return ResourceConfiguration(
        [
            CloudInstance(instance_type("p2.xlarge")),  # 1 K80
            CloudInstance(instance_type("g3.16xlarge")),  # 4 M60 ~ 8 K80-eq
        ]
    )


def test_even_split_makespan(benchmark):
    tm = caffenet_time_model()
    config = _hetero_config()
    spec = PruneSpec.unpruned()
    makespan = benchmark(
        config.makespan, tm, spec, IMAGES, proportional_split=False
    )
    assert makespan > 0


def test_proportional_split_makespan(benchmark):
    tm = caffenet_time_model()
    config = _hetero_config()
    spec = PruneSpec.unpruned()
    makespan = benchmark(
        config.makespan, tm, spec, IMAGES, proportional_split=True
    )
    # the gap this ablation documents: proportional split beats Eq. 4 by
    # a wide margin on heterogeneous configurations
    even = config.makespan(tm, spec, IMAGES, proportional_split=False)
    assert makespan < 0.25 * even

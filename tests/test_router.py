"""Tests for the fleet routing layer (router, fleet cache, planner)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import caffenet_accuracy_model, caffenet_time_model
from repro.cloud.catalog import instance_type
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.faults import FaultPlan, Preemption
from repro.cloud.instance import CloudInstance
from repro.core.planner import cheapest_fleet
from repro.errors import ConfigurationError, InfeasibleError
from repro.obs import MetricsRegistry, Tracer, scoped_observability
from repro.obs.telemetry import SloPolicy
from repro.pruning.base import PruneSpec
from repro.serving import (
    AdmissionPolicy,
    BatchPolicy,
    FleetRouter,
    FleetSpec,
    FleetTelemetry,
    FleetWorkload,
    ReplicaSpec,
    ServingSimulator,
    evaluate_fleet,
    poisson_arrivals,
)
from repro.serving.autoscaler import AutoscalePolicy
from repro.serving.fleet import clear_fleet_cache, fleet_cache_info

TM = caffenet_time_model()
AM = caffenet_accuracy_model()
POLICY = BatchPolicy(max_batch=32, max_wait_s=0.05)
SWEET = PruneSpec({"conv1": 0.3, "conv2": 0.5})


def _config(itype: str, n: int = 1) -> ResourceConfiguration:
    return ResourceConfiguration(
        [CloudInstance(instance_type(itype)) for _ in range(n)]
    )


def _replica(
    name: str, itype: str = "p2.xlarge", spec=SWEET, **kwargs
) -> ReplicaSpec:
    return ReplicaSpec(name, _config(itype), spec, POLICY, **kwargs)


def _heterogeneous() -> list[ReplicaSpec]:
    return [
        _replica("gold", "p2.8xlarge", PruneSpec.unpruned()),
        _replica("cheap-a"),
        _replica("cheap-b"),
    ]


class TestSingleReplicaEquivalence:
    def test_router_n1_equals_bare_simulator_byte_for_byte(self):
        arrivals = poisson_arrivals(100.0, 30.0, seed=1)
        bare = ServingSimulator(
            TM, AM, _config("p2.8xlarge"), PruneSpec.unpruned(), POLICY
        ).run(arrivals)
        fleet = FleetRouter(
            TM,
            AM,
            [
                ReplicaSpec(
                    "solo",
                    _config("p2.8xlarge"),
                    PruneSpec.unpruned(),
                    POLICY,
                )
            ],
        ).run(arrivals)
        report = fleet.outcomes[0].report
        assert report.requests == bare.requests
        assert report.duration_s == bare.duration_s
        assert np.array_equal(report.latencies_s, bare.latencies_s)
        assert np.array_equal(report.batch_sizes, bare.batch_sizes)
        assert report.busy_s == bare.busy_s
        assert report.worker_count == bare.worker_count
        assert report.cost == bare.cost
        assert report.accuracy == bare.accuracy
        assert report.retries == bare.retries
        assert report.dropped == bare.dropped
        assert report.preempted == bare.preempted
        # the fleet aggregates collapse to the same numbers
        assert fleet.served == bare.served
        assert fleet.cost == bare.cost
        assert fleet.p99 == bare.p99
        assert fleet.duration_s == bare.duration_s

    def test_adaptive_n1_without_degradation_equals_bare(self):
        """One replica, no ``degrade_limit``: every adaptive decision
        collapses onto replica 0 and nothing is served below floor,
        so the fleet equals the bare simulator byte for byte."""
        arrivals = poisson_arrivals(100.0, 30.0, seed=5)
        bare = ServingSimulator(
            TM, AM, _config("p2.8xlarge"), PruneSpec.unpruned(), POLICY
        ).run(arrivals)
        fleet = FleetRouter(
            TM,
            AM,
            [
                ReplicaSpec(
                    "solo",
                    _config("p2.8xlarge"),
                    PruneSpec.unpruned(),
                    POLICY,
                )
            ],
            routing="adaptive",
        ).run(
            arrivals,
            floors=np.full(arrivals.size, 75.0),
            deadlines=np.full(arrivals.size, 0.25),
        )
        assert fleet.degraded == 0
        assert fleet.served == bare.served
        assert fleet.goodput_at_accuracy == fleet.goodput
        report = fleet.outcomes[0].report
        assert np.array_equal(report.latencies_s, bare.latencies_s)
        assert report.cost == bare.cost

    def test_equivalence_holds_under_faults(self):
        arrivals = poisson_arrivals(120.0, 30.0, seed=3)
        plan = FaultPlan.sample(
            duration_s=30.0,
            workers=8,
            mtbf_s=20.0,
            recovery_s=5.0,
            retry_budget=2,
            timeout_s=3.0,
            seed=3,
        )
        bare = ServingSimulator(
            TM, AM, _config("p2.8xlarge"), PruneSpec.unpruned(), POLICY
        ).run(arrivals, plan)
        fleet = FleetRouter(
            TM,
            AM,
            [
                ReplicaSpec(
                    "solo",
                    _config("p2.8xlarge"),
                    PruneSpec.unpruned(),
                    POLICY,
                    faults=plan,
                )
            ],
        ).run(arrivals)
        report = fleet.outcomes[0].report
        assert np.array_equal(report.latencies_s, bare.latencies_s)
        assert report.dropped == bare.dropped
        assert report.preempted == bare.preempted
        assert report.cost == bare.cost


class TestRoutingPolicies:
    def test_round_robin_cycles_in_order(self):
        router = FleetRouter(TM, AM, _heterogeneous())
        arrivals = np.arange(9, dtype=float)
        assignment = router.route(arrivals)
        assert assignment.tolist() == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_jsq_prefers_least_backlogged(self):
        router = FleetRouter(TM, AM, _heterogeneous(), routing="jsq")
        # a burst at t=0: JSQ spreads it instead of piling on one
        assignment = router.route(np.zeros(6))
        assert set(assignment.tolist()) == {0, 1, 2}

    def test_weighted_matches_capacity_ratio(self):
        router = FleetRouter(
            TM, AM, _heterogeneous(), routing="weighted"
        )
        assignment = router.route(np.zeros(1000))
        shares = np.bincount(assignment, minlength=3) / 1000.0
        weights = np.asarray(router.capacities)
        expected = weights / weights.sum()
        assert np.allclose(shares, expected, atol=0.01)

    def test_weighted_honours_explicit_weights(self):
        replicas = [
            _replica("a", weight=3.0),
            _replica("b", weight=1.0),
        ]
        router = FleetRouter(TM, AM, replicas, routing="weighted")
        assignment = router.route(np.zeros(8))
        assert assignment.tolist() == [0, 0, 1, 0, 0, 0, 1, 0]

    def test_tiered_routes_floors_to_accurate_tier(self):
        router = FleetRouter(
            TM, AM, _heterogeneous(), routing="tiered"
        )
        arrivals = np.arange(10, dtype=float)
        floors = np.array([0.0, 75.0] * 5)
        assignment = router.route(arrivals, floors)
        # floor-75 requests must land on the unpruned replica (80%)
        assert (assignment[1::2] == 0).all()
        # floor-free requests go to the cheap tier
        assert (assignment[::2] > 0).all()

    def test_tiered_degrades_gracefully_on_unmeetable_floor(self):
        router = FleetRouter(
            TM, AM, _heterogeneous(), routing="tiered"
        )
        assignment = router.route(
            np.zeros(4), np.full(4, 99.0)
        )
        # nothing clears 99%: serve on the most accurate replica
        assert (assignment == 0).all()

    def test_tiered_ties_break_by_backlog(self):
        router = FleetRouter(
            TM,
            AM,
            [_replica("cheap-a"), _replica("cheap-b")],
            routing="tiered",
        )
        assignment = router.route(np.zeros(4))
        assert assignment.tolist() == [0, 1, 0, 1]


class TestAdaptiveRouting:
    def test_equals_tiered_when_deadlines_are_infinite(self):
        """The documented reduction: with every deadline infinite and
        no ``degrade_limit``, adaptive and tiered pick identically."""
        arrivals = poisson_arrivals(150.0, 10.0, seed=13)
        floors = np.random.default_rng(13).choice(
            [0.0, 75.0, 99.0], size=arrivals.size
        )
        picks = {}
        for routing in ("tiered", "adaptive"):
            router = FleetRouter(
                TM, AM, _heterogeneous(), routing=routing
            )
            picks[routing] = router.route(arrivals, floors)
        assert np.array_equal(picks["tiered"], picks["adaptive"])

    def test_spills_below_floor_when_gold_misses_deadline(self):
        router = FleetRouter(
            TM, AM, _heterogeneous(), routing="adaptive"
        )
        # gold can hold two queued requests inside this deadline
        deadline = 2.5 / router.capacities[0]
        assignment = router.route(
            np.zeros(4),
            np.full(4, 75.0),
            np.full(4, deadline),
        )
        # three fit on the only floor-clearing replica; the fourth
        # degrades to the most accurate replica still in time
        assert assignment.tolist() == [0, 0, 0, 1]

    def test_min_wait_fallback_when_nothing_is_timely(self):
        router = FleetRouter(
            TM, AM, _heterogeneous(), routing="adaptive"
        )
        assignment = router.route(
            np.zeros(5), np.zeros(5), np.full(5, 1e-12)
        )
        # cheapest empty replicas first; once every queue is nonempty
        # the smallest estimated wait (the widest replica) wins
        assert assignment.tolist() == [1, 2, 0, 0, 0]

    def test_deadline_free_requests_take_the_cheapest_tier(self):
        router = FleetRouter(
            TM, AM, _heterogeneous(), routing="adaptive"
        )
        assignment = router.route(
            np.arange(10, dtype=float),
            np.array([0.0, 75.0] * 5),
        )
        assert (assignment[1::2] == 0).all()
        assert (assignment[::2] > 0).all()

    def test_degrade_limit_serves_below_floor_before_shedding(self):
        router = FleetRouter(
            TM,
            AM,
            _heterogeneous(),
            routing="adaptive",
            admission=AdmissionPolicy(
                queue_limit=8.0, degrade_limit=4.0
            ),
        )
        report = router.run(
            np.zeros(10), floors=np.full(10, 75.0)
        )
        # backlog 0-3: at floor on gold; 4-7: floor waived, served on
        # the cheap tier; 8-9: shed at the queue limit
        assert report.shed == 2
        assert report.degraded == 4
        assert report.outcomes[0].at_floor == 4
        assert report.outcomes[0].degraded == 0
        assert sum(o.degraded for o in report.outcomes) == 4

    def test_degrade_limit_works_with_tiered_routing(self):
        router = FleetRouter(
            TM,
            AM,
            _heterogeneous(),
            routing="tiered",
            admission=AdmissionPolicy(degrade_limit=4.0),
        )
        report = router.run(
            np.zeros(8), floors=np.full(8, 75.0)
        )
        assert report.shed == 0
        assert report.degraded == 4

    def test_accounting_identities_hold(self):
        workload_floors = np.random.default_rng(23).choice(
            [0.0, 75.0], size=400
        )
        router = FleetRouter(
            TM,
            AM,
            _heterogeneous(),
            routing="adaptive",
            admission=AdmissionPolicy(
                queue_limit=20.0, degrade_limit=10.0
            ),
        )
        report = router.run(
            poisson_arrivals(300.0, 4.0, seed=23)[:400],
            floors=workload_floors,
            deadlines=np.full(400, 0.05),
        )
        assert report.degraded == sum(
            o.degraded for o in report.outcomes
        )
        assert 0 <= report.served_at_floor <= report.served
        assert (
            report.goodput_at_accuracy
            <= report.goodput + 1e-9
        )
        summary = report.summary()
        assert summary["degraded"] == report.degraded
        assert summary["goodput_at_accuracy"] == pytest.approx(
            report.goodput_at_accuracy
        )
        for row, outcome in zip(
            summary["replicas"], report.outcomes
        ):
            assert row["name"] == outcome.spec.name
            assert row["at_floor"] == outcome.at_floor

    def test_goodput_at_accuracy_equals_goodput_without_floors(self):
        router = FleetRouter(TM, AM, _heterogeneous(), routing="jsq")
        report = router.run(poisson_arrivals(80.0, 10.0, seed=3))
        assert report.degraded == 0
        assert report.goodput_at_accuracy == pytest.approx(
            report.goodput
        )

    def test_workload_deadline_mixture_draw(self):
        workload = FleetWorkload(
            50.0,
            5.0,
            seed=7,
            deadlines=((0.5, 0.25), (2.0, 0.75)),
        )
        drawn = workload.deadlines_s(2000)
        assert set(np.unique(drawn)) == {0.5, 2.0}
        # independent of the floors draw, deterministic per seed
        assert np.array_equal(drawn, workload.deadlines_s(2000))
        assert FleetWorkload(50.0, 5.0, seed=7).deadlines_s(10) is None
        # the mixture is part of the evaluation-cache identity
        assert workload.cache_key() != (
            FleetWorkload(50.0, 5.0, seed=7).cache_key()
        )


class TestValidation:
    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            FleetRouter(TM, AM, [])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="unique"):
            FleetRouter(TM, AM, [_replica("a"), _replica("a")])

    def test_unknown_routing_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown routing"):
            FleetRouter(TM, AM, [_replica("a")], routing="random")

    def test_unsorted_arrivals_rejected(self):
        router = FleetRouter(TM, AM, [_replica("a")])
        with pytest.raises(ConfigurationError, match="sorted"):
            router.route(np.array([2.0, 1.0]))

    def test_empty_arrivals_rejected(self):
        router = FleetRouter(TM, AM, [_replica("a")])
        with pytest.raises(ConfigurationError, match="no arrivals"):
            router.run(np.array([]))

    def test_misaligned_floors_rejected(self):
        router = FleetRouter(TM, AM, [_replica("a")])
        with pytest.raises(ConfigurationError, match="align"):
            router.route(np.zeros(3), np.zeros(2))

    def test_misaligned_deadlines_rejected(self):
        router = FleetRouter(TM, AM, [_replica("a")])
        with pytest.raises(ConfigurationError, match="align"):
            router.route(np.zeros(3), np.zeros(3), np.zeros(2))

    def test_negative_degrade_limit_rejected(self):
        with pytest.raises(ConfigurationError, match="degrade"):
            AdmissionPolicy(degrade_limit=-1.0)

    def test_degrade_limit_above_queue_limit_rejected(self):
        with pytest.raises(ConfigurationError, match="exceed"):
            AdmissionPolicy(queue_limit=5.0, degrade_limit=10.0)

    def test_nonpositive_workload_deadline_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            FleetWorkload(10.0, 1.0, deadlines=((0.0, 1.0),))

    def test_workload_deadline_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError, match="sum to 1"):
            FleetWorkload(
                10.0, 1.0, deadlines=((0.5, 0.5), (2.0, 0.2))
            )

    def test_autoscaled_replica_needs_single_type(self):
        config = ResourceConfiguration(
            [
                CloudInstance(instance_type("p2.xlarge")),
                CloudInstance(instance_type("g3.4xlarge")),
            ]
        )
        with pytest.raises(ConfigurationError, match="single instance"):
            ReplicaSpec(
                "elastic",
                config,
                SWEET,
                POLICY,
                autoscale=AutoscalePolicy(max_instances=4),
            )


class TestAdmissionControl:
    def test_zero_rate_admits_only_the_burst(self):
        router = FleetRouter(
            TM,
            AM,
            [_replica("a")],
            admission=AdmissionPolicy(rate_per_s=0.0, burst=5),
        )
        report = router.run(np.linspace(0.0, 1.0, 50))
        assert report.admitted == 5
        assert report.shed == 45
        assert report.served == 5
        assert report.availability == pytest.approx(0.1)

    def test_zero_queue_limit_sheds_everything(self):
        router = FleetRouter(
            TM,
            AM,
            [_replica("a")],
            admission=AdmissionPolicy(queue_limit=0.0),
        )
        arrivals = poisson_arrivals(50.0, 10.0, seed=2)
        report = router.run(arrivals)
        assert report.shed == report.offered
        assert report.served == 0
        assert report.availability == 0.0
        assert np.isnan(report.p99)
        # the fleet idled until the last arrival was turned away, and
        # was billed for that wall time
        assert report.duration_s == arrivals[-1]
        assert report.cost > 0.0
        assert report.outcomes[0].report is None

    def test_overload_sheds_but_keeps_tail_bounded(self):
        arrivals = poisson_arrivals(120.0, 30.0, seed=2)
        unprotected = FleetRouter(TM, AM, [_replica("a")]).run(arrivals)
        protected = FleetRouter(
            TM,
            AM,
            [_replica("a")],
            admission=AdmissionPolicy(
                rate_per_s=40.0, burst=20, queue_limit=200.0
            ),
        ).run(arrivals)
        assert unprotected.availability == 1.0
        assert protected.shed > 0
        assert protected.availability < 1.0
        # graceful degradation: what gets in stays fast
        assert protected.p99 < 1.0 < unprotected.p99
        # accounting closes: every request is served, shed or dropped
        assert (
            protected.served + protected.dropped == protected.offered
        )

    def test_open_admission_policy_sheds_nothing(self):
        policy = AdmissionPolicy()
        assert policy.is_open
        router = FleetRouter(
            TM, AM, [_replica("a")], admission=policy
        )
        report = router.run(poisson_arrivals(20.0, 5.0, seed=1))
        assert report.shed == 0

    def test_invalid_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(rate_per_s=-1.0)
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(burst=-1)
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(queue_limit=-0.5)


class TestFaultsAndIdle:
    def test_all_replicas_preempted_mid_run(self):
        # both single-GPU replicas die at t=1 and never recover
        plan = FaultPlan(
            preemptions=(Preemption(0, 1.0, None),),
            retry_budget=1,
        )
        router = FleetRouter(
            TM,
            AM,
            [
                _replica("a", faults=plan),
                _replica("b", faults=plan),
            ],
            routing="jsq",
        )
        report = router.run(poisson_arrivals(40.0, 10.0, seed=4))
        assert report.served + report.dropped == report.offered
        assert report.dropped > 0
        assert report.availability < 1.0
        for outcome in report.outcomes:
            assert outcome.report.preempted == 1

    def test_idle_replica_is_billed_for_the_makespan(self):
        # all traffic is floor-free: tiered routing starves the gold
        # replica, which must still pay for the fleet's wall time
        router = FleetRouter(
            TM,
            AM,
            [
                _replica("gold", "p2.8xlarge", PruneSpec.unpruned()),
                _replica("cheap"),
            ],
            routing="tiered",
        )
        report = router.run(poisson_arrivals(20.0, 10.0, seed=5))
        gold = report.outcome("gold")
        cheap = report.outcome("cheap")
        assert gold.report is None and gold.assigned == 0
        assert cheap.served == report.served
        from repro.cloud.pricing import hourly_rate_cost

        assert gold.cost == hourly_rate_cost(
            _config("p2.8xlarge").total_price_per_hour,
            report.duration_s,
        )

    def test_autoscaled_replica_runs_elastically(self):
        router = FleetRouter(
            TM,
            AM,
            [
                ReplicaSpec(
                    "elastic",
                    _config("p2.xlarge"),
                    SWEET,
                    POLICY,
                    autoscale=AutoscalePolicy(
                        interval_s=5.0, max_instances=4
                    ),
                ),
                _replica("static"),
            ],
            routing="round-robin",
        )
        report = router.run(poisson_arrivals(60.0, 30.0, seed=6))
        elastic = report.outcome("elastic")
        assert elastic.report.peak_instances >= 1
        assert report.served == report.offered
        # elastic replicas are excluded from the utilisation aggregate
        assert 0.0 < report.utilisation <= 1.0


class TestFleetTelemetry:
    def test_aggregate_histogram_matches_served(self):
        telemetry = FleetTelemetry(SloPolicy(latency_slo_s=1.0))
        router = FleetRouter(TM, AM, _heterogeneous(), routing="jsq")
        report = router.run(
            poisson_arrivals(90.0, 20.0, seed=7), telemetry=telemetry
        )
        assert telemetry.aggregate_latency.count == report.served
        assert len(telemetry.per_replica) == 3
        assert telemetry.burn_summaries().keys() == {
            "gold",
            "cheap-a",
            "cheap-b",
        }

    def test_shed_requests_are_recorded(self):
        telemetry = FleetTelemetry()
        router = FleetRouter(
            TM,
            AM,
            [_replica("a")],
            admission=AdmissionPolicy(queue_limit=0.0),
        )
        report = router.run(np.linspace(0.0, 1.0, 10), telemetry=telemetry)
        assert telemetry.shed == report.shed == 10

    def test_finalize_publishes_fleet_gauges(self):
        registry = MetricsRegistry()
        with scoped_observability(Tracer(enabled=False), registry):
            telemetry = FleetTelemetry()
            FleetRouter(TM, AM, _heterogeneous()).run(
                poisson_arrivals(50.0, 10.0, seed=8),
                telemetry=telemetry,
            )
        snapshot = registry.snapshot()
        assert "router.latency_p99_s" in snapshot["gauges"]
        assert "router.availability" in snapshot["gauges"]
        assert snapshot["counters"]["router.runs"] == 1

    def test_tier_counts_and_degraded_counters_published(self):
        registry = MetricsRegistry()
        with scoped_observability(Tracer(enabled=False), registry):
            telemetry = FleetTelemetry()
            FleetRouter(
                TM,
                AM,
                _heterogeneous(),
                routing="adaptive",
                admission=AdmissionPolicy(
                    queue_limit=8.0, degrade_limit=4.0
                ),
            ).run(
                np.zeros(10),
                floors=np.full(10, 75.0),
                telemetry=telemetry,
            )
        assert telemetry.degraded == 4
        assert telemetry.tier_counts["gold"]["at_floor"] == 4
        snapshot = registry.snapshot()
        assert snapshot["counters"]["router.degraded"] == 4
        assert snapshot["counters"]["router.gold.at_floor"] == 4
        assert "router.goodput_at_accuracy" in snapshot["gauges"]

    def test_tier_counters_absent_without_degradation(self):
        """Pre-adaptive runs keep byte-identical counter snapshots:
        the degraded/at-floor counters only exist once a request was
        actually served below its floor."""
        registry = MetricsRegistry()
        with scoped_observability(Tracer(enabled=False), registry):
            telemetry = FleetTelemetry()
            FleetRouter(TM, AM, _heterogeneous()).run(
                poisson_arrivals(50.0, 5.0, seed=4),
                telemetry=telemetry,
            )
        counters = registry.snapshot()["counters"]
        assert "router.degraded" not in counters
        assert not any("at_floor" in k for k in counters)

    def test_burn_rates_compose_admission_and_drops(self):
        router = FleetRouter(
            TM,
            AM,
            [_replica("a")],
            admission=AdmissionPolicy(rate_per_s=0.0, burst=5),
        )
        report = router.run(np.linspace(0.0, 1.0, 50))
        burn = report.burn_rates(
            SloPolicy(latency_slo_s=1.0, availability_target=0.9)
        )
        assert burn["availability"] == pytest.approx(
            report.drop_rate / 0.1
        )


class TestFleetSpecCache:
    def setup_method(self):
        clear_fleet_cache()

    def test_content_equal_specs_hit_the_cache(self):
        workload = FleetWorkload(50.0, 10.0, seed=1)
        registry = MetricsRegistry()
        with scoped_observability(Tracer(enabled=False), registry):
            # fresh model instances: content, not identity, must key
            first = evaluate_fleet(
                FleetSpec(
                    caffenet_time_model(),
                    caffenet_accuracy_model(),
                    (_replica("a"),),
                ),
                workload,
            )
            second = evaluate_fleet(
                FleetSpec(
                    caffenet_time_model(),
                    caffenet_accuracy_model(),
                    (_replica("a"),),
                ),
                workload,
            )
        assert first is second
        counters = registry.snapshot()["counters"]
        assert counters["fleet.cache_misses"] == 1
        assert counters["fleet.cache_hits"] == 1
        assert fleet_cache_info()["entries"] == 1

    def test_different_routing_is_a_different_key(self):
        workload = FleetWorkload(50.0, 10.0, seed=1)
        spec = FleetSpec(TM, AM, tuple(_heterogeneous()))
        jsq = FleetSpec(
            TM, AM, tuple(_heterogeneous()), routing="jsq"
        )
        assert evaluate_fleet(spec, workload) is not evaluate_fleet(
            jsq, workload
        )

    def test_workload_validation(self):
        with pytest.raises(ConfigurationError, match="arrival"):
            FleetWorkload(50.0, 10.0, arrival="constant")
        with pytest.raises(ConfigurationError, match="positive"):
            FleetWorkload(-1.0, 10.0)
        with pytest.raises(ConfigurationError, match="sum to 1"):
            FleetWorkload(50.0, 10.0, floors=((0.0, 0.5), (75.0, 0.2)))

    def test_floor_mixture_is_deterministic(self):
        workload = FleetWorkload(
            50.0, 10.0, seed=3, floors=((0.0, 0.7), (75.0, 0.3))
        )
        floors = workload.accuracy_floors(1000)
        assert np.array_equal(floors, workload.accuracy_floors(1000))
        share = (floors == 75.0).mean()
        assert 0.25 < share < 0.35

    def test_hourly_rate_sums_replica_overrides(self):
        spec = FleetSpec(
            TM,
            AM,
            (_replica("a"), _replica("b", hourly_rate=0.5)),
        )
        assert spec.hourly_rate == pytest.approx(0.9 + 0.5)


class TestCheapestFleet:
    def setup_method(self):
        clear_fleet_cache()

    def test_picks_cheapest_feasible(self):
        workload = FleetWorkload(40.0, 10.0, seed=2)
        expensive = FleetSpec(
            TM,
            AM,
            (_replica("gold", "p2.8xlarge", PruneSpec.unpruned()),),
        )
        cheap = FleetSpec(TM, AM, (_replica("cheap"),))
        spec, report = cheapest_fleet(
            (expensive, cheap), workload, availability=0.99
        )
        assert spec is cheap
        assert report.availability >= 0.99

    def test_p99_constraint_filters(self):
        workload = FleetWorkload(120.0, 20.0, seed=2)
        slow = FleetSpec(TM, AM, (_replica("cheap"),))
        fast = FleetSpec(
            TM,
            AM,
            (_replica("gold", "p2.8xlarge", PruneSpec.unpruned()),),
        )
        spec, report = cheapest_fleet(
            (slow, fast), workload, availability=0.99, p99_s=1.0
        )
        assert spec is fast
        assert report.p99 <= 1.0

    def test_infeasible_raises(self):
        workload = FleetWorkload(40.0, 10.0, seed=2)
        shed_all = FleetSpec(
            TM,
            AM,
            (_replica("a"),),
            admission=AdmissionPolicy(queue_limit=0.0),
        )
        with pytest.raises(InfeasibleError, match="availability"):
            cheapest_fleet((shed_all,), workload, availability=0.5)
        with pytest.raises(InfeasibleError, match="no candidate"):
            cheapest_fleet((), workload)


class TestDeterminism:
    def test_fleet_run_is_reproducible(self):
        arrivals = poisson_arrivals(100.0, 20.0, seed=9)
        floors = FleetWorkload(
            100.0, 20.0, seed=9, floors=((0.0, 0.7), (75.0, 0.3))
        ).accuracy_floors(arrivals.size)

        def run():
            return FleetRouter(
                TM, AM, _heterogeneous(), routing="tiered"
            ).run(arrivals, floors=floors)

        first, second = run(), run()
        assert first.summary() == second.summary()
        assert np.array_equal(first.latencies_s, second.latencies_s)

    def test_artefact_identical_across_jobs(self):
        """ext-fleet-routing renders identically serial vs parallel."""
        from repro.experiments.engine import run_experiments

        def render(jobs):
            run = run_experiments(
                ("ext-fleet-routing",),
                jobs=jobs,
                use_cache=False,
                cache_dir=None,
                write_manifest=False,
            )
            [result] = run.results
            assert result.ok
            return result.text

        assert render(1) == render(2)

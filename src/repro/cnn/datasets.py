"""Synthetic procedural image dataset.

Stands in for the paper's ImageNet subset (1.2 M training / 50 k inference
images), which we cannot redistribute or fit on this machine.  Classes are
parametric 2-D patterns (gradients, rings, checkerboards, bars, spots)
perturbed by noise; they are linearly non-separable in pixel space but
learnable by a small CNN, which is what the end-to-end pruning demos need:
a *real* trained model whose accuracy responds to pruning the same
flat-then-drop way the paper measured.

Everything is deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cnn.layers import DTYPE

__all__ = ["SyntheticImages", "make_classification_data"]


def _grid(size: int) -> tuple[np.ndarray, np.ndarray]:
    ax = np.linspace(-1.0, 1.0, size, dtype=np.float64)
    return np.meshgrid(ax, ax, indexing="ij")


def _pattern(cls: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """One noisy image of class ``cls`` (values roughly in [-1, 1])."""
    yy, xx = _grid(size)
    phase = rng.uniform(0.0, 2 * np.pi)
    jitter = rng.uniform(0.7, 1.3)
    if cls == 0:  # diagonal gradient
        img = (xx + yy) * 0.5 * jitter
    elif cls == 1:  # concentric rings
        r = np.sqrt(xx**2 + yy**2)
        img = np.sin(4 * np.pi * r * jitter + phase)
    elif cls == 2:  # checkerboard
        img = np.sign(np.sin(3 * np.pi * xx * jitter) * np.sin(3 * np.pi * yy * jitter))
    elif cls == 3:  # vertical bars
        img = np.sin(5 * np.pi * xx * jitter + phase)
    elif cls == 4:  # central spot
        img = np.exp(-((xx**2 + yy**2) / (0.3 * jitter) ** 2)) * 2 - 1
    else:  # rotated bars for classes >= 5
        angle = (cls - 5 + 1) * np.pi / 7
        proj = xx * np.cos(angle) + yy * np.sin(angle)
        img = np.sin(5 * np.pi * proj * jitter + phase)
    img = img + rng.normal(0.0, 0.25, size=img.shape)
    return img.astype(DTYPE)


@dataclass(frozen=True)
class SyntheticImages:
    """A labelled image set: ``x`` is ``(n, c, h, w)``, ``y`` is ``(n,)``."""

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError("x / y length mismatch")

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def num_classes(self) -> int:
        return int(self.y.max()) + 1 if len(self) else 0

    def batches(self, batch_size: int) -> list[tuple[np.ndarray, np.ndarray]]:
        """Split into contiguous batches (last one may be short)."""
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        return [
            (self.x[i : i + batch_size], self.y[i : i + batch_size])
            for i in range(0, len(self), batch_size)
        ]


def make_classification_data(
    n: int,
    num_classes: int = 5,
    size: int = 16,
    channels: int = 1,
    seed: int = 0,
) -> SyntheticImages:
    """Generate ``n`` images spread evenly over ``num_classes`` classes.

    Classes are interleaved (0,1,2,...) so any contiguous slice is
    roughly balanced, and generation is fully determined by ``seed``.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if num_classes < 2:
        raise ValueError("need at least two classes")
    rng = np.random.default_rng(seed)
    x = np.empty((n, channels, size, size), dtype=DTYPE)
    y = np.empty(n, dtype=np.int64)
    for i in range(n):
        cls = i % num_classes
        y[i] = cls
        for ch in range(channels):
            x[i, ch] = _pattern(cls, size, rng)
    return SyntheticImages(x=x, y=y)

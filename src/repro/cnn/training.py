"""Minimal SGD training for small networks built from this package's layers.

The paper uses *pre-trained* ImageNet models and never trains on the cloud,
so training here exists for one purpose: producing genuinely-trained small
CNNs whose accuracy-under-pruning can be measured for real (no calibration),
validating the sweet-spot mechanism end to end (``examples/pruning_study.py``
and the integration tests).

Backpropagation is implemented for the layer types
:func:`repro.cnn.models.build_small_cnn` uses — ungrouped convolution,
ReLU, max pooling, flatten and dense — via explicit isinstance dispatch.
Loss is softmax cross-entropy over logits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cnn.conv import ConvLayer, conv_output_hw, im2col
from repro.cnn.activations import ReLU
from repro.cnn.dense import DenseLayer, Flatten
from repro.cnn.dropout import Dropout
from repro.cnn.datasets import SyntheticImages
from repro.cnn.layers import DTYPE
from repro.cnn.network import Network
from repro.cnn.pooling import MaxPool
from repro.errors import ReproError

__all__ = ["SGDTrainer", "TrainResult", "evaluate_topk", "softmax_cross_entropy"]


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. ``logits``."""
    n = logits.shape[0]
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    loss = -float(log_probs[np.arange(n), labels].mean())
    grad = np.exp(log_probs)
    grad[np.arange(n), labels] -= 1.0
    return loss, (grad / n).astype(DTYPE)


def _col2im(
    dcols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Scatter-add column gradients back to image layout (inverse of im2col)."""
    n, c, h, w = input_shape
    out_h, out_w = conv_output_hw(h, w, kernel, stride, pad)
    dx = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=DTYPE)
    dcols = dcols.reshape(n, c, kernel, kernel, out_h, out_w)
    for ki in range(kernel):
        for kj in range(kernel):
            dx[
                :,
                :,
                ki : ki + out_h * stride : stride,
                kj : kj + out_w * stride : stride,
            ] += dcols[:, :, ki, kj]
    if pad:
        dx = dx[:, :, pad:-pad, pad:-pad]
    return dx


@dataclass
class TrainResult:
    """Loss trajectory and final training accuracy of one training run."""

    losses: list[float] = field(default_factory=list)
    final_accuracy: float = 0.0
    epochs: int = 0


class SGDTrainer:
    """Plain mini-batch SGD with optional momentum.

    Parameters
    ----------
    network:
        Must contain only ungrouped :class:`ConvLayer`, :class:`ReLU`,
        :class:`MaxPool`, :class:`Flatten`, :class:`DenseLayer` layers and
        end in logits (no softmax).
    lr, momentum:
        Step size and classical momentum coefficient.
    """

    def __init__(
        self,
        network: Network,
        lr: float = 0.05,
        momentum: float = 0.9,
        preserve_zeros: bool = False,
    ) -> None:
        for layer in network.layers:
            if isinstance(layer, ConvLayer) and layer.groups != 1:
                raise ReproError(
                    f"trainer does not support grouped conv {layer.name!r}"
                )
            if not isinstance(
                layer,
                (ConvLayer, ReLU, MaxPool, Flatten, DenseLayer, Dropout),
            ):
                raise ReproError(
                    f"trainer does not support layer type "
                    f"{type(layer).__name__} ({layer.name!r})"
                )
        self.network = network
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        # sparsity-preserving fine-tuning (Li et al. prune *then*
        # retrain): capture the zero pattern now and clamp it after
        # every update so pruned weights stay pruned.
        self._masks: dict[str, np.ndarray] = {}
        if preserve_zeros:
            self._masks = {
                layer.name: layer.weights != 0
                for layer in network.weighted_layers()
            }

    # ------------------------------------------------------------------
    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Forward pass caching each layer's *input*."""
        cache: list[np.ndarray] = []
        for layer in self.network.layers:
            cache.append(x)
            x = layer.forward(x)
        return x, cache

    def _backward(
        self, grad: np.ndarray, cache: list[np.ndarray]
    ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Backward pass; returns per-layer (dW, db) for weighted layers."""
        grads: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for layer, x in zip(reversed(self.network.layers), reversed(cache)):
            if isinstance(layer, DenseLayer):
                grads[layer.name] = (grad.T @ x, grad.sum(axis=0))
                grad = grad @ layer.weights
            elif isinstance(layer, Flatten):
                grad = grad.reshape(x.shape)
            elif isinstance(layer, ReLU):
                grad = grad * (x > 0)
            elif isinstance(layer, Dropout):
                if layer.last_mask is not None:
                    grad = grad * layer.last_mask
            elif isinstance(layer, MaxPool):
                grad = self._maxpool_backward(layer, x, grad)
            elif isinstance(layer, ConvLayer):
                grad = self._conv_backward(layer, x, grad, grads)
            else:  # pragma: no cover - constructor guards this
                raise ReproError(f"unsupported layer {layer!r}")
        return grads

    def _maxpool_backward(
        self, layer: MaxPool, x: np.ndarray, grad: np.ndarray
    ) -> np.ndarray:
        n, c, h, w = x.shape
        windows, out_h, out_w = layer._windows(x)
        flat = windows.reshape(n, c, layer.kernel * layer.kernel, -1)
        winners = flat.argmax(axis=2)  # (n, c, out_h*out_w)
        dcols = np.zeros_like(flat)
        np.put_along_axis(
            dcols,
            winners[:, :, None, :],
            grad.reshape(n, c, 1, -1),
            axis=2,
        )
        dcols = dcols.reshape(n * c, layer.kernel * layer.kernel, -1)
        dx = _col2im(
            dcols,
            (n * c, 1, h, w),
            layer.kernel,
            layer.stride,
            layer.pad,
        )
        return dx.reshape(n, c, h, w)

    def _conv_backward(
        self,
        layer: ConvLayer,
        x: np.ndarray,
        grad: np.ndarray,
        grads: dict[str, tuple[np.ndarray, np.ndarray]],
    ) -> np.ndarray:
        n = x.shape[0]
        cols, out_h, out_w = im2col(x, layer.kernel, layer.stride, layer.pad)
        gflat = grad.reshape(n, layer.out_channels, out_h * out_w)
        # dW: sum over batch of gflat @ cols^T
        dw = np.einsum("nop,ncp->oc", gflat, cols).reshape(
            layer.weights.shape
        )
        db = gflat.sum(axis=(0, 2))
        grads[layer.name] = (dw, db)
        wmat = layer.weights.reshape(layer.out_channels, -1)
        dcols = np.matmul(wmat.T, gflat)  # (n, c*k*k, hw)
        return _col2im(
            dcols, x.shape, layer.kernel, layer.stride, layer.pad
        )

    # ------------------------------------------------------------------
    def step(self, x: np.ndarray, y: np.ndarray) -> float:
        """One SGD step on a mini-batch; returns the batch loss."""
        logits, cache = self._forward(x)
        loss, grad = softmax_cross_entropy(logits, y)
        grads = self._backward(grad, cache)
        for layer in self.network.weighted_layers():
            if layer.name not in grads:
                continue
            dw, db = grads[layer.name]
            vw, vb = self._velocity.get(
                layer.name,
                (np.zeros_like(layer.weights), np.zeros_like(layer.bias)),
            )
            vw = self.momentum * vw - self.lr * dw
            vb = self.momentum * vb - self.lr * db
            self._velocity[layer.name] = (vw, vb)
            layer.weights += vw
            layer.bias += vb
            mask = self._masks.get(layer.name)
            if mask is not None:
                layer.weights *= mask
        return loss

    def fit(
        self,
        data: SyntheticImages,
        epochs: int = 5,
        batch_size: int = 32,
    ) -> TrainResult:
        """Train over the dataset; returns the loss trajectory.

        Dropout layers run in training mode for the duration of the fit
        and are restored to inference mode afterwards.
        """
        dropouts = [
            layer
            for layer in self.network.layers
            if isinstance(layer, Dropout)
        ]
        for layer in dropouts:
            layer.training = True
        try:
            result = TrainResult()
            for _ in range(epochs):
                for bx, by in data.batches(batch_size):
                    result.losses.append(self.step(bx, by))
                result.epochs += 1
        finally:
            for layer in dropouts:
                layer.training = False
                layer.last_mask = None
        result.final_accuracy = evaluate_topk(self.network, data, k=1)
        return result


def evaluate_topk(
    network: Network, data: SyntheticImages, k: int = 1, batch_size: int = 64
) -> float:
    """Top-``k`` accuracy of ``network`` on ``data`` (Section 3.2.2).

    Top-1 is the fraction of samples whose highest-scoring class is the
    label; Top-``k`` accepts the label anywhere in the ``k`` best scores.
    """
    hits = 0
    for bx, by in data.batches(batch_size):
        topk = network.predict_topk(bx, k=k)
        hits += int((topk == by[:, None]).any(axis=1).sum())
    return hits / len(data)

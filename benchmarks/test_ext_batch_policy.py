"""Benchmark: extension — batch-width vs tail-latency sweep.

Times the eight-width serving sweep and asserts the U-shape.
"""

from __future__ import annotations

from repro.experiments import ext_batch_policy


def test_ext_batch_policy(benchmark):
    ext_batch_policy.run.cache_clear()
    study = benchmark.pedantic(
        ext_batch_policy.run,
        kwargs=dict(rate_per_s=400.0, duration_s=40.0, instances=3),
        rounds=1,
        iterations=1,
    )
    best = study.best_width()
    widths = [p.max_batch for p in study.points]
    assert best not in (widths[0], widths[-1])

"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import (
    _parse_spec,
    _soak_injection,
    build_parser,
    main,
)


class TestSpecParsing:
    def test_none(self):
        assert _parse_spec("none").is_unpruned()
        assert _parse_spec("").is_unpruned()

    def test_multi_layer(self):
        spec = _parse_spec("conv1=0.3,conv2=0.5")
        assert spec.as_dict() == {"conv1": 0.3, "conv2": 0.5}

    def test_bad_format(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_spec("conv1")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_spec("conv1=abc")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_catalog_command(self):
        args = build_parser().parse_args(["catalog"])
        assert args.command == "catalog"

    def test_simulate_args(self):
        args = build_parser().parse_args(
            [
                "simulate",
                "--spec",
                "conv1=0.2",
                "--instances",
                "p2.xlarge",
                "g3.4xlarge",
            ]
        )
        assert args.spec.ratio_for("conv1") == 0.2
        assert args.instances == ["p2.xlarge", "g3.4xlarge"]


class TestMain:
    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "p2.16xlarge" in out

    def test_simulate(self, capsys):
        code = main(
            [
                "simulate",
                "--spec",
                "conv1=0.3,conv2=0.5",
                "--instances",
                "p2.xlarge",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "12.71 min" in out
        assert "top5 70.0%" in out

    def test_simulate_unknown_instance(self, capsys):
        code = main(
            ["simulate", "--instances", "p9.xlarge"]
        )
        assert code == 1
        assert "unknown" in capsys.readouterr().err

    def test_sweep(self, capsys):
        code = main(["sweep", "--layer", "conv2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "last sweet spot: 50%" in out

    def test_sweep_unknown_layer_is_time_neutral_but_runs(self, capsys):
        # unknown layers fall back to the default accuracy response
        code = main(["sweep", "--layer", "conv9"])
        assert code == 0

    def test_allocate_feasible(self, capsys):
        code = main(
            [
                "allocate",
                "--images",
                "2000000",
                "--deadline",
                "1",
                "--budget",
                "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "configuration" in out

    def test_allocate_infeasible(self, capsys):
        code = main(
            [
                "allocate",
                "--images",
                "500000000",
                "--deadline",
                "0.1",
                "--budget",
                "1",
            ]
        )
        assert code == 1
        assert "infeasible" in capsys.readouterr().err

    def test_experiments_unknown_id(self, capsys):
        assert main(["experiments", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_experiments_single(self, capsys):
        assert main(["experiments", "table3"]) == 0
        assert "g3.16xlarge" in capsys.readouterr().out


class TestExperimentsEngineFlags:
    def test_json_format_emits_manifest_and_results(
        self, capsys, tmp_path
    ):
        import json

        code = main(
            [
                "experiments",
                "table3",
                "fig11",
                "--format",
                "json",
                "--no-cache",
                "--manifest",
                str(tmp_path / "manifest.json"),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["manifest"]["schema"] == "repro.run-manifest/v1"
        artefacts = [r["artefact"] for r in payload["results"]]
        assert artefacts == ["table3", "fig11"]
        fig11 = payload["results"][1]
        assert fig11["status"] == "ok"
        assert fig11["data"]["images"] == 50_000
        assert (tmp_path / "manifest.json").exists()

    def test_jobs_flag_matches_serial_text(self, capsys, tmp_path):
        assert (
            main(
                [
                    "experiments",
                    "table3",
                    "fig4",
                    "--jobs",
                    "2",
                    "--no-cache",
                    "--manifest",
                    str(tmp_path / "m.json"),
                ]
            )
            == 0
        )
        parallel_out = capsys.readouterr().out
        assert (
            main(
                [
                    "experiments",
                    "table3",
                    "fig4",
                    "--no-cache",
                    "--manifest",
                    str(tmp_path / "m.json"),
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == parallel_out

    def test_report_unknown_id(self, capsys):
        assert main(["report", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_report_to_file(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        assert main(["report", "table3", "--output", str(target)]) == 0
        text = target.read_text()
        assert text.startswith("# Experiment report")
        assert "| table3 | ok |" in text
        assert "p2.xlarge" in text


class TestTailCommand:
    @staticmethod
    def _log(tmp_path, events):
        path = tmp_path / "events.jsonl"
        lines = [json.dumps(e, sort_keys=True) for e in events]
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    EVENTS = [
        {"seq": 0, "kind": "service.access", "trace_id": "aa" * 8},
        {"seq": 1, "kind": "anomaly.raise", "metric": "cost"},
        {"seq": 2, "kind": "anomaly.resolve", "metric": "cost"},
        {"seq": 3, "kind": "service.access", "trace_id": "bb" * 8},
    ]

    def test_prints_every_event(self, capsys, tmp_path):
        path = self._log(tmp_path, self.EVENTS)
        assert main(["tail", path]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert [json.loads(ln)["seq"] for ln in lines] == [0, 1, 2, 3]

    def test_kind_prefix_filter(self, capsys, tmp_path):
        path = self._log(tmp_path, self.EVENTS)
        assert main(["tail", path, "--kind", "anomaly"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        kinds = [json.loads(ln)["kind"] for ln in lines]
        assert kinds == ["anomaly.raise", "anomaly.resolve"]

    def test_trace_filter(self, capsys, tmp_path):
        path = self._log(tmp_path, self.EVENTS)
        assert main(["tail", path, "--trace", "bb" * 8]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert [json.loads(ln)["seq"] for ln in lines] == [3]

    def test_limit_stops_early(self, capsys, tmp_path):
        path = self._log(tmp_path, self.EVENTS)
        assert main(["tail", path, "--limit", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2

    def test_missing_file_is_exit_2(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["tail", missing]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_garbage_lines_are_skipped(self, capsys, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            'not json\n[1, 2]\n\n{"seq": 9, "kind": "x"}\n'
        )
        assert main(["tail", str(path)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert [json.loads(ln)["seq"] for ln in lines] == [9]


class TestSoakCli:
    def test_injection_presets(self):
        from repro.service import PlanMixture

        mixture = PlanMixture(seed=0)
        assert _soak_injection(None, mixture) is None
        price = _soak_injection("price-step", mixture)
        assert price.cost_scale == 3.0
        fault = _soak_injection("fault-plan", mixture)
        assert fault.mixture.catalog == ("injected-fault",)
        latency = _soak_injection("latency", mixture)
        assert latency.extra_latency_s == 0.25

    def test_parser_accepts_soak_flags(self):
        args = build_parser().parse_args(
            [
                "loadgen",
                "--soak",
                "--window",
                "0.5",
                "--inject",
                "price-step",
                "--windows-out",
                "w.json",
            ]
        )
        assert args.soak and args.window == 0.5
        assert args.inject == "price-step"

    def test_healthy_soak_exits_zero_with_json(
        self, capsys, tmp_path
    ):
        windows = tmp_path / "windows.json"
        code = main(
            [
                "loadgen",
                "--soak",
                "--rate",
                "50",
                "--duration",
                "2",
                "--window",
                "0.5",
                "--catalog",
                "p2.16xlarge",
                "p2.8xlarge",
                "--images",
                "1000000",
                "--json",
                "--windows-out",
                str(windows),
            ]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["ok"] is True
        assert summary["requests"] == 100  # 4 windows x 25
        rows = json.loads(windows.read_text())
        assert rows and {"metric", "index", "count"} <= set(rows[0])

"""Experiment registry front-end: run the whole evaluation in one call.

``run_all()`` regenerates every table and figure and returns structured
:class:`~repro.experiments.engine.ExperimentResult` objects keyed by
artefact id — each carries ``artefact``/``title``/``text`` (the old
``ExperimentOutput`` shape) plus structured ``data``, status, timing
and a per-artefact trace.  The heavy lifting lives in
:mod:`repro.experiments.engine`; this module keeps the historical entry
point and the deprecation shims for the pre-engine API:

* ``EXPERIMENTS`` — the old ``{id: (title, renderer)}`` dict, rebuilt
  on access from the engine registry (emits ``DeprecationWarning``);
* ``ExperimentOutput`` — alias of ``ExperimentResult`` (emits
  ``DeprecationWarning``).
"""

from __future__ import annotations

import os
import warnings
from collections.abc import Callable

from repro.experiments.engine import (
    DEFAULT_CACHE_DIR,
    REGISTRY,
    Experiment,
    ExperimentResult,
    run_experiments,
)

__all__ = [
    "REGISTRY",
    "Experiment",
    "ExperimentResult",
    "run_all",
    "run_experiments",
]


def run_all(
    only: tuple[str, ...] | None = None,
    *,
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: str | os.PathLike | None = DEFAULT_CACHE_DIR,
    write_manifest: bool = True,
    manifest_path: str | os.PathLike | None = None,
) -> list[ExperimentResult]:
    """Regenerate all (or selected) artefacts.

    The historical signature ``run_all(only)`` still works and the
    returned objects still expose ``.artefact``/``.title``/``.text``;
    new keyword arguments expose the engine: ``jobs=N`` runs artefacts
    in parallel worker processes, the content-keyed cache skips
    unchanged artefacts, and a run manifest is written under
    ``results/``.  Unknown ids in ``only`` raise
    :class:`~repro.errors.UnknownArtefactError`.
    """
    run = run_experiments(
        only,
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
        write_manifest=write_manifest,
        manifest_path=manifest_path,
    )
    return list(run.results)


def _legacy_renderer(experiment: Experiment) -> Callable[[], str]:
    def renderer() -> str:
        return experiment.render_text()

    return renderer


def __getattr__(name: str):
    if name == "EXPERIMENTS":
        warnings.warn(
            "repro.experiments.runner.EXPERIMENTS is deprecated; use "
            "repro.experiments.engine.REGISTRY (Experiment objects) "
            "instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return {
            artefact: (e.title, _legacy_renderer(e))
            for artefact, e in REGISTRY.items()
        }
    if name == "ExperimentOutput":
        warnings.warn(
            "ExperimentOutput is deprecated; use "
            "repro.experiments.engine.ExperimentResult instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return ExperimentResult
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def main() -> None:  # pragma: no cover - CLI convenience
    import sys

    only = tuple(sys.argv[1:]) or None
    for output in run_all(only):
        print(f"\n{'=' * 72}\n{output.artefact}: {output.title}\n{'=' * 72}")
        print(output.text)


if __name__ == "__main__":  # pragma: no cover
    main()

"""Batch-forming policy for the serving simulator.

GPU inference throughput depends on batch width (the paper's Figure 5),
but online requests arrive one at a time — so a server must trade
queueing delay for batch efficiency.  :class:`BatchPolicy` captures the
standard policy: dispatch when either ``max_batch`` requests are waiting
or the oldest has waited ``max_wait_s``.

Two queue implementations share that policy:

* :class:`PendingQueue` — the original deque of ``(id, arrival)``
  tuples, one push/pop per request.  The per-event engine uses it.
* :class:`ColumnQueue` — the columnar engine's view: batch formation is
  *array segmentation*.  Request ids are implicit (the index into the
  arrival column), the queued originals are a contiguous ``[head, end)``
  window into that column, and only preemption-requeued requests — a
  rare, tiny set — are materialised as tuples.  Absorbing ``k`` arrivals
  or taking a full batch moves an index instead of touching ``k``
  objects, which is what lets the engine's cost scale with *batches*
  rather than requests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["BatchPolicy", "ColumnQueue", "PendingQueue"]


@dataclass(frozen=True)
class BatchPolicy:
    """When to close a batch.

    Attributes
    ----------
    max_batch:
        Never dispatch more than this many requests in one batch
        (bounded by the device's memory-limited batch size).
    max_wait_s:
        Dispatch a partial batch once its oldest request has waited this
        long, even if the batch is not full.  ``0`` means dispatch
        immediately whenever a GPU is free (lowest latency, worst
        efficiency).
    """

    max_batch: int
    max_wait_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")


@dataclass
class PendingQueue:
    """FIFO of (request id, arrival time) awaiting dispatch."""

    _queue: deque = field(default_factory=deque)

    def push(self, request_id: int, arrival_s: float) -> None:
        """Enqueue one request in arrival order."""
        self._queue.append((request_id, arrival_s))

    def __len__(self) -> int:
        return len(self._queue)

    def oldest_arrival(self) -> float:
        """Arrival time of the head request (raises when empty)."""
        if not self._queue:
            raise IndexError("empty queue")
        return self._queue[0][1]

    def should_dispatch(self, now: float, policy: BatchPolicy) -> bool:
        """Is a batch ready under ``policy`` at time ``now``?

        The wait comparison carries a 1 ns epsilon: a timeout event
        scheduled at ``arrival + max_wait`` must satisfy the test at its
        own timestamp despite float rounding (``1.2 - 1.0 < 0.2`` in
        binary floating point), otherwise the timer re-arms forever.
        """
        if not self._queue:
            return False
        if len(self._queue) >= policy.max_batch:
            return True
        return now - self.oldest_arrival() >= policy.max_wait_s - 1e-9

    def take(self, n: int) -> list[tuple[int, float]]:
        """Remove and return up to ``n`` oldest requests."""
        out = []
        while self._queue and len(out) < n:
            out.append(self._queue.popleft())
        return out

    def requeue(self, request_id: int, arrival_s: float) -> None:
        """Re-admit a preempted request at its arrival-order position.

        The queue stays sorted by arrival time, so the max-wait timer
        and timeout purges keep seeing the genuinely oldest request at
        the head.  Requeued requests are older than almost everything
        queued, so the scan from the head is short.
        """
        i = 0
        while i < len(self._queue) and self._queue[i][1] <= arrival_s:
            i += 1
        self._queue.insert(i, (request_id, arrival_s))


class ColumnQueue:
    """Arrival-window pending queue: batch formation as segmentation.

    The queue is the merge of two arrival-sorted sequences:

    * the contiguous original-arrival window ``[head, end)`` into the
      shared ``arrivals`` column (request id == column index), and
    * ``requeued`` — ``(id, arrival)`` tuples re-admitted after a
      preemption, kept sorted by arrival with the same
      insert-after-equals rule :meth:`PendingQueue.requeue` uses.

    On an arrival tie the original comes first — exactly where
    :meth:`PendingQueue.requeue`'s head scan would have inserted the
    requeued entry — so iteration order is identical to the deque's,
    tuple for tuple.  The engine mutates ``head``/``end`` directly when
    absorbing arrival runs; the methods here cover the per-batch
    operations.
    """

    __slots__ = ("arrivals", "head", "end", "requeued")

    def __init__(self, arrivals: list[float]) -> None:
        self.arrivals = arrivals
        self.head = 0
        self.end = 0
        self.requeued: list[tuple[int, float]] = []

    def __len__(self) -> int:
        return self.end - self.head + len(self.requeued)

    def oldest_arrival(self) -> float:
        """Arrival time of the merged head (raises when empty)."""
        rq = self.requeued
        if rq and (
            self.head >= self.end
            or rq[0][1] < self.arrivals[self.head]
        ):
            return rq[0][1]
        if self.head >= self.end:
            raise IndexError("empty queue")
        return self.arrivals[self.head]

    def take(self, n: int):
        """Remove up to ``n`` oldest requests.

        Returns ``(lo, hi, ids, arrs)``: when no requeued entries are
        involved the batch is the pure column segment ``[lo, hi)`` and
        ``ids``/``arrs`` are ``None`` (the caller slices the arrival
        column); otherwise ``ids``/``arrs`` list the merged members in
        queue order and ``lo``/``hi`` are ``-1``.
        """
        if not self.requeued:
            lo = self.head
            hi = min(lo + n, self.end)
            self.head = hi
            return lo, hi, None, None
        ids: list[int] = []
        arrs: list[float] = []
        arrivals = self.arrivals
        rq = self.requeued
        while len(ids) < n:
            if self.head < self.end and (
                not rq or arrivals[self.head] <= rq[0][1]
            ):
                ids.append(self.head)
                arrs.append(arrivals[self.head])
                self.head += 1
            elif rq:
                rid, a = rq.pop(0)
                ids.append(rid)
                arrs.append(a)
            else:
                break
        return -1, -1, ids, arrs

    def requeue(self, request_id: int, arrival_s: float) -> None:
        """Re-admit a preempted request at its arrival-order position."""
        rq = self.requeued
        i = 0
        while i < len(rq) and rq[i][1] <= arrival_s:
            i += 1
        rq.insert(i, (request_id, arrival_s))

    def expire(self, now: float, threshold: float) -> list[int]:
        """Pop every head request with ``now - arrival > threshold``.

        Returns the dropped request ids in queue order.  Identical to
        the per-event loop's head-first purge: the merge is arrival-
        sorted, so the expired set is always a queue prefix.
        """
        dropped: list[int] = []
        arrivals = self.arrivals
        rq = self.requeued
        while True:
            if rq and (
                self.head >= self.end
                or rq[0][1] < arrivals[self.head]
            ):
                if now - rq[0][1] > threshold:
                    dropped.append(rq.pop(0)[0])
                else:
                    return dropped
            elif self.head < self.end:
                if now - arrivals[self.head] > threshold:
                    dropped.append(self.head)
                    self.head += 1
                else:
                    return dropped
            else:
                return dropped

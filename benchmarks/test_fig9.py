"""Benchmark: Figure 9 — time-accuracy Pareto study.

Paper: a large feasible set under the 10 h deadline; a small multi-point
Pareto frontier spanning a wide accuracy range; picking the Pareto
configuration at the best accuracy cuts time by ~50% vs same-accuracy
alternatives.
"""

from __future__ import annotations

from repro.core.evalspace import clear_space_cache
from repro.experiments import fig9_time_pareto
from repro.experiments.configuration_study import study_space


def test_fig9_time_pareto(benchmark):
    # time the full 3 780-point evaluation, not a cache lookup
    study_space.cache_clear()
    clear_space_cache()

    def full_study():
        return fig9_time_pareto.run()

    result = benchmark.pedantic(full_study, rounds=1, iterations=1)
    assert 100 < result.top1.n_feasible < result.top1.total_points
    assert 3 <= result.top1.n_pareto <= 15
    lo, hi = result.top1.accuracy_range
    assert hi - lo > 20.0
    assert result.top1.saving_at_best_accuracy() >= 0.50

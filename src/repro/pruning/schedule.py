"""Degrees-of-pruning generators.

These build the sets *P* the paper sweeps:

* :func:`single_layer_sweep` — one layer, ratio 0-90% (Figures 6, 7);
* :func:`uniform_sweep` — all layers at the same ratio (Figure 4);
* :func:`multi_layer_grid` — cartesian ratio grid over several layers
  (Figure 11's conv1 x conv2 grid);
* :func:`sweet_spot_combo` — each layer at its last sweet spot
  (Figure 8's ``conv1-2`` and ``all-conv`` configurations);
* :func:`caffenet_variant_set` — the 60-variant Caffenet set behind the
  Pareto studies (Figures 9, 10).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.pruning.base import PruneSpec

__all__ = [
    "DegreeOfPruning",
    "single_layer_sweep",
    "uniform_sweep",
    "multi_layer_grid",
    "sweet_spot_combo",
    "caffenet_variant_set",
    "DEFAULT_RATIOS",
]

#: The paper's standard prune-ratio ladder: 0% to 90% in 10% steps.
DEFAULT_RATIOS: tuple[float, ...] = tuple(r / 10 for r in range(10))


@dataclass(frozen=True)
class DegreeOfPruning:
    """A labelled element of the degrees-of-pruning set *P*."""

    spec: PruneSpec
    label: str

    @classmethod
    def of(cls, spec: PruneSpec) -> "DegreeOfPruning":
        return cls(spec=spec, label=spec.label())


def single_layer_sweep(
    layer: str, ratios: Sequence[float] = DEFAULT_RATIOS
) -> list[DegreeOfPruning]:
    """Prune one layer at each ratio (one subplot of Figure 6/7)."""
    return [DegreeOfPruning.of(PruneSpec({layer: r})) for r in ratios]


def uniform_sweep(
    layers: Iterable[str], ratios: Sequence[float] = DEFAULT_RATIOS
) -> list[DegreeOfPruning]:
    """All layers pruned together at each ratio (Figure 4's x-axis)."""
    layers = tuple(layers)
    return [
        DegreeOfPruning.of(PruneSpec.uniform(layers, r)) for r in ratios
    ]


def multi_layer_grid(
    ratio_grid: Mapping[str, Sequence[float]]
) -> list[DegreeOfPruning]:
    """Cartesian product of per-layer ratio ladders.

    ``multi_layer_grid({"conv1": [0, .1], "conv2": [0, .2]})`` yields four
    degrees of pruning.  Figure 11 uses conv1 in 0-40% and conv2 in 0-50%.
    """
    names = list(ratio_grid)
    out = []
    for combo in itertools.product(*(ratio_grid[n] for n in names)):
        spec = PruneSpec(dict(zip(names, combo)))
        out.append(DegreeOfPruning.of(spec))
    return out


def sweet_spot_combo(sweet_spots: Mapping[str, float]) -> DegreeOfPruning:
    """One degree of pruning with each layer at its last sweet spot.

    The paper's Figure 8 builds ``conv1-2`` from
    ``{"conv1": 0.3, "conv2": 0.5}`` and ``all-conv`` from all five
    Caffenet convolutions at their last sweet spots.
    """
    return DegreeOfPruning.of(PruneSpec(dict(sweet_spots)))


def caffenet_variant_set(
    layers: Sequence[str] = ("conv1", "conv2", "conv3", "conv4", "conv5"),
    count: int = 60,
) -> list[DegreeOfPruning]:
    """A ``count``-variant Caffenet pruning set spanning a wide accuracy range.

    The paper selects "60 versions of Caffenet CNN pruned in different
    degrees spanning a wide accuracy range" (Section 4.3.2) without
    listing them; we generate a deterministic mix of uniform sweeps,
    single-layer sweeps and pairwise combinations that covers the same
    accuracy spectrum (from unpruned down to heavily-pruned conv1).
    """
    variants: list[DegreeOfPruning] = [
        DegreeOfPruning.of(PruneSpec.unpruned())
    ]
    # uniform all-conv sweeps: strong accuracy ladder
    for r in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8):
        variants.append(DegreeOfPruning.of(PruneSpec.uniform(layers, r)))
    # single-layer sweeps at coarse ratios
    for layer in layers:
        for r in (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8):
            variants.append(DegreeOfPruning.of(PruneSpec({layer: r})))
    # pairwise conv1/conv2 combinations (the paper's focus layers)
    for r1 in (0.1, 0.2, 0.3, 0.4):
        for r2 in (0.2, 0.3, 0.4, 0.5):
            variants.append(
                DegreeOfPruning.of(PruneSpec({layers[0]: r1, layers[1]: r2}))
            )
    # deeper trios to extend the low-accuracy tail
    for r in (0.5, 0.6, 0.7, 0.8, 0.9):
        variants.append(
            DegreeOfPruning.of(
                PruneSpec({layers[2]: r, layers[3]: r, layers[4]: r})
            )
        )
    # dedupe while preserving order, then trim/verify count
    seen: set[str] = set()
    unique = []
    for v in variants:
        if v.label not in seen:
            seen.add(v.label)
            unique.append(v)
    if len(unique) < count:
        raise ValueError(
            f"variant generator produced {len(unique)} < {count} degrees"
        )
    return unique[:count]

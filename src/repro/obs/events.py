"""The event bus: structured telemetry events, fanned out process-wide.

Spans, counters and the experiment engine describe *state*; the bus
carries *events* — span open/close, counter deltas, experiment
lifecycle, SLO alerts — to whoever subscribed.  With no subscribers
(the default) :meth:`EventBus.emit` is a single truthiness check, so
instrumented hot paths pay nothing until someone actually listens.

The canonical subscriber is :class:`JsonlEventLog`, which appends one
JSON object per event (schema ``repro.events/v1``)::

    {"seq": 17, "ts_unix": 1754000000.0, "kind": "span.close",
     "name": "serving.run", "span_id": 3, "wall_s": 0.21, ...}

``seq`` is the bus's per-process monotonic sequence number; ``ts_unix``
is stamped by the log at write time (the bus itself never reads the
clock, so event payloads stay deterministic for tests).
"""

from __future__ import annotations

import json
import os
from collections.abc import Callable
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "EVENT_LOG_SCHEMA",
    "EventBus",
    "JsonlEventLog",
    "get_event_bus",
]

EVENT_LOG_SCHEMA = "repro.events/v1"

Subscriber = Callable[[dict], None]


class EventBus:
    """Synchronous fan-out of structured events to subscribers."""

    def __init__(self) -> None:
        self._subscribers: list[Subscriber] = []
        self._seq = 0

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when at least one subscriber is listening.

        Hot paths check this before building an event payload, so the
        idle bus costs one attribute access per instrumentation site.
        """
        return bool(self._subscribers)

    def subscribe(self, fn: Subscriber) -> Subscriber:
        """Register ``fn`` to receive every subsequent event."""
        self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Subscriber) -> None:
        """Remove a subscriber (no-op if it was never registered)."""
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass

    @contextmanager
    def subscribed(self, fn: Subscriber):
        """Subscribe ``fn`` for the duration of a ``with`` block."""
        self.subscribe(fn)
        try:
            yield fn
        finally:
            self.unsubscribe(fn)

    # ------------------------------------------------------------------
    def emit(self, kind: str, /, **fields: object) -> None:
        """Deliver ``{"seq": n, "kind": kind, **fields}`` to subscribers.

        A subscriber that raises does not stop delivery to the others;
        telemetry must never take down the run it observes.
        """
        if not self._subscribers:
            return
        self._seq += 1
        event = {"seq": self._seq, "kind": kind, **fields}
        for fn in tuple(self._subscribers):
            try:
                fn(event)
            except Exception:
                pass

    @property
    def events_emitted(self) -> int:
        """How many events have been delivered since process start."""
        return self._seq


#: The process-wide bus every instrumentation site emits to.  Unlike
#: tracers and registries it is not scoped: an event log subscribed for
#: a CLI invocation sees events from every scope inside it.
_GLOBAL_BUS = EventBus()


def get_event_bus() -> EventBus:
    """The process-wide :class:`EventBus`."""
    return _GLOBAL_BUS


class JsonlEventLog:
    """Bus subscriber appending one JSON line per event to a file.

    Usable as a context manager::

        with JsonlEventLog("run.jsonl") as log:
            ...   # everything emitted in here lands in the file
        log.count   # events written

    The first line written is a header record carrying the schema
    version, so a reader can validate what it is parsing.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        bus: EventBus | None = None,
    ) -> None:
        self.path = Path(path)
        self.bus = bus if bus is not None else get_event_bus()
        self.count = 0
        self._handle = None

    # ------------------------------------------------------------------
    def __enter__(self) -> JsonlEventLog:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w")
        header = {"schema": EVENT_LOG_SCHEMA, "kind": "log.open"}
        self._handle.write(json.dumps(header) + "\n")
        self.bus.subscribe(self._write)
        return self

    def __exit__(self, *exc_info) -> None:
        self.bus.unsubscribe(self._write)
        if self._handle is not None:
            self._handle.write(
                json.dumps({"kind": "log.close", "events": self.count})
                + "\n"
            )
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    def _write(self, event: dict) -> None:
        import time

        record = {"ts_unix": time.time(), **event}
        self._handle.write(json.dumps(record, default=str) + "\n")
        self.count += 1

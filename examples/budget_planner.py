#!/usr/bin/env python
"""Budget planner: best reachable accuracy for a (deadline, budget) grid.

A cloud consumer's planning question, answered with the paper's
machinery: "for each combination of time deadline and cost budget, what
is the best inference accuracy I can buy, and on which configuration?"

For every cell of a deadline x budget grid this runs Algorithm 1 over
the degrees-of-pruning ladder and the full EC2 catalog, then prints the
accuracy matrix — the sweet-spot structure makes whole regions of the
grid equally accurate but differently priced.

Run:  python examples/budget_planner.py
"""

from repro import (
    CloudInstance,
    CloudSimulator,
    DegreeOfPruning,
    EC2_CATALOG,
    PruneSpec,
    caffenet_accuracy_model,
    caffenet_time_model,
    greedy_allocate,
)
from repro.errors import InfeasibleError

IMAGES = 2_000_000

DEADLINES_H = (0.5, 1.0, 2.0, 5.0)
BUDGETS = (5.0, 15.0, 40.0, 100.0)

#: accuracy ladder: unpruned down to deep pruning
DEGREES = [
    DegreeOfPruning.of(spec)
    for spec in (
        PruneSpec.unpruned(),
        PruneSpec({"conv1": 0.2, "conv2": 0.4}),
        PruneSpec({"conv1": 0.3, "conv2": 0.5}),
        PruneSpec(
            {"conv1": 0.3, "conv2": 0.5, "conv3": 0.5, "conv4": 0.5, "conv5": 0.5}
        ),
        PruneSpec.uniform(
            ("conv1", "conv2", "conv3", "conv4", "conv5"), 0.6
        ),
    )
]


def main() -> None:
    simulator = CloudSimulator(
        caffenet_time_model(), caffenet_accuracy_model()
    )
    pool = [
        CloudInstance(itype) for itype in EC2_CATALOG for _ in range(3)
    ]

    print(f"best reachable Top-5 accuracy for {IMAGES:,} inferences\n")
    header = "deadline \\ budget" + "".join(
        f"{f'${b:.0f}':>14}" for b in BUDGETS
    )
    print(header)
    for deadline_h in DEADLINES_H:
        cells = []
        for budget in BUDGETS:
            try:
                allocation = greedy_allocate(
                    DEGREES,
                    pool,
                    simulator,
                    images=IMAGES,
                    deadline_s=deadline_h * 3600.0,
                    budget=budget,
                )
                r = allocation.result
                cells.append(
                    f"{r.accuracy.top5:.0f}% ${r.cost:.0f}"
                )
            except InfeasibleError:
                cells.append("infeasible")
        print(
            f"{deadline_h:>9.1f}h       "
            + "".join(f"{c:>14}" for c in cells)
        )

    print(
        "\neach cell: best Top-5 accuracy and the actual spend of the "
        "configuration Algorithm 1 picked (TAR/CAR greedy over "
        f"{len(pool)} candidate instances)"
    )


if __name__ == "__main__":
    main()

"""Architecture tests: Caffenet/Googlenet match the paper's Table 1 shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnn import build_caffenet, build_googlenet, build_small_cnn
from repro.cnn.flops import (
    conv_flop_fraction,
    flop_breakdown,
    param_breakdown,
)
from repro.cnn.models import (
    CAFFENET_CONV_LAYERS,
    GOOGLENET_SELECTED_LAYERS,
)
from repro.errors import ShapeError


class TestCaffenetArchitecture:
    """Every row of the paper's Table 1."""

    @pytest.mark.parametrize(
        "layer,out_shape,n_filters,filter_shape",
        [
            ("conv1", (96, 55, 55), 96, (11, 11, 3)),
            ("conv2", (256, 27, 27), 256, (5, 5, 48)),
            ("conv3", (384, 13, 13), 384, (3, 3, 256)),
            ("conv4", (384, 13, 13), 384, (3, 3, 192)),
            ("conv5", (256, 13, 13), 256, (3, 3, 192)),
        ],
    )
    def test_conv_layer_row(
        self, caffenet_const, layer, out_shape, n_filters, filter_shape
    ):
        conv = caffenet_const.layer(layer)
        in_shape = caffenet_const.input_shape_of(layer)
        assert conv.output_shape(in_shape) == out_shape
        assert conv.out_channels == n_filters
        assert conv.filter_shape == filter_shape

    @pytest.mark.parametrize(
        "layer,width", [("fc1", 4096), ("fc2", 4096), ("fc3", 1000)]
    )
    def test_fc_layer_row(self, caffenet_const, layer, width):
        assert caffenet_const.layer(layer).out_features == width

    def test_five_conv_three_fc(self, caffenet_const):
        assert caffenet_const.conv_layer_names() == list(
            CAFFENET_CONV_LAYERS
        )

    def test_param_count_is_alexnet_scale(self, caffenet_const):
        # canonical AlexNet/Caffenet: ~61 M parameters
        assert 60e6 < caffenet_const.total_params() < 63e6

    def test_output_is_1000_way(self, caffenet_const):
        assert caffenet_const.output_shape == (1000,)

    def test_forward_batch(self, caffenet_const):
        x = np.zeros((2, 3, 227, 227), dtype=np.float32)
        out = caffenet_const.forward(x)
        assert out.shape == (2, 1000)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-4)

    def test_wrong_input_shape_raises(self, caffenet_const):
        with pytest.raises(ShapeError):
            caffenet_const.forward(np.zeros((1, 3, 224, 224), dtype=np.float32))

    def test_convs_dominate_flops(self, caffenet_const):
        # Section 4.3: convolution layers account for >90% of inference
        # time; FLOP-wise they are ~92% of Caffenet.
        assert conv_flop_fraction(caffenet_const) > 0.85

    def test_fc_holds_most_params(self, caffenet_const):
        params = param_breakdown(caffenet_const)
        fc = params["fc1"] + params["fc2"] + params["fc3"]
        assert fc > 0.9 * caffenet_const.total_params()


class TestGooglenetArchitecture:
    def test_conv_layer_count(self, googlenet_const):
        # paper counts 56 = 2 stem + 9 x 6 inception convolutions; the
        # canonical network additionally has the conv2-reduce bottleneck.
        names = googlenet_const.conv_layer_names()
        assert len(names) == 57
        stem = [n for n in names if not n.startswith("inception")]
        assert stem == ["conv1-7x7-s2", "conv2-reduce", "conv2-3x3"]

    def test_nine_inception_modules(self, googlenet_const):
        from repro.cnn.inception import InceptionModule

        modules = [
            layer
            for layer in googlenet_const.layers
            if isinstance(layer, InceptionModule)
        ]
        assert len(modules) == 9
        assert all(len(m.conv_layers()) == 6 for m in modules)

    def test_selected_figure7_layers_exist(self, googlenet_const):
        for name in GOOGLENET_SELECTED_LAYERS:
            googlenet_const.layer(name)  # must not raise

    def test_param_count_small_despite_depth(self, googlenet_const):
        # the paper notes Googlenet has far fewer parameters than
        # Caffenet despite being much deeper (canonical ~7 M).
        assert googlenet_const.total_params() < 8e6

    def test_feature_map_ladder(self, googlenet_const):
        # canonical 224 -> 112 -> 56 -> 28 -> 14 -> 7 spatial ladder
        assert googlenet_const.input_shape_of("pool1-3x3-s2") == (64, 112, 112)
        assert googlenet_const.input_shape_of("inception-3a") == (192, 28, 28)
        assert googlenet_const.input_shape_of("inception-4a") == (480, 14, 14)
        assert googlenet_const.input_shape_of("inception-5a") == (832, 7, 7)

    def test_inception_channel_arithmetic(self, googlenet_const):
        m = googlenet_const.layer("inception-3a")
        assert m.out_channels == 64 + 128 + 32 + 32 == 256

    def test_forward(self, googlenet_const):
        x = np.zeros((1, 3, 224, 224), dtype=np.float32)
        out = googlenet_const.forward(x)
        assert out.shape == (1, 1000)

    def test_flops_less_than_caffenet_fc_heavy_parts(self, googlenet_const):
        breakdown = flop_breakdown(googlenet_const)
        assert breakdown["loss3-classifier"] < breakdown["conv2-3x3"]


class TestSmallCNN:
    def test_forward_shape(self, small_cnn, rng):
        x = rng.standard_normal((4, 1, 16, 16)).astype(np.float32)
        assert small_cnn.forward(x).shape == (4, 5)

    def test_configurable_classes(self):
        net = build_small_cnn(num_classes=7, input_size=32, width=4)
        assert net.output_shape == (7,)


class TestNetworkContainer:
    def test_duplicate_names_rejected(self):
        from repro.cnn.activations import ReLU
        from repro.cnn.network import Network

        with pytest.raises(ShapeError):
            Network("bad", (4,), [ReLU("a"), ReLU("a")])

    def test_layer_lookup_error_lists_known(self, small_cnn):
        with pytest.raises(KeyError, match="conv1"):
            small_cnn.layer("no-such-layer")

    def test_inception_inner_convs_addressable(self, googlenet_const):
        conv = googlenet_const.layer("inception-4d-5x5")
        assert conv.kernel == 5

    def test_forward_timed_covers_all_layers(self, small_cnn, rng):
        x = rng.standard_normal((2, 1, 16, 16)).astype(np.float32)
        out, timings = small_cnn.forward_timed(x)
        assert set(timings) == {l.name for l in small_cnn.layers}
        assert all(t >= 0 for t in timings.values())
        np.testing.assert_allclose(out, small_cnn.forward(x), rtol=1e-5)

    def test_predict_topk_ordering(self, rng):
        from repro.cnn.activations import Softmax
        from repro.cnn.network import Network

        net = Network("id", (4,), [Softmax("s")])
        x = np.array([[0.1, 3.0, 2.0, -1.0]], dtype=np.float32)
        topk = net.predict_topk(x, k=3)
        np.testing.assert_array_equal(topk[0], [1, 2, 0])

"""Cloud execution simulator.

Runs a (pruned CNN, workload) job on a resource configuration using the
calibrated time model and the accuracy model, producing the full record
the paper's measurement phase emits: time, cost, Top-1/Top-5 accuracy,
TAR and CAR.  This is the substrate for the Pareto studies (Figures 9,
10), the TAR/CAR figures (11, 12), and Algorithm 1's T/C estimation.

Grid evaluation (every degree of pruning crossed with every resource
configuration) lives in :mod:`repro.core.evalspace`; the simulator only
evaluates single points and memoizes the accuracy model per degree so
repeated grid rows cost one model evaluation each.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.calibration.accuracy_model import AccuracyModel, AccuracyPair
from repro.cloud.configuration import ResourceConfiguration
from repro.core.metrics import car as _car, tar as _tar
from repro.errors import ConfigurationError
from repro.obs import get_metrics
from repro.perf.latency import CalibratedTimeModel
from repro.pruning.base import PruneSpec

__all__ = ["CloudSimulator", "SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated inference job."""

    spec: PruneSpec
    configuration: ResourceConfiguration
    images: int
    time_s: float
    cost: float
    accuracy: AccuracyPair

    @property
    def time_hours(self) -> float:
        return self.time_s / 3600.0

    def tar(self, metric: str = "top5") -> float:
        """Time Accuracy Ratio in hours per unit accuracy."""
        return _tar(self.time_hours, self.accuracy.get(metric) / 100.0)

    def car(self, metric: str = "top5") -> float:
        """Cost Accuracy Ratio in dollars per unit accuracy."""
        return _car(self.cost, self.accuracy.get(metric) / 100.0)

    def within(self, deadline_s: float | None, budget: float | None) -> bool:
        """Feasibility against a time deadline T' and cost budget C'."""
        if deadline_s is not None and self.time_s > deadline_s:
            return False
        if budget is not None and self.cost > budget:
            return False
        return True


class CloudSimulator:
    """Evaluates inference jobs against the calibrated models.

    Parameters
    ----------
    time_model:
        Calibrated inference-time model of the CNN being served.
    accuracy_model:
        Calibrated accuracy-response model of the same CNN.
    proportional_split:
        Use the capacity-proportional workload split instead of the
        paper's even split (Eq. 4); used by the split ablation.
    """

    def __init__(
        self,
        time_model: CalibratedTimeModel,
        accuracy_model: AccuracyModel,
        proportional_split: bool = False,
    ) -> None:
        if time_model.name != accuracy_model.name:
            raise ConfigurationError(
                f"model mismatch: time={time_model.name!r} "
                f"accuracy={accuracy_model.name!r}"
            )
        self.time_model = time_model
        self.accuracy_model = accuracy_model
        self.proportional_split = proportional_split
        # accuracy depends only on the degree of pruning, not the
        # configuration, so one evaluation serves a whole grid row
        self._accuracy_cache: dict[
            tuple[tuple[str, float], ...], AccuracyPair
        ] = {}

    # ------------------------------------------------------------------
    def accuracy(self, spec: PruneSpec) -> AccuracyPair:
        """Memoized accuracy-model evaluation for ``spec``."""
        cached = self._accuracy_cache.get(spec.ratios)
        if cached is None:
            cached = self.accuracy_model.accuracy(spec)
            self._accuracy_cache[spec.ratios] = cached
        return cached

    def run(
        self,
        spec: PruneSpec,
        configuration: ResourceConfiguration,
        images: int,
    ) -> SimulationResult:
        """Simulate inferring ``images`` with ``spec`` on ``configuration``."""
        if images < 1:
            raise ConfigurationError("images must be >= 1")
        get_metrics().counter("cloud.simulations").inc()
        time_s, cost = configuration.evaluate(
            self.time_model,
            spec,
            images,
            proportional_split=self.proportional_split,
        )
        return SimulationResult(
            spec=spec,
            configuration=configuration,
            images=images,
            time_s=time_s,
            cost=cost,
            accuracy=self.accuracy(spec),
        )

    def sweep(
        self,
        specs,
        configurations,
        images: int,
    ) -> list[SimulationResult]:
        """Deprecated: cross product of degrees of pruning x configurations.

        Superseded by :func:`repro.core.evalspace.evaluate`, which
        memoizes and caches whole-grid evaluations.  This shim delegates
        there and keeps the historical return shape.
        """
        warnings.warn(
            "CloudSimulator.sweep is deprecated; build a "
            "repro.core.evalspace.SpaceSpec and call evaluate() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core.evalspace import SpaceSpec, evaluate

        space = evaluate(
            SpaceSpec.from_simulator(self, specs, configurations, images)
        )
        return list(space.results)

"""Fleet-scale request routing across heterogeneous serving replicas.

The paper's cost model (Eqs. 1-4) splits a batch workload evenly over a
static configuration; the serving simulators then brought that model to
one online endpoint.  A production fleet is neither: it is *many*
replicas — different instance types, different degrees of pruning,
different batch policies, some of them elastic — behind one router that
decides, request by request, who serves what.  This module adds that
layer while keeping every downstream number bit-reproducible.

Design: **partition, then simulate.**  Routing and admission decisions
are made per arrival from a deterministic fluid view of each replica's
backlog (assigned requests drain at the replica's modelled capacity);
each replica then serves its assigned sub-stream through the *unchanged*
:class:`~repro.serving.simulator.ServingSimulator` (or
:class:`~repro.serving.autoscaler.AutoscalingSimulator` for elastic
replicas).  Two consequences fall out:

* a single-replica fleet with no admission control is *literally* the
  bare simulator — same arrivals, same event loop, byte-identical
  report (tested); and
* fleet runs stay deterministic for fixed seeds, so they can sit behind
  the content-keyed evaluation cache
  (:mod:`repro.serving.fleet`) and the bench regression gate.

Routing policies (:data:`ROUTING_POLICIES`):

* ``round-robin``   — cycle replicas in declaration order;
* ``jsq``           — join the shortest queue of the fluid backlog view;
* ``weighted``      — smooth weighted round-robin by modelled
  throughput (or explicit per-replica weights);
* ``tiered``        — accuracy-tiered: the cheapest replica whose model
  accuracy clears the request's floor (ties broken by backlog);
* ``adaptive``      — anytime inference: the cheapest replica that
  clears the request's floor *and* can meet its deadline under the
  current backlog, degrading to the most accurate still-timely
  replica (then to the smallest estimated wait) rather than piling
  onto a saturated tier or shedding when nothing fits.

An :class:`AdmissionPolicy` (token bucket + queue-depth shedding) can
shed load before it reaches any replica, so overload degrades into a
bounded-latency, partial-availability regime instead of a latency
collapse.  Its ``degrade_limit`` adds a softer rung below the shed
threshold: past it, requests keep flowing but their accuracy floors
are waived, so the fleet serves lower-accuracy answers *before* it
starts shedding.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.calibration.accuracy_model import AccuracyModel, AccuracyPair
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.faults import FaultPlan
from repro.cloud.pricing import hourly_rate_cost
from repro.errors import ConfigurationError
from repro.obs import get_metrics, get_tracer
from repro.perf.latency import CalibratedTimeModel
from repro.pruning.base import PruneSpec
from repro.serving.autoscaler import AutoscalePolicy, AutoscalingSimulator
from repro.serving.batcher import BatchPolicy
from repro.serving.simulator import ServingSimulator

__all__ = [
    "AdmissionPolicy",
    "FleetReport",
    "FleetRouter",
    "FleetTelemetry",
    "ReplicaOutcome",
    "ReplicaSpec",
    "ROUTING_POLICIES",
    "fluid_backlog_trajectory",
]


# ----------------------------------------------------------------------
# declarative pieces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicaSpec:
    """One replica of the fleet: a serving deployment the router targets.

    Attributes
    ----------
    name:
        Unique label within the fleet (appears in reports/telemetry).
    configuration:
        Instances whose GPUs form this replica's worker pool.
    spec:
        Degree of pruning of the model this replica deploys.
    policy:
        Its batch-forming policy.
    faults:
        Optional per-replica :class:`~repro.cloud.faults.FaultPlan`
        (worker indices are local to the replica).
    hourly_rate:
        Billing override (e.g. a spot rate); ``None`` bills on-demand.
    weight:
        Optional explicit weight for ``weighted`` routing; ``None``
        uses the modelled throughput capacity.
    autoscale:
        When set, the replica is *elastic*: it serves its sub-stream
        through :class:`~repro.serving.autoscaler.AutoscalingSimulator`
        on the configuration's (single) instance type, adding and
        removing instances per the policy.
    """

    name: str
    configuration: ResourceConfiguration
    spec: PruneSpec
    policy: BatchPolicy
    faults: FaultPlan | None = None
    hourly_rate: float | None = None
    weight: float | None = None
    autoscale: AutoscalePolicy | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("replica needs a non-empty name")
        if self.hourly_rate is not None and self.hourly_rate < 0:
            raise ConfigurationError("hourly rate must be non-negative")
        if self.weight is not None and self.weight <= 0:
            raise ConfigurationError("weight must be positive")
        if self.autoscale is not None:
            itypes = {
                i.itype for i in self.configuration.instances
            }
            if len(itypes) != 1:
                raise ConfigurationError(
                    "an autoscaled replica needs a single instance type"
                )

    def key(self) -> tuple:
        """Content key for fleet-level caching (mirrors
        :meth:`repro.core.evalspace.SpaceSpec.cache_key`)."""
        return (
            self.name,
            self.configuration,
            self.spec.ratios,
            self.policy,
            self.faults,
            self.hourly_rate,
            self.weight,
            self.autoscale,
        )


@dataclass(frozen=True)
class AdmissionPolicy:
    """Admission control in front of the whole fleet.

    Attributes
    ----------
    rate_per_s:
        Token-bucket refill rate; each admitted request consumes one
        token and requests finding the bucket empty are shed.  ``None``
        disables rate limiting; ``0.0`` admits only the initial burst.
    burst:
        Bucket capacity — the largest spike admitted at line rate.
    queue_limit:
        Shed arrivals while the fleet's total (fluid-estimated) backlog
        is at or above this many requests; ``None`` disables
        depth-based shedding, ``0`` sheds everything.
    degrade_limit:
        Graceful-degradation threshold: while the total fluid backlog
        is at or above this many requests (but below ``queue_limit``),
        admitted requests have their accuracy floors waived, so the
        routing policy may serve them on a cheaper, less accurate
        replica instead of queueing behind the accurate tier.  Must
        not exceed ``queue_limit`` when both are set — degradation is
        the rung *before* shedding, never after.  ``None`` disables it.
    """

    rate_per_s: float | None = None
    burst: int = 32
    queue_limit: float | None = None
    degrade_limit: float | None = None

    def __post_init__(self) -> None:
        if self.rate_per_s is not None and self.rate_per_s < 0:
            raise ConfigurationError("admission rate must be >= 0")
        if self.burst < 0:
            raise ConfigurationError("burst must be >= 0")
        if self.queue_limit is not None and self.queue_limit < 0:
            raise ConfigurationError("queue limit must be >= 0")
        if self.degrade_limit is not None and self.degrade_limit < 0:
            raise ConfigurationError("degrade limit must be >= 0")
        if (
            self.degrade_limit is not None
            and self.queue_limit is not None
            and self.degrade_limit > self.queue_limit
        ):
            raise ConfigurationError(
                "degrade limit must not exceed the queue limit "
                "(degradation happens before shedding)"
            )

    @property
    def is_open(self) -> bool:
        """True when the policy can never shed (both knobs disabled)."""
        return self.rate_per_s is None and self.queue_limit is None


# ----------------------------------------------------------------------
# routing policies
# ----------------------------------------------------------------------
class _RoutingState:
    """Mutable per-run view the policies share.

    ``backlog`` is a fluid model of each replica's queue: it decays at
    the replica's modelled saturated throughput between arrivals and
    grows by one per assignment.  Deterministic by construction — no
    co-simulation with the replica event loops is needed.
    """

    def __init__(self, capacities: Sequence[float]) -> None:
        self.capacity = np.asarray(capacities, dtype=float)
        self.backlog = np.zeros(len(capacities))
        self._last_t = 0.0

    def advance(self, now: float) -> None:
        """Drain every backlog to ``now`` at the replica's capacity."""
        dt = now - self._last_t
        if dt > 0:
            self.backlog = np.maximum(
                0.0, self.backlog - dt * self.capacity
            )
            self._last_t = now

    def assign(self, replica: int) -> None:
        """Record one request routed to ``replica``."""
        self.backlog[replica] += 1.0

    @property
    def total_backlog(self) -> float:
        """Fleet-wide fluid queue estimate (for depth shedding)."""
        return float(self.backlog.sum())


class _RoundRobin:
    """Cycle replicas in declaration order."""

    def __init__(self, router: "FleetRouter") -> None:
        self._n = len(router.replicas)
        self._next = 0

    def select(
        self,
        now: float,
        floor: float,
        deadline: float,
        state: _RoutingState,
    ) -> int:
        """Pick the next replica in the cycle (floor/deadline ignored)."""
        pick = self._next
        self._next = (self._next + 1) % self._n
        return pick


class _JoinShortestQueue:
    """Route to the replica with the smallest fluid backlog."""

    def __init__(self, router: "FleetRouter") -> None:
        pass

    def select(
        self,
        now: float,
        floor: float,
        deadline: float,
        state: _RoutingState,
    ) -> int:
        """Pick the least-loaded replica (ties go to the lowest index)."""
        return int(np.argmin(state.backlog))


class _WeightedThroughput:
    """Smooth weighted round-robin over modelled throughput.

    The classic smooth-WRR scheme: each replica accumulates its weight
    every arrival, the largest accumulator wins and pays back the total
    weight.  With weights (3, 1) the sequence is A A B A — spread out,
    not bursty, and fully deterministic.
    """

    def __init__(self, router: "FleetRouter") -> None:
        self._weights = np.array(
            [
                r.weight if r.weight is not None else c
                for r, c in zip(router.replicas, router.capacities)
            ],
            dtype=float,
        )
        if not np.all(self._weights > 0):
            raise ConfigurationError(
                "weighted routing needs positive capacities/weights"
            )
        self._current = np.zeros(len(self._weights))

    def select(
        self,
        now: float,
        floor: float,
        deadline: float,
        state: _RoutingState,
    ) -> int:
        """Pick by smooth weighted round-robin (floor/deadline ignored)."""
        self._current += self._weights
        pick = int(np.argmax(self._current))
        self._current[pick] -= self._weights.sum()
        return pick


class _AccuracyTiered:
    """Cheapest replica whose accuracy clears the request's floor.

    ``floor`` is a Top-5 accuracy requirement in percent.  Among the
    replicas that clear it, the lowest hourly rate wins; rate ties are
    broken by the smaller fluid backlog, then declaration order.  When
    *no* replica clears the floor the request degrades gracefully to
    the most accurate replica instead of being rejected.
    """

    def __init__(self, router: "FleetRouter") -> None:
        self._top5 = np.array(
            [a.top5 for a in router.accuracies], dtype=float
        )
        self._rates = np.array(router.rates_per_hour, dtype=float)
        self._best = int(np.argmax(self._top5))

    def select(
        self,
        now: float,
        floor: float,
        deadline: float,
        state: _RoutingState,
    ) -> int:
        """Pick the cheapest floor-clearing replica (see class doc)."""
        eligible = np.flatnonzero(self._top5 >= floor - 1e-9)
        if eligible.size == 0:
            return self._best
        rates = self._rates[eligible]
        cheapest = eligible[np.flatnonzero(rates == rates.min())]
        if cheapest.size == 1:
            return int(cheapest[0])
        return int(cheapest[np.argmin(state.backlog[cheapest])])


class _Adaptive:
    """Per-request accuracy tier from deadline, floor, and backlog.

    Deadline-aware tiered routing with a degradation ladder: among the
    replicas that clear the request's accuracy floor *and* whose fluid
    estimated wait (``backlog / capacity``) fits its deadline, the
    lowest hourly rate wins — rate ties go to the smaller backlog,
    then declaration order, exactly like ``tiered``.  When no replica
    satisfies both, the request degrades gracefully instead of piling
    onto a saturated tier: first to the most accurate replica that
    still makes the deadline (a lower-accuracy answer in time beats an
    accurate one too late), and when even that fails, to the replica
    with the smallest estimated wait.
    """

    def __init__(self, router: "FleetRouter") -> None:
        self._top5 = np.array(
            [a.top5 for a in router.accuracies], dtype=float
        )
        self._rates = np.array(router.rates_per_hour, dtype=float)
        self._capacity = np.asarray(router.capacities, dtype=float)

    def select(
        self,
        now: float,
        floor: float,
        deadline: float,
        state: _RoutingState,
    ) -> int:
        """Cheapest floor-clearing replica whose estimated wait meets
        the deadline; degrade to the most accurate timely replica,
        then to the smallest estimated wait (see class doc)."""
        backlog = state.backlog
        wait = backlog / self._capacity
        timely = wait <= deadline
        eligible = np.flatnonzero(
            timely & (self._top5 >= floor - 1e-9)
        )
        if eligible.size == 0:
            makes_it = np.flatnonzero(timely)
            if makes_it.size:
                return int(makes_it[np.argmax(self._top5[makes_it])])
            return int(np.argmin(wait))
        rates = self._rates[eligible]
        cheapest = eligible[np.flatnonzero(rates == rates.min())]
        if cheapest.size == 1:
            return int(cheapest[0])
        return int(cheapest[np.argmin(backlog[cheapest])])


#: routing policy name -> implementation (the ``repro serve --fleet
#: --routing`` choices).
ROUTING_POLICIES: dict[str, type] = {
    "round-robin": _RoundRobin,
    "jsq": _JoinShortestQueue,
    "weighted": _WeightedThroughput,
    "tiered": _AccuracyTiered,
    "adaptive": _Adaptive,
}


def fluid_backlog_trajectory(
    arrivals: np.ndarray,
    assignment: np.ndarray,
    capacities: Sequence[float],
) -> np.ndarray:
    """Every replica's fluid backlog after each arrival, closed form.

    Replays the router's fluid queue model — drain at capacity between
    arrivals, ``+1`` per assignment, clamp at zero — for the whole run
    at once.  Returns shape ``(len(arrivals), len(capacities))``:
    row ``i`` is the backlog vector just after arrival ``i`` was
    processed (sheds, ``assignment == -1``, add nothing but time still
    passes).

    The sequential recurrence ``b_i = max(0, b_{i-1} - dt_i * c) + a_i``
    unrolls to a prefix maximum: with ``s_i = c * t_i`` and
    ``A_i = cumsum(a)_i``,

    ``b_i = max(0, max_j<=i (s_j - A_{j-1})) + A_i - s_i``

    which vectorizes as one ``np.maximum.accumulate``.  The regrouped
    arithmetic is *not* guaranteed bit-identical to stepping
    :class:`_RoutingState` (terms associate differently); agreement is
    to float tolerance, which is why the router's decision pass never
    uses it — it exists for post-hoc analysis and plots over the
    assignment the decision pass produced.
    """
    arrivals = np.asarray(arrivals, dtype=float)
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != arrivals.shape:
        raise ConfigurationError(
            "assignment must align with arrivals"
        )
    capacity = np.asarray(capacities, dtype=float)
    added = (
        assignment[:, None] == np.arange(capacity.size)[None, :]
    ).astype(float)
    cumulative = np.cumsum(added, axis=0)
    drained = arrivals[:, None] * capacity[None, :]
    reset_level = np.maximum.accumulate(
        np.maximum(drained - (cumulative - added), 0.0), axis=0
    )
    return reset_level + cumulative - drained


# ----------------------------------------------------------------------
# fleet telemetry
# ----------------------------------------------------------------------
class FleetTelemetry:
    """Per-replica :class:`~repro.obs.telemetry.ServingTelemetry` plus a
    fleet-aggregate view.

    Pass one to :meth:`FleetRouter.run`; the router hands each replica
    its own bundle (full streaming histograms and — when ``slo`` is set
    — a per-replica sliding-window SLO burn monitor), records admission
    sheds, and :meth:`finalize` publishes both the per-replica and the
    merged fleet gauges.
    """

    def __init__(self, slo=None) -> None:
        self.slo = slo
        self.per_replica: dict[str, object] = {}
        self.shed = 0
        #: replica name -> {"assigned", "at_floor"} decision counts
        self.tier_counts: dict[str, dict[str, int]] = {}
        self.degraded = 0

    def replica(self, name: str):
        """The (lazily created) telemetry bundle for replica ``name``."""
        from repro.obs.telemetry import ServingTelemetry

        if name not in self.per_replica:
            self.per_replica[name] = ServingTelemetry(self.slo)
        return self.per_replica[name]

    def record_shed(self, now: float) -> None:
        """Count one admission-shed request (never reaches a replica)."""
        self.shed += 1

    def record_tier(
        self, name: str, assigned: int, at_floor: int
    ) -> None:
        """Record one replica's decision-level tier counts: how many
        requests it was assigned and how many of those had their
        accuracy floor honoured (the difference was degraded)."""
        self.tier_counts[name] = {
            "assigned": assigned,
            "at_floor": at_floor,
        }
        self.degraded += assigned - at_floor

    # ------------------------------------------------------------------
    @property
    def aggregate_latency(self):
        """Merged fleet-wide latency histogram (same bucket bounds)."""
        from repro.obs.telemetry import LatencyHistogram

        merged: LatencyHistogram | None = None
        for telemetry in self.per_replica.values():
            hist = telemetry.latency
            if merged is None:
                merged = LatencyHistogram(hist.bounds)
            elif merged.bounds != hist.bounds:
                raise ConfigurationError(
                    "cannot merge histograms with different bounds"
                )
            merged.counts = [
                a + b for a, b in zip(merged.counts, hist.counts)
            ]
            merged.count += hist.count
            merged.total += hist.total
            merged._max = max(merged._max, hist._max)
            merged._min = min(merged._min, hist._min)
        if merged is None:
            merged = LatencyHistogram()
        return merged

    def burn_summaries(self) -> dict[str, dict]:
        """Per-replica SLO burn summaries (empty without an SLO)."""
        return {
            name: t.slo.summary()
            for name, t in self.per_replica.items()
            if t.slo is not None
        }

    @property
    def alerts_fired(self) -> int:
        """Total ``slo.alert`` events across every replica monitor."""
        return sum(
            t.alerts_fired for t in self.per_replica.values()
        )

    def finalize(self, registry=None, prefix: str = "router") -> None:
        """Publish per-replica and merged fleet gauges into
        ``registry`` (default: the current observability scope)."""
        if registry is None:
            registry = get_metrics()
        for name, telemetry in self.per_replica.items():
            telemetry.finalize(registry, prefix=f"{prefix}.{name}")
        merged = self.aggregate_latency
        if merged.count:
            for q, label in ((50, "p50"), (95, "p95"), (99, "p99")):
                registry.gauge(f"{prefix}.latency_{label}_s").set(
                    merged.percentile(q)
                )
        registry.counter(f"{prefix}.shed").inc(self.shed)
        # tier counters only exist once degradation actually happened,
        # so pre-adaptive runs keep byte-identical counter snapshots
        # (the fleet-wide degraded counter is published by the router)
        if self.degraded:
            for name, counts in self.tier_counts.items():
                registry.counter(
                    f"{prefix}.{name}.at_floor"
                ).inc(counts["at_floor"])


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicaOutcome:
    """One replica's slice of a fleet run.

    ``report`` is the replica's own
    :class:`~repro.serving.simulator.ServingReport` (or
    :class:`~repro.serving.autoscaler.AutoscaleReport` for elastic
    replicas) — ``None`` when the replica received no requests, in
    which case it idled (and was billed) for the fleet's makespan.
    """

    spec: ReplicaSpec
    assigned: int
    report: object | None
    cost: float
    #: assigned requests whose accuracy floor this replica's model
    #: cleared (decision-level; the rest were served *degraded*)
    at_floor: int = 0

    @property
    def degraded(self) -> int:
        """Assigned requests served below their accuracy floor."""
        return self.assigned - self.at_floor

    @property
    def served(self) -> int:
        """Requests this replica completed."""
        return 0 if self.report is None else self.report.served

    @property
    def dropped(self) -> int:
        """Requests this replica dropped (faults/timeouts)."""
        return 0 if self.report is None else self.report.dropped


@dataclass(frozen=True)
class FleetReport:
    """Outcome of one routed fleet run.

    Aggregates treat the *offered* stream (including admission sheds)
    as the denominator, so availability composes admission control and
    per-replica drops the way an external client would measure it.
    """

    offered: int
    shed: int
    duration_s: float
    routing: str
    outcomes: tuple[ReplicaOutcome, ...]

    # ------------------------------------------------------------------
    def outcome(self, name: str) -> ReplicaOutcome:
        """The outcome of the replica named ``name``."""
        for o in self.outcomes:
            if o.spec.name == name:
                return o
        raise KeyError(name)

    @property
    def requests(self) -> int:
        """Offered requests (admitted + shed)."""
        return self.offered

    @property
    def admitted(self) -> int:
        """Requests that passed admission control."""
        return self.offered - self.shed

    @property
    def served(self) -> int:
        """Requests completed by any replica."""
        return sum(o.served for o in self.outcomes)

    @property
    def dropped(self) -> int:
        """Requests lost anywhere: admission sheds + replica drops."""
        return self.shed + sum(o.dropped for o in self.outcomes)

    @property
    def availability(self) -> float:
        """Served fraction of the *offered* stream."""
        return self.served / self.offered if self.offered else 0.0

    @property
    def drop_rate(self) -> float:
        """Lost fraction of the offered stream (1 - availability)."""
        return self.dropped / self.offered if self.offered else 0.0

    @property
    def goodput(self) -> float:
        """Served requests per second of fleet wall time."""
        return self.served / self.duration_s if self.duration_s else 0.0

    @property
    def degraded(self) -> int:
        """Admitted requests routed below their accuracy floor —
        the adaptive policy's graceful degradation and/or admission's
        ``degrade_limit`` floor waiver.  Zero whenever every request's
        floor was honoured (in particular for every pre-adaptive
        configuration)."""
        return sum(o.degraded for o in self.outcomes)

    @property
    def served_at_floor(self) -> float:
        """Served requests credited at their accuracy floor.

        Decision-level estimate: each replica's served count is scaled
        by the fraction of its assignments that honoured the floor
        (the router decides tiers per request, but a replica's report
        does not say *which* of its requests completed, so the credit
        is proportional).  Equal to ``served`` when nothing degraded.
        """
        total = 0.0
        for o in self.outcomes:
            if o.assigned:
                total += o.served * (o.at_floor / o.assigned)
        return total

    @property
    def goodput_at_accuracy(self) -> float:
        """Floor-honouring served requests per second of wall time —
        the quality-weighted counterpart of :attr:`goodput` that a
        degradation policy is judged by (serving everything at the
        lowest tier maximises goodput but not this)."""
        return (
            self.served_at_floor / self.duration_s
            if self.duration_s
            else 0.0
        )

    @property
    def cost(self) -> float:
        """Total dollars across every replica (idle replicas included)."""
        return sum(o.cost for o in self.outcomes)

    @property
    def latencies_s(self) -> np.ndarray:
        """Served latencies concatenated across replicas."""
        parts = [
            o.report.latencies_s
            for o in self.outcomes
            if o.report is not None and o.report.latencies_s.size
        ]
        if not parts:
            return np.empty(0)
        return np.concatenate(parts)

    def latency_percentile(self, q: float) -> float:
        """Fleet-wide latency percentile in seconds (``nan`` if none
        were served)."""
        latencies = self.latencies_s
        if latencies.size == 0:
            return float("nan")
        return float(np.percentile(latencies, q))

    @property
    def p50(self) -> float:
        """Fleet-wide median latency."""
        return self.latency_percentile(50)

    @property
    def p99(self) -> float:
        """Fleet-wide 99th-percentile latency."""
        return self.latency_percentile(99)

    @property
    def utilisation(self) -> float:
        """Busy fraction over the static replicas' worker-seconds
        (elastic replicas, whose pool varies, are excluded)."""
        busy = denominator = 0.0
        for o in self.outcomes:
            report = o.report
            if report is None or not hasattr(report, "busy_s"):
                continue
            busy += report.busy_s
            denominator += report.worker_count * report.duration_s
        return busy / denominator if denominator else 0.0

    def miss_rate(self, slo_s: float) -> float:
        """Fraction of served requests exceeding a latency SLO."""
        latencies = self.latencies_s
        if latencies.size == 0:
            return 0.0
        return float((latencies > slo_s).mean())

    def burn_rates(self, slo) -> dict[str, float]:
        """Whole-run SLO burn rates against a
        :class:`~repro.obs.telemetry.SloPolicy` — the fleet-level
        counterpart of the per-replica sliding-window monitors (which
        live in :class:`FleetTelemetry`): error rate over the full run
        divided by the SLO's error budget."""
        availability_budget = 1.0 - slo.availability_target
        latency_budget = 1.0 - slo.latency_quantile
        return {
            "availability": self.drop_rate / availability_budget,
            "latency": self.miss_rate(slo.latency_slo_s)
            / latency_budget,
        }

    def summary(self) -> dict[str, object]:
        """JSON-ready headline aggregates plus per-replica rows."""
        return {
            "routing": self.routing,
            "offered": self.offered,
            "shed": self.shed,
            "served": self.served,
            "dropped": self.dropped,
            "availability": self.availability,
            "goodput": self.goodput,
            "degraded": self.degraded,
            "goodput_at_accuracy": self.goodput_at_accuracy,
            "p50_s": self.p50,
            "p99_s": self.p99,
            "cost": self.cost,
            "duration_s": self.duration_s,
            "replicas": [
                {
                    "name": o.spec.name,
                    "assigned": o.assigned,
                    "at_floor": o.at_floor,
                    "served": o.served,
                    "dropped": o.dropped,
                    "cost": o.cost,
                }
                for o in self.outcomes
            ],
        }


# ----------------------------------------------------------------------
# the router
# ----------------------------------------------------------------------
class FleetRouter:
    """Compose N replica simulators behind a routing policy.

    Parameters
    ----------
    time_model, accuracy_model:
        Calibrated models shared by every replica (each replica applies
        its own pruning degree to them).
    replicas:
        The fleet; names must be unique.
    routing:
        One of :data:`ROUTING_POLICIES`.
    admission:
        Optional :class:`AdmissionPolicy`; ``None`` admits everything.
    engine:
        ``"columnar"`` (default) routes with the vectorized decision
        pass and serves static replicas through the columnar simulator
        engine; ``"event"`` keeps the per-arrival reference loop and
        the per-event simulator.  Both produce byte-identical reports;
        the knob exists for differential testing.
    """

    def __init__(
        self,
        time_model: CalibratedTimeModel,
        accuracy_model: AccuracyModel,
        replicas: Sequence[ReplicaSpec],
        routing: str = "round-robin",
        admission: AdmissionPolicy | None = None,
        engine: str = "columnar",
    ) -> None:
        replicas = tuple(replicas)
        if not replicas:
            raise ConfigurationError(
                "a fleet needs at least one replica"
            )
        names = [r.name for r in replicas]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"replica names must be unique, got {names}"
            )
        if routing not in ROUTING_POLICIES:
            raise ConfigurationError(
                f"unknown routing policy {routing!r}; "
                f"available: {sorted(ROUTING_POLICIES)}"
            )
        if engine not in ("columnar", "event"):
            raise ConfigurationError(
                f"unknown engine {engine!r}; "
                "available: ['columnar', 'event']"
            )
        if time_model.name != accuracy_model.name:
            raise ConfigurationError("time/accuracy model mismatch")
        self.time_model = time_model
        self.accuracy_model = accuracy_model
        self.replicas = replicas
        self.routing = routing
        self.admission = admission
        self.engine = engine
        self.capacities = tuple(
            self._capacity(r) for r in replicas
        )
        self.accuracies = tuple(
            accuracy_model.accuracy(r.spec) for r in replicas
        )
        self.rates_per_hour = tuple(
            r.hourly_rate
            if r.hourly_rate is not None
            else r.configuration.total_price_per_hour
            for r in replicas
        )

    # ------------------------------------------------------------------
    def _capacity(self, replica: ReplicaSpec) -> float:
        """Modelled saturated throughput (req/s) of one replica.

        Per worker: the clamped batch width divided by that batch's
        service time; elastic replicas count their minimum fleet (the
        capacity a router can rely on before scale-out kicks in).
        """
        total = 0.0
        for instance in replica.configuration.instances:
            device = instance.itype.gpu
            batching = self.time_model.batching_model(
                replica.spec, device
            )
            width = min(
                replica.policy.max_batch,
                self.time_model.max_batch(device),
            )
            total += instance.gpus_used * (
                width / batching.batch_time(width)
            )
        if replica.autoscale is not None:
            per_instance = total / len(replica.configuration.instances)
            total = per_instance * replica.autoscale.min_instances
        return total

    # ------------------------------------------------------------------
    def route(
        self,
        arrivals: np.ndarray,
        floors: np.ndarray | None = None,
        deadlines: np.ndarray | None = None,
    ) -> np.ndarray:
        """Assign each arrival to a replica index, or ``-1`` for shed.

        Pure decision pass — no replica is simulated.  ``floors`` is an
        optional per-request Top-5 accuracy requirement in percent
        (used by ``tiered`` and ``adaptive`` routing); ``deadlines`` is
        an optional per-request latency deadline in seconds (used by
        ``adaptive``).  ``None`` means no requirement (floor 0, or an
        infinite deadline).

        The columnar engine (the default) makes bit-identical decisions
        to the per-arrival reference loop — tested property-style in
        ``tests/test_columnar.py`` — while touching each replica's
        fluid backlog only where a decision actually reads it.
        """
        arrivals = np.asarray(arrivals, dtype=float)
        if arrivals.size == 0:
            raise ConfigurationError("no arrivals to route")
        if np.any(np.diff(arrivals) < 0):
            raise ConfigurationError("arrivals must be sorted")
        if floors is None:
            floors = np.zeros(arrivals.size)
        else:
            floors = np.asarray(floors, dtype=float)
            if floors.shape != arrivals.shape:
                raise ConfigurationError(
                    "floors must align with arrivals"
                )
        if deadlines is None:
            deadlines = np.full(arrivals.size, np.inf)
        else:
            deadlines = np.asarray(deadlines, dtype=float)
            if deadlines.shape != arrivals.shape:
                raise ConfigurationError(
                    "deadlines must align with arrivals"
                )
        if self.engine == "event":
            return self._route_reference(arrivals, floors, deadlines)
        return self._route_columnar(arrivals, floors, deadlines)

    def _route_reference(
        self,
        arrivals: np.ndarray,
        floors: np.ndarray,
        deadlines: np.ndarray,
    ) -> np.ndarray:
        """The per-arrival decision loop the columnar pass replays.

        One :meth:`_RoutingState.advance`/``select``/``assign`` cycle
        per arrival — the executable specification the equivalence
        tests compare against.  Inputs are pre-validated by
        :meth:`route`.  Past the admission policy's ``degrade_limit``
        the request's floor is waived (passed to the policy as 0), the
        graceful-degradation rung before ``queue_limit`` shedding.
        """
        policy = ROUTING_POLICIES[self.routing](self)
        state = _RoutingState(self.capacities)
        admission = self.admission
        tokens = float(admission.burst) if admission else 0.0
        last_refill = 0.0
        assignment = np.empty(arrivals.size, dtype=np.int64)
        for i, (t, floor, deadline) in enumerate(
            zip(arrivals, floors, deadlines)
        ):
            state.advance(t)
            degrade = False
            if admission is not None:
                if admission.rate_per_s is not None:
                    tokens = min(
                        float(admission.burst),
                        tokens
                        + (t - last_refill) * admission.rate_per_s,
                    )
                    last_refill = t
                shed = (
                    admission.queue_limit is not None
                    and state.total_backlog >= admission.queue_limit
                ) or (
                    admission.rate_per_s is not None and tokens < 1.0
                )
                if shed:
                    assignment[i] = -1
                    continue
                if admission.rate_per_s is not None:
                    tokens -= 1.0
                degrade = (
                    admission.degrade_limit is not None
                    and state.total_backlog >= admission.degrade_limit
                )
            pick = policy.select(
                float(t),
                0.0 if degrade else float(floor),
                float(deadline),
                state,
            )
            state.assign(pick)
            assignment[i] = pick
        return assignment

    def _route_columnar(
        self,
        arrivals: np.ndarray,
        floors: np.ndarray,
        deadlines: np.ndarray,
    ) -> np.ndarray:
        """Vectorized decision pass, bit-identical to the reference.

        Strategy: hoist everything that does not depend on the fluid
        backlog out of the per-arrival loop.

        * ``tiered`` floors repeat heavily, so the eligible/cheapest
          candidate set is computed once per *distinct* floor with the
          reference's own numpy expressions, then looked up by code.
        * When no decision reads the backlog (round-robin, weighted,
          or tiered whose candidate sets are all singletons) and depth
          shedding is off, assignments are pure numpy — the token
          bucket, when present, is a cheap scalar pre-pass.
        * Otherwise a scalar loop runs with plain Python floats,
          draining only the *tracked* replicas a decision can read.
          ``adaptive`` reads every backlog (its estimated waits), so
          it always takes this path with all replicas tracked.  Scalar
          ``max(0, b - dt*c)`` / first-min scans replicate the
          reference's ``np.maximum``/``np.argmin`` exactly (same IEEE
          ops, first-extremum ties), and ``backlog / capacity`` is the
          same IEEE division either way.

        The one regrouping hazard is ``total_backlog``: numpy's
        ``.sum()`` switches to unrolled accumulation at 8 elements, so
        depth shedding *or* degradation thresholds on fleets of >= 8
        replicas fall back to the reference loop rather than risk a
        differently-rounded sum.
        """
        n = arrivals.size
        n_replicas = len(self.replicas)
        routing = self.routing
        admission = self.admission
        rate = admission.rate_per_s if admission is not None else None
        queue_limit = (
            admission.queue_limit if admission is not None else None
        )
        degrade_limit = (
            admission.degrade_limit if admission is not None else None
        )
        depth_read = (
            queue_limit is not None or degrade_limit is not None
        )
        if depth_read and n_replicas >= 8:
            return self._route_reference(arrivals, floors, deadlines)

        # --- per-distinct-floor candidate tables (tiered only) -------
        codes = cand_sets = zero_cands = None
        if routing == "tiered":
            tiers = _AccuracyTiered(self)

            def _tier_cands(floor: float) -> tuple[int, ...]:
                # the reference policy's own numpy expressions
                eligible = np.flatnonzero(
                    tiers._top5 >= floor - 1e-9
                )
                if eligible.size == 0:
                    return (tiers._best,)
                rates = tiers._rates[eligible]
                cheapest = eligible[
                    np.flatnonzero(rates == rates.min())
                ]
                return tuple(int(c) for c in cheapest)

            uniq, codes = np.unique(floors, return_inverse=True)
            cand_sets = [_tier_cands(f) for f in uniq.tolist()]
            if degrade_limit is not None:
                # degraded requests route with their floor waived
                zero_cands = _tier_cands(0.0)
        elif routing == "weighted":
            # construct for its validation (positive weights) even on
            # the scalar path below, which re-reads the arrays
            wrr = _WeightedThroughput(self)
        elif routing == "adaptive":
            adapt = _Adaptive(self)

        # which replicas can a decision actually read?
        if depth_read or routing in ("jsq", "adaptive"):
            tracked = list(range(n_replicas))
        elif routing == "tiered":
            tracked = sorted(
                {
                    c
                    for cands in cand_sets
                    if len(cands) > 1
                    for c in cands
                }
            )
        else:
            tracked = []

        # --- fully/mostly vectorized paths ----------------------------
        backlog_free = not tracked and queue_limit is None
        if backlog_free and routing in ("round-robin", "tiered"):
            if routing == "tiered":
                pickmap = np.array(
                    [cands[0] for cands in cand_sets],
                    dtype=np.int64,
                )
            if rate is None:
                if routing == "round-robin":
                    return np.arange(n, dtype=np.int64) % n_replicas
                return pickmap[codes]
            # token bucket only: scalar admission pre-pass, then
            # vectorized assignment over the admitted sub-stream
            assignment = np.full(n, -1, dtype=np.int64)
            idx = np.flatnonzero(self._admitted_mask(arrivals))
            if routing == "round-robin":
                assignment[idx] = (
                    np.arange(idx.size, dtype=np.int64) % n_replicas
                )
            else:
                assignment[idx] = pickmap[codes[idx]]
            return assignment

        # --- scalar loop over python floats ---------------------------
        arrival_list = arrivals.tolist()
        capacity = [float(c) for c in self.capacities]
        backlog = [0.0] * n_replicas
        last_t = 0.0
        rate_on = rate is not None
        tokens = float(admission.burst) if admission is not None else 0.0
        burst = tokens
        last_refill = 0.0
        picks: list[int] = []
        if routing == "round-robin":
            next_rr = 0
        elif routing == "weighted":
            weights = [float(w) for w in wrr._weights]
            current = [0.0] * n_replicas
            wsum = float(wrr._weights.sum())
        elif routing == "tiered":
            code_list = codes.tolist()
        elif routing == "adaptive":
            top5 = [float(v) for v in adapt._top5]
            rates_ph = [float(v) for v in adapt._rates]
            floor_list = floors.tolist()
            deadline_list = deadlines.tolist()
        for i in range(n):
            t = arrival_list[i]
            dt = t - last_t
            if dt > 0.0:
                for r in tracked:
                    drained = backlog[r] - dt * capacity[r]
                    backlog[r] = drained if drained > 0.0 else 0.0
                last_t = t
            degrade = False
            if admission is not None:
                if rate_on:
                    # same value as min(burst, tokens + dt * rate)
                    tokens = tokens + (t - last_refill) * rate
                    if tokens > burst:
                        tokens = burst
                    last_refill = t
                if (
                    queue_limit is not None
                    and sum(backlog) >= queue_limit
                ) or (rate_on and tokens < 1.0):
                    picks.append(-1)
                    continue
                if rate_on:
                    tokens -= 1.0
                degrade = (
                    degrade_limit is not None
                    and sum(backlog) >= degrade_limit
                )
            if routing == "round-robin":
                pick = next_rr
                next_rr += 1
                if next_rr == n_replicas:
                    next_rr = 0
            elif routing == "jsq":
                pick = 0
                best = backlog[0]
                for r in range(1, n_replicas):
                    if backlog[r] < best:
                        best = backlog[r]
                        pick = r
            elif routing == "weighted":
                pick = 0
                best = float("-inf")
                for r in range(n_replicas):
                    credit = current[r] + weights[r]
                    current[r] = credit
                    if credit > best:
                        best = credit
                        pick = r
                current[pick] -= wsum
            elif routing == "adaptive":
                floor = 0.0 if degrade else floor_list[i]
                deadline = deadline_list[i]
                # lexicographic (rate, backlog, index) min over the
                # floor-and-deadline-eligible set — same winner as the
                # reference's argmin-over-cheapest-subset expressions
                pick = -1
                min_floor = floor - 1e-9
                for r in range(n_replicas):
                    if (
                        backlog[r] / capacity[r] <= deadline
                        and top5[r] >= min_floor
                    ):
                        rr = rates_ph[r]
                        if (
                            pick < 0
                            or rr < best_rate
                            or (
                                rr == best_rate
                                and backlog[r] < best_backlog
                            )
                        ):
                            pick = r
                            best_rate = rr
                            best_backlog = backlog[r]
                if pick < 0:
                    # degrade: most accurate replica inside the
                    # deadline (first max), else min estimated wait
                    best = float("-inf")
                    for r in range(n_replicas):
                        if (
                            backlog[r] / capacity[r] <= deadline
                            and top5[r] > best
                        ):
                            best = top5[r]
                            pick = r
                    if pick < 0:
                        pick = 0
                        best = backlog[0] / capacity[0]
                        for r in range(1, n_replicas):
                            wait = backlog[r] / capacity[r]
                            if wait < best:
                                best = wait
                                pick = r
            else:  # tiered with backlog tie-breaks
                cands = (
                    zero_cands
                    if degrade
                    else cand_sets[code_list[i]]
                )
                pick = cands[0]
                if len(cands) > 1:
                    best = backlog[pick]
                    for r in cands[1:]:
                        if backlog[r] < best:
                            best = backlog[r]
                            pick = r
            backlog[pick] += 1.0
            picks.append(pick)
        return np.asarray(picks, dtype=np.int64)

    def _admitted_mask(self, arrivals: np.ndarray) -> np.ndarray:
        """Token-bucket admission as a boolean mask (no depth limit).

        Scalar replay of the reference bucket — Python floats and
        ``np.float64`` share IEEE-754 arithmetic, so the refill math is
        identical.  Only valid when ``queue_limit`` is ``None`` (depth
        shedding couples admission to the backlog state).
        """
        admission = self.admission
        rate = admission.rate_per_s
        tokens = float(admission.burst)
        burst = tokens
        last_refill = 0.0
        flags = bytearray(arrivals.size)
        i = 0
        for t in arrivals.tolist():
            # same value as min(burst, tokens + dt * rate), fewer calls
            tokens = tokens + (t - last_refill) * rate
            if tokens > burst:
                tokens = burst
            last_refill = t
            if tokens >= 1.0:
                tokens -= 1.0
                flags[i] = 1
            i += 1
        return np.frombuffer(bytes(flags), dtype=np.uint8).astype(bool)

    # ------------------------------------------------------------------
    def run(
        self,
        arrivals: np.ndarray,
        floors: np.ndarray | None = None,
        deadlines: np.ndarray | None = None,
        telemetry: FleetTelemetry | None = None,
    ) -> FleetReport:
        """Route ``arrivals`` and serve every sub-stream; returns the
        fleet report.

        Each replica's sub-stream runs through the unchanged simulator
        with the replica's own :class:`~repro.cloud.faults.FaultPlan`;
        replicas that receive no requests idle (and are billed) for the
        fleet's makespan.  ``floors`` / ``deadlines`` are the optional
        per-request accuracy floors and latency deadlines the decision
        pass reads.  ``telemetry`` is an optional
        :class:`FleetTelemetry`; as with the bare simulators it never
        perturbs a simulated float.
        """
        arrivals = np.asarray(arrivals, dtype=float)
        with get_tracer().span(
            "router.run",
            replicas=len(self.replicas),
            routing=self.routing,
            requests=int(arrivals.size),
        ) as span:
            report = self._run(arrivals, floors, deadlines, telemetry)
        metrics = get_metrics()
        metrics.counter("router.runs").inc()
        metrics.counter("router.requests").inc(report.offered)
        metrics.counter("router.shed").inc(report.shed)
        metrics.counter("router.drops").inc(report.dropped)
        if report.degraded:
            # counter exists only when degradation happened, keeping
            # pre-adaptive counter snapshots (bench!) byte-identical
            metrics.counter("router.degraded").inc(report.degraded)
        metrics.gauge("router.goodput_at_accuracy").set(
            report.goodput_at_accuracy
        )
        from repro.obs.telemetry import record_report_gauges

        record_report_gauges(report, prefix="router", registry=metrics)
        if telemetry is not None:
            telemetry.finalize(metrics, prefix="router")
        if span is not None:
            span.tags["shed"] = report.shed
            span.tags["served"] = report.served
        return report

    def _run(
        self,
        arrivals: np.ndarray,
        floors: np.ndarray | None,
        deadlines: np.ndarray | None,
        telemetry: FleetTelemetry | None,
    ) -> FleetReport:
        assignment = self.route(arrivals, floors, deadlines)
        shed_count = int((assignment == -1).sum())
        if telemetry is not None and shed_count:
            for t in arrivals[assignment == -1]:
                telemetry.record_shed(float(t))
        # decision-level floor accounting over the final assignment
        # (post-hoc reads only — the decision floats are untouched)
        admitted = assignment >= 0
        if floors is None:
            met = admitted
        else:
            top5 = np.array(
                [pair.top5 for pair in self.accuracies], dtype=float
            )
            met = admitted.copy()
            met[admitted] = (
                top5[assignment[admitted]]
                >= np.asarray(floors, dtype=float)[admitted] - 1e-9
            )
        reports: list[object | None] = []
        assigned_counts: list[int] = []
        at_floor_counts: list[int] = []
        for index, replica in enumerate(self.replicas):
            mine = assignment == index
            sub = arrivals[mine]
            assigned_counts.append(int(sub.size))
            at_floor_counts.append(int(np.count_nonzero(met & mine)))
            if telemetry is not None:
                telemetry.record_tier(
                    replica.name,
                    assigned_counts[-1],
                    at_floor_counts[-1],
                )
            if sub.size == 0:
                reports.append(None)
                continue
            bundle = (
                telemetry.replica(replica.name)
                if telemetry is not None
                else None
            )
            reports.append(
                self._run_replica(replica, sub, bundle)
            )
        duration = max(
            (r.duration_s for r in reports if r is not None),
            default=float(arrivals[-1]) if arrivals.size else 0.0,
        )
        outcomes = []
        for replica, assigned, at_floor, report in zip(
            self.replicas, assigned_counts, at_floor_counts, reports
        ):
            if report is None:
                rate = (
                    replica.hourly_rate
                    if replica.hourly_rate is not None
                    else replica.configuration.total_price_per_hour
                )
                cost = hourly_rate_cost(rate, duration)
            else:
                cost = report.cost
            outcomes.append(
                ReplicaOutcome(
                    spec=replica,
                    assigned=assigned,
                    report=report,
                    cost=cost,
                    at_floor=at_floor,
                )
            )
        return FleetReport(
            offered=int(arrivals.size),
            shed=shed_count,
            duration_s=duration,
            routing=self.routing,
            outcomes=tuple(outcomes),
        )

    def _run_replica(
        self, replica: ReplicaSpec, sub: np.ndarray, bundle
    ):
        """Serve one replica's sub-stream through its simulator."""
        if replica.autoscale is not None:
            simulator = AutoscalingSimulator(
                self.time_model,
                self.accuracy_model,
                replica.configuration.instances[0].itype,
                replica.spec,
                replica.policy,
                replica.autoscale,
                hourly_rate=replica.hourly_rate,
            )
        else:
            simulator = ServingSimulator(
                self.time_model,
                self.accuracy_model,
                replica.configuration,
                replica.spec,
                replica.policy,
                hourly_rate=replica.hourly_rate,
                engine=self.engine,
            )
        return simulator.run(sub, replica.faults, telemetry=bundle)

    # ------------------------------------------------------------------
    def accuracy(self, replica: str) -> AccuracyPair:
        """The model accuracy the named replica serves at."""
        for spec, pair in zip(self.replicas, self.accuracies):
            if spec.name == replica:
                return pair
        raise KeyError(replica)

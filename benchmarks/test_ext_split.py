"""Benchmark: extension — even vs proportional split at frontier scale.

Times the double configuration-space evaluation and asserts the
systemic finding: the proportional split strictly improves the
time-accuracy frontier on heterogeneous spaces.
"""

from __future__ import annotations

from repro.experiments import ext_split_pareto


def test_ext_split_pareto(benchmark):
    ext_split_pareto.run.cache_clear()
    study = benchmark.pedantic(
        ext_split_pareto.run, rounds=1, iterations=1
    )
    assert study.hypervolume_gain > 0.0
    assert study.best_accuracy_speedup > 1.2

#!/usr/bin/env python
"""Calibrate the cost-accuracy models for YOUR application.

The shipped Caffenet/Googlenet models encode the paper's published
measurements.  To run the same analysis for a different application,
you measure single-layer pruning sweeps (the paper's Section 3.3
protocol: prune, run, repeat three times, keep the minimum) and feed
them to ``repro.calibration.fitting``.  This example walks the workflow
with a hypothetical "resnet-ish" application whose sweeps you would
normally read from your own measurement logs:

1. tabulate measured sweeps (ratio → minutes, Top-1 %, Top-5 %);
2. fit the accuracy and time models (+ one multi-layer anchor for the
   interaction/synergy terms);
3. ask the planning questions: cheapest config for a target accuracy,
   the iso-accuracy (time, cost) frontier.

Run:  python examples/calibrate_your_model.py
"""

from repro import api
from repro.calibration.accuracy_model import AccuracyPair
from repro.calibration.fitting import fit_accuracy_model, fit_time_model
from repro.cloud import CloudSimulator, P2_TYPES
from repro.core.config_space import enumerate_configurations
from repro.core.planner import PlanningSpace
from repro.pruning import DegreeOfPruning, PruneSpec

# ----------------------------------------------------------------------
# 1. your measurements (here: a made-up application, measured per the
#    paper's protocol; replace with your own sweep logs)
# ----------------------------------------------------------------------
RATIOS = (0.0, 0.2, 0.4, 0.6, 0.8)

TIME_SWEEPS = {  # minutes for the reference workload
    "block1": (RATIOS, (30.0, 28.5, 27.0, 25.6, 24.1)),
    "block2": (RATIOS, (30.0, 27.2, 24.4, 21.8, 19.2)),
    "block3": (RATIOS, (30.0, 29.3, 28.6, 27.8, 27.2)),
}
TOP1_SWEEPS = {  # percent
    "block1": (RATIOS, (71.0, 71.0, 69.0, 61.0, 44.0)),
    "block2": (RATIOS, (71.0, 71.0, 71.0, 66.0, 52.0)),
    "block3": (RATIOS, (71.0, 71.0, 71.0, 70.0, 64.0)),
}
TOP5_SWEEPS = {
    "block1": (RATIOS, (90.0, 90.0, 88.0, 80.0, 62.0)),
    "block2": (RATIOS, (90.0, 90.0, 90.0, 85.0, 70.0)),
    "block3": (RATIOS, (90.0, 90.0, 90.0, 89.0, 82.0)),
}
#: one measured multi-layer combination (anchors eta and gamma)
COMBO = {"block1": 0.2, "block2": 0.4}
COMBO_TOP5 = 86.0  # measured: 4 points below baseline
COMBO_TIME_FRACTION = 0.78  # measured: 23.4 of 30 minutes


def main() -> None:
    accuracy_model = fit_accuracy_model(
        "your-app",
        AccuracyPair(top1=71.0, top5=90.0),
        TOP1_SWEEPS,
        TOP5_SWEEPS,
        combo_ratios=COMBO,
        combo_top5=COMBO_TOP5,
    )
    time_model = fit_time_model(
        "your-app",
        t_saturated=30.0 * 60.0 / 50_000,  # 30 min / 50k reference run
        single_inference_s=0.12,
        time_sweeps=TIME_SWEEPS,
        combo_ratios=COMBO,
        combo_fraction=COMBO_TIME_FRACTION,
        per_image_mb=6.0,
        model_mb=100.0,
    )
    print("fitted models:")
    print(f"  sweet spots : {dict(accuracy_model.sweet_spots)}")
    print(f"  eta (top5)  : {accuracy_model.eta_top5:.2f}")
    print(f"  synergy γ   : {time_model.synergy_gamma:.2f}\n")

    simulator = CloudSimulator(time_model, accuracy_model)
    degrees = [DegreeOfPruning.of(PruneSpec.unpruned())] + [
        DegreeOfPruning.of(PruneSpec({layer: r}))
        for layer in TIME_SWEEPS
        for r in RATIOS[1:]
    ] + [DegreeOfPruning.of(PruneSpec(COMBO))]
    space = PlanningSpace.evaluate(
        simulator,
        degrees,
        enumerate_configurations(P2_TYPES, max_per_type=2),
        images=10_000_000,
        metric="top5",
    )

    # plan over the custom space through the typed API surface: the
    # request carries the question, ``space=`` overrides the grid
    target = 90.0
    best = api.plan(
        api.PlanRequest(target=target, deadline_h=4.0), space=space
    ).best
    print(
        f"cheapest way to {target:.0f}% Top-5 within 4h: "
        f"{best.spec} on {best.configuration} — "
        f"${best.cost:.2f}, {best.time_h:.2f}h"
    )

    print(f"\niso-accuracy frontier at {target:.0f}% Top-5:")
    frontier = api.plan(api.PlanRequest(target=target), space=space)
    for p in frontier.points:
        print(
            f"  {p.time_h:5.2f}h  ${p.cost:7.2f}  "
            f"{p.spec:24} {p.configuration}"
        )


if __name__ == "__main__":
    main()

"""Tables 1 and 3: Caffenet layer inventory and the EC2 catalog.

Table 1 is *generated from the engine*: the rows come from the built
Caffenet network's actual layer geometry, so any architecture drift from
the paper's table fails the comparison test rather than being hidden by
hard-coded strings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.catalog import EC2_CATALOG
from repro.cnn.conv import ConvLayer
from repro.cnn.dense import DenseLayer
from repro.cnn.models import build_caffenet
from repro.cnn.network import Network
from repro.experiments.report import format_table

__all__ = [
    "Table1Row",
    "table1_caffenet_layers",
    "render_table1",
    "table3_catalog_rows",
    "render_table3",
]


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1."""

    layer: str
    size: str
    num_filters: str
    filter_size: str


def table1_caffenet_layers(network: Network | None = None) -> list[Table1Row]:
    """Regenerate Table 1 from the engine's Caffenet architecture."""
    network = network or build_caffenet(init="const")
    rows = [
        Table1Row(
            layer="input",
            size="x".join(str(d) for d in reversed(network.input_shape)),
            num_filters="-",
            filter_size="-",
        )
    ]
    for layer in network.layers:
        if isinstance(layer, ConvLayer):
            out = layer.output_shape(network.input_shape_of(layer.name))
            c, h, w = out
            k, _, depth = layer.filter_shape
            rows.append(
                Table1Row(
                    layer=layer.name,
                    size=f"{h}x{w}x{c}",
                    num_filters=str(layer.out_channels),
                    filter_size=f"{k}x{k}x{depth}",
                )
            )
        elif isinstance(layer, DenseLayer):
            rows.append(
                Table1Row(
                    layer=layer.name,
                    size=str(layer.out_features),
                    num_filters="-",
                    filter_size="-",
                )
            )
    return rows


def render_table1(rows: list[Table1Row] | None = None) -> str:
    rows = rows or table1_caffenet_layers()
    return format_table(
        ["Layer", "Size", "Number of Filters", "Filter Size"],
        [(r.layer, r.size, r.num_filters, r.filter_size) for r in rows],
    )


def table3_catalog_rows() -> list[tuple]:
    """The paper's Table 3 straight from the catalog module."""
    return [
        (
            t.name,
            t.vcpus,
            t.gpus,
            t.memory_gb,
            t.gpu_memory_gb,
            t.price_per_hour,
            t.gpu.name,
        )
        for t in EC2_CATALOG
    ]


def render_table3() -> str:
    return format_table(
        [
            "Instance Type",
            "vCPUs",
            "GPUs",
            "Mem (GB)",
            "GPU Mem (GB)",
            "Price ($/hr)",
            "GPU Type",
        ],
        table3_catalog_rows(),
    )

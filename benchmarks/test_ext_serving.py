"""Benchmark: extension — latency-SLO serving under bursty traffic.

Measures the discrete-event simulator end to end and asserts the
amplification finding: pruned operating points meet the same p99 SLO
with a strictly smaller fleet.
"""

from __future__ import annotations

from repro.experiments import ext_serving_slo


def test_ext_serving_slo(benchmark):
    study = benchmark.pedantic(
        ext_serving_slo.run,
        kwargs=dict(rate_per_s=600.0, duration_s=30.0, slo_s=2.0),
        rounds=1,
        iterations=1,
    )
    non = study.row("nonpruned")
    allc = study.row("all-conv sweet spot")
    assert allc.instances_needed < non.instances_needed

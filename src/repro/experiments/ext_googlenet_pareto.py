"""Extension: the Pareto study the paper skipped — Googlenet, mixed fleet.

Section 4.3.2 limits the configuration-space study to "the simpler
Caffenet CNN" on p2 instances only.  This extension runs the identical
methodology on Googlenet over a *mixed* p2 + g3 space, which adds the
dimension the paper's own Figure 12 motivates: g3 (M60) delivers
cheaper accuracy per dollar, so the cost frontier should be dominated
by g3 configurations while the time frontier can mix in p2 capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.calibration.googlenet import (
    GOOGLENET_SWEET_SPOTS,
    googlenet_accuracy_model,
    googlenet_time_model,
)
from repro.cloud.catalog import instance_type
from repro.cloud.simulator import SimulationResult
from repro.core.config_space import enumerate_configurations
from repro.core.evalspace import SpaceSpec, evaluate
from repro.experiments.report import format_kv, format_table
from repro.pruning.base import PruneSpec
from repro.pruning.schedule import DegreeOfPruning

__all__ = ["GooglenetPareto", "run", "render", "googlenet_variant_set"]

IMAGES = 20_000_000
DEADLINE_S = 10 * 3600.0
BUDGET = 300.0


def googlenet_variant_set() -> list[DegreeOfPruning]:
    """Degrees of pruning over the six selected Googlenet layers."""
    layers = tuple(GOOGLENET_SWEET_SPOTS)
    variants = [DegreeOfPruning.of(PruneSpec.unpruned())]
    for r in (0.2, 0.4, 0.6, 0.7, 0.8):
        variants.append(DegreeOfPruning.of(PruneSpec.uniform(layers, r)))
    for layer in layers:
        for r in (0.3, 0.6, 0.8):
            variants.append(DegreeOfPruning.of(PruneSpec({layer: r})))
    # stem + strongest inner layer combos (the Googlenet conv1-2 analog)
    for r1 in (0.3, 0.6):
        for r2 in (0.3, 0.6, 0.8):
            variants.append(
                DegreeOfPruning.of(
                    PruneSpec(
                        {"conv1-7x7-s2": r1, "conv2-3x3": r2}
                    )
                )
            )
    return variants


@dataclass(frozen=True)
class GooglenetPareto:
    total_points: int
    n_time_feasible: int
    n_cost_feasible: int
    time_front: tuple[SimulationResult, ...]
    cost_front: tuple[SimulationResult, ...]

    def cost_front_categories(self) -> set[str]:
        """Instance categories appearing on the cost frontier."""
        return {
            inst.itype.category
            for r in self.cost_front
            for inst in r.configuration.instances
        }


@lru_cache(maxsize=1)
def run() -> GooglenetPareto:
    # mixed space: the two workhorse types of each category, <= 2 each
    types = [
        instance_type(n)
        for n in ("p2.8xlarge", "p2.16xlarge", "g3.8xlarge", "g3.16xlarge")
    ]
    space = evaluate(
        SpaceSpec.build(
            googlenet_time_model(),
            googlenet_accuracy_model(),
            googlenet_variant_set(),
            enumerate_configurations(types, max_per_type=2),
            IMAGES,
        )
    )
    return GooglenetPareto(
        total_points=len(space),
        n_time_feasible=int(space.feasible_mask(deadline_s=DEADLINE_S).sum()),
        n_cost_feasible=int(space.feasible_mask(budget=BUDGET).sum()),
        time_front=space.front("top5", "time", deadline_s=DEADLINE_S),
        cost_front=space.front("top5", "cost", budget=BUDGET),
    )


def render(result: GooglenetPareto | None = None) -> str:
    result = result or run()
    summary = format_kv(
        [
            ("points evaluated", result.total_points),
            ("feasible (10h deadline)", result.n_time_feasible),
            ("feasible ($300 budget)", result.n_cost_feasible),
            ("time-Pareto points", len(result.time_front)),
            ("cost-Pareto points", len(result.cost_front)),
            (
                "categories on cost frontier",
                ",".join(sorted(result.cost_front_categories())),
            ),
        ]
    )
    rows = [
        (
            r.spec.label(),
            r.configuration.label(),
            f"{r.accuracy.top5:.1f}",
            f"{r.cost:.0f}",
        )
        for r in result.cost_front
    ]
    return (
        summary
        + "\n\ncost-accuracy frontier:\n"
        + format_table(
            ["Degree of pruning", "Configuration", "Top-5 (%)", "Cost ($)"],
            rows,
        )
    )

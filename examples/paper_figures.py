#!/usr/bin/env python
"""Render the paper's key figures as ASCII plots in the terminal.

Regenerates Figures 4, 5, 9 and 10 from the library and draws them with
the built-in ASCII plotter — no plotting stack required.  Compare the
shapes with the paper: monotone single-inference decline (Fig. 4), the
~300-inference saturation knee (Fig. 5), and the time/cost-accuracy
point clouds with their Pareto staircases (Figs. 9, 10).

Run:  python examples/paper_figures.py       (~5 s)
"""

from repro.experiments import (
    fig4_single_inference,
    fig5_parallel_inference,
    fig9_time_pareto,
    fig10_cost_pareto,
)
from repro.experiments.asciiplot import multi_line, scatter


def fig4() -> str:
    r = fig4_single_inference.run()
    return multi_line(
        [
            ("caffenet", [x * 100 for x in r.ratios], list(r.caffenet_s)),
            ("googlenet", [x * 100 for x in r.ratios], list(r.googlenet_s)),
        ],
        title="Fig 4: time for a single inference",
        xlabel="prune ratio (%)",
        ylabel="seconds",
    )


def fig5() -> str:
    r = fig5_parallel_inference.run()
    return multi_line(
        [
            ("caffenet", list(r.batches), list(r.caffenet_s)),
            ("googlenet", list(r.batches), list(r.googlenet_s)),
        ],
        title="Fig 5: parallel inference on a GPU (50k images)",
        xlabel="parallel inferences",
        ylabel="total seconds",
    )


def _pareto_scatter(study, title: str, objective_label: str) -> str:
    feasible = study.feasible
    front_keys = {id(r) for r in study.front}
    xs, ys, highlight = [], [], []
    for i, r in enumerate(feasible):
        xs.append(r.accuracy.get(study.metric))
        ys.append(
            r.time_hours if study.objective == "time" else r.cost
        )
        if id(r) in front_keys:
            highlight.append(i)
    return scatter(
        xs,
        ys,
        title=title,
        xlabel=f"{study.metric} accuracy (%)",
        ylabel=objective_label,
        highlight=highlight,
    )


def main() -> None:
    print(fig4())
    print()
    print(fig5())
    print()
    study9 = fig9_time_pareto.run().top1
    print(
        _pareto_scatter(
            study9,
            "Fig 9: accuracy vs execution time (* = Pareto-optimal)",
            "hours",
        )
    )
    print()
    study10 = fig10_cost_pareto.run().top1
    print(
        _pareto_scatter(
            study10,
            "Fig 10: accuracy vs cloud cost (* = Pareto-optimal)",
            "dollars",
        )
    )


if __name__ == "__main__":
    main()

"""Tests for prune specs, L1 filter pruning and magnitude pruning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnn import build_small_cnn
from repro.cnn.conv import ConvLayer
from repro.errors import PruningError
from repro.pruning import (
    L1FilterPruner,
    MagnitudePruner,
    PruneSpec,
    multi_layer_grid,
    single_layer_sweep,
    uniform_sweep,
)
from repro.pruning.l1_filter import filters_to_prune
from repro.pruning.magnitude import magnitude_mask
from repro.pruning.schedule import caffenet_variant_set


class TestPruneSpec:
    def test_unpruned(self):
        spec = PruneSpec.unpruned()
        assert spec.is_unpruned()
        assert spec.label() == "nonpruned"

    def test_zero_ratios_dropped(self):
        spec = PruneSpec({"conv1": 0.0, "conv2": 0.3})
        assert spec.layers == ("conv2",)

    def test_label_format(self):
        spec = PruneSpec({"conv2": 0.5, "conv1": 0.3})
        assert spec.label() == "conv1@30+conv2@50"

    def test_invalid_ratio_rejected(self):
        with pytest.raises(PruningError):
            PruneSpec({"conv1": 1.0})
        with pytest.raises(PruningError):
            PruneSpec({"conv1": -0.1})

    def test_merged_takes_max(self):
        a = PruneSpec({"conv1": 0.3, "conv2": 0.1})
        b = PruneSpec({"conv2": 0.5})
        assert a.merged(b).as_dict() == {"conv1": 0.3, "conv2": 0.5}

    def test_validate_against_unknown_layer(self, small_cnn):
        spec = PruneSpec({"convX": 0.5})
        with pytest.raises(PruningError, match="convX"):
            spec.validate_against(small_cnn)

    def test_hashable_and_equal(self):
        assert PruneSpec({"a": 0.5}) == PruneSpec({"a": 0.5})
        assert hash(PruneSpec({"a": 0.5})) == hash(PruneSpec({"a": 0.5}))

    @given(st.floats(0.0, 0.99), st.floats(0.0, 0.99))
    @settings(max_examples=30, deadline=None)
    def test_uniform_assigns_same_ratio(self, r1, r2):
        spec = PruneSpec.uniform(["x", "y"], r1)
        assert spec.ratio_for("x") == spec.ratio_for("y")


class TestFilterRanking:
    def test_smallest_norm_selected(self, rng):
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        w[2] *= 0.001  # filter 2 has the smallest L1 norm
        dead = filters_to_prune(w, 0.25)
        assert list(dead) == [2]

    def test_zero_ratio_prunes_nothing(self, rng):
        w = rng.standard_normal((4, 3)).astype(np.float32)
        assert filters_to_prune(w, 0.0).size == 0

    def test_count_rounds(self, rng):
        w = rng.standard_normal((96, 3, 11, 11)).astype(np.float32)
        assert filters_to_prune(w, 0.5).size == 48
        assert filters_to_prune(w, 0.3).size == 29  # round(28.8)

    @given(st.integers(2, 32), st.floats(0.0, 0.95))
    @settings(max_examples=40, deadline=None)
    def test_count_matches_ratio(self, n_filters, ratio):
        w = np.random.default_rng(0).standard_normal((n_filters, 5))
        dead = filters_to_prune(w.astype(np.float32), ratio)
        assert dead.size == int(round(ratio * n_filters))
        assert len(set(dead.tolist())) == dead.size  # no duplicates


class TestL1FilterPruner:
    def test_zeroes_whole_filters(self, small_cnn):
        pruner = L1FilterPruner(propagate=False)
        pruned = pruner.apply(small_cnn, PruneSpec({"conv1": 0.5}))
        conv = pruned.layer("conv1")
        dead_rows = np.abs(conv.weights).reshape(conv.weights.shape[0], -1).sum(
            axis=1
        )
        assert (dead_rows == 0).sum() == conv.weights.shape[0] // 2

    def test_original_untouched(self, small_cnn):
        before = small_cnn.layer("conv1").weights.copy()
        L1FilterPruner().apply(small_cnn, PruneSpec({"conv1": 0.5}))
        np.testing.assert_array_equal(
            small_cnn.layer("conv1").weights, before
        )

    def test_inplace(self, small_cnn):
        L1FilterPruner(propagate=False).apply(
            small_cnn, PruneSpec({"conv1": 0.5}), inplace=True
        )
        assert small_cnn.layer("conv1").density() < 0.6

    def test_propagation_zeroes_successor_inputs(self, small_cnn):
        pruner = L1FilterPruner(propagate=True)
        pruned = pruner.apply(small_cnn, PruneSpec({"conv1": 0.5}))
        conv1, conv2 = pruned.layer("conv1"), pruned.layer("conv2")
        dead = np.flatnonzero(
            np.abs(conv1.weights).reshape(conv1.weights.shape[0], -1).sum(1)
            == 0
        )
        assert dead.size > 0
        assert (conv2.weights[:, dead] == 0).all()

    def test_propagation_into_dense_after_flatten(self, small_cnn):
        pruner = L1FilterPruner(propagate=True)
        pruned = pruner.apply(small_cnn, PruneSpec({"conv2": 0.5}))
        conv2, fc1 = pruned.layer("conv2"), pruned.layer("fc1")
        dead = np.flatnonzero(
            np.abs(conv2.weights).reshape(conv2.weights.shape[0], -1).sum(1)
            == 0
        )
        # flatten block size = 4x4 spatial positions per channel
        block = 16
        for ch in dead:
            assert (fc1.weights[:, ch * block : (ch + 1) * block] == 0).all()

    def test_propagation_preserves_forward_semantics(self, small_cnn, rng):
        """Zeroing successor inputs of dead maps must not change outputs
        (dead maps are bias-only constants only when bias is zeroed too,
        so compare propagate=True vs propagate=False pruned networks)."""
        x = rng.standard_normal((3, 1, 16, 16)).astype(np.float32)
        spec = PruneSpec({"conv1": 0.5})
        no_prop = L1FilterPruner(propagate=False).apply(small_cnn, spec)
        with_prop = L1FilterPruner(propagate=True).apply(small_cnn, spec)
        np.testing.assert_allclose(
            no_prop.forward(x), with_prop.forward(x), rtol=1e-4, atol=1e-6
        )

    def test_grouped_propagation_on_caffenet(self, caffenet_random):
        pruner = L1FilterPruner(propagate=True)
        pruned = pruner.apply(caffenet_random, PruneSpec({"conv1": 0.3}))
        conv1 = pruned.layer("conv1")
        conv2 = pruned.layer("conv2")
        dead = np.flatnonzero(
            np.abs(conv1.weights).reshape(96, -1).sum(1) == 0
        )
        assert dead.size == 29
        # group-aware: channel ch of conv1 output feeds group ch//48
        for ch in dead:
            group, local = divmod(int(ch), 48)
            rows = slice(group * 128, (group + 1) * 128)
            assert (conv2.weights[rows, local] == 0).all()

    def test_unprunable_layer_rejected(self, small_cnn):
        with pytest.raises(PruningError):
            L1FilterPruner().apply(small_cnn, PruneSpec({"relu1": 0.5}))

    def test_higher_ratio_lower_density(self, small_cnn):
        pruner = L1FilterPruner(propagate=False)
        d = []
        for ratio in (0.0, 0.25, 0.5, 0.75):
            pruned = pruner.apply(small_cnn, PruneSpec({"conv2": ratio}))
            d.append(pruned.layer("conv2").density())
        assert d == sorted(d, reverse=True)


class TestMagnitudePruner:
    def test_mask_keeps_largest(self):
        w = np.array([[0.1, -5.0], [2.0, -0.01]], dtype=np.float32)
        mask = magnitude_mask(w, 0.5)
        np.testing.assert_array_equal(
            mask, [[False, True], [True, False]]
        )

    def test_density_matches_ratio(self, small_cnn):
        pruned = MagnitudePruner().apply(
            small_cnn, PruneSpec({"fc1": 0.75})
        )
        assert pruned.layer("fc1").density() == pytest.approx(0.25, abs=0.01)

    def test_rejects_weightless_layer(self, small_cnn):
        with pytest.raises(PruningError):
            MagnitudePruner().apply(small_cnn, PruneSpec({"pool1": 0.5}))

    @given(st.floats(0.0, 0.9))
    @settings(max_examples=25, deadline=None)
    def test_mask_density_property(self, ratio):
        w = np.random.default_rng(5).standard_normal((20, 20)).astype(
            np.float32
        )
        mask = magnitude_mask(w, ratio)
        assert mask.sum() == w.size - int(round(ratio * w.size))


class TestSchedules:
    def test_single_layer_sweep(self):
        degrees = single_layer_sweep("conv1")
        assert len(degrees) == 10
        assert degrees[0].spec.is_unpruned()
        assert degrees[-1].spec.ratio_for("conv1") == pytest.approx(0.9)

    def test_uniform_sweep(self):
        degrees = uniform_sweep(["conv1", "conv2"], [0.0, 0.5])
        assert len(degrees) == 2
        assert degrees[1].spec.as_dict() == {"conv1": 0.5, "conv2": 0.5}

    def test_multi_layer_grid_size(self):
        grid = multi_layer_grid(
            {"conv1": [0, 0.1, 0.2], "conv2": [0, 0.3]}
        )
        assert len(grid) == 6
        labels = {d.label for d in grid}
        assert "conv1@20+conv2@30" in labels

    def test_caffenet_variant_set_is_60_unique(self):
        variants = caffenet_variant_set()
        assert len(variants) == 60
        assert len({v.label for v in variants}) == 60
        assert variants[0].spec.is_unpruned()

"""Architecture builders: Caffenet, Googlenet, and a small trainable CNN.

``build_caffenet`` follows Caffe's ``bvlc_reference_caffenet`` deployment
exactly, which is the network behind the paper's Table 1 and Figure 1:
five convolutions (conv2/4/5 with two channel groups) and three
fully-connected layers.  The paper's Table 1 lists the nominal AlexNet
input of 224x224x3; the actual Caffe deployment (and therefore this
builder) crops to 227x227 so that conv1's 11x11/stride-4 geometry yields
the 55x55x96 output the same table reports.

``build_googlenet`` follows Szegedy et al. 2015: two stem convolutions
(plus the 1x1 ``conv2-reduce`` bottleneck) and nine inception modules of
six convolutions each — the "56 convolution layers" the paper counts are
the 2 main stem convolutions plus 9x6 inception convolutions.  Pooling
here uses floor rounding with pad=1 where Caffe's ceil rounding is needed
to keep the canonical 56/28/14/7 feature-map sizes.

``build_small_cnn`` is a deliberately small network used by the
end-to-end demos that *train* on the synthetic dataset and measure real
accuracy under pruning (no calibration involved).
"""

from __future__ import annotations

import numpy as np

from repro.cnn.activations import ReLU, Softmax
from repro.cnn.conv import ConvLayer
from repro.cnn.dense import DenseLayer, Flatten
from repro.cnn.dropout import Dropout
from repro.cnn.inception import InceptionModule
from repro.cnn.layers import DTYPE, Layer
from repro.cnn.network import Network
from repro.cnn.normalization import LocalResponseNorm
from repro.cnn.pooling import GlobalAvgPool, MaxPool

__all__ = [
    "build_caffenet",
    "build_googlenet",
    "build_small_cnn",
    "CAFFENET_CONV_LAYERS",
    "GOOGLENET_SELECTED_LAYERS",
]

#: Caffenet convolution layers in execution order (the paper prunes these).
CAFFENET_CONV_LAYERS = ("conv1", "conv2", "conv3", "conv4", "conv5")

#: The six Googlenet layers the paper's Figure 7 sweeps.
GOOGLENET_SELECTED_LAYERS = (
    "conv1-7x7-s2",
    "conv2-3x3",
    "inception-3a-3x3",
    "inception-4d-5x5",
    "inception-4e-5x5",
    "inception-5a-3x3",
)


def _const_fill(network: Network, value: float = 0.01) -> Network:
    """Overwrite all weights with a constant (fast, cost-model-only nets)."""
    for layer in network.weighted_layers():
        layer.weights.fill(value)
        layer.bias.fill(0.0)
    return network


def build_caffenet(
    seed: int = 0,
    num_classes: int = 1000,
    init: str = "random",
) -> Network:
    """Build the Caffenet CNN of the paper's Table 1 / Figure 1.

    Parameters
    ----------
    seed:
        Weight-initialisation seed.
    num_classes:
        Output classes; the paper's ImageNet deployment uses 1000.
    init:
        ``"random"`` (He initialisation) or ``"const"`` — constant weights,
        ~10x faster to build, sufficient when only the cost model is used.
    """
    rng = np.random.default_rng(seed)
    layers: list[Layer] = [
        ConvLayer("conv1", 3, 96, kernel=11, stride=4, rng=rng),
        ReLU("relu1"),
        MaxPool("pool1", kernel=3, stride=2),
        LocalResponseNorm("norm1"),
        ConvLayer("conv2", 96, 256, kernel=5, pad=2, groups=2, rng=rng),
        ReLU("relu2"),
        MaxPool("pool2", kernel=3, stride=2),
        LocalResponseNorm("norm2"),
        ConvLayer("conv3", 256, 384, kernel=3, pad=1, rng=rng),
        ReLU("relu3"),
        ConvLayer("conv4", 384, 384, kernel=3, pad=1, groups=2, rng=rng),
        ReLU("relu4"),
        ConvLayer("conv5", 384, 256, kernel=3, pad=1, groups=2, rng=rng),
        ReLU("relu5"),
        MaxPool("pool5", kernel=3, stride=2),
        Flatten("flatten"),
        DenseLayer("fc1", 256 * 6 * 6, 4096, rng=rng),
        ReLU("relu6"),
        Dropout("drop6", rate=0.5),
        DenseLayer("fc2", 4096, 4096, rng=rng),
        ReLU("relu7"),
        Dropout("drop7", rate=0.5),
        DenseLayer("fc3", 4096, num_classes, rng=rng),
        Softmax("prob"),
    ]
    network = Network("caffenet", (3, 227, 227), layers)
    if init == "const":
        _const_fill(network)
    elif init != "random":
        raise ValueError(f"unknown init {init!r}")
    return network


#: (name, in, n1x1, n3x3red, n3x3, n5x5red, n5x5, pool_proj) per module.
_GOOGLENET_INCEPTION = (
    ("inception-3a", 192, 64, 96, 128, 16, 32, 32),
    ("inception-3b", 256, 128, 128, 192, 32, 96, 64),
    ("inception-4a", 480, 192, 96, 208, 16, 48, 64),
    ("inception-4b", 512, 160, 112, 224, 24, 64, 64),
    ("inception-4c", 512, 128, 128, 256, 24, 64, 64),
    ("inception-4d", 512, 112, 144, 288, 32, 64, 64),
    ("inception-4e", 528, 256, 160, 320, 32, 128, 128),
    ("inception-5a", 832, 256, 160, 320, 32, 128, 128),
    ("inception-5b", 832, 384, 192, 384, 48, 128, 128),
)


def build_googlenet(
    seed: int = 0,
    num_classes: int = 1000,
    init: str = "random",
) -> Network:
    """Build the Googlenet (GoogLeNet / Inception-v1) CNN.

    See module docstring for the pooling-rounding note; feature-map sizes
    follow the canonical 224 -> 112 -> 56 -> 28 -> 14 -> 7 -> 1 ladder.
    """
    rng = np.random.default_rng(seed)
    layers: list[Layer] = [
        ConvLayer("conv1-7x7-s2", 3, 64, kernel=7, stride=2, pad=3, rng=rng),
        ReLU("relu-conv1"),
        MaxPool("pool1-3x3-s2", kernel=3, stride=2, pad=1),
        LocalResponseNorm("pool1-norm1"),
        ConvLayer("conv2-reduce", 64, 64, kernel=1, rng=rng),
        ReLU("relu-conv2-reduce"),
        ConvLayer("conv2-3x3", 64, 192, kernel=3, pad=1, rng=rng),
        ReLU("relu-conv2"),
        LocalResponseNorm("conv2-norm2"),
        MaxPool("pool2-3x3-s2", kernel=3, stride=2, pad=1),
    ]
    for spec in _GOOGLENET_INCEPTION[:2]:
        layers.append(InceptionModule(*spec, rng=rng))
    layers.append(MaxPool("pool3-3x3-s2", kernel=3, stride=2, pad=1))
    for spec in _GOOGLENET_INCEPTION[2:7]:
        layers.append(InceptionModule(*spec, rng=rng))
    layers.append(MaxPool("pool4-3x3-s2", kernel=3, stride=2, pad=1))
    for spec in _GOOGLENET_INCEPTION[7:]:
        layers.append(InceptionModule(*spec, rng=rng))
    layers += [
        GlobalAvgPool("pool5-avg"),
        Flatten("flatten"),
        DenseLayer("loss3-classifier", 1024, num_classes, rng=rng),
        Softmax("prob"),
    ]
    network = Network("googlenet", (3, 224, 224), layers)
    if init == "const":
        _const_fill(network)
    elif init != "random":
        raise ValueError(f"unknown init {init!r}")
    return network


def build_small_cnn(
    seed: int = 0,
    num_classes: int = 5,
    input_size: int = 16,
    channels: int = 1,
    width: int = 8,
) -> Network:
    """A small Caffenet-shaped CNN trainable on the synthetic dataset.

    Two convolutions and two dense layers — the minimum structure that
    still shows the paper's mechanism: convolutions dominate time, and
    L1-filter pruning produces a flat-then-drop accuracy response.
    """
    rng = np.random.default_rng(seed)
    pooled = input_size // 2 // 2
    layers: list[Layer] = [
        ConvLayer("conv1", channels, width, kernel=3, pad=1, rng=rng),
        ReLU("relu1"),
        MaxPool("pool1", kernel=2, stride=2),
        ConvLayer("conv2", width, 2 * width, kernel=3, pad=1, rng=rng),
        ReLU("relu2"),
        MaxPool("pool2", kernel=2, stride=2),
        Flatten("flatten"),
        DenseLayer("fc1", 2 * width * pooled * pooled, 32, rng=rng),
        ReLU("relu3"),
        DenseLayer("fc2", 32, num_classes, rng=rng),
    ]
    return Network("small-cnn", (channels, input_size, input_size), layers)

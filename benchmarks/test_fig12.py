"""Benchmark: Figure 12 — CAR across the six EC2 resource types.

Paper: CAR flat within a category; p2 ~= 0.57 vs g3 ~= 0.35 per unit
accuracy (ratio ~1.63) with all GPUs utilised.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig12_car


def test_fig12_car(benchmark):
    result = benchmark(fig12_car.run)
    assert result.within_category_spread("p2") < 0.05
    assert result.within_category_spread("g3") < 0.05
    assert result.category_ratio("all") == pytest.approx(1.63, abs=0.07)

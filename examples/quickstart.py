#!/usr/bin/env python
"""Quickstart: prune Caffenet, run it on simulated EC2, inspect TAR/CAR.

This walks the paper's core loop in ~40 lines:

1. pick a degree of pruning (the paper's Figure 8 "conv1-2" sweet-spot
   combination);
2. simulate inference of the 50 000-image set on a p2.xlarge;
3. compare time, cost and accuracy against the unpruned baseline;
4. compute the TAR/CAR metrics that quantify the trade.

Run:  python examples/quickstart.py
"""

from repro import (
    CloudInstance,
    CloudSimulator,
    PruneSpec,
    ResourceConfiguration,
    caffenet_accuracy_model,
    caffenet_time_model,
    instance_type,
)


def main() -> None:
    simulator = CloudSimulator(
        caffenet_time_model(), caffenet_accuracy_model()
    )
    config = ResourceConfiguration(
        [CloudInstance(instance_type("p2.xlarge"))]
    )
    images = 50_000

    baseline = simulator.run(PruneSpec.unpruned(), config, images)
    pruned = simulator.run(
        PruneSpec({"conv1": 0.3, "conv2": 0.5}), config, images
    )

    print(f"workload: {images} images on {config.label()}\n")
    header = f"{'':14}{'time':>10}{'cost':>9}{'Top-1':>8}{'Top-5':>8}{'TAR':>8}{'CAR':>8}"
    print(header)
    for name, r in (("nonpruned", baseline), ("conv1-2", pruned)):
        print(
            f"{name:14}{r.time_s / 60:>8.1f}min"
            f"{r.cost:>8.3f}$"
            f"{r.accuracy.top1:>7.1f}%"
            f"{r.accuracy.top5:>7.1f}%"
            f"{r.tar('top5'):>8.3f}"
            f"{r.car('top5'):>8.3f}"
        )

    saved_time = 1 - pruned.time_s / baseline.time_s
    saved_cost = 1 - pruned.cost / baseline.cost
    dropped = baseline.accuracy.top5 - pruned.accuracy.top5
    print(
        f"\npruning conv1@30% + conv2@50% saves {saved_time:.0%} time and "
        f"{saved_cost:.0%} cost for {dropped:.0f} points of Top-5 accuracy"
    )
    print(
        "(the paper's Figure 8: 19 -> 13 min and 80% -> 70% Top-5 "
        "for the same configuration)"
    )


if __name__ == "__main__":
    main()

"""Benchmark: extension — strong scaling of the 50k-image workload.

Asserts the fixed-workload scaling shape: linear speedup while shards
stay saturated, efficiency decay once per-GPU parallelism falls below
the ~300-inference knee.
"""

from __future__ import annotations

from repro.experiments import ext_scaling


def test_ext_scaling(benchmark):
    study = benchmark(ext_scaling.run)
    assert study.point(1).efficiency == 1.0
    assert study.point(512).efficiency < study.point(8).efficiency
    assert study.point(512).cost_inflation > 0.1

"""Tests pinning the calibrated models to the paper's published anchors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import (
    AccuracyPair,
    PiecewiseCurve,
    caffenet_accuracy_model,
    caffenet_time_model,
    googlenet_accuracy_model,
    googlenet_time_model,
)
from repro.errors import CalibrationError
from repro.perf.device import K80
from repro.pruning import PruneSpec

MIN = 60.0


@pytest.fixture(scope="module")
def ctm():
    return caffenet_time_model()


@pytest.fixture(scope="module")
def cam():
    return caffenet_accuracy_model()


@pytest.fixture(scope="module")
def gtm():
    return googlenet_time_model()


@pytest.fixture(scope="module")
def gam():
    return googlenet_accuracy_model()


class TestPiecewiseCurve:
    def test_interpolates(self):
        c = PiecewiseCurve([(0.0, 1.0), (1.0, 0.0)])
        assert c(0.25) == pytest.approx(0.75)

    def test_clamps_outside_range(self):
        c = PiecewiseCurve([(0.2, 5.0), (0.8, 1.0)])
        assert c(0.0) == 5.0
        assert c(1.0) == 1.0

    def test_flat_then_linear_shape(self):
        c = PiecewiseCurve.flat_then_linear(0.5, 0.9, 0.0, 55.0)
        assert c(0.0) == 0.0
        assert c(0.5) == 0.0
        assert c(0.7) == pytest.approx(27.5)
        assert c(0.9) == 55.0

    def test_rejects_non_monotone_x(self):
        with pytest.raises(CalibrationError):
            PiecewiseCurve([(0.5, 1.0), (0.5, 2.0)])

    def test_rejects_single_point(self):
        with pytest.raises(CalibrationError):
            PiecewiseCurve([(0.0, 1.0)])

    def test_vectorised_eval(self):
        c = PiecewiseCurve([(0.0, 0.0), (1.0, 10.0)])
        np.testing.assert_allclose(
            c(np.array([0.0, 0.5, 1.0])), [0.0, 5.0, 10.0]
        )

    def test_is_nonincreasing(self):
        assert PiecewiseCurve([(0, 2.0), (1, 1.0)]).is_nonincreasing()
        assert not PiecewiseCurve([(0, 1.0), (1, 2.0)]).is_nonincreasing()


class TestAccuracyPair:
    def test_fraction_views(self):
        p = AccuracyPair(top1=55.0, top5=80.0)
        assert p.top1_fraction == 0.55
        assert p.top5_fraction == 0.80

    def test_get_by_metric(self):
        p = AccuracyPair(top1=10.0, top5=20.0)
        assert p.get("top1") == 10.0
        with pytest.raises(KeyError):
            p.get("top3")

    def test_rejects_out_of_range(self):
        with pytest.raises(CalibrationError):
            AccuracyPair(top1=-1.0, top5=50.0)
        with pytest.raises(CalibrationError):
            AccuracyPair(top1=10.0, top5=101.0)


class TestCaffenetTimeAnchors:
    """Every wall-clock anchor from DESIGN.md section 6."""

    def test_unpruned_19_minutes(self, ctm):
        t = ctm.inference_time(PruneSpec.unpruned(), 50_000, K80)
        assert t / MIN == pytest.approx(19.0, rel=1e-6)

    def test_conv1_sweep_endpoint(self, ctm):
        t = ctm.inference_time(PruneSpec({"conv1": 0.9}), 50_000, K80)
        assert t / MIN == pytest.approx(16.6, rel=0.01)

    def test_conv2_sweep_endpoint(self, ctm):
        t = ctm.inference_time(PruneSpec({"conv2": 0.9}), 50_000, K80)
        assert t / MIN == pytest.approx(14.0, rel=0.01)

    def test_conv2_is_strongest_single_layer(self, ctm):
        times = {
            layer: ctm.inference_time(PruneSpec({layer: 0.9}), 50_000, K80)
            for layer in ("conv1", "conv2", "conv3", "conv4", "conv5")
        }
        assert min(times, key=times.get) == "conv2"

    def test_figure8_conv1_2_combo(self, ctm):
        spec = PruneSpec({"conv1": 0.3, "conv2": 0.5})
        t = ctm.inference_time(spec, 50_000, K80) / MIN
        assert t == pytest.approx(13.0, rel=0.05)  # paper: 13 min

    def test_figure8_all_conv_combo(self, ctm):
        spec = PruneSpec(
            {"conv1": 0.3, "conv2": 0.5, "conv3": 0.5, "conv4": 0.5, "conv5": 0.5}
        )
        t = ctm.inference_time(spec, 50_000, K80) / MIN
        assert t == pytest.approx(11.0, rel=0.08)  # paper: 11 min

    def test_figure4_single_inference_endpoints(self, ctm):
        layers = ["conv1", "conv2", "conv3", "conv4", "conv5"]
        assert ctm.single_inference(
            PruneSpec.unpruned(), K80
        ) == pytest.approx(0.09)
        assert ctm.single_inference(
            PruneSpec.uniform(layers, 0.9), K80
        ) == pytest.approx(0.05, rel=0.01)

    def test_figure4_monotone_decrease(self, ctm):
        layers = ["conv1", "conv2", "conv3", "conv4", "conv5"]
        times = [
            ctm.single_inference(PruneSpec.uniform(layers, r / 10), K80)
            for r in range(10)
        ]
        assert all(b <= a + 1e-12 for a, b in zip(times, times[1:]))

    def test_figure5_saturation(self, ctm):
        bm = ctm.batching_model(PruneSpec.unpruned(), K80)
        assert 200 <= bm.knee_batch(0.85) <= 400


class TestCaffenetAccuracyAnchors:
    def test_baseline(self, cam):
        base = cam.accuracy(PruneSpec.unpruned())
        assert base.top5 == pytest.approx(80.0)
        assert base.top1 == pytest.approx(55.0)

    @pytest.mark.parametrize(
        "layer,knee", [("conv1", 0.3), ("conv2", 0.5), ("conv3", 0.5)]
    )
    def test_sweet_spots_flat(self, cam, layer, knee):
        base = cam.accuracy(PruneSpec.unpruned())
        at_knee = cam.accuracy(PruneSpec({layer: knee}))
        assert at_knee.top5 == pytest.approx(base.top5)
        assert at_knee.top1 == pytest.approx(base.top1)

    def test_conv1_collapses_to_zero(self, cam):
        acc = cam.accuracy(PruneSpec({"conv1": 0.9}))
        assert acc.top5 == pytest.approx(0.0)
        assert acc.top1 == pytest.approx(0.0)

    def test_other_layers_fall_to_25(self, cam):
        for layer in ("conv2", "conv3", "conv4", "conv5"):
            acc = cam.accuracy(PruneSpec({layer: 0.9}))
            assert acc.top5 == pytest.approx(25.0)

    def test_figure8_conv1_2_accuracy(self, cam):
        acc = cam.accuracy(PruneSpec({"conv1": 0.3, "conv2": 0.5}))
        assert acc.top5 == pytest.approx(70.0, abs=1.0)  # paper: 70%

    def test_figure8_all_conv_accuracy(self, cam):
        spec = PruneSpec(
            {"conv1": 0.3, "conv2": 0.5, "conv3": 0.5, "conv4": 0.5, "conv5": 0.5}
        )
        acc = cam.accuracy(spec)
        assert acc.top5 == pytest.approx(62.0, abs=3.0)  # paper: 62%

    def test_interaction_zero_for_single_layer(self, cam):
        # single-layer sweeps must follow their curves exactly
        assert cam._interaction(PruneSpec({"conv1": 0.8}), 10.0) == 0.0

    def test_interaction_positive_for_combos(self, cam):
        spec = PruneSpec({"conv1": 0.2, "conv2": 0.2})
        assert cam._interaction(spec, 10.0) > 0.0

    @given(st.floats(0.0, 0.89), st.floats(0.0, 0.89))
    @settings(max_examples=40, deadline=None)
    def test_accuracy_bounded(self, cam, r1, r2):
        acc = cam.accuracy(PruneSpec({"conv1": r1, "conv2": r2}))
        assert 0.0 <= acc.top1 <= 55.0
        assert 0.0 <= acc.top5 <= 80.0

    def test_monotone_in_ratio(self, cam):
        accs = [
            cam.accuracy(PruneSpec({"conv2": r / 10})).top5
            for r in range(10)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(accs, accs[1:]))

    def test_top1_below_top5_always(self, cam):
        for r in (0.0, 0.3, 0.6, 0.9):
            acc = cam.accuracy(PruneSpec({"conv3": r}))
            assert acc.top1 <= acc.top5


class TestGooglenetAnchors:
    def test_unpruned_13_minutes(self, gtm):
        t = gtm.inference_time(PruneSpec.unpruned(), 50_000, K80)
        assert t / MIN == pytest.approx(13.0, rel=1e-6)

    def test_conv2_3x3_endpoint(self, gtm):
        t = gtm.inference_time(PruneSpec({"conv2-3x3": 0.9}), 50_000, K80)
        assert t / MIN == pytest.approx(9.0, rel=0.01)  # paper: 13 -> 9

    def test_figure4_single_inference(self, gtm):
        assert gtm.single_inference(
            PruneSpec.unpruned(), K80
        ) == pytest.approx(0.16)
        from repro.calibration.googlenet import GOOGLENET_SWEET_SPOTS

        layers = list(GOOGLENET_SWEET_SPOTS)
        heavy = PruneSpec.uniform(layers, 0.9)
        assert gtm.single_inference(heavy, K80) == pytest.approx(
            0.10, rel=0.01
        )

    def test_accuracy_flat_until_60(self, gam):
        base = gam.accuracy(PruneSpec.unpruned())
        for layer in (
            "conv1-7x7-s2",
            "conv2-3x3",
            "inception-3a-3x3",
            "inception-4d-5x5",
        ):
            at60 = gam.accuracy(PruneSpec({layer: 0.6}))
            assert at60.top5 == pytest.approx(base.top5)

    def test_accuracy_drops_past_60(self, gam):
        base = gam.accuracy(PruneSpec.unpruned())
        at80 = gam.accuracy(PruneSpec({"conv2-3x3": 0.8}))
        assert at80.top5 < base.top5

    def test_uncalibrated_layer_uses_default_response(self, gam):
        base = gam.accuracy(PruneSpec.unpruned())
        flat = gam.accuracy(PruneSpec({"inception-4b-3x3": 0.5}))
        dropped = gam.accuracy(PruneSpec({"inception-4b-3x3": 0.85}))
        assert flat.top5 == pytest.approx(base.top5)
        assert dropped.top5 < base.top5

    def test_deeper_but_fewer_params_narrative(self, gtm, ctm):
        # Googlenet single inference is slower despite fewer parameters
        assert gtm.single_inference(
            PruneSpec.unpruned(), K80
        ) > ctm.single_inference(PruneSpec.unpruned(), K80)

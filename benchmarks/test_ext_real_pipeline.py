"""Benchmark: extension — the whole methodology with zero paper constants.

Times train -> measure -> fit -> cloud-Pareto end to end, asserting the
paper's structural findings emerge from fresh measurements.
"""

from __future__ import annotations

from repro.experiments import ext_real_pipeline


def test_ext_real_pipeline(benchmark):
    ext_real_pipeline.run.cache_clear()
    result = benchmark.pedantic(
        ext_real_pipeline.run, rounds=1, iterations=1
    )
    assert result.baseline.top1 > 60.0
    assert result.n_pareto >= 3
    assert result.cost_saving_at_best > 0.2

#!/usr/bin/env python
"""A tour of the telemetry stack on one faulty serving run.

One simulated minute of Poisson traffic on a preemptible GPU fleet,
observed end to end: per-request latency histograms, queue and batch
gauges, a sliding-window SLO monitor paging on burn rate, structured
events on the process-wide bus, and the three export formats — Chrome
trace JSON (drag onto https://ui.perfetto.dev), OpenMetrics text (what
a Prometheus scrape would read) and a JSONL event log.

Artefacts land in ``telemetry_out/``.

Run:  python examples/telemetry_tour.py      (~5 s)
"""

from pathlib import Path

OUT = Path("telemetry_out")


def main() -> None:
    from repro.calibration import (
        caffenet_accuracy_model,
        caffenet_time_model,
    )
    from repro.cloud.catalog import instance_type
    from repro.cloud.configuration import ResourceConfiguration
    from repro.cloud.faults import FaultPlan
    from repro.cloud.instance import CloudInstance
    from repro.obs import (
        MetricsRegistry,
        JsonlEventLog,
        Tracer,
        scoped_observability,
    )
    from repro.obs.export import (
        chrome_trace,
        prometheus_text,
        write_chrome_trace,
    )
    from repro.obs.telemetry import ServingTelemetry, SloPolicy
    from repro.pruning.base import PruneSpec
    from repro.serving import (
        BatchPolicy,
        ServingSimulator,
        poisson_arrivals,
    )
    from repro.serving.metrics import availability_summary

    OUT.mkdir(exist_ok=True)

    # -- the workload: a busy minute on a flaky single-GPU fleet -------
    arrivals = poisson_arrivals(120.0, 60.0, seed=7)
    faults = FaultPlan.sample(
        duration_s=60.0,
        workers=1,
        mtbf_s=15.0,
        recovery_s=5.0,
        retry_budget=1,
        timeout_s=2.0,
        seed=5,
    )
    simulator = ServingSimulator(
        caffenet_time_model(),
        caffenet_accuracy_model(),
        ResourceConfiguration([CloudInstance(instance_type("p2.xlarge"))]),
        PruneSpec.unpruned(),
        BatchPolicy(max_batch=16, max_wait_s=0.05),
    )

    # -- observe everything: spans, metrics, events, telemetry --------
    telemetry = ServingTelemetry(
        SloPolicy(latency_slo_s=0.5, availability_target=0.99)
    )
    tracer, registry = Tracer(enabled=True), MetricsRegistry()
    with scoped_observability(tracer, registry):
        with JsonlEventLog(OUT / "events.jsonl") as log:
            report = simulator.run(
                arrivals, faults, telemetry=telemetry
            )

    # -- per-request telemetry: streaming, O(1) memory ----------------
    hist = telemetry.latency
    print(
        f"served {report.served}/{report.requests} requests | "
        f"latency p50 {hist.p50:.3f}s p95 {hist.p95:.3f}s "
        f"p99 {hist.p99:.3f}s"
    )
    print(
        f"queue depth peak {telemetry.queue_depth.max:.0f} | "
        f"batch occupancy mean {telemetry.batch_occupancy.mean:.0%}"
    )
    summary = availability_summary(report, slo_s=0.5)
    print(
        f"availability {summary['availability']:.1%} | "
        f"goodput {summary['goodput']:.1f} req/s | "
        f"drop rate {summary['drop_rate']:.1%}"
    )

    # -- the SLO monitor's pages, in event-time order -----------------
    print(f"\n{telemetry.alerts_fired} SLO alert(s) fired:")
    for alert in telemetry.alerts:
        state = (
            "FIRING" if alert["kind"] == "slo.alert" else "resolved"
        )
        print(
            f"  t={alert['at_s']:5.1f}s  {alert['slo']:<13}"
            f"{state:<9} burn {alert['burn_rate']:.1f}x"
        )

    # -- exports ------------------------------------------------------
    trace_path = write_chrome_trace(
        OUT / "trace.json", chrome_trace(tracer)
    )
    prom_path = OUT / "metrics.prom"
    prom_path.write_text(prometheus_text(registry.snapshot()))
    print("\nartefacts:")
    print(f"  {trace_path}   (drag onto https://ui.perfetto.dev)")
    print(f"  {prom_path}   (OpenMetrics text exposition)")
    print(
        f"  {OUT / 'events.jsonl'}   ({log.count} structured events)"
    )
    sample = prometheus_text(registry.snapshot()).splitlines()
    served_lines = [
        line
        for line in sample
        if "serving_latency_p99" in line and not line.startswith("#")
    ]
    if served_lines:
        print(f"\nPrometheus would scrape, e.g.:\n  {served_lines[0]}")


if __name__ == "__main__":
    main()

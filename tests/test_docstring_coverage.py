"""The docstring-coverage gate (tools/check_docstrings.py) and its CI contract."""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from check_docstrings import check_file, check_paths, main  # noqa: E402

#: the layers whose public API the docs handbook documents — CI runs
#: the same gate (see .github/workflows/ci.yml, docs job)
GATED = (ROOT / "src/repro/serving", ROOT / "src/repro/core")


class TestGatedLayers:
    def test_serving_and_core_are_fully_documented(self):
        gaps = check_paths(list(GATED))
        assert not gaps, "\n".join(gaps)

    def test_cli_entry_point(self, capsys):
        assert main([str(p) for p in GATED]) == 0
        assert "100%" in capsys.readouterr().out

    def test_missing_path_is_a_usage_error(self):
        assert main(["no/such/dir"]) == 2


class TestDetector:
    def _check(self, tmp_path, source: str) -> list[str]:
        path = tmp_path / "mod.py"
        path.write_text(textwrap.dedent(source))
        return check_file(path)

    def test_flags_public_gaps_at_every_level(self, tmp_path):
        gaps = self._check(
            tmp_path,
            '''
            def naked():
                pass

            class Naked:
                def method(self):
                    pass
            ''',
        )
        kinds = [g.split(": ", 1)[1] for g in gaps]
        assert "module has no docstring" in kinds
        assert "function naked has no docstring" in kinds
        assert "class Naked has no docstring" in kinds
        assert "function Naked.method has no docstring" in kinds

    def test_private_and_dunder_names_exempt(self, tmp_path):
        gaps = self._check(
            tmp_path,
            '''
            """Module doc."""

            def _helper():
                pass

            class Public:
                """Doc."""

                def __init__(self):
                    self.x = 1

                def _private(self):
                    pass
            ''',
        )
        assert gaps == []

    def test_overload_stubs_exempt(self, tmp_path):
        gaps = self._check(
            tmp_path,
            '''
            """Module doc."""

            from typing import overload

            @overload
            def f(x: int) -> int: ...

            def f(x):
                """Real implementation."""
                return x
            ''',
        )
        assert gaps == []

    def test_gap_lines_are_clickable(self, tmp_path):
        (gap,) = self._check(
            tmp_path, '"""Doc."""\n\ndef naked():\n    pass\n'
        )
        assert gap.startswith(str(tmp_path / "mod.py") + ":3:")

"""Paper-calibrated response curves and models.

The paper's analysis is explicitly *measurement-driven* (its Section 3):
times and accuracies are measured on EC2, then fed to analytical models.
Lacking the authors' testbed, this subpackage plays the role of the
measurement phase: it encodes the measured anchors the paper publishes
(Figures 3-8, Section 4 narrative numbers, Table 3) as response curves,
from which the same downstream models and optimisations run unchanged.

Every constant here cites the paper anchor it comes from; DESIGN.md §6
tabulates them.  Nothing downstream of this subpackage knows whether a
number was measured on a K80 or read off the published figure — which is
precisely the substitution contract of this reproduction.
"""

from repro.calibration.accuracy_model import AccuracyModel, AccuracyPair
from repro.calibration.caffenet import (
    caffenet_accuracy_model,
    caffenet_time_model,
)
from repro.calibration.curves import PiecewiseCurve
from repro.calibration.googlenet import (
    googlenet_accuracy_model,
    googlenet_time_model,
)

__all__ = [
    "AccuracyModel",
    "AccuracyPair",
    "PiecewiseCurve",
    "caffenet_accuracy_model",
    "caffenet_time_model",
    "googlenet_accuracy_model",
    "googlenet_time_model",
]

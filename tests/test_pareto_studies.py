"""Integration tests for the Figure 9/10 configuration-space studies
and the Algorithm 1 complexity/quality experiment."""

from __future__ import annotations

import pytest

from repro.experiments import algorithm1, fig9_time_pareto, fig10_cost_pareto
from repro.experiments.configuration_study import (
    STUDY_BUDGET,
    STUDY_DEADLINE_S,
    evaluate_space,
)


@pytest.fixture(scope="module")
def fig9():
    return fig9_time_pareto.run()


@pytest.fixture(scope="module")
def fig10():
    return fig10_cost_pareto.run()


class TestSpace:
    def test_space_size(self):
        # 60 degrees x 63 p2 configurations
        assert len(evaluate_space()) == 3780

    def test_space_is_cached(self):
        assert evaluate_space() is evaluate_space()


class TestFig9:
    def test_many_feasible_configurations(self, fig9):
        # Observation 4: a large feasible set under the deadline
        assert 100 < fig9.top1.n_feasible < fig9.top1.total_points

    def test_deadline_respected(self, fig9):
        assert all(
            r.time_s <= STUDY_DEADLINE_S for r in fig9.top1.feasible
        )

    def test_multiple_pareto_points(self, fig9):
        # paper found five per metric; ours must be a small multi-point set
        assert 3 <= fig9.top1.n_pareto <= 15
        assert 3 <= fig9.top5.n_pareto <= 15

    def test_pareto_spans_wide_accuracy_range(self, fig9):
        lo, hi = fig9.top1.accuracy_range
        assert hi - lo > 20.0  # paper: 27% - 53%

    def test_best_accuracy_saving_at_least_half(self, fig9):
        # paper: "reduces execution time by 50% compared to other
        # configurations with the same accuracy"
        assert fig9.top1.saving_at_best_accuracy() >= 0.50

    def test_front_is_actually_pareto(self, fig9):
        front = fig9.top5.front
        for a in front:
            for b in front:
                dominates = (
                    b.accuracy.top5 >= a.accuracy.top5
                    and b.time_s <= a.time_s
                    and (
                        b.accuracy.top5 > a.accuracy.top5
                        or b.time_s < a.time_s
                    )
                )
                assert not dominates

    def test_render(self, fig9):
        text = fig9_time_pareto.render(fig9)
        assert "Pareto-optimal" in text


class TestFig10:
    def test_feasible_count_scale(self, fig10):
        # paper: 1042 feasible within the $300 budget
        assert 500 < fig10.top1.n_feasible < 2500

    def test_budget_respected(self, fig10):
        assert all(r.cost <= STUDY_BUDGET for r in fig10.top1.feasible)

    def test_pareto_cost_decade_matches_paper(self, fig10):
        # paper: Pareto costs $69-$119
        lo, hi = fig10.top1.objective_range
        assert 40 < lo < hi < 160

    def test_saving_at_best_accuracy(self, fig10):
        # paper: "saves up to 55% cost"
        assert fig10.top1.saving_at_best_accuracy() >= 0.50

    def test_frontiers_overlap_on_degrees(self, fig10):
        # Section 4.4: cost- and time-accuracy frontiers coincide
        assert fig10.frontier_overlap() >= 0.75

    def test_multiple_pareto_points(self, fig10):
        assert 3 <= fig10.top1.n_pareto <= 15


class TestAlgorithm1:
    @pytest.fixture(scope="class")
    def result(self):
        return algorithm1.run(pool_sizes=(4, 6, 8))

    def test_greedy_matches_brute_accuracy(self, result):
        for row in result.rows:
            assert row.accuracy_gap == pytest.approx(0.0, abs=1e-9)

    def test_brute_grows_exponentially(self, result):
        evals = [r.brute_evals for r in result.rows]
        # doubling |G| by +2 roughly quadruples subset count
        assert evals[1] / evals[0] > 3.5
        assert evals[2] / evals[1] > 3.5

    def test_greedy_grows_linearly(self, result):
        evals = [r.greedy_evals for r in result.rows]
        diffs = [b - a for a, b in zip(evals, evals[1:])]
        assert max(diffs) <= 4  # ~O(|G|) growth per +2 resources

    def test_greedy_never_wins_on_cost(self, result):
        # brute force is exhaustive: it can only be cheaper or equal
        for row in result.rows:
            assert row.brute_cost <= row.greedy_cost + 1e-9

    def test_render(self, result):
        assert "speedup" in algorithm1.render(result)

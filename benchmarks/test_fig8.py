"""Benchmark: Figure 8 — Caffenet multi-layer pruning.

Paper: nonpruned 19 min / 80% Top-5; conv1-2 13 min / 70%;
all-conv 11 min / 62%.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig8_multilayer


def test_fig8_multilayer(benchmark):
    result = benchmark(fig8_multilayer.run)
    assert result.row("nonpruned").time_min == pytest.approx(19.0, rel=1e-6)
    assert result.row("conv1-2").time_min == pytest.approx(13.0, rel=0.05)
    assert result.row("conv1-2").top5 == pytest.approx(70.0, abs=1.0)
    assert result.row("all-conv").time_min == pytest.approx(11.0, rel=0.08)
    assert result.row("all-conv").top5 == pytest.approx(62.0, abs=3.0)

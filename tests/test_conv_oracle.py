"""Independent-oracle tests: our convolution vs scipy.signal.

The engine's im2col convolution is validated against SciPy's
``correlate2d`` (convolution layers compute cross-correlation in ML
convention) on randomised shapes, including stride and padding via
manual windowing.  This guards the arithmetic every FLOP count and
sparse-equivalence test rests on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import signal

from repro.cnn.conv import ConvLayer


def _scipy_conv(x, weights, bias, stride, pad):
    """Direct cross-correlation oracle (single image)."""
    c_in, h, w = x.shape
    out_c = weights.shape[0]
    if pad:
        x = np.pad(x, ((0, 0), (pad, pad), (pad, pad)))
    maps = []
    for o in range(out_c):
        acc = None
        for c in range(c_in):
            corr = signal.correlate2d(x[c], weights[o, c], mode="valid")
            acc = corr if acc is None else acc + corr
        maps.append(acc[::stride, ::stride] + bias[o])
    return np.stack(maps)


class TestConvOracle:
    @pytest.mark.parametrize(
        "in_c,out_c,k,stride,pad,size",
        [
            (1, 1, 3, 1, 0, 8),
            (3, 4, 3, 1, 1, 7),
            (2, 5, 5, 2, 2, 11),
            (4, 2, 1, 1, 0, 6),
            (3, 8, 11, 4, 0, 27),  # conv1 geometry, scaled down
        ],
    )
    def test_matches_scipy(self, in_c, out_c, k, stride, pad, size, rng):
        layer = ConvLayer(
            "c", in_c, out_c, kernel=k, stride=stride, pad=pad, rng=rng
        )
        x = rng.standard_normal((2, in_c, size, size)).astype(np.float32)
        ours = layer.forward(x)
        for n in range(2):
            oracle = _scipy_conv(
                x[n].astype(np.float64),
                layer.weights.astype(np.float64),
                layer.bias.astype(np.float64),
                stride,
                pad,
            )
            np.testing.assert_allclose(
                ours[n], oracle, rtol=1e-4, atol=1e-5
            )

    @given(
        st.integers(1, 3),
        st.integers(1, 4),
        st.sampled_from([1, 3, 5]),
        st.integers(1, 2),
        st.integers(0, 2),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_matches_scipy(self, in_c, out_c, k, stride, pad):
        rng = np.random.default_rng(42)
        size = max(k, 6)
        layer = ConvLayer(
            "c", in_c, out_c, kernel=k, stride=stride, pad=pad, rng=rng
        )
        x = rng.standard_normal((1, in_c, size, size)).astype(np.float32)
        ours = layer.forward(x)[0]
        oracle = _scipy_conv(
            x[0].astype(np.float64),
            layer.weights.astype(np.float64),
            layer.bias.astype(np.float64),
            stride,
            pad,
        )
        np.testing.assert_allclose(ours, oracle, rtol=1e-4, atol=1e-5)


class TestSparseInception:
    def test_sparse_executor_matches_dense_on_inception(self, rng):
        from repro.cnn.inception import InceptionModule
        from repro.cnn.network import Network
        from repro.pruning import L1FilterPruner, PruneSpec
        from repro.pruning.sparse import SparseExecutor

        net = Network(
            "mini-inception",
            (8, 6, 6),
            [InceptionModule("inc", 8, 4, 3, 6, 2, 4, 3, rng=rng)],
        )
        pruned = L1FilterPruner(propagate=False).apply(
            net, PruneSpec({"inc-3x3": 0.5, "inc-5x5": 0.5})
        )
        x = rng.standard_normal((2, 8, 6, 6)).astype(np.float32)
        np.testing.assert_allclose(
            SparseExecutor(pruned).forward(x),
            pruned.forward(x),
            rtol=1e-4,
            atol=1e-5,
        )

    def test_sparse_googlenet_slice(self, rng):
        """A Googlenet-shaped stem + inception slice through CSR."""
        from repro.cnn.activations import ReLU
        from repro.cnn.conv import ConvLayer
        from repro.cnn.inception import InceptionModule
        from repro.cnn.network import Network
        from repro.pruning.sparse import SparseExecutor

        net = Network(
            "slice",
            (3, 16, 16),
            [
                ConvLayer("stem", 3, 8, 3, pad=1, rng=rng),
                ReLU("r"),
                InceptionModule("inc", 8, 4, 3, 6, 2, 4, 3, rng=rng),
            ],
        )
        x = rng.standard_normal((1, 3, 16, 16)).astype(np.float32)
        np.testing.assert_allclose(
            SparseExecutor(net).forward(x),
            net.forward(x),
            rtol=1e-4,
            atol=1e-5,
        )

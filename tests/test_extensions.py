"""Tests for the extension experiments (technique comparison, Googlenet
Pareto study)."""

from __future__ import annotations

import pytest

from repro.experiments import ext_googlenet_pareto, ext_technique_comparison


class TestTechniqueComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_technique_comparison.run(
            train_n=300, test_n=150, epochs=8
        )

    def test_baseline_learned(self, result):
        assert result.baseline.top1 > 60.0

    def test_only_pruning_cuts_flops(self, result):
        base_flops = result.baseline.effective_mflops
        for r in result.rows:
            if "prune" in r.technique:
                assert r.effective_mflops < base_flops * 0.9
            else:
                assert r.effective_mflops == pytest.approx(base_flops)

    def test_quantization_compresses_memory(self, result):
        base_kb = result.baseline.model_kb
        assert result.row("quant@8bit").model_kb < base_kb / 3
        assert result.row("quant@4bit").model_kb < result.row(
            "quant@8bit"
        ).model_kb

    def test_moderate_quantization_preserves_accuracy(self, result):
        assert result.row("quant@8bit").top1 >= result.baseline.top1 - 5

    def test_extreme_quantization_hurts(self, result):
        assert (
            result.row("quant@2bit").top1
            <= result.row("quant@8bit").top1
        )

    def test_weight_sharing_compresses(self, result):
        assert result.row("share@16").model_kb < result.baseline.model_kb / 3

    def test_render(self, result):
        text = ext_technique_comparison.render(result)
        assert "quant@4bit" in text and "share@16" in text


class TestGooglenetPareto:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_googlenet_pareto.run()

    def test_space_evaluated(self, result):
        assert result.total_points > 1000

    def test_cost_frontier_is_g3_only(self, result):
        # the Figure 12 prediction: M60 wins every cost-optimal pick
        assert result.cost_front_categories() == {"g3"}

    def test_fronts_nonempty(self, result):
        assert len(result.time_front) >= 2
        assert len(result.cost_front) >= 2

    def test_best_accuracy_reachable(self, result):
        best = max(r.accuracy.top5 for r in result.cost_front)
        assert best == pytest.approx(89.0)

    def test_deadline_prunes_space(self, result):
        assert result.n_time_feasible < result.total_points

    def test_render(self, result):
        text = ext_googlenet_pareto.render(result)
        assert "cost-accuracy frontier" in text

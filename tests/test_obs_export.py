"""Exporters: Chrome trace-event JSON, OpenMetrics text, flat JSON."""

from __future__ import annotations

import json
import time

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.obs.export import (
    METRICS_SCHEMA,
    chrome_trace,
    chrome_trace_events,
    chrome_trace_from_job,
    merge_chrome_traces,
    metric_name,
    metrics_json,
    prometheus_text,
    prometheus_text_multi,
    write_chrome_trace,
)


def _nested_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("outer", artefact="fig9"):
        with tracer.span("inner"):
            time.sleep(0.001)
        with tracer.span("sibling"):
            pass
    return tracer


class TestChromeTrace:
    def test_document_is_valid_json_with_metadata(self):
        doc = chrome_trace(_nested_tracer(), thread_name="main")
        restored = json.loads(json.dumps(doc))
        assert restored["displayTimeUnit"] == "ms"
        meta = [e for e in restored["traceEvents"] if e["ph"] == "M"]
        assert {m["name"] for m in meta} == {
            "process_name",
            "thread_name",
        }

    def test_spans_become_complete_events_in_start_order(self):
        events = chrome_trace_events(_nested_tracer())
        assert [e["name"] for e in events] == [
            "outer",
            "inner",
            "sibling",
        ]
        assert all(e["ph"] == "X" for e in events)
        assert events[0]["args"]["artefact"] == "fig9"

    def test_timestamps_monotonic_and_nesting_by_containment(self):
        events = chrome_trace_events(_nested_tracer())
        starts = [e["ts"] for e in events]
        assert starts == sorted(starts)
        outer, inner, sibling = events
        # viewers rebuild the flame graph from containment on one tid
        assert outer["tid"] == inner["tid"] == sibling["tid"]
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
        assert sibling["ts"] >= inner["ts"] + inner["dur"]

    def test_open_spans_are_skipped(self):
        tracer = Tracer()
        ctx = tracer.span("unfinished")
        ctx.__enter__()
        with tracer.span("done"):
            pass
        # "unfinished" has no duration; only closed spans export
        names = {e["name"] for e in chrome_trace_events(tracer)}
        assert names == {"done"}
        ctx.__exit__(None, None, None)

    def test_accepts_span_dicts_from_results(self):
        # ExperimentResult carries tracer.as_dicts(); both forms export
        tracer = _nested_tracer()
        assert chrome_trace_events(tracer.as_dicts()) == (
            chrome_trace_events(tracer)
        )

    def test_merge_gives_one_thread_per_name(self):
        doc = merge_chrome_traces(
            {"fig9": _nested_tracer(), "fig10": _nested_tracer()}
        )
        names = {
            e["args"]["name"]: e["tid"]
            for e in doc["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert set(names) == {"fig9", "fig10"}
        assert len(set(names.values())) == 2
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                assert event["tid"] in names.values()

    def test_write_creates_parents_and_loads_back(self, tmp_path):
        target = tmp_path / "deep" / "trace.json"
        path = write_chrome_trace(target, chrome_trace(_nested_tracer()))
        assert path == target
        assert json.loads(target.read_text())["traceEvents"]

    def test_job_trace_swimlanes(self):
        from repro.calibration import caffenet_time_model
        from repro.cloud.catalog import instance_type
        from repro.cloud.configuration import ResourceConfiguration
        from repro.cloud.instance import CloudInstance
        from repro.cloud.trace import trace_job
        from repro.pruning.base import PruneSpec

        job = trace_job(
            caffenet_time_model(),
            PruneSpec.unpruned(),
            ResourceConfiguration(
                [
                    CloudInstance(instance_type("p2.xlarge")),
                    CloudInstance(instance_type("p2.8xlarge")),
                ]
            ),
            200_000,
        )
        doc = chrome_trace_from_job(job)
        lanes = [
            e for e in doc["traceEvents"] if e["name"] == "thread_name"
        ]
        assert len(lanes) == 2
        compute = [
            e for e in doc["traceEvents"] if e["name"] == "compute"
        ]
        assert len(compute) == 2
        # the straggler has no idle span; the other instance does
        idle = [
            e
            for e in doc["traceEvents"]
            if e["name"].startswith("idle")
        ]
        assert len(idle) == 1
        assert idle[0]["args"]["straggler"] == job.straggler


class TestPrometheusText:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("serving.events").inc(42)
        registry.gauge("serving.availability").set(0.993)
        registry.timer("engine.artefact_s").observe_many([0.1, 0.2, 0.4])
        return registry

    def test_families_and_terminator(self):
        text = prometheus_text(self._registry().snapshot())
        # OpenMetrics: TYPE names the family, counter samples add _total
        assert "# TYPE repro_serving_events counter" in text
        assert "repro_serving_events_total 42" in text
        assert "repro_serving_availability 0.993" in text
        assert "# TYPE repro_engine_artefact_s summary" in text
        assert 'repro_engine_artefact_s{quantile="0.5"}' in text
        assert "repro_engine_artefact_s_count 3" in text
        assert text.endswith("# EOF\n")

    def test_empty_timer_has_count_but_no_quantiles(self):
        registry = MetricsRegistry()
        registry.timer("idle_s")  # created, never observed
        text = prometheus_text(registry.snapshot())
        assert "repro_idle_s_count 0" in text
        assert "quantile" not in text
        assert "nan" not in text.lower()

    def test_labels_escaped(self):
        text = prometheus_text(
            self._registry().snapshot(),
            labels={"run": 'quo"te\\slash\nline'},
        )
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        # one label set on every sample line
        for line in text.splitlines():
            if line and not line.startswith("#"):
                assert 'run="' in line

    def test_multi_declares_each_family_once(self):
        snapshots = {
            "fig9": self._registry().snapshot(),
            "fig10": self._registry().snapshot(),
        }
        text = prometheus_text_multi(snapshots, label="artefact")
        assert text.count("# TYPE repro_serving_events counter") == 1
        assert 'artefact="fig9"' in text and 'artefact="fig10"' in text
        assert text.endswith("# EOF\n")

    def test_metric_name_sanitised(self):
        assert metric_name("serving.p99-latency") == (
            "repro_serving_p99_latency"
        )


class TestMetricsJson:
    def test_schema_and_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        payload = json.loads(
            json.dumps(metrics_json(registry.snapshot()))
        )
        assert payload["schema"] == METRICS_SCHEMA
        assert payload["counters"]["c"] == 3
        assert payload["gauges"]["g"] == 1.5


class TestExperimentResultExport:
    """The engine's snapshots export without post-processing."""

    def test_fresh_result_exports_both_ways(self):
        from repro.experiments.engine import run_experiments

        run = run_experiments(
            only=("table1",), use_cache=False, write_manifest=False
        )
        (result,) = run.results
        doc = merge_chrome_traces({result.artefact: result.trace})
        span_events = [
            e for e in doc["traceEvents"] if e["ph"] == "X"
        ]
        assert any(e["name"] == "experiment" for e in span_events)
        text = prometheus_text(result.metrics)
        assert "repro_engine_artefact_s_count 1" in text

    def test_manifest_round_trip_keeps_schema(self, tmp_path):
        from repro.obs import RunManifest
        from repro.obs.manifest import SCHEMA

        from repro.experiments.engine import run_experiments

        run = run_experiments(
            only=("table1",),
            use_cache=False,
            manifest_path=tmp_path / "m.json",
        )
        payload = json.loads((tmp_path / "m.json").read_text())
        assert payload["schema"] == SCHEMA == "repro.run-manifest/v1"
        assert RunManifest.read(tmp_path / "m.json") == run.manifest
        with pytest.raises(ValueError):
            RunManifest.from_dict({**payload, "schema": "bogus/v9"})

"""Composite arrival workloads: diurnal cycles and trace replay.

The elementary processes live in :mod:`repro.serving.arrivals`; real
services see *composites* — a day-night cycle with noise on top, or a
recorded trace replayed against a candidate fleet.  Both are what the
autoscaler is for.
"""

from __future__ import annotations

import numpy as np

__all__ = ["diurnal_arrivals", "replay_trace", "phase_rates"]


def phase_rates(
    mean_rate: float, phases: int, amplitude: float
) -> np.ndarray:
    """Sinusoidal per-phase rates averaging ``mean_rate``.

    ``amplitude`` in [0, 1): 0 = flat, 0.9 = deep night-day swing.
    """
    if not 0 <= amplitude < 1:
        raise ValueError("amplitude must be in [0, 1)")
    if phases < 1:
        raise ValueError("need >= 1 phase")
    x = np.arange(phases) * 2 * np.pi / phases
    return mean_rate * (1 + amplitude * np.sin(x))


def diurnal_arrivals(
    mean_rate: float,
    duration_s: float,
    cycle_s: float,
    amplitude: float = 0.7,
    phases_per_cycle: int = 24,
    seed: int = 0,
) -> np.ndarray:
    """A day-night load: piecewise-Poisson with sinusoidal rate.

    ``cycle_s`` is one full "day"; the rate follows a sine through
    ``phases_per_cycle`` constant-rate segments per cycle, averaging
    ``mean_rate`` requests/second over the run.
    """
    if mean_rate <= 0 or duration_s <= 0 or cycle_s <= 0:
        raise ValueError("rates and durations must be positive")
    rng = np.random.default_rng(seed)
    phase_len = cycle_s / phases_per_cycle
    rates = phase_rates(mean_rate, phases_per_cycle, amplitude)
    times: list[np.ndarray] = []
    t = 0.0
    phase = 0
    while t < duration_s:
        end = min(t + phase_len, duration_s)
        rate = float(rates[phase % phases_per_cycle])
        if rate > 0:
            expected = rate * (end - t)
            n = int(expected + 6 * np.sqrt(max(expected, 1.0)) + 16)
            gaps = rng.exponential(1.0 / rate, size=n)
            stamps = t + np.cumsum(gaps)
            times.append(stamps[stamps < end])
        t = end
        phase += 1
    return np.sort(np.concatenate(times)) if times else np.empty(0)


def replay_trace(
    timestamps: np.ndarray | list[float],
    time_scale: float = 1.0,
    offset_s: float = 0.0,
) -> np.ndarray:
    """Normalise a recorded arrival trace for simulation.

    Sorts, shifts so the first request lands at ``offset_s``, and
    optionally compresses/stretches time (``time_scale`` 0.5 = replay
    twice as fast).
    """
    arr = np.sort(np.asarray(timestamps, dtype=float))
    if arr.size == 0:
        raise ValueError("empty trace")
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    return (arr - arr[0]) * time_scale + offset_s

"""Benchmark: Figure 7 — Googlenet per-layer pruning sweeps.

Paper: accuracy flat until ~60% pruning; conv2-3x3 time 13 -> 9 min.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig7_googlenet_sweeps


def test_fig7_googlenet_sweeps(benchmark):
    result = benchmark(fig7_googlenet_sweeps.run)
    assert result.sweep("conv2-3x3").time_min[0] == pytest.approx(13.0)
    assert result.sweep("conv2-3x3").time_min[-1] == pytest.approx(9.0, rel=0.01)
    for sweep in result.sweeps:
        assert sweep.sweet_spot.last_sweet_spot >= 0.6 - 1e-9

"""The sustained-soak harness: windowed replay, drift verdicts, and
deterministic fault injection.

Most cases drive a stub target (constant cost, instant answers) so the
detector arithmetic — not the planner — is under test, with small
windows to keep wall time down.  One short in-process soak against the
real service pins the integration end of the pipe.
"""

from __future__ import annotations

import json

import pytest

from repro.api import ApiError, clear_api_caches
from repro.obs import MetricsRegistry, Tracer, scoped_observability
from repro.service import (
    InProcessTarget,
    PlanMixture,
    PlanningService,
    SoakInjection,
    run_load,
    run_soak,
)

#: tiny grid, so real-service cases stay cheap and cache-warm
SMALL = dict(
    catalog=("p2.16xlarge", "p2.8xlarge"),
    instances_per_type=2,
    images=1_000_000,
)

MIXTURE = PlanMixture(seed=3, **SMALL)

#: stub soak shape: 10 requests per 0.1s window, 3s total
FAST = dict(rate_per_s=100.0, duration_s=3.0, window_s=0.1)


class StubTarget:
    """Answers instantly with a fixed status and cost."""

    def __init__(self, *, status: int = 200, cost: float = 2.0) -> None:
        self.status = status
        self.cost = cost

    def probe(self, body):
        code = None
        if self.status == 503:
            code = "overloaded"
        elif self.status >= 400:
            code = "invalid_request"
        cost = self.cost if self.status == 200 else None
        return self.status, cost, code

    def cache_counters(self):
        return {"evalspace.cache_hits": 0, "evalspace.cache_misses": 0}


class TestSoakInjection:
    def test_window_validation(self):
        with pytest.raises(ApiError):
            SoakInjection(start_frac=0.7, end_frac=0.3)
        with pytest.raises(ApiError):
            SoakInjection(cost_scale=0.0)
        with pytest.raises(ApiError):
            SoakInjection(extra_latency_s=-1.0)

    def test_active_is_half_open(self):
        pulse = SoakInjection(start_frac=0.25, end_frac=0.5)
        assert not pulse.active(0.2)
        assert pulse.active(0.25)
        assert pulse.active(0.49)
        assert not pulse.active(0.5)


class TestSoakHealthy:
    def test_constant_target_is_quiet(self):
        report = run_soak(StubTarget(), MIXTURE, seed=3, **FAST)
        assert report.ok
        assert report.anomaly_events == ()
        assert report.flagged == ()
        assert report.requests == 300
        assert len(report.windows) >= 30  # latency + rates + cost
        # every verdict present came back clean
        assert all(not v.drifting for v in report.verdicts)
        metrics = {v.metric for v in report.verdicts}
        assert {"cost", "error_rate", "shed_rate"} <= metrics

    def test_summary_and_render_shapes(self):
        report = run_soak(StubTarget(), MIXTURE, seed=3, **FAST)
        summary = report.summary()
        assert summary["ok"] is True
        assert summary["requests"] == 300
        json.dumps(summary)  # wire-safe
        json.dumps(report.window_rows())
        text = report.render()
        assert "verdict   : ok" in text
        assert "no anomalies raised" in text

    def test_bad_durations_rejected(self):
        with pytest.raises(ApiError):
            run_soak(
                StubTarget(), MIXTURE, rate_per_s=10, duration_s=0.0
            )
        with pytest.raises(ApiError):
            run_soak(
                StubTarget(),
                MIXTURE,
                rate_per_s=10,
                duration_s=1.0,
                window_s=-1.0,
            )


class TestSoakInjected:
    def test_price_step_pulse_is_one_pair_on_cost(self):
        report = run_soak(
            StubTarget(),
            MIXTURE,
            seed=3,
            inject=SoakInjection(cost_scale=3.0),
            **FAST,
        )
        assert not report.ok
        assert report.flagged == ("cost",)
        assert report.raise_resolve_pairs == {"cost": (1, 1)}
        kinds = [e["kind"] for e in report.anomaly_events]
        assert kinds == ["anomaly.raise", "anomaly.resolve"]
        assert "DEGRADED" in report.render()

    def test_latency_tax_pulse_pages_latency(self):
        report = run_soak(
            StubTarget(),
            MIXTURE,
            seed=3,
            inject=SoakInjection(extra_latency_s=2.0),
            **FAST,
        )
        assert "latency_s" in report.flagged
        raises, resolves = report.raise_resolve_pairs["latency_s"]
        assert (raises, resolves) == (1, 1)

    def test_fault_mixture_switch_steps_the_error_rate(self):
        # the injected mixture is answered 400 by the stub; the
        # harness switches to it for the middle third only
        class Faulty(StubTarget):
            def probe(self, body):
                decoded = json.loads(body.decode("utf-8"))
                if decoded.get("catalog") == ["injected-fault"]:
                    return 400, None, "invalid_request"
                return super().probe(body)

        report = run_soak(
            Faulty(),
            MIXTURE,
            seed=3,
            inject=SoakInjection(
                mixture=PlanMixture(
                    seed=3,
                    images=SMALL["images"],
                    instances_per_type=SMALL["instances_per_type"],
                    catalog=("injected-fault",),
                )
            ),
            **FAST,
        )
        assert "error_rate" in report.flagged
        assert report.raise_resolve_pairs["error_rate"] == (1, 1)

    def test_persistent_step_drifts_without_resolving(self):
        # a step that never ends: raised at the edge, still active at
        # the end, and the first-vs-last verdict flags the drift too
        report = run_soak(
            StubTarget(),
            MIXTURE,
            seed=3,
            inject=SoakInjection(
                start_frac=0.4, end_frac=1.0, cost_scale=4.0
            ),
            **FAST,
        )
        assert "cost" in report.flagged
        raises, resolves = report.raise_resolve_pairs["cost"]
        assert raises == 1 and resolves == 0
        (cost_verdict,) = [
            v for v in report.verdicts if v.metric == "cost"
        ]
        assert cost_verdict.drifting
        assert cost_verdict.rel_change == pytest.approx(3.0, rel=0.05)


class TestSoakAgainstRealService:
    def test_in_process_soak_is_clean_and_deterministic(self):
        clear_api_caches()
        with scoped_observability(
            Tracer(enabled=False), MetricsRegistry()
        ):
            report = run_soak(
                InProcessTarget(),
                MIXTURE,
                rate_per_s=25.0,
                duration_s=4.0,
                window_s=0.5,
                seed=3,
            )
        # 8 windows of round(rate * window) = 12 requests each
        assert report.requests == 96
        assert report.anomaly_events == ()
        cost_windows = [
            w for w in report.windows if w.metric == "cost" and w.count
        ]
        assert cost_windows  # real answers fed the cost series
        hit_windows = [
            w for w in report.windows if w.metric == "cache_hit_ratio"
        ]
        assert hit_windows  # counter deltas observed per chunk


class TestLoadReportErrorCodes:
    def test_invalid_catalog_counts_by_code(self):
        clear_api_caches()
        with scoped_observability(
            Tracer(enabled=False), MetricsRegistry()
        ):
            report = run_load(
                InProcessTarget(),
                PlanMixture(
                    seed=3,
                    images=SMALL["images"],
                    instances_per_type=2,
                    catalog=("no-such-instance",),
                ),
                rate_per_s=200.0,
                n_requests=10,
            )
        assert report.status_counts.get(400) == 10
        assert report.error_codes == {"invalid_request": 10}
        assert report.summary()["error_codes"] == {
            "invalid_request": 10
        }
        assert "invalid_request:10" in report.render()

    def test_shed_and_invalid_are_distinguishable(self):
        clear_api_caches()
        with scoped_observability(
            Tracer(enabled=False), MetricsRegistry()
        ):
            service = PlanningService(max_inflight=0)
            report = run_load(
                InProcessTarget(service),
                MIXTURE,
                rate_per_s=200.0,
                n_requests=10,
            )
        assert report.status_counts.get(503) == 10
        assert report.error_codes == {"overloaded": 10}

    def test_successful_answers_carry_costs(self):
        clear_api_caches()
        with scoped_observability(
            Tracer(enabled=False), MetricsRegistry()
        ):
            report = run_load(
                InProcessTarget(),
                MIXTURE,
                rate_per_s=200.0,
                n_requests=10,
            )
        assert report.costs.size == report.ok
        assert report.summary()["mean_cost"] > 0

"""Tests for TAR/CAR metrics and the Pareto filter."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import car, pareto_front, pareto_indices, tar
from repro.core.metrics import car_array, tar_array


class TestMetrics:
    def test_definitions(self):
        # Section 3.5: TAR = t/a, CAR = c/a
        assert tar(2.0, 0.5) == 4.0
        assert car(0.9, 0.8) == pytest.approx(1.125)

    def test_lower_is_better_semantics(self):
        # same time, higher accuracy -> lower (better) TAR
        assert tar(1.0, 0.8) < tar(1.0, 0.4)

    def test_zero_accuracy_rejected(self):
        with pytest.raises(ValueError, match="accuracy"):
            tar(1.0, 0.0)

    def test_above_one_accuracy_rejected(self):
        with pytest.raises(ValueError):
            car(1.0, 1.5)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            tar(-1.0, 0.5)

    def test_array_forms(self):
        t = tar_array([1.0, 2.0, 3.0], [0.5, 0.0, 1.0])
        np.testing.assert_allclose(t, [2.0, np.inf, 3.0])
        np.testing.assert_allclose(
            car_array([1.0], [0.25]), [4.0]
        )

    def test_array_validation(self):
        with pytest.raises(ValueError):
            tar_array([-1.0], [0.5])
        with pytest.raises(ValueError):
            tar_array([1.0], [1.5])

    @given(
        st.floats(0.001, 100.0),
        st.floats(0.01, 1.0),
        st.floats(0.01, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_accuracy(self, t, a1, a2):
        lo, hi = sorted([a1, a2])
        assert tar(t, hi) <= tar(t, lo)


class TestParetoIndices:
    def test_simple_front(self):
        acc = [0.9, 0.8, 0.7, 0.6]
        obj = [10.0, 5.0, 7.0, 2.0]
        idx = set(pareto_indices(acc, obj).tolist())
        # 0.7/7.0 dominated by 0.8/5.0
        assert idx == {0, 1, 3}

    def test_single_point(self):
        assert pareto_indices([0.5], [1.0]).tolist() == [0]

    def test_empty(self):
        assert pareto_indices([], []).size == 0

    def test_duplicates_keep_one(self):
        acc = [0.5, 0.5, 0.5]
        obj = [1.0, 1.0, 1.0]
        assert len(pareto_indices(acc, obj)) == 1

    def test_equal_accuracy_lowest_objective_wins(self):
        acc = [0.5, 0.5]
        obj = [2.0, 1.0]
        assert pareto_indices(acc, obj).tolist() == [1]

    def test_equal_objective_highest_accuracy_wins(self):
        acc = [0.9, 0.5]
        obj = [1.0, 1.0]
        assert pareto_indices(acc, obj).tolist() == [0]

    def test_sorted_by_descending_accuracy(self):
        acc = [0.1, 0.9, 0.5]
        obj = [1.0, 9.0, 4.0]
        idx = pareto_indices(acc, obj)
        accs = [acc[i] for i in idx]
        assert accs == sorted(accs, reverse=True)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            pareto_indices([1.0], [1.0, 2.0])

    @given(
        st.lists(
            st.tuples(st.floats(0, 1), st.floats(0.1, 100)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_no_front_point_dominated(self, points):
        """Property: no returned point is dominated by any input point."""
        acc = [p[0] for p in points]
        obj = [p[1] for p in points]
        front = pareto_indices(acc, obj)
        for i in front:
            for j in range(len(points)):
                dominated = (
                    acc[j] >= acc[i]
                    and obj[j] <= obj[i]
                    and (acc[j] > acc[i] or obj[j] < obj[i])
                )
                assert not dominated

    @given(
        st.lists(
            st.tuples(st.floats(0, 1), st.floats(0.1, 100)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_every_point_dominated_by_some_front_point(self, points):
        """Property: the front covers the whole set (weak domination)."""
        acc = [p[0] for p in points]
        obj = [p[1] for p in points]
        front = pareto_indices(acc, obj)
        for j in range(len(points)):
            assert any(
                acc[i] >= acc[j] and obj[i] <= obj[j] for i in front
            )


class TestParetoFront:
    def test_payloads_preserved(self):
        points = [(0.9, 10.0, "a"), (0.8, 5.0, "b"), (0.7, 7.0, "c")]
        front = pareto_front(points)
        assert [p.payload for p in front] == ["a", "b"]
        assert front[0].accuracy == 0.9

    def test_empty_input(self):
        assert pareto_front([]) == []

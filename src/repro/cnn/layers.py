"""Layer protocol shared by every network component.

A :class:`Layer` knows three things:

1. how to run a forward pass on a batch (``forward``),
2. how its output shape derives from its input shape (``output_shape``),
3. what it costs: multiply-accumulate FLOPs and bytes moved (``stats``).

The cost protocol is what lets the GPU latency model
(:mod:`repro.perf.latency`) price a network layer-by-layer exactly the way
the paper's per-layer measurements do (their Figure 3).

Shapes follow the NCHW convention used by Caffe: a batch is
``(n, channels, height, width)``; fully-connected activations are ``(n, d)``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError

__all__ = ["Layer", "LayerStats", "WeightedLayer"]

#: dtype used for all activations and weights (Caffe uses float32).
DTYPE = np.float32
#: bytes per element of :data:`DTYPE`.
ITEMSIZE = np.dtype(DTYPE).itemsize


@dataclass(frozen=True)
class LayerStats:
    """Cost accounting for one layer at a given input shape.

    Attributes
    ----------
    flops:
        Floating point operations for a *single* input (batch size 1).
        Multiply-accumulates count as 2 FLOPs, matching the convention of
        the CNN performance literature the paper builds on.
    input_bytes:
        Bytes read for activations (batch size 1).
    output_bytes:
        Bytes written for activations (batch size 1).
    weight_bytes:
        Bytes of parameters read (independent of batch size; amortised
        across a batch by the latency model).
    params:
        Number of learnable parameters.
    """

    flops: int
    input_bytes: int
    output_bytes: int
    weight_bytes: int
    params: int

    @property
    def activation_bytes(self) -> int:
        """Total activation traffic (read + write) for one input."""
        return self.input_bytes + self.output_bytes

    @property
    def total_bytes(self) -> int:
        """All bytes moved for one input, weights included."""
        return self.activation_bytes + self.weight_bytes

    def __add__(self, other: "LayerStats") -> "LayerStats":
        return LayerStats(
            flops=self.flops + other.flops,
            input_bytes=self.input_bytes + other.input_bytes,
            output_bytes=self.output_bytes + other.output_bytes,
            weight_bytes=self.weight_bytes + other.weight_bytes,
            params=self.params + other.params,
        )


ZERO_STATS = LayerStats(0, 0, 0, 0, 0)


class Layer(abc.ABC):
    """Abstract network layer.

    Parameters
    ----------
    name:
        Identifier used in pruning specs, timing breakdowns and reports.
        Must be unique within a :class:`~repro.cnn.network.Network`.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("layer name must be non-empty")
        self.name = name

    # ------------------------------------------------------------------
    # shape protocol
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape (without batch dim) produced for ``input_shape`` input."""

    # ------------------------------------------------------------------
    # execution protocol
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the layer on a batch ``x`` (leading dim = batch)."""

    # ------------------------------------------------------------------
    # cost protocol
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def stats(self, input_shape: tuple[int, ...]) -> LayerStats:
        """Cost of one forward pass at batch size 1 for ``input_shape``."""

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _require_rank(self, x: np.ndarray, rank: int) -> None:
        if x.ndim != rank:
            raise ShapeError(
                f"layer {self.name!r} expects rank-{rank} input "
                f"(incl. batch), got shape {x.shape}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class WeightedLayer(Layer):
    """A layer with learnable parameters that pruning can act on.

    Subclasses expose ``weights`` (the primary kernel/matrix) and ``bias``
    as plain NumPy arrays so pruners can mutate them in place, and must
    implement :meth:`density` so sparsity-aware FLOP accounting works.
    """

    weights: np.ndarray
    bias: np.ndarray

    def density(self) -> float:
        """Fraction of non-zero weights, in ``[0, 1]``."""
        total = self.weights.size
        if total == 0:
            return 1.0
        return float(np.count_nonzero(self.weights)) / total

    def nnz(self) -> int:
        """Number of non-zero weights."""
        return int(np.count_nonzero(self.weights))

    @abc.abstractmethod
    def effective_stats(self, input_shape: tuple[int, ...]) -> LayerStats:
        """Like :meth:`stats` but discounting zeroed weights.

        This models execution on a sparse-matrix compute library (the
        paper's extended Caffe [31]): multiply-accumulates with zero
        weights are skipped, and only non-zero weights are fetched.
        """

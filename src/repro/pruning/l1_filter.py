"""Filter pruning (Li et al. 2016) — the paper's pruning tool.

Filters (output-channel kernel slices) of a convolution are ranked by a
saliency criterion; the lowest-ranked fraction is zeroed whole.  Zeroing
a filter makes its output feature map constant, so the weights any
*successor* layer applies to that map are dead too — with
``propagate=True`` (default) those successor input channels are also
zeroed, which is what makes pruning one layer speed up the next and is the
"dependency among CNN layers" the paper's Section 4.3.2 studies.

Criteria: the paper uses Li et al.'s **L1** norm; **L2** is the common
variant (Anwar et al. [3] explore richer scoring); **random** is the
control every saliency criterion must beat (see the criterion-comparison
extension experiment).
"""

from __future__ import annotations

import numpy as np

from repro.cnn.conv import ConvLayer
from repro.cnn.dense import DenseLayer, Flatten
from repro.cnn.inception import InceptionModule
from repro.cnn.network import Network
from repro.errors import PruningError
from repro.pruning.base import Pruner

__all__ = ["L1FilterPruner", "filters_to_prune"]


def filters_to_prune(
    weights: np.ndarray,
    ratio: float,
    criterion: str = "l1",
    seed: int = 0,
) -> np.ndarray:
    """Indices of the ``ratio`` fraction of lowest-saliency filters.

    ``weights`` has filters along axis 0 (conv kernels or dense rows).
    Uses round-half-down on the count so a 50% ratio of 96 filters prunes
    exactly 48.  Ties are broken by filter index for determinism.

    ``criterion``: ``"l1"`` (the paper's, Li et al.), ``"l2"``, or
    ``"random"`` (seeded control).
    """
    n_filters = weights.shape[0]
    count = int(round(ratio * n_filters))
    if count == 0:
        return np.empty(0, dtype=np.intp)
    flat = weights.reshape(n_filters, -1)
    if criterion == "l1":
        scores = np.abs(flat).sum(axis=1)
    elif criterion == "l2":
        scores = np.square(flat).sum(axis=1)
    elif criterion == "random":
        scores = np.random.default_rng(seed).permutation(n_filters).astype(
            float
        )
    else:
        raise PruningError(
            f"unknown criterion {criterion!r}; use l1, l2 or random"
        )
    # stable argsort => deterministic tie-breaking by index
    return np.argsort(scores, kind="stable")[:count]


class L1FilterPruner(Pruner):
    """Whole-filter pruning ranked by a saliency criterion (default L1).

    Parameters
    ----------
    propagate:
        Also zero the successor layer's weights that consume the removed
        feature maps.  Propagation follows the top-level layer chain
        through shape-preserving layers (ReLU, pooling, LRN, flatten) and
        handles Caffenet's grouped convolutions; it stops at inception
        modules, whose branches are pruned individually by name instead.
    criterion:
        ``"l1"`` (Li et al., the paper's tool), ``"l2"`` or ``"random"``.
    seed:
        Permutation seed for the random criterion.
    """

    def __init__(
        self,
        propagate: bool = True,
        criterion: str = "l1",
        seed: int = 0,
    ) -> None:
        if criterion not in ("l1", "l2", "random"):
            raise PruningError(f"unknown criterion {criterion!r}")
        self.propagate = propagate
        self.criterion = criterion
        self.seed = seed

    # ------------------------------------------------------------------
    def prune_layer(
        self, network: Network, layer_name: str, ratio: float
    ) -> None:
        layer = network.layer(layer_name)
        if isinstance(layer, ConvLayer):
            dead = filters_to_prune(
                layer.weights, ratio, self.criterion, self.seed
            )
            layer.weights[dead] = 0.0
            layer.bias[dead] = 0.0
            if self.propagate and dead.size:
                self._propagate(network, layer, dead)
        elif isinstance(layer, DenseLayer):
            dead = filters_to_prune(
                layer.weights, ratio, self.criterion, self.seed
            )
            layer.weights[dead] = 0.0
            layer.bias[dead] = 0.0
        else:
            raise PruningError(
                f"layer {layer_name!r} of type {type(layer).__name__} "
                "is not filter-prunable"
            )

    # ------------------------------------------------------------------
    def _propagate(
        self, network: Network, pruned: ConvLayer, dead: np.ndarray
    ) -> None:
        """Zero successor weights reading the killed feature maps."""
        successor = self._find_successor(network, pruned.name)
        if successor is None:
            return
        if isinstance(successor, ConvLayer):
            self._zero_conv_inputs(successor, dead)
        elif isinstance(successor, tuple):  # (dense, channel_block_size)
            dense, block = successor
            cols = (
                dead[:, None] * block + np.arange(block)[None, :]
            ).ravel()
            dense.weights[:, cols] = 0.0

    @staticmethod
    def _zero_conv_inputs(conv: ConvLayer, dead: np.ndarray) -> None:
        """Zero ``conv``'s weights on dead input channels (group-aware)."""
        icg = conv.in_channels // conv.groups
        ocg = conv.out_channels // conv.groups
        for ch in dead:
            group, local = divmod(int(ch), icg)
            if group >= conv.groups:
                continue  # channel out of range (defensive)
            conv.weights[group * ocg : (group + 1) * ocg, local] = 0.0

    @staticmethod
    def _find_successor(network: Network, layer_name: str):
        """Next weight-bearing consumer of ``layer_name``'s feature maps.

        Returns a :class:`ConvLayer`, a ``(DenseLayer, block_size)`` pair
        when the maps are flattened first, or ``None`` when the consumer
        cannot be identified (inception module, end of network, or the
        pruned conv is *inside* an inception module).
        """
        top_names = [layer.name for layer in network.layers]
        if layer_name not in top_names:
            return None  # inner inception conv; handled per-branch
        idx = top_names.index(layer_name)
        flatten_shape: tuple[int, ...] | None = None
        for follower, shape in zip(
            network.layers[idx + 1 :], network._shapes[idx + 1 : -1]
        ):
            if isinstance(follower, ConvLayer):
                return follower
            if isinstance(follower, InceptionModule):
                return None
            if isinstance(follower, Flatten):
                flatten_shape = shape  # input shape of the flatten
            elif isinstance(follower, DenseLayer):
                if flatten_shape is None or len(flatten_shape) != 3:
                    return None
                _, h, w = flatten_shape
                return (follower, h * w)
        return None

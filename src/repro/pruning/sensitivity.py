"""Per-layer pruning-sensitivity scanning.

The paper's Observation 2: a layer's pruning impact "does not directly
correlate with convolution layer parameter values" — conv4 holds the
most compute yet conv1 dominates the accuracy response.  So a
practitioner cannot pick layers by size; they must *scan*.  This module
is that tool for really-executable networks: probe-prune every
prunable layer at a probe ratio, measure the true accuracy drop and the
effective-FLOP saving, and rank.

The ranking feeds directly into schedule construction: prune the layers
with the best saving-per-accuracy-point first (a per-layer analogue of
the paper's TAR).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cnn.datasets import SyntheticImages
from repro.cnn.network import Network
from repro.cnn.training import evaluate_topk
from repro.pruning.base import PruneSpec
from repro.pruning.l1_filter import L1FilterPruner

__all__ = ["LayerSensitivity", "scan_sensitivity", "rank_layers"]


@dataclass(frozen=True)
class LayerSensitivity:
    """One layer's response to a probe prune."""

    layer: str
    probe_ratio: float
    accuracy_drop: float
    flop_saving: float
    params: int

    @property
    def saving_per_point(self) -> float:
        """Fractional FLOPs saved per accuracy point lost (higher =
        better pruning target); infinite for free layers."""
        if self.accuracy_drop <= 0:
            return float("inf")
        return self.flop_saving / self.accuracy_drop


def scan_sensitivity(
    network: Network,
    data: SyntheticImages,
    probe_ratio: float = 0.5,
    layers: list[str] | None = None,
    k: int = 1,
) -> list[LayerSensitivity]:
    """Probe-prune each layer alone and measure the real response."""
    pruner = L1FilterPruner(propagate=True)
    target_layers = layers or network.conv_layer_names()
    baseline_acc = evaluate_topk(network, data, k=k) * 100.0
    baseline_flops = network.total_stats().flops
    out = []
    params = {
        layer.name: layer.weights.size + layer.bias.size
        for layer in network.weighted_layers()
    }
    for name in target_layers:
        pruned = pruner.apply(network, PruneSpec({name: probe_ratio}))
        acc = evaluate_topk(pruned, data, k=k) * 100.0
        flops = pruned.total_stats(effective=True).flops
        out.append(
            LayerSensitivity(
                layer=name,
                probe_ratio=probe_ratio,
                accuracy_drop=max(0.0, baseline_acc - acc),
                flop_saving=1.0 - flops / baseline_flops,
                params=params.get(name, 0),
            )
        )
    return out


def rank_layers(
    sensitivities: list[LayerSensitivity],
) -> list[LayerSensitivity]:
    """Best pruning targets first (most saving per accuracy point;
    ties broken by absolute FLOP saving)."""
    return sorted(
        sensitivities,
        key=lambda s: (-s.saving_per_point, -s.flop_saving),
    )

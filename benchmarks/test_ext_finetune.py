"""Benchmark: extension — fine-tuning recovery (real training loop).

Times the prune-then-retrain pipeline and asserts the Li et al. effect:
retraining recovers accuracy at aggressive prune ratios.
"""

from __future__ import annotations

from repro.experiments import ext_finetune_recovery


def test_ext_finetune_recovery(benchmark):
    result = benchmark.pedantic(
        ext_finetune_recovery.run,
        kwargs=dict(
            train_n=300, test_n=150, train_epochs=8, finetune_epochs=3
        ),
        rounds=1,
        iterations=1,
    )
    deep = result.point(0.75)
    assert deep.accuracy_finetuned >= deep.accuracy_pruned
    assert result.max_recovery >= 0.0

"""Extension: latency-SLO serving — what pruning buys online.

The paper's batch-job evaluation prices *throughput*; its motivating
example (near-real-time image filtering) is priced by *latency*.  This
experiment serves identical bursty traffic at several degrees of pruning
and, for each, finds the smallest p2.8xlarge fleet whose p99 latency
meets the SLO.  Because pruned models clear batches faster, they need
fewer GPUs for the same tail latency — pruning's cost saving is larger
online than the batch-time fraction alone suggests (queueing amplifies
service-time gains).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration.caffenet import (
    caffenet_accuracy_model,
    caffenet_time_model,
)
from repro.cloud.catalog import instance_type
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.instance import CloudInstance
from repro.experiments.report import format_table
from repro.pruning.base import PruneSpec
from repro.serving.arrivals import bursty_arrivals
from repro.serving.batcher import BatchPolicy
from repro.serving.simulator import ServingSimulator

__all__ = ["SLORow", "SLOStudy", "run", "render"]

OPERATING_POINTS: dict[str, PruneSpec] = {
    "nonpruned": PruneSpec.unpruned(),
    "conv1-2 sweet spot": PruneSpec({"conv1": 0.3, "conv2": 0.5}),
    "all-conv sweet spot": PruneSpec(
        {"conv1": 0.3, "conv2": 0.5, "conv3": 0.5, "conv4": 0.5, "conv5": 0.5}
    ),
}


@dataclass(frozen=True)
class SLORow:
    name: str
    instances_needed: int
    p99_s: float
    utilisation: float
    hourly_cost: float
    top5: float


@dataclass(frozen=True)
class SLOStudy:
    slo_s: float
    rate_per_s: float
    rows: tuple[SLORow, ...]

    def row(self, name: str) -> SLORow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)


def _fleet_report(
    spec: PruneSpec, instances: int, arrivals, policy: BatchPolicy
):
    config = ResourceConfiguration(
        [
            CloudInstance(instance_type("p2.8xlarge"))
            for _ in range(instances)
        ]
    )
    simulator = ServingSimulator(
        caffenet_time_model(),
        caffenet_accuracy_model(),
        config,
        spec,
        policy,
    )
    return simulator.run(arrivals)


def run(
    rate_per_s: float = 800.0,
    duration_s: float = 60.0,
    slo_s: float = 2.0,
    max_instances: int = 8,
    seed: int = 3,
) -> SLOStudy:
    arrivals = bursty_arrivals(
        rate_per_s, duration_s, burst_factor=4.0, seed=seed
    )
    # batch width 32 keeps a single batch's service under the SLO on a
    # K80 (128-wide batches alone take ~3.7 s — wider is not better
    # when latency is the objective)
    policy = BatchPolicy(max_batch=32, max_wait_s=0.05)
    rows = []
    for name, spec in OPERATING_POINTS.items():
        chosen = None
        for n in range(1, max_instances + 1):
            report = _fleet_report(spec, n, arrivals, policy)
            if report.p99 <= slo_s:
                chosen = (n, report)
                break
        if chosen is None:  # pragma: no cover - sized to always fit
            chosen = (max_instances, report)
        n, report = chosen
        rows.append(
            SLORow(
                name=name,
                instances_needed=n,
                p99_s=report.p99,
                utilisation=report.utilisation,
                hourly_cost=n * instance_type("p2.8xlarge").price_per_hour,
                top5=report.accuracy.top5,
            )
        )
    return SLOStudy(slo_s=slo_s, rate_per_s=rate_per_s, rows=tuple(rows))


def render(result: SLOStudy | None = None) -> str:
    result = result or run()
    table = format_table(
        [
            "Operating point",
            "p2.8xlarge needed",
            "p99 (s)",
            "util",
            "$/hour",
            "Top-5 (%)",
        ],
        [
            (
                r.name,
                r.instances_needed,
                f"{r.p99_s:.2f}",
                f"{r.utilisation:.2f}",
                f"{r.hourly_cost:.2f}",
                f"{r.top5:.0f}",
            )
            for r in result.rows
        ],
    )
    return (
        f"bursty feed at {result.rate_per_s:.0f} req/s, p99 SLO "
        f"{result.slo_s:.1f}s\n" + table
    )

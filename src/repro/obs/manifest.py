"""Run manifests: per-artefact provenance of one experiment-engine run.

A manifest answers, after the fact, "what exactly ran, how long did
each artefact take, which came from cache, and did anything fail?" —
the structured telemetry the paper's own characterization methodology
(measure everything, then optimise) demands of our harness too.

Schema (``repro.run-manifest/v1``)::

    {
      "schema": "repro.run-manifest/v1",
      "created_unix": 1754000000.0,
      "jobs": 4, "use_cache": true, "wall_s": 12.3,
      "environment": {"python": "...", "platform": "...", ...},
      "artefacts": [
        {"artefact": "fig9", "title": "...", "category": "figure",
         "status": "ok", "wall_s": 3.2, "cpu_s": 3.1,
         "cache_hit": false, "config_hash": "ab12...", "error": null},
        ...
      ]
    }
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = ["ArtefactRecord", "RunManifest", "environment_info"]

SCHEMA = "repro.run-manifest/v1"


def environment_info() -> dict[str, object]:
    """Provenance of the host this run executed on."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
    }


@dataclass(frozen=True)
class ArtefactRecord:
    """One artefact's slice of a run."""

    artefact: str
    title: str
    category: str
    status: str  # "ok" | "error"
    wall_s: float
    cpu_s: float
    cache_hit: bool
    config_hash: str
    error: str | None = None


@dataclass(frozen=True)
class RunManifest:
    """The whole run: environment + engine settings + artefact records."""

    records: tuple[ArtefactRecord, ...]
    environment: dict[str, object]
    jobs: int
    use_cache: bool
    wall_s: float
    created_unix: float

    # ------------------------------------------------------------------
    @classmethod
    def collect(
        cls,
        results,
        *,
        jobs: int,
        use_cache: bool,
        wall_s: float,
    ) -> RunManifest:
        """Build a manifest from engine ``ExperimentResult`` objects."""
        records = tuple(
            ArtefactRecord(
                artefact=r.artefact,
                title=r.title,
                category=r.category,
                status=r.status,
                wall_s=r.wall_s,
                cpu_s=r.cpu_s,
                cache_hit=r.cache_hit,
                config_hash=r.config_hash,
                error=r.error,
            )
            for r in results
        )
        return cls(
            records=records,
            environment=environment_info(),
            jobs=jobs,
            use_cache=use_cache,
            wall_s=wall_s,
            created_unix=time.time(),
        )

    # ------------------------------------------------------------------
    @property
    def errors(self) -> tuple[str, ...]:
        """Artefact ids that finished with status ``error``."""
        return tuple(
            r.artefact for r in self.records if r.status == "error"
        )

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cache_hit)

    def record(self, artefact: str) -> ArtefactRecord:
        for r in self.records:
            if r.artefact == artefact:
                return r
        raise KeyError(artefact)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "schema": SCHEMA,
            "created_unix": self.created_unix,
            "jobs": self.jobs,
            "use_cache": self.use_cache,
            "wall_s": self.wall_s,
            "environment": dict(self.environment),
            "artefacts": [asdict(r) for r in self.records],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def from_dict(cls, payload: dict) -> RunManifest:
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                f"not a {SCHEMA} document: {payload.get('schema')!r}"
            )
        return cls(
            records=tuple(
                ArtefactRecord(**entry) for entry in payload["artefacts"]
            ),
            environment=dict(payload["environment"]),
            jobs=payload["jobs"],
            use_cache=payload["use_cache"],
            wall_s=payload["wall_s"],
            created_unix=payload["created_unix"],
        )

    @classmethod
    def from_json(cls, text: str) -> RunManifest:
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    def write(self, path: str | os.PathLike) -> Path:
        """Write the manifest JSON (atomically) to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(self.to_json())
        os.replace(tmp, path)
        return path

    @classmethod
    def read(cls, path: str | os.PathLike) -> RunManifest:
        return cls.from_json(Path(path).read_text())

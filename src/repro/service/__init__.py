"""repro.service — the live planning control plane.

:class:`PlanningService` dispatches the versioned ``/v1`` routes
in-process; :class:`PlanningServer` binds one to a TCP port on the
stdlib ``ThreadingHTTPServer``; :mod:`repro.service.loadgen` replays
seeded open-loop query traces against either and reports throughput,
latency percentiles and cache hit ratio.

Start one from the CLI (``python -m repro service``), from code::

    from repro.service import PlanningServer

    with PlanningServer(port=0) as server:
        ...  # point a repro.api.PlanningClient at server.url

or embed the dispatch layer directly (no sockets) for tests and
benchmarks.  See ``docs/service.md``.
"""

from repro.service.loadgen import (
    DriftVerdict,
    HttpTarget,
    InProcessTarget,
    LoadReport,
    PlanMixture,
    SoakInjection,
    SoakReport,
    TRANSPORT_ERROR_STATUS,
    run_load,
    run_soak,
)
from repro.service.server import (
    PlanningServer,
    PlanningService,
    ServiceMonitor,
)

__all__ = [
    "DriftVerdict",
    "HttpTarget",
    "InProcessTarget",
    "LoadReport",
    "PlanMixture",
    "PlanningServer",
    "PlanningService",
    "ServiceMonitor",
    "SoakInjection",
    "SoakReport",
    "TRANSPORT_ERROR_STATUS",
    "run_load",
    "run_soak",
]

"""Benchmarks: regenerate Table 1 (Caffenet layers) and Table 3 (catalog)."""

from __future__ import annotations

from repro.experiments import tables


def test_table1_caffenet_layers(benchmark):
    from repro.cnn.models import build_caffenet

    network = build_caffenet(init="const")  # built once, outside the timer
    rows = benchmark(tables.table1_caffenet_layers, network)
    by_layer = {r.layer: r for r in rows}
    assert by_layer["conv1"].size == "55x55x96"
    assert by_layer["conv2"].filter_size == "5x5x48"
    assert by_layer["fc3"].size == "1000"


def test_table3_catalog(benchmark):
    rows = benchmark(tables.table3_catalog_rows)
    assert len(rows) == 6
    assert rows[0][0] == "p2.xlarge" and rows[0][5] == 0.90

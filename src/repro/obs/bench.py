"""Bench trajectory recorder: ``BENCH_<n>.json`` and the regression gate.

The ROADMAP's "fast as the hardware allows" goal is only enforceable
against a recorded trajectory.  This module defines a small suite of
hot-path scenarios (the same paths ``benchmarks/`` exercises under
pytest-benchmark), runs each under a fresh observability scope, and
captures two things per scenario:

* **wall seconds** — min over ``repeats`` runs, the paper's own
  min-of-N measurement protocol (Section 4) applied to ourselves;
* **work counters** — the full counter snapshot (``perf.time_model_evals``,
  ``evalspace.cache_hits``, ``serving.events``, ...), which is
  deterministic for fixed seeds and therefore catches *algorithmic*
  regressions (lost memoization, extra simulations) exactly, with no
  tolerance band.

``record(root)`` writes the next ``BENCH_<n>.json`` at the repo root
(schema ``repro.bench/v1``); ``check(root)`` reruns the suite and
compares against the most recent record — wall time may drift within a
tolerance, counters must match exactly.  ``repro bench --record`` /
``--check`` are the CLI front ends; CI runs both on every push.
"""

from __future__ import annotations

import json
import os
import re
import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = [
    "BENCH_SCHEMA",
    "BenchEntry",
    "BenchRecord",
    "CheckReport",
    "SCENARIOS",
    "check",
    "latest_record",
    "next_index",
    "record",
    "run_suite",
]

BENCH_SCHEMA = "repro.bench/v1"

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
def _scenario_evalspace_grid() -> None:
    """The Figure 9/10 grid through the unified evaluation core."""
    from repro.calibration import (
        caffenet_accuracy_model,
        caffenet_time_model,
    )
    from repro.cloud.catalog import P2_TYPES
    from repro.core.config_space import enumerate_configurations
    from repro.core.evalspace import (
        SpaceSpec,
        clear_space_cache,
        evaluate,
    )
    from repro.pruning.schedule import caffenet_variant_set

    clear_space_cache()
    space = evaluate(
        SpaceSpec.build(
            caffenet_time_model(),
            caffenet_accuracy_model(),
            caffenet_variant_set(),
            enumerate_configurations(P2_TYPES, max_per_type=3),
            20_000_000,
        )
    )
    assert len(space) == 3780
    # a content-equal re-request must be a pure cache hit
    evaluate(
        SpaceSpec.build(
            caffenet_time_model(),
            caffenet_accuracy_model(),
            caffenet_variant_set(),
            enumerate_configurations(P2_TYPES, max_per_type=3),
            20_000_000,
        )
    )


def _scenario_serving_faulty() -> None:
    """A faulty serving run with full per-request telemetry attached."""
    from repro.calibration import (
        caffenet_accuracy_model,
        caffenet_time_model,
    )
    from repro.cloud.catalog import instance_type
    from repro.cloud.configuration import ResourceConfiguration
    from repro.cloud.faults import FaultPlan
    from repro.cloud.instance import CloudInstance
    from repro.obs.telemetry import ServingTelemetry, SloPolicy
    from repro.pruning.base import PruneSpec
    from repro.serving.arrivals import poisson_arrivals
    from repro.serving.batcher import BatchPolicy
    from repro.serving.simulator import ServingSimulator

    arrivals = poisson_arrivals(120.0, 30.0, seed=7)
    plan = FaultPlan.sample(
        duration_s=30.0,
        workers=8,
        mtbf_s=20.0,
        recovery_s=5.0,
        retry_budget=2,
        timeout_s=3.0,
        seed=7,
    )
    simulator = ServingSimulator(
        caffenet_time_model(),
        caffenet_accuracy_model(),
        ResourceConfiguration([CloudInstance(instance_type("p2.8xlarge"))]),
        PruneSpec.unpruned(),
        BatchPolicy(max_batch=32, max_wait_s=0.05),
    )
    simulator.run(
        arrivals,
        plan,
        telemetry=ServingTelemetry(SloPolicy(latency_slo_s=1.0)),
    )


def _scenario_allocation_greedy() -> None:
    """Algorithm 1 (greedy) over the degree ladder and full catalog."""
    from repro.calibration import (
        caffenet_accuracy_model,
        caffenet_time_model,
    )
    from repro.cloud.catalog import EC2_CATALOG
    from repro.cloud.instance import CloudInstance
    from repro.cloud.simulator import CloudSimulator
    from repro.core.allocation import greedy_allocate
    from repro.experiments.algorithm1 import _default_degrees

    simulator = CloudSimulator(
        caffenet_time_model(), caffenet_accuracy_model()
    )
    pool = [
        CloudInstance(itype)
        for itype in EC2_CATALOG
        for _ in range(2)
    ]
    greedy_allocate(
        _default_degrees(),
        pool,
        simulator,
        images=20_000_000,
        deadline_s=12 * 3600.0,
        budget=150.0,
    )


def _scenario_autoscale_surge() -> None:
    """The elastic fleet riding a bursty surge."""
    from repro.calibration import (
        caffenet_accuracy_model,
        caffenet_time_model,
    )
    from repro.cloud.catalog import instance_type
    from repro.pruning.base import PruneSpec
    from repro.serving.arrivals import bursty_arrivals
    from repro.serving.autoscaler import (
        AutoscalePolicy,
        AutoscalingSimulator,
    )
    from repro.serving.batcher import BatchPolicy

    arrivals = bursty_arrivals(60.0, 60.0, seed=3)
    AutoscalingSimulator(
        caffenet_time_model(),
        caffenet_accuracy_model(),
        instance_type("p2.xlarge"),
        PruneSpec.unpruned(),
        BatchPolicy(max_batch=16, max_wait_s=0.05),
        AutoscalePolicy(interval_s=5.0, max_instances=8),
    ).run(arrivals)


def _scenario_fleet_routed() -> None:
    """A tiered, admission-controlled fleet through the cached
    evaluation path (one miss, then a pure content-cache hit)."""
    from repro.calibration import (
        caffenet_accuracy_model,
        caffenet_time_model,
    )
    from repro.cloud.catalog import instance_type
    from repro.cloud.configuration import ResourceConfiguration
    from repro.cloud.instance import CloudInstance
    from repro.pruning.base import PruneSpec
    from repro.serving.batcher import BatchPolicy
    from repro.serving.fleet import (
        FleetSpec,
        FleetWorkload,
        clear_fleet_cache,
        evaluate_fleet,
    )
    from repro.serving.router import AdmissionPolicy, ReplicaSpec

    clear_fleet_cache()
    policy = BatchPolicy(max_batch=32, max_wait_s=0.05)
    sweet = PruneSpec({"conv1": 0.3, "conv2": 0.5})
    spec = FleetSpec(
        caffenet_time_model(),
        caffenet_accuracy_model(),
        (
            ReplicaSpec(
                "gold",
                ResourceConfiguration(
                    [CloudInstance(instance_type("p2.8xlarge"))]
                ),
                PruneSpec.unpruned(),
                policy,
            ),
            ReplicaSpec(
                "cheap-a",
                ResourceConfiguration(
                    [CloudInstance(instance_type("p2.xlarge"))]
                ),
                sweet,
                policy,
            ),
            ReplicaSpec(
                "cheap-b",
                ResourceConfiguration(
                    [CloudInstance(instance_type("p2.xlarge"))]
                ),
                sweet,
                policy,
            ),
        ),
        routing="tiered",
        admission=AdmissionPolicy(rate_per_s=150.0, burst=64),
    )
    workload = FleetWorkload(
        120.0, 30.0, seed=5, floors=((0.0, 0.7), (75.0, 0.3))
    )
    evaluate_fleet(spec, workload)
    # a content-equal re-request must be a pure cache hit
    evaluate_fleet(spec, workload)


def _scenario_service_plan() -> dict[str, float]:
    """Warm-cache planning queries through the full service dispatch
    path: one cold grid evaluation, then an open-loop replay of 400
    mixed queries that must all be evaluation-cache hits.  Extras
    capture the control-plane throughput and latency percentiles the
    acceptance bar (>= 1k plan-queries/s warm) is measured against."""
    import json

    from repro.api import clear_api_caches
    from repro.service import (
        InProcessTarget,
        PlanMixture,
        PlanningService,
        run_load,
    )

    # memoized models keep their per-degree memos warm across repeats;
    # start each repeat truly cold or the work counters drift
    clear_api_caches()
    mixture = PlanMixture(
        catalog=("p2.xlarge", "p2.8xlarge", "p2.16xlarge"),
        instances_per_type=3,
        images=20_000_000,
        seed=17,
    )
    service = PlanningService()
    warm = json.dumps(
        mixture.requests(1)[0].to_dict(), sort_keys=True
    ).encode("utf-8")
    status, _, _ = service.dispatch("POST", "/v1/plan", warm)
    assert status in (200, 422)
    report = run_load(
        InProcessTarget(service),
        mixture,
        rate_per_s=2000.0,
        n_requests=400,
        arrival="uniform",
        max_workers=8,
    )
    assert report.errors == 0, report.status_counts
    assert (report.cache_misses, report.cache_hits) == (0, 400)
    return {
        "qps": report.qps,
        "p50_ms": report.p50 * 1e3,
        "p95_ms": report.p95 * 1e3,
        "p99_ms": report.p99 * 1e3,
        "cache_hit_ratio": report.cache_hit_ratio,
    }


def _scenario_serving_columnar() -> None:
    """A million-request saturation drain through the columnar engine.

    25 kreq/s offered against one p2.8xlarge — the queue grows for the
    whole window and drains after, so nearly every batch dispatches
    full.  The point is scale: the columnar event loop is O(batches +
    structural events), so a 278x-larger stream than ``serving.faulty``
    must stay within the same order of wall time.  The outcome is
    seed-deterministic; the asserts pin it exactly.
    """
    from repro.calibration import (
        caffenet_accuracy_model,
        caffenet_time_model,
    )
    from repro.cloud.catalog import instance_type
    from repro.cloud.configuration import ResourceConfiguration
    from repro.cloud.instance import CloudInstance
    from repro.obs.telemetry import ServingTelemetry, SloPolicy
    from repro.pruning.base import PruneSpec
    from repro.serving.arrivals import poisson_arrivals
    from repro.serving.batcher import BatchPolicy
    from repro.serving.simulator import ServingSimulator

    arrivals = poisson_arrivals(25_000.0, 40.0, seed=13)
    report = ServingSimulator(
        caffenet_time_model(),
        caffenet_accuracy_model(),
        ResourceConfiguration(
            [CloudInstance(instance_type("p2.8xlarge"))]
        ),
        PruneSpec.unpruned(),
        BatchPolicy(max_batch=64, max_wait_s=0.02),
    ).run(
        arrivals,
        telemetry=ServingTelemetry(SloPolicy(latency_slo_s=1.0)),
    )
    assert arrivals.size == 1_001_317
    assert report.requests == 1_001_317
    assert report.served == 1_001_317
    assert report.dropped == 0
    assert report.batch_sizes.size == 15_646


def _scenario_fleet_columnar() -> None:
    """A million requests routed across a tiered three-replica fleet.

    ~900 req/s for ~19 simulated minutes against a fleet sized just
    under saturation, with token-bucket admission trimming Poisson
    bursts.  Floors split the stream across tiers: floor-75 requests
    can only run on ``gold``, the rest take the cheapest tier
    (``cheap-b``, priced above ``cheap-a``, idles by design — a
    standby the tiered policy never needs).  The routing decision pass
    is the columnar fast path: candidate sets per distinct floor plus
    a scalar token bucket, no per-arrival numpy.  Deterministic; the
    asserts pin the exact assignment.
    """
    from repro.calibration import (
        caffenet_accuracy_model,
        caffenet_time_model,
    )
    from repro.cloud.catalog import instance_type
    from repro.cloud.configuration import ResourceConfiguration
    from repro.cloud.instance import CloudInstance
    from repro.pruning.base import PruneSpec
    from repro.serving.batcher import BatchPolicy
    from repro.serving.fleet import FleetWorkload
    from repro.serving.router import (
        AdmissionPolicy,
        FleetRouter,
        ReplicaSpec,
    )

    def config(itype: str, count: int = 1) -> ResourceConfiguration:
        return ResourceConfiguration(
            [
                CloudInstance(instance_type(itype))
                for _ in range(count)
            ]
        )

    policy = BatchPolicy(max_batch=64, max_wait_s=0.02)
    sweet = PruneSpec({"conv1": 0.3, "conv2": 0.5})
    router = FleetRouter(
        caffenet_time_model(),
        caffenet_accuracy_model(),
        (
            ReplicaSpec(
                "gold",
                config("p2.8xlarge", 2),
                PruneSpec.unpruned(),
                policy,
            ),
            ReplicaSpec(
                "cheap-a",
                config("p2.8xlarge"),
                sweet,
                policy,
                hourly_rate=4.0,
            ),
            ReplicaSpec(
                "cheap-b",
                config("p2.8xlarge"),
                sweet,
                policy,
                hourly_rate=4.5,
            ),
        ),
        routing="tiered",
        admission=AdmissionPolicy(rate_per_s=880.0, burst=256),
    )
    workload = FleetWorkload(
        900.0, 1112.0, seed=29, floors=((0.0, 0.45), (75.0, 0.55))
    )
    arrivals = workload.arrivals()
    report = router.run(
        arrivals, floors=workload.accuracy_floors(arrivals.size)
    )
    assert report.offered == 1_000_537
    assert report.shed == 21_747
    assert report.served == 978_790
    assert tuple(o.assigned for o in report.outcomes) == (
        538_597,
        440_193,
        0,
    )
    assert report.dropped == report.shed  # no replica-side losses


def _scenario_fleet_adaptive() -> object:
    """A flash crowd served twice: static tiers vs dynamic degradation.

    ~200k requests in a quiet/crowd/quiet profile (350 -> 1000 -> 350
    req/s) over one unpruned "gold" p2.8xlarge and two sweet-spot
    pruned ones; 40% of requests carry a Top-5 floor only gold clears,
    so the crowd overloads gold (~273 req/s of capacity against ~400
    req/s of floored demand).  The same arrivals run once under static
    ``tiered`` routing + queue-limit shedding and once under
    ``adaptive`` routing + graceful degradation (``degrade_limit``),
    exercising the per-request decision pass of both policies at
    scale.  Deterministic; the asserts pin the exact decisions and the
    headline claim — degradation turns every shed into a served
    request and beats the static policy's served-at-floor count.
    """
    import numpy as np

    from repro.calibration import (
        caffenet_accuracy_model,
        caffenet_time_model,
    )
    from repro.cloud.catalog import instance_type
    from repro.cloud.configuration import ResourceConfiguration
    from repro.cloud.instance import CloudInstance
    from repro.pruning.base import PruneSpec
    from repro.serving.arrivals import poisson_arrivals
    from repro.serving.batcher import BatchPolicy
    from repro.serving.router import (
        AdmissionPolicy,
        FleetRouter,
        ReplicaSpec,
    )

    def config() -> ResourceConfiguration:
        return ResourceConfiguration(
            [CloudInstance(instance_type("p2.8xlarge"))]
        )

    policy = BatchPolicy(max_batch=64, max_wait_s=0.02)
    sweet = PruneSpec({"conv1": 0.3, "conv2": 0.5})
    replicas = (
        ReplicaSpec("gold", config(), PruneSpec.unpruned(), policy),
        ReplicaSpec("cheap-a", config(), sweet, policy),
        ReplicaSpec("cheap-b", config(), sweet, policy),
    )
    tm, am = caffenet_time_model(), caffenet_accuracy_model()
    segment_s = 120.0
    arrivals = np.concatenate(
        [
            poisson_arrivals(350.0, segment_s, seed=31),
            poisson_arrivals(1000.0, segment_s, seed=32) + segment_s,
            poisson_arrivals(350.0, segment_s, seed=33)
            + 2 * segment_s,
        ]
    )
    # same derivation scheme as FleetWorkload's floor/deadline draws
    floors = np.random.default_rng(31 + 0x0F100).choice(
        [0.0, 75.0], size=arrivals.size, p=[0.6, 0.4]
    )
    deadlines = np.random.default_rng(31 + 0x0D1E5).choice(
        [0.2, 0.6], size=arrivals.size, p=[0.5, 0.5]
    )

    static = FleetRouter(
        tm,
        am,
        replicas,
        routing="tiered",
        admission=AdmissionPolicy(queue_limit=300.0),
    ).run(arrivals, floors=floors, deadlines=deadlines)
    assert static.offered == 204_044
    assert static.shed == 37_524
    assert static.served == 166_520
    assert static.degraded == 0
    assert tuple(o.assigned for o in static.outcomes) == (
        80_868,
        55_806,
        29_846,
    )

    adaptive = FleetRouter(
        tm,
        am,
        replicas,
        routing="adaptive",
        admission=AdmissionPolicy(
            queue_limit=300.0, degrade_limit=150.0
        ),
    ).run(arrivals, floors=floors, deadlines=deadlines)
    assert adaptive.offered == 204_044
    assert adaptive.shed == 0
    assert adaptive.served == 204_044
    assert adaptive.degraded == 15_357
    assert tuple(o.assigned for o in adaptive.outcomes) == (
        80_736,
        71_800,
        51_508,
    )
    assert tuple(o.at_floor for o in adaptive.outcomes) == (
        80_736,
        56_443,
        51_508,
    )
    # the headline: degradation beats shedding at equal accuracy
    assert adaptive.served_at_floor > static.served_at_floor
    return {
        "tiered_goodput_at_accuracy": static.goodput_at_accuracy,
        "adaptive_goodput_at_accuracy": adaptive.goodput_at_accuracy,
    }


#: name -> callable; each runs one hot path end to end and may return
#: a mapping of float "extras" (latency percentiles, throughput) that
#: ride along in the record without being gated.
SCENARIOS: dict[str, Callable[[], object]] = {
    "evalspace.grid": _scenario_evalspace_grid,
    "serving.faulty": _scenario_serving_faulty,
    "serving.columnar": _scenario_serving_columnar,
    "allocation.greedy": _scenario_allocation_greedy,
    "autoscale.surge": _scenario_autoscale_surge,
    "fleet.routed": _scenario_fleet_routed,
    "fleet.columnar": _scenario_fleet_columnar,
    "fleet.adaptive": _scenario_fleet_adaptive,
    "service.plan": _scenario_service_plan,
}


# ----------------------------------------------------------------------
# records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchEntry:
    """One scenario's slice of a bench record.

    ``extras`` are informational floats the scenario returned (service
    throughput, latency percentiles): recorded for the trajectory,
    never gated — unlike ``counters`` they measure the machine, not
    the algorithm.
    """

    name: str
    wall_s: float
    counters: dict[str, int]
    extras: dict[str, float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.extras is None:
            object.__setattr__(self, "extras", {})

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "name": self.name,
            "wall_s": self.wall_s,
            "counters": dict(self.counters),
        }
        if self.extras:
            out["extras"] = dict(self.extras)
        return out


@dataclass(frozen=True)
class BenchRecord:
    """One point on the repo's performance trajectory."""

    index: int
    created_unix: float
    repeats: int
    environment: dict[str, object]
    entries: tuple[BenchEntry, ...]

    def entry(self, name: str) -> BenchEntry:
        for e in self.entries:
            if e.name == name:
                return e
        raise KeyError(name)

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": BENCH_SCHEMA,
            "index": self.index,
            "created_unix": self.created_unix,
            "repeats": self.repeats,
            "environment": dict(self.environment),
            "entries": [e.as_dict() for e in self.entries],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> BenchRecord:
        if payload.get("schema") != BENCH_SCHEMA:
            raise ValueError(
                f"not a {BENCH_SCHEMA} document: {payload.get('schema')!r}"
            )
        return cls(
            index=int(payload["index"]),
            created_unix=float(payload["created_unix"]),
            repeats=int(payload["repeats"]),
            environment=dict(payload["environment"]),
            entries=tuple(
                BenchEntry(
                    name=e["name"],
                    wall_s=float(e["wall_s"]),
                    counters={
                        k: int(v) for k, v in e["counters"].items()
                    },
                    extras={
                        k: float(v)
                        for k, v in e.get("extras", {}).items()
                    },
                )
                for e in payload["entries"]
            ),
        )

    @classmethod
    def read(cls, path: str | os.PathLike) -> BenchRecord:
        return cls.from_dict(json.loads(Path(path).read_text()))

    def write(self, path: str | os.PathLike) -> Path:
        path = Path(path)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        os.replace(tmp, path)
        return path


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------
def run_suite(
    scenarios: Mapping[str, Callable[[], None]] | None = None,
    *,
    repeats: int = 3,
    only: tuple[str, ...] | None = None,
) -> list[BenchEntry]:
    """Run each scenario ``repeats`` times; keep min wall + counters.

    Every repeat runs under a fresh scope (new tracer + registry) and
    with the process-wide evaluation-space cache cleared, so counters
    reflect exactly one cold run and repeats do not accumulate.
    Counter snapshots must agree across repeats — a scenario whose work
    depends on run order is a bug this assertion catches early.
    """
    from repro.core.evalspace import clear_space_cache
    from repro.obs import scoped_observability

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    scenarios = SCENARIOS if scenarios is None else scenarios
    if only is not None:
        unknown = [n for n in only if n not in scenarios]
        if unknown:
            raise KeyError(
                f"unknown scenarios {unknown}; "
                f"available: {sorted(scenarios)}"
            )
        scenarios = {n: scenarios[n] for n in only}
    entries = []
    for name, fn in scenarios.items():
        best = float("inf")
        counters: dict[str, int] | None = None
        extras: dict[str, float] = {}
        for _ in range(repeats):
            clear_space_cache()
            registry = MetricsRegistry()
            with scoped_observability(Tracer(enabled=False), registry):
                wall0 = time.perf_counter()
                returned = fn()
                wall = time.perf_counter() - wall0
            if wall < best:
                best = wall
                if isinstance(returned, Mapping):
                    extras = {
                        str(k): float(v) for k, v in returned.items()
                    }
            snapshot = registry.snapshot()["counters"]
            if counters is not None and snapshot != counters:
                raise AssertionError(
                    f"scenario {name!r} is nondeterministic: counters "
                    f"changed between repeats"
                )
            counters = snapshot
        entries.append(
            BenchEntry(
                name=name,
                wall_s=best,
                counters=counters or {},
                extras=extras,
            )
        )
    return entries


def bench_paths(root: str | os.PathLike) -> list[Path]:
    """Existing ``BENCH_<n>.json`` files under ``root``, by index."""
    out = []
    for path in Path(root).iterdir():
        match = _BENCH_NAME.match(path.name)
        if match:
            out.append((int(match.group(1)), path))
    return [p for _, p in sorted(out)]


def next_index(root: str | os.PathLike) -> int:
    paths = bench_paths(root)
    if not paths:
        return 1
    return int(_BENCH_NAME.match(paths[-1].name).group(1)) + 1


def latest_record(root: str | os.PathLike) -> BenchRecord | None:
    paths = bench_paths(root)
    return BenchRecord.read(paths[-1]) if paths else None


def record(
    root: str | os.PathLike,
    *,
    repeats: int = 3,
    scenarios: Mapping[str, Callable[[], None]] | None = None,
    only: tuple[str, ...] | None = None,
) -> Path:
    """Run the suite and write the next ``BENCH_<n>.json`` under root.

    ``root`` is created (with parents) when it does not exist yet, so
    ``--record --root /tmp/fresh`` works without a prior mkdir.
    """
    from repro.obs.manifest import environment_info

    Path(root).mkdir(parents=True, exist_ok=True)
    entries = run_suite(scenarios, repeats=repeats, only=only)
    bench = BenchRecord(
        index=next_index(root),
        created_unix=time.time(),
        repeats=repeats,
        environment=environment_info(),
        entries=tuple(entries),
    )
    return bench.write(Path(root) / f"BENCH_{bench.index}.json")


# ----------------------------------------------------------------------
# the regression gate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CheckReport:
    """Outcome of one ``check`` run against the latest record.

    ``failures`` break the gate; ``warnings`` (wall-clock drift past
    the warn ratio, against the latest record *or* cumulatively
    against the first) only surface it.  ``machine_drift`` notes that
    the baseline was recorded on a different machine (``cpu_count`` or
    ``machine`` mismatch), in which case every *wall* comparison is
    demoted to a warning — cross-machine wall clocks measure the
    hardware, not the code — while counter drift still fails hard.
    """

    baseline_index: int
    tolerance: float
    lines: tuple[str, ...]
    failures: tuple[str, ...]
    warnings: tuple[str, ...] = ()
    machine_drift: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures


def _sanitize_machine(value: object, limit: int = 48) -> str:
    """A recorded machine string, safe to print in the gate report.

    Records are hand-editable JSON, so the stored ``machine`` value is
    untrusted: control characters are escaped as ``\\xNN`` (a raw
    ``\\r`` or ANSI escape would corrupt the terminal report and can
    spoof gate lines) and over-long values are capped at ``limit``
    characters with a ``...`` marker.
    """
    text = str(value)
    safe = "".join(
        ch if ch.isprintable() else f"\\x{ord(ch):02x}"
        for ch in text
    )
    if len(safe) > limit:
        safe = safe[:limit] + "..."
    return safe


def _machines_differ(environment: Mapping) -> bool:
    """True when the recorded host differs from the current one.

    Compares the two stable hardware axes ``environment_info``
    records — ``cpu_count`` and ``machine`` — so a record produced on
    a different box demotes wall gates instead of failing them.
    Records predating these keys compare as drifted (unknown host).
    """
    from repro.obs.manifest import environment_info

    current = environment_info()
    for key in ("cpu_count", "machine"):
        if environment.get(key) != current[key]:
            return True
    return False


def check(
    root: str | os.PathLike,
    *,
    tolerance: float = 0.5,
    warn_ratio: float = 1.5,
    fail_ratio: float | None = None,
    repeats: int = 3,
    scenarios: Mapping[str, Callable[[], None]] | None = None,
    only: tuple[str, ...] | None = None,
) -> CheckReport:
    """Rerun the suite and gate against the most recent record.

    Wall time may regress up to ``tolerance`` (fractional: 0.5 allows
    +50%, absorbing shared-runner noise); counters must match exactly —
    any drift means the amount of *work* changed, which a tolerance
    band must never absorb.  Scenarios present in only one of the two
    suites are reported but not failed (the suite itself may grow).

    ``warn_ratio`` surfaces slowdowns the hard gate would let through:
    a scenario whose wall exceeds ``warn_ratio`` times the latest
    record (without failing the tolerance), or — the creeping case a
    latest-only gate is blind to — ``warn_ratio`` times the *first*
    record on the trajectory, lands in ``CheckReport.warnings``.

    ``fail_ratio`` hardens that second comparison: when set, a
    scenario whose wall exceeds ``fail_ratio`` times the first record
    *fails* instead of warning.  The latest-record tolerance only
    bounds one step; this bounds the whole trajectory, which is what
    CI enforces so slow creep cannot launder itself one +49% at a
    time.

    Both wall gates are demoted to warnings when the baseline was
    recorded on different hardware (see :class:`CheckReport`); the
    counter gate is machine-independent and always hard.
    """
    baseline = latest_record(root)
    if baseline is None:
        raise FileNotFoundError(
            f"no BENCH_*.json under {root}; run `repro bench --record`"
        )
    paths = bench_paths(root)
    first = BenchRecord.read(paths[0])
    fresh = run_suite(scenarios, repeats=repeats, only=only)
    machine_drift = _machines_differ(baseline.environment)
    lines: list[str] = []
    failures: list[str] = []
    warnings: list[str] = []
    if machine_drift:
        stored = _sanitize_machine(
            baseline.environment.get("machine", "<unknown>")
        )
        warnings.append(
            f"baseline BENCH_{baseline.index} was recorded on "
            f"different hardware (machine {stored!r}, cpu_count/"
            "machine mismatch); wall gates demoted to warnings, "
            "counters still gate"
        )

    def wall_gate(message: str) -> str:
        """Fail on this machine's own records, warn across machines."""
        if machine_drift:
            warnings.append(message)
            return "WARN"
        failures.append(message)
        return "SLOW"

    base_names = {e.name for e in baseline.entries}
    first_names = {e.name for e in first.entries}
    for entry in fresh:
        if entry.name not in base_names:
            lines.append(f"{entry.name}: new scenario (no baseline)")
            continue
        prior = baseline.entry(entry.name)
        ratio = (
            entry.wall_s / prior.wall_s
            if prior.wall_s > 0
            else float("inf")
        )
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = wall_gate(
                f"{entry.name}: wall {entry.wall_s:.3f}s vs "
                f"{prior.wall_s:.3f}s baseline "
                f"({ratio:.2f}x > {1.0 + tolerance:.2f}x allowed)"
            )
        elif ratio > warn_ratio:
            verdict = "WARN"
            warnings.append(
                f"{entry.name}: wall {entry.wall_s:.3f}s is "
                f"{ratio:.2f}x the latest record "
                f"(warn threshold {warn_ratio:.2f}x)"
            )
        if entry.name in first_names:
            origin = first.entry(entry.name)
            cumulative = (
                entry.wall_s / origin.wall_s
                if origin.wall_s > 0
                else float("inf")
            )
            if fail_ratio is not None and cumulative > fail_ratio:
                verdict = wall_gate(
                    f"{entry.name}: trajectory budget exceeded — "
                    f"wall {entry.wall_s:.3f}s is {cumulative:.2f}x "
                    f"BENCH_{first.index} "
                    f"(fail threshold {fail_ratio:.2f}x)"
                )
            elif (
                first.index != baseline.index
                and cumulative > warn_ratio
            ):
                warnings.append(
                    f"{entry.name}: trajectory drift — wall "
                    f"{entry.wall_s:.3f}s is {cumulative:.2f}x "
                    f"BENCH_{first.index} "
                    f"(warn threshold {warn_ratio:.2f}x)"
                )
        drifted = {
            k: (prior.counters.get(k), entry.counters.get(k))
            for k in set(prior.counters) | set(entry.counters)
            if prior.counters.get(k) != entry.counters.get(k)
        }
        if drifted:
            verdict = "DRIFT"
            detail = ", ".join(
                f"{k}: {was} -> {now}"
                for k, (was, now) in sorted(drifted.items())
            )
            failures.append(
                f"{entry.name}: work counters drifted ({detail})"
            )
        lines.append(
            f"{entry.name}: {entry.wall_s:.3f}s "
            f"(baseline {prior.wall_s:.3f}s, {ratio:.2f}x) {verdict}"
        )
    return CheckReport(
        baseline_index=baseline.index,
        tolerance=tolerance,
        lines=tuple(lines),
        failures=tuple(failures),
        warnings=tuple(warnings),
        machine_drift=machine_drift,
    )

"""Tests for the machine-readable experiment export."""

from __future__ import annotations

import csv
import json

import pytest

from repro.experiments.export import export_all, write_csv_series


class TestCSVWriter:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "series.csv"
        write_csv_series(path, ["x", "y"], [(1, 2.0), (3, 4.0)])
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows == [["x", "y"], ["1", "2.0"], ["3", "4.0"]]


class TestExportAll:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        target = tmp_path_factory.mktemp("results")
        written = export_all(
            target, only=("table3", "fig4", "fig8", "fig12")
        )
        return target, written

    def test_writes_txt_and_json(self, exported):
        target, written = exported
        assert (target / "table3.txt").exists()
        assert (target / "fig8.json").exists()
        assert all(p.startswith(str(target)) for p in written)

    def test_json_payload(self, exported):
        target, _ = exported
        payload = json.loads((target / "fig8.json").read_text())
        assert payload["artefact"] == "fig8"
        assert "nonpruned" in payload["text"]

    def test_csv_series_written_for_selected_figures(self, exported):
        target, _ = exported
        with open(target / "fig4.csv") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["prune_ratio", "caffenet_s", "googlenet_s"]
        assert len(rows) == 11  # header + 10 ratios
        with open(target / "fig12.csv") as fh:
            rows12 = list(csv.reader(fh))
        assert len(rows12) == 7  # header + 6 instance types

    def test_unselected_not_written(self, exported):
        target, _ = exported
        assert not (target / "fig5.csv").exists()
        assert not (target / "fig9.txt").exists()

    def test_index_manifest(self, exported):
        target, _ = exported
        manifest = json.loads((target / "index.json").read_text())
        artefacts = {entry["artefact"] for entry in manifest}
        assert artefacts == {"table3", "fig4", "fig8", "fig12"}

"""Sweet-spot region detection (the paper's Observation 1).

A *sweet-spot region* of a single-layer pruning sweep is the ratio range
starting at 0% where accuracy stays within a tolerance of the unpruned
baseline while inference time strictly decreases.  The *last sweet spot*
is the largest such ratio — the operating point the paper's multi-layer
configurations (Figure 8) are built from.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["SweetSpotRegion", "find_sweet_spot"]


@dataclass(frozen=True)
class SweetSpotRegion:
    """A detected sweet-spot region of one pruning sweep."""

    layer: str
    last_sweet_spot: float
    time_reduction: float
    accuracy_drop: float

    @property
    def exists(self) -> bool:
        """True when pruning saves any time at zero accuracy cost."""
        return self.last_sweet_spot > 0 and self.time_reduction > 0


def find_sweet_spot(
    layer: str,
    ratios: Sequence[float],
    accuracies: Sequence[float],
    times: Sequence[float],
    tolerance: float = 0.5,
) -> SweetSpotRegion:
    """Locate the sweet-spot region in one single-layer sweep.

    Parameters
    ----------
    layer:
        Layer name (for the report).
    ratios, accuracies, times:
        The sweep: prune ratios (ascending, starting at 0), accuracy in
        percent and inference time (any consistent unit).
    tolerance:
        Maximum accuracy drop (percentage points) still counted as
        "no reduction in accuracy".

    Returns
    -------
    SweetSpotRegion with the largest qualifying ratio, the fractional
    time saved there, and the (small) accuracy drop incurred.
    """
    r = np.asarray(ratios, dtype=float)
    a = np.asarray(accuracies, dtype=float)
    t = np.asarray(times, dtype=float)
    if not (r.shape == a.shape == t.shape) or r.ndim != 1 or r.size < 2:
        raise ValueError("ratios/accuracies/times must be equal-length 1-D")
    if r[0] != 0.0 or np.any(np.diff(r) <= 0):
        raise ValueError("ratios must start at 0 and increase")
    baseline_acc = a[0]
    baseline_time = t[0]
    ok = a >= baseline_acc - tolerance
    # the region must be contiguous from 0%
    qualifying = np.where(np.cumprod(ok))[0]
    last = int(qualifying[-1])
    return SweetSpotRegion(
        layer=layer,
        last_sweet_spot=float(r[last]),
        time_reduction=float(1.0 - t[last] / baseline_time),
        accuracy_drop=float(baseline_acc - a[last]),
    )

"""Async open-loop load generation against the planning control plane.

The harness replays a seeded *trace* of planning queries against a
target (a live HTTP server or an in-process
:class:`~repro.service.server.PlanningService`), open-loop: request
``i`` is issued at its precomputed arrival time regardless of whether
earlier requests have completed, so a slow control plane accumulates
measurable queueing delay instead of silently throttling the offered
load.  Arrival times come from the same generators the serving
simulators use (:mod:`repro.serving.arrivals`), so the offered process
is reproducible from ``(arrival, rate, duration, seed)`` alone.

Pieces:

* :class:`PlanMixture` — a seeded mixture over targets / deadlines /
  budgets that expands into concrete
  :class:`~repro.api.PlanRequest` traces (all sharing one grid, so a
  warm service answers every query from the evaluation-space cache);
* :class:`InProcessTarget` / :class:`HttpTarget` — where requests go;
* :func:`run_load` — replay a trace, returning a :class:`LoadReport`
  with throughput, latency percentiles (measured from each request's
  *scheduled* arrival, so queueing counts), per-status counts and the
  evaluation-cache hit/miss delta observed during the run.

The ``service.plan`` bench scenario wraps :func:`run_load` over the
in-process target; ``python -m repro loadgen`` drives a live server.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.api import ApiError, PlanRequest
from repro.serving.arrivals import (
    bursty_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)

__all__ = [
    "HttpTarget",
    "InProcessTarget",
    "LoadReport",
    "PlanMixture",
    "TRANSPORT_ERROR_STATUS",
    "run_load",
]

_GENERATORS = {
    "poisson": poisson_arrivals,
    "uniform": uniform_arrivals,
    "bursty": bursty_arrivals,
}

_CACHE_COUNTERS = ("evalspace.cache_hits", "evalspace.cache_misses")


# ----------------------------------------------------------------------
# request mixtures
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanMixture:
    """A seeded mixture of planning queries over one shared grid.

    Each request draws independently (from ``seed``) a target from
    ``targets``, a deadline from ``deadlines_h`` and a budget from
    ``budgets`` (``None`` entries mean "constraint absent", selecting
    the frontier / min-budget / min-deadline query kinds).  Grid
    fields (``model``, ``images``, ``instances_per_type``,
    ``catalog``) are fixed across the mixture so every query plans
    over the *same* evaluated space — the warm-cache regime the
    control plane is sized for.
    """

    model: str = "caffenet"
    metric: str = "top5"
    targets: tuple[float, ...] = (78.0, 80.0)
    deadlines_h: tuple[float | None, ...] = (None, 6.0, 12.0)
    budgets: tuple[float | None, ...] = (None, 100.0)
    images: int = 20_000_000
    instances_per_type: int = 2
    catalog: tuple[str, ...] | None = None
    seed: int = 0

    def requests(self, n: int) -> list[PlanRequest]:
        """The first ``n`` requests of this mixture's trace."""
        rng = np.random.default_rng(self.seed)
        targets = rng.choice(np.asarray(self.targets, dtype=float), size=n)
        deadline_picks = rng.integers(0, len(self.deadlines_h), size=n)
        budget_picks = rng.integers(0, len(self.budgets), size=n)
        return [
            PlanRequest(
                target=float(targets[i]),
                model=self.model,
                metric=self.metric,
                deadline_h=self.deadlines_h[deadline_picks[i]],
                budget=self.budgets[budget_picks[i]],
                images=self.images,
                instances_per_type=self.instances_per_type,
                catalog=self.catalog,
            )
            for i in range(n)
        ]


# ----------------------------------------------------------------------
# targets
# ----------------------------------------------------------------------
class InProcessTarget:
    """Drive a :class:`~repro.service.server.PlanningService` directly.

    No sockets: ``send`` calls ``dispatch`` on the calling thread, so
    the measured latency is pure control-plane work.  Cache counters
    are read from the current observability scope.
    """

    def __init__(self, service=None) -> None:
        if service is None:
            from repro.service.server import PlanningService

            service = PlanningService()
        self.service = service

    def send(self, body: bytes) -> int:
        """POST one plan request; returns the HTTP status."""
        status, _, _ = self.service.dispatch("POST", "/v1/plan", body)
        return status

    def cache_counters(self) -> dict[str, int]:
        """Current evaluation-space hit/miss counters."""
        from repro.obs import get_metrics

        counters = get_metrics().snapshot().get("counters", {})
        return {k: int(counters.get(k, 0)) for k in _CACHE_COUNTERS}


#: synthetic status for requests that failed below HTTP (refused /
#: reset / truncated connections, timeouts) — counts as an error in
#: :class:`LoadReport` instead of aborting the whole replay
TRANSPORT_ERROR_STATUS = 599


class HttpTarget:
    """Drive a live server over HTTP (stdlib ``urllib`` per request)."""

    def __init__(self, base_url: str, *, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def send(self, body: bytes) -> int:
        """POST one plan request; returns the HTTP status.

        Transport failures (connection refused/reset, timeouts,
        truncated responses) come back as
        :data:`TRANSPORT_ERROR_STATUS` — an open-loop harness must
        record a dropped connection as a data point, not die on it.
        """
        request = urllib.request.Request(
            f"{self.base_url}/v1/plan",
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                response.read()
                return response.status
        except urllib.error.HTTPError as exc:
            exc.read()
            return exc.code
        except (urllib.error.URLError, http.client.HTTPException, OSError):
            return TRANSPORT_ERROR_STATUS

    def cache_counters(self) -> dict[str, int]:
        """Scrape ``/v1/metrics`` and parse the evaluation counters."""
        from repro.obs.export import metric_name

        with urllib.request.urlopen(
            f"{self.base_url}/v1/metrics", timeout=self.timeout_s
        ) as response:
            text = response.read().decode("utf-8")
        wanted = {
            f"{metric_name(name)}_total": name for name in _CACHE_COUNTERS
        }
        out = {name: 0 for name in _CACHE_COUNTERS}
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            sample, _, value = line.rpartition(" ")
            if sample in wanted:
                out[wanted[sample]] = int(float(value))
        return out


# ----------------------------------------------------------------------
# the report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LoadReport:
    """What one load run measured.

    Latencies are completion minus *scheduled* arrival, in seconds —
    open-loop, so a saturated control plane shows up as queueing delay
    rather than reduced throughput.
    """

    requests: int
    wall_s: float
    latencies_s: np.ndarray = field(repr=False)
    status_counts: dict[int, int]
    cache_hits: int
    cache_misses: int

    @property
    def qps(self) -> float:
        """Completed requests per second of wall time."""
        return self.requests / self.wall_s if self.wall_s else 0.0

    @property
    def ok(self) -> int:
        """Requests answered 200."""
        return self.status_counts.get(200, 0)

    @property
    def errors(self) -> int:
        """Requests answered anything but 200 or 422 (infeasible
        answers are valid planning outcomes, not harness errors)."""
        return sum(
            n
            for status, n in self.status_counts.items()
            if status not in (200, 422)
        )

    @property
    def cache_hit_ratio(self) -> float:
        """Evaluation-cache hits over total probes during the run."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def latency_percentile(self, q: float) -> float:
        """Latency percentile in seconds."""
        if self.latencies_s.size == 0:
            return float("nan")
        return float(np.percentile(self.latencies_s, q))

    @property
    def p50(self) -> float:
        """Median latency (s)."""
        return self.latency_percentile(50)

    @property
    def p95(self) -> float:
        """95th-percentile latency (s)."""
        return self.latency_percentile(95)

    @property
    def p99(self) -> float:
        """99th-percentile latency (s)."""
        return self.latency_percentile(99)

    def summary(self) -> dict:
        """JSON-ready headline numbers."""
        return {
            "requests": self.requests,
            "wall_s": self.wall_s,
            "qps": self.qps,
            "p50_ms": self.p50 * 1e3,
            "p95_ms": self.p95 * 1e3,
            "p99_ms": self.p99 * 1e3,
            "status": {
                str(k): v for k, v in sorted(self.status_counts.items())
            },
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_ratio": self.cache_hit_ratio,
        }

    def render(self) -> str:
        """Human-readable report block."""
        status = "  ".join(
            f"{k}:{v}" for k, v in sorted(self.status_counts.items())
        )
        return "\n".join(
            [
                f"requests  : {self.requests} in {self.wall_s:.2f}s "
                f"({self.qps:.0f} qps)",
                f"latency   : p50 {self.p50 * 1e3:.2f}ms  "
                f"p95 {self.p95 * 1e3:.2f}ms  "
                f"p99 {self.p99 * 1e3:.2f}ms",
                f"status    : {status}",
                f"cache     : {self.cache_hits} hits / "
                f"{self.cache_misses} misses "
                f"({self.cache_hit_ratio:.1%} hit ratio)",
            ]
        )


# ----------------------------------------------------------------------
# the generator
# ----------------------------------------------------------------------
def run_load(
    target,
    mixture: PlanMixture,
    *,
    rate_per_s: float,
    duration_s: float | None = None,
    n_requests: int | None = None,
    arrival: str = "uniform",
    seed: int | None = None,
    max_workers: int = 32,
) -> LoadReport:
    """Replay an open-loop planning trace against ``target``.

    Exactly one of ``duration_s`` / ``n_requests`` sizes the trace
    (``n_requests`` derives the duration from the rate, which keeps
    the request count — and therefore every cache counter —
    deterministic).  ``seed`` defaults to the mixture's.
    """
    if (duration_s is None) == (n_requests is None):
        raise ApiError(
            "invalid_request",
            "pass exactly one of duration_s / n_requests",
        )
    if rate_per_s <= 0:
        raise ApiError(
            "invalid_request", f"rate must be positive, got {rate_per_s}"
        )
    if arrival not in _GENERATORS:
        raise ApiError(
            "invalid_request",
            f"unknown arrival process {arrival!r}; "
            f"available: {sorted(_GENERATORS)}",
        )
    if n_requests is not None:
        duration_s = n_requests / rate_per_s
    arrivals = _GENERATORS[arrival](
        rate_per_s,
        duration_s,
        seed=mixture.seed if seed is None else seed,
    )
    if n_requests is not None:
        if arrivals.size < n_requests:
            extra = np.linspace(
                float(arrivals[-1]) if arrivals.size else 0.0,
                duration_s,
                num=n_requests - arrivals.size,
            )
            arrivals = np.concatenate([arrivals, extra])
        arrivals = arrivals[:n_requests]
    if arrivals.size == 0:
        raise ApiError(
            "invalid_request",
            "trace is empty; raise the rate or the duration",
        )
    requests = mixture.requests(arrivals.size)
    bodies = [
        json.dumps(r.to_dict(), sort_keys=True).encode("utf-8")
        for r in requests
    ]
    before = target.cache_counters()
    statuses, latencies, wall = asyncio.run(
        _replay(target, bodies, arrivals, max_workers)
    )
    after = target.cache_counters()
    status_counts: dict[int, int] = {}
    for status in statuses:
        status_counts[status] = status_counts.get(status, 0) + 1
    return LoadReport(
        requests=len(bodies),
        wall_s=wall,
        latencies_s=np.asarray(latencies, dtype=float),
        status_counts=status_counts,
        cache_hits=after["evalspace.cache_hits"]
        - before["evalspace.cache_hits"],
        cache_misses=after["evalspace.cache_misses"]
        - before["evalspace.cache_misses"],
    )


async def _replay(
    target, bodies: list[bytes], arrivals: np.ndarray, max_workers: int
) -> tuple[list[int], list[float], float]:
    """Issue every request at its arrival offset; gather latencies."""
    loop = asyncio.get_running_loop()
    statuses: list[int] = [0] * len(bodies)
    latencies: list[float] = [0.0] * len(bodies)
    start = time.perf_counter()

    async def one(index: int, offset: float, body: bytes) -> None:
        delay = offset - (time.perf_counter() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        scheduled = start + offset
        statuses[index] = await loop.run_in_executor(
            executor, target.send, body
        )
        latencies[index] = time.perf_counter() - scheduled

    with ThreadPoolExecutor(max_workers=max_workers) as executor:
        await asyncio.gather(
            *(
                one(i, float(t), body)
                for i, (t, body) in enumerate(zip(arrivals, bodies))
            )
        )
    return statuses, latencies, time.perf_counter() - start

"""Tests for calibration fitting and the fully-real pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration.accuracy_model import AccuracyPair
from repro.calibration.fitting import (
    fit_accuracy_model,
    fit_synergy_gamma,
    fit_time_curves,
    fit_time_model,
)
from repro.errors import CalibrationError
from repro.perf.device import K80
from repro.pruning import PruneSpec

RATIOS = (0.0, 0.3, 0.6, 0.9)


class TestFitTimeCurves:
    def test_normalises_to_baseline(self):
        curves = fit_time_curves(
            {"conv1": (RATIOS, (20.0, 18.0, 16.0, 14.0))}
        )
        assert curves["conv1"](0.0) == 1.0
        assert curves["conv1"](0.9) == pytest.approx(0.7)

    def test_smooths_noise_monotone(self):
        curves = fit_time_curves(
            {"x": (RATIOS, (10.0, 9.0, 9.5, 8.0))}  # 9.5 is jitter
        )
        assert curves["x"](0.6) == pytest.approx(0.9)  # running min
        assert curves["x"].is_nonincreasing()

    def test_rejects_bad_sweeps(self):
        with pytest.raises(CalibrationError):
            fit_time_curves({"x": ((0.1, 0.5), (1.0, 2.0))})  # no 0
        with pytest.raises(CalibrationError):
            fit_time_curves({"x": ((0.0, 0.5), (0.0, 1.0))})  # zero base


class TestFitSynergyGamma:
    def test_recovers_known_gamma(self):
        curves = fit_time_curves(
            {
                "a": ((0.0, 0.9), (10.0, 8.0)),
                "b": ((0.0, 0.9), (10.0, 7.0)),
            }
        )
        product = 0.8 * 0.7
        for gamma in (1.0, 1.5, 2.0):
            fitted = fit_synergy_gamma(
                curves, {"a": 0.9, "b": 0.9}, product**gamma
            )
            assert fitted == pytest.approx(gamma, rel=1e-6)

    def test_single_layer_combo_gives_one(self):
        curves = fit_time_curves({"a": ((0.0, 0.9), (10.0, 8.0))})
        assert fit_synergy_gamma(curves, {"a": 0.5}, 0.9) == 1.0

    def test_never_below_one(self):
        curves = fit_time_curves(
            {
                "a": ((0.0, 0.9), (10.0, 8.0)),
                "b": ((0.0, 0.9), (10.0, 7.0)),
            }
        )
        # measured fraction larger than the product -> sub-multiplicative,
        # clamp to 1 (our model never predicts slowdowns from pruning)
        assert fit_synergy_gamma(curves, {"a": 0.9, "b": 0.9}, 0.9) == 1.0

    def test_validates_fraction(self):
        with pytest.raises(CalibrationError):
            fit_synergy_gamma({}, {}, 0.0)


class TestFitAccuracyModel:
    def _sweeps(self):
        top5 = {
            "conv1": (RATIOS, (80.0, 80.0, 60.0, 30.0)),
            "conv2": (RATIOS, (80.0, 80.0, 80.0, 50.0)),
        }
        top1 = {
            "conv1": (RATIOS, (55.0, 55.0, 40.0, 20.0)),
            "conv2": (RATIOS, (55.0, 55.0, 55.0, 35.0)),
        }
        return top1, top5

    def test_knees_detected(self):
        top1, top5 = self._sweeps()
        model = fit_accuracy_model(
            "m", AccuracyPair(55.0, 80.0), top1, top5
        )
        assert model.sweet_spots["conv1"] == pytest.approx(0.3)
        assert model.sweet_spots["conv2"] == pytest.approx(0.6)

    def test_single_layer_prediction_matches_measurement(self):
        top1, top5 = self._sweeps()
        model = fit_accuracy_model(
            "m", AccuracyPair(55.0, 80.0), top1, top5
        )
        acc = model.accuracy(PruneSpec({"conv1": 0.6}))
        assert acc.top5 == pytest.approx(60.0)
        assert acc.top1 == pytest.approx(40.0)

    def test_eta_fitted_from_combo(self):
        top1, top5 = self._sweeps()
        # combo at the sweet spots measured 10 points below baseline
        model = fit_accuracy_model(
            "m",
            AccuracyPair(55.0, 80.0),
            top1,
            top5,
            combo_ratios={"conv1": 0.3, "conv2": 0.6},
            combo_top5=70.0,
        )
        assert model.eta_top5 > 0
        combo_acc = model.accuracy(
            PruneSpec({"conv1": 0.3, "conv2": 0.6})
        )
        assert combo_acc.top5 == pytest.approx(70.0, abs=0.5)

    def test_no_combo_means_no_interaction(self):
        top1, top5 = self._sweeps()
        model = fit_accuracy_model(
            "m", AccuracyPair(55.0, 80.0), top1, top5
        )
        assert model.eta_top5 == 0.0

    def test_mismatched_layers_rejected(self):
        top1, top5 = self._sweeps()
        del top1["conv2"]
        with pytest.raises(CalibrationError):
            fit_accuracy_model(
                "m", AccuracyPair(55.0, 80.0), top1, top5
            )


class TestFitTimeModel:
    def test_assembles_model(self):
        model = fit_time_model(
            "m",
            t_saturated=0.01,
            single_inference_s=0.04,
            time_sweeps={"conv1": (RATIOS, (10.0, 9.0, 8.0, 7.0))},
        )
        assert model.time_fraction(PruneSpec({"conv1": 0.9})) == (
            pytest.approx(0.7)
        )
        assert model.inference_time(PruneSpec.unpruned(), 1000, K80) > 0

    def test_validates_anchors(self):
        with pytest.raises(CalibrationError):
            fit_time_model("m", 0.0, 0.04, {})


class TestRealPipeline:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ext_real_pipeline

        ext_real_pipeline.run.cache_clear()
        return ext_real_pipeline.run()

    def test_baseline_learned(self, result):
        assert result.baseline.top1 > 60.0

    def test_multi_point_frontier(self, result):
        assert result.n_pareto >= 3

    def test_cost_saving_exists(self, result):
        # the paper's structural claim, on never-seen measurements
        assert result.cost_saving_at_best > 0.2

    def test_sweet_spots_fitted(self, result):
        assert set(result.sweet_spots) == {"conv1", "conv2"}
        assert all(0 < k <= 0.9 for k in result.sweet_spots.values())

    def test_frontier_monotone(self, result):
        accs = [row[2] for row in result.pareto_rows]
        costs = [row[3] for row in result.pareto_rows]
        assert accs == sorted(accs, reverse=True)
        assert costs == sorted(costs, reverse=True)

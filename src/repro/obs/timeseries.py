"""Streaming windowed aggregation + anomaly detection over telemetry.

The serving stack can already *export* telemetry (histograms, gauges,
OpenMetrics); this module is the piece that *watches* it while the
system runs — the CloudSentinel-style loop the ROADMAP asks for:

* :class:`WindowedSeries` — fixed-width tumbling windows over one
  metric.  Each window is a
  :class:`~repro.obs.telemetry.LatencyHistogram` sketch, so per-window
  count/mean/p50/p95/p99 cost O(buckets) memory no matter how many
  observations land in the window.  Closed windows become immutable
  :class:`WindowSnapshot` rows on a bounded deque.
* :class:`AnomalyDetector` — a robust z-score over an EWMA baseline of
  one window statistic.  Alerts are **edge-triggered** with
  hysteresis: one ``anomaly.raise`` event on the
  :class:`~repro.obs.events.EventBus` when the score crosses the
  threshold, one ``anomaly.resolve`` when it falls back under the
  (lower) resolve bar.  The baseline *freezes* while an anomaly is
  active, so a sustained fault cannot launder itself into the normal.
* :class:`TelemetryPipeline` — named series, each optionally guarded
  by a detector, sharing one window width; the bundle behind the
  planning service's ``/v1/status`` route and the soak harness's
  drift verdicts.

Cold start is deliberately conservative: a detector evaluates nothing
until it has seen ``min_windows`` baseline windows, a constant series
scores z = 0 forever (the sigma floor prevents 0/0), and a window
statistic that comes back ``NaN`` (an empty window's p99) is skipped
rather than propagated.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs.events import EventBus, get_event_bus
from repro.obs.telemetry import DEFAULT_LATENCY_BUCKETS, LatencyHistogram

__all__ = [
    "AnomalyDetector",
    "AnomalyPolicy",
    "TelemetryPipeline",
    "WindowSnapshot",
    "WindowedSeries",
]


# ----------------------------------------------------------------------
# windows
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WindowSnapshot:
    """One closed window of one metric — the unit detectors consume."""

    metric: str
    index: int
    start_s: float
    count: int
    mean: float
    p50: float
    p95: float
    p99: float

    def stat(self, name: str) -> float:
        """Fetch a statistic by name (``count|mean|p50|p95|p99``)."""
        try:
            return float(getattr(self, name))
        except AttributeError:
            raise ConfigurationError(
                f"unknown window statistic {name!r}; "
                "available: count, mean, p50, p95, p99"
            ) from None

    def as_dict(self) -> dict[str, float | int | str]:
        """JSON-ready row (the ``/v1/status`` wire form)."""
        return {
            "metric": self.metric,
            "index": self.index,
            "start_s": self.start_s,
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class WindowedSeries:
    """Fixed-width tumbling windows over one streamed metric.

    ``observe(t, value)`` buckets the observation into window
    ``floor(t / window_s)``; when an observation lands in a *later*
    window the current one closes (snapshot appended, subscribers
    notified).  Late observations — an earlier window's stragglers —
    are absorbed into the open window rather than reopening history,
    so window closure is monotone and each window closes exactly once.
    """

    def __init__(
        self,
        name: str,
        *,
        window_s: float = 1.0,
        keep: int = 600,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        if window_s <= 0:
            raise ConfigurationError(
                f"window_s must be positive, got {window_s}"
            )
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep}")
        self.name = name
        self.window_s = float(window_s)
        self.bounds = bounds
        self.windows: deque[WindowSnapshot] = deque(maxlen=keep)
        self.closed = 0
        self._subscribers: list[Callable[[WindowSnapshot], None]] = []
        self._index: int | None = None
        self._sketch: LatencyHistogram | None = None

    # ------------------------------------------------------------------
    def subscribe(
        self, fn: Callable[[WindowSnapshot], None]
    ) -> Callable[[WindowSnapshot], None]:
        """Call ``fn`` with every :class:`WindowSnapshot` as it closes."""
        self._subscribers.append(fn)
        return fn

    def observe(self, t: float, value: float) -> None:
        """Record ``value`` at stream time ``t`` (seconds)."""
        index = int(t // self.window_s)
        if self._index is None:
            self._index = index
            self._sketch = LatencyHistogram(self.bounds)
        elif index > self._index:
            self._close()
            self._index = index
            self._sketch = LatencyHistogram(self.bounds)
        self._sketch.observe(value)

    def observe_many(self, t: float, values: Iterable[float]) -> None:
        """Record a batch of observations all stamped ``t``."""
        for value in values:
            self.observe(t, value)

    def flush(self) -> None:
        """Close the open window (end of stream / forced rollover)."""
        if self._sketch is not None and self._sketch.count:
            self._close()
        self._index = None
        self._sketch = None

    # ------------------------------------------------------------------
    def _close(self) -> None:
        sketch, index = self._sketch, self._index
        snapshot = WindowSnapshot(
            metric=self.name,
            index=index,
            start_s=index * self.window_s,
            count=sketch.count,
            mean=sketch.mean,
            p50=sketch.p50,
            p95=sketch.p95,
            p99=sketch.p99,
        )
        self.windows.append(snapshot)
        self.closed += 1
        for fn in tuple(self._subscribers):
            fn(snapshot)

    def recent(self, n: int = 5) -> tuple[WindowSnapshot, ...]:
        """The last ``n`` closed windows, oldest first."""
        if n <= 0:
            return ()
        return tuple(self.windows)[-n:]


# ----------------------------------------------------------------------
# anomaly detection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AnomalyPolicy:
    """How one metric's windows are scored.

    Attributes
    ----------
    stat:
        Which :class:`WindowSnapshot` statistic feeds the detector
        (``p99`` for latency, ``mean`` for rates/costs, ``count`` for
        fault counters).
    threshold, resolve:
        Raise when ``|z| >= threshold``; resolve when ``|z| <=
        resolve``.  The gap is hysteresis — a score oscillating around
        the threshold produces one raise/resolve pair, not a storm.
    alpha:
        EWMA decay for the baseline mean and deviation.
    min_windows:
        Baseline windows consumed before any scoring happens (the
        NaN-free cold start).
    min_sigma, rel_floor:
        The deviation is floored at
        ``max(min_sigma, rel_floor * |baseline|)`` so a constant (or
        near-constant) series cannot page on microscopic jitter.
    min_count:
        Windows with fewer observations are skipped outright.
    """

    stat: str = "mean"
    threshold: float = 4.0
    resolve: float = 1.5
    alpha: float = 0.25
    min_windows: int = 5
    min_sigma: float = 1e-6
    rel_floor: float = 0.05
    min_count: int = 1

    def __post_init__(self) -> None:
        if self.threshold <= 0 or self.resolve < 0:
            raise ConfigurationError(
                "need threshold > 0 and resolve >= 0"
            )
        if self.resolve >= self.threshold:
            raise ConfigurationError(
                "resolve must sit below threshold (hysteresis)"
            )
        if not 0 < self.alpha <= 1:
            raise ConfigurationError("alpha must be in (0, 1]")
        if self.min_windows < 1:
            raise ConfigurationError("min_windows must be >= 1")
        if self.min_sigma <= 0 or self.rel_floor < 0:
            raise ConfigurationError(
                "need min_sigma > 0 and rel_floor >= 0"
            )
        if self.min_count < 1:
            raise ConfigurationError("min_count must be >= 1")


class AnomalyDetector:
    """Edge-triggered robust z-score over one windowed statistic.

    Feed it closed windows (:meth:`observe_window`, or subscribe it to
    a :class:`WindowedSeries`); it maintains an EWMA baseline of the
    chosen statistic and its absolute deviation, scores each window as
    ``z = (x - baseline) / max(dev, floor)``, and emits
    ``anomaly.raise`` / ``anomaly.resolve`` events on the bus at the
    policy's edges.  While an anomaly is active the baseline is frozen
    — the fault must *end* (or the operator intervene), not merely
    persist long enough to look normal.
    """

    def __init__(
        self,
        metric: str,
        policy: AnomalyPolicy | None = None,
        *,
        bus: EventBus | None = None,
    ) -> None:
        self.metric = metric
        self.policy = policy if policy is not None else AnomalyPolicy()
        self.bus = bus if bus is not None else get_event_bus()
        self.active = False
        self.events: list[dict] = []
        self.windows_seen = 0
        self._baseline: float | None = None
        self._deviation = 0.0
        self._raised_at: int | None = None

    # ------------------------------------------------------------------
    def observe_window(self, window: WindowSnapshot) -> float | None:
        """Score one closed window; returns z (``None`` when skipped)."""
        policy = self.policy
        x = window.stat(policy.stat)
        if window.count < policy.min_count or not math.isfinite(x):
            return None
        self.windows_seen += 1
        if self._baseline is None:
            self._baseline = x
            return None
        if self.windows_seen <= policy.min_windows:
            self._update_baseline(x)
            return None
        sigma = max(
            self._deviation,
            policy.min_sigma,
            policy.rel_floor * abs(self._baseline),
        )
        z = (x - self._baseline) / sigma
        if not self.active and abs(z) >= policy.threshold:
            self.active = True
            self._raised_at = window.index
            self._emit(
                "anomaly.raise", window, value=x, z=z, sigma=sigma
            )
        elif self.active and abs(z) <= policy.resolve:
            self.active = False
            self._emit(
                "anomaly.resolve",
                window,
                value=x,
                z=z,
                windows_active=window.index - self._raised_at,
            )
            self._raised_at = None
            self._update_baseline(x)
        elif not self.active:
            self._update_baseline(x)
        return z

    # ------------------------------------------------------------------
    def _update_baseline(self, x: float) -> None:
        alpha = self.policy.alpha
        deviation = abs(x - self._baseline)
        self._baseline += alpha * (x - self._baseline)
        self._deviation += alpha * (deviation - self._deviation)

    def _emit(self, kind: str, window: WindowSnapshot, **fields) -> None:
        event = {
            "kind": kind,
            "metric": self.metric,
            "stat": self.policy.stat,
            "window": window.index,
            "at_s": window.start_s,
            "baseline": self._baseline,
            **fields,
        }
        self.events.append(event)
        if self.bus.active:
            self.bus.emit(kind, **{k: v for k, v in event.items() if k != "kind"})

    # ------------------------------------------------------------------
    @property
    def baseline(self) -> float | None:
        """The EWMA baseline of the watched statistic (``None`` cold)."""
        return self._baseline

    @property
    def pairs(self) -> int:
        """Completed raise→resolve pairs."""
        return sum(
            1 for e in self.events if e["kind"] == "anomaly.resolve"
        )

    def state(self) -> dict:
        """JSON-ready detector state for status surfaces."""
        return {
            "metric": self.metric,
            "stat": self.policy.stat,
            "active": self.active,
            "baseline": self._baseline,
            "deviation": self._deviation,
            "windows_seen": self.windows_seen,
            "events": len(self.events),
        }


# ----------------------------------------------------------------------
# the bundle
# ----------------------------------------------------------------------
class TelemetryPipeline:
    """Named :class:`WindowedSeries`, each optionally watched by an
    :class:`AnomalyDetector`, sharing one window width.

    This is the shape both live consumers use: the planning service
    feeds it per-request (latency, cost, shed/error rates, cache hit
    ratio) and serves its :meth:`status` on ``/v1/status``; the soak
    harness feeds it per-window and turns its history into drift
    verdicts.
    """

    def __init__(
        self,
        *,
        window_s: float = 1.0,
        keep: int = 600,
        bus: EventBus | None = None,
    ) -> None:
        if window_s <= 0:
            raise ConfigurationError(
                f"window_s must be positive, got {window_s}"
            )
        self.window_s = float(window_s)
        self.keep = keep
        self.bus = bus
        self.series: dict[str, WindowedSeries] = {}
        self.detectors: dict[str, AnomalyDetector] = {}

    # ------------------------------------------------------------------
    def watch(
        self,
        name: str,
        policy: AnomalyPolicy | None = None,
    ) -> WindowedSeries:
        """Get-or-create the series ``name``; attach a detector when a
        policy is given (idempotent for an existing series)."""
        series = self.series.get(name)
        if series is None:
            series = WindowedSeries(
                name, window_s=self.window_s, keep=self.keep
            )
            self.series[name] = series
        if policy is not None and name not in self.detectors:
            detector = AnomalyDetector(name, policy, bus=self.bus)
            self.detectors[name] = detector
            series.subscribe(detector.observe_window)
        return series

    def observe(self, name: str, t: float, value: float) -> None:
        """Record one observation into series ``name`` (must exist)."""
        self.series[name].observe(t, value)

    def observe_many(
        self, name: str, t: float, values: Iterable[float]
    ) -> None:
        """Record a batch stamped ``t`` into series ``name``."""
        self.series[name].observe_many(t, values)

    def flush(self) -> None:
        """Close every open window (end of stream)."""
        for series in self.series.values():
            series.flush()

    # ------------------------------------------------------------------
    def active_anomalies(self) -> list[dict]:
        """State of every detector currently raising."""
        return [
            d.state()
            for d in self.detectors.values()
            if d.active
        ]

    def anomaly_events(self) -> list[dict]:
        """Every raise/resolve event, in (metric, window) order."""
        events = [
            e for d in self.detectors.values() for e in d.events
        ]
        events.sort(key=lambda e: (e["window"], e["metric"]))
        return events

    def status(self, recent: int = 5) -> dict:
        """JSON-ready live view: recent windows + anomaly state."""
        return {
            "window_s": self.window_s,
            "metrics": {
                name: {
                    "windows": [
                        w.as_dict() for w in series.recent(recent)
                    ],
                    "closed": series.closed,
                    "detector": (
                        self.detectors[name].state()
                        if name in self.detectors
                        else None
                    ),
                }
                for name, series in sorted(self.series.items())
            },
            "anomalies": self.active_anomalies(),
        }

"""Tests for the SGD trainer and accuracy evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnn import build_small_cnn
from repro.cnn.datasets import make_classification_data
from repro.cnn.training import (
    SGDTrainer,
    evaluate_topk,
    softmax_cross_entropy,
)
from repro.errors import ReproError


class TestLoss:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]], dtype=np.float32)
        labels = np.array([0, 1])
        loss, grad = softmax_cross_entropy(logits, labels)
        assert loss < 1e-4
        assert np.abs(grad).max() < 1e-4

    def test_uniform_prediction_log_n_loss(self):
        logits = np.zeros((1, 4), dtype=np.float32)
        loss, _ = softmax_cross_entropy(logits, np.array([2]))
        assert loss == pytest.approx(np.log(4), rel=1e-5)

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((3, 5)).astype(np.float64)
        labels = np.array([1, 4, 0])
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-5
        for i in range(3):
            for j in range(5):
                plus = logits.copy()
                plus[i, j] += eps
                minus = logits.copy()
                minus[i, j] -= eps
                lp, _ = softmax_cross_entropy(plus, labels)
                lm, _ = softmax_cross_entropy(minus, labels)
                fd = (lp - lm) / (2 * eps)
                assert grad[i, j] == pytest.approx(fd, abs=1e-4)


class TestTrainerGradients:
    def test_loss_decreases(self, small_cnn):
        data = make_classification_data(n=64, num_classes=5, size=16, seed=2)
        trainer = SGDTrainer(small_cnn, lr=0.02)
        result = trainer.fit(data, epochs=4, batch_size=16)
        first = np.mean(result.losses[:4])
        last = np.mean(result.losses[-4:])
        assert last < first

    def test_learns_above_chance(self):
        net = build_small_cnn(seed=0)
        data = make_classification_data(n=200, num_classes=5, size=16, seed=3)
        trainer = SGDTrainer(net, lr=0.03)
        result = trainer.fit(data, epochs=8, batch_size=25)
        # 5 classes => chance = 0.20; the tiny CNN should beat it well
        assert result.final_accuracy > 0.5

    def test_conv_gradient_finite_difference(self):
        """End-to-end gradient check through conv+pool+dense on a micro net."""
        net = build_small_cnn(seed=1, input_size=8, width=2)
        rng = np.random.default_rng(4)
        x = rng.standard_normal((2, 1, 8, 8)).astype(np.float32)
        y = np.array([0, 3])
        trainer = SGDTrainer(net)
        logits, cache = trainer._forward(x)
        _, grad = softmax_cross_entropy(logits, y)
        grads = trainer._backward(grad, cache)
        conv = net.layer("conv1")
        dw = grads["conv1"][0]
        eps = 1e-3
        for idx in [(0, 0, 0, 0), (1, 0, 2, 1), (0, 0, 1, 2)]:
            orig = conv.weights[idx]
            conv.weights[idx] = orig + eps
            lp, _ = softmax_cross_entropy(net.forward(x), y)
            conv.weights[idx] = orig - eps
            lm, _ = softmax_cross_entropy(net.forward(x), y)
            conv.weights[idx] = orig
            fd = (lp - lm) / (2 * eps)
            assert dw[idx] == pytest.approx(fd, rel=0.05, abs=1e-3)

    def test_rejects_grouped_conv(self, rng):
        from repro.cnn.conv import ConvLayer
        from repro.cnn.network import Network

        net = Network(
            "g", (4, 6, 6), [ConvLayer("c", 4, 4, 3, pad=1, groups=2, rng=rng)]
        )
        with pytest.raises(ReproError, match="grouped"):
            SGDTrainer(net)

    def test_rejects_unsupported_layer(self, caffenet_const):
        with pytest.raises(ReproError, match="does not support"):
            SGDTrainer(caffenet_const)


class TestEvaluate:
    def test_topk_widens_accuracy(self, small_cnn, tiny_data):
        top1 = evaluate_topk(small_cnn, tiny_data, k=1)
        top5 = evaluate_topk(small_cnn, tiny_data, k=5)
        assert 0.0 <= top1 <= top5 <= 1.0

    def test_top_nclasses_is_one(self, small_cnn, tiny_data):
        assert evaluate_topk(small_cnn, tiny_data, k=5) == 1.0

    def test_dataset_batches_cover_everything(self, tiny_data):
        batches = tiny_data.batches(17)
        assert sum(len(by) for _, by in batches) == len(tiny_data)

    def test_dataset_deterministic(self):
        a = make_classification_data(10, seed=9)
        b = make_classification_data(10, seed=9)
        np.testing.assert_array_equal(a.x, b.x)

    def test_dataset_classes_differ(self):
        data = make_classification_data(10, num_classes=5, seed=1)
        # class-0 and class-1 prototypes should be visibly different
        x0 = data.x[data.y == 0].mean(axis=0)
        x1 = data.x[data.y == 1].mean(axis=0)
        assert np.abs(x0 - x1).mean() > 0.05

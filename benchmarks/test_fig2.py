"""Benchmark: Figure 2 — the paper's three-stage pipeline, end to end.

Characterize -> measure -> model + Pareto on Caffenet; asserts the
five-Pareto-point structure the paper reports.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig2_pipeline


def test_fig2_pipeline(benchmark):
    result = benchmark.pedantic(fig2_pipeline.run, rounds=2, iterations=1)
    assert result.characterization.single_inference_s == pytest.approx(0.09)
    assert result.n_pareto_time == 5
    assert result.n_pareto_cost == 5

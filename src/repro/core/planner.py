"""Inverse planning queries over the configuration space.

The paper answers "what fits inside (T', C')?"; a consumer budgeting a
project asks the inverse questions:

* :func:`min_budget_for` — the cheapest money that buys a target
  accuracy within a deadline;
* :func:`min_deadline_for` — the shortest completion time a budget can
  buy at a target accuracy;
* :func:`iso_accuracy_frontier` — the (deadline, budget) trade curve
  for one accuracy target: every point is a different Pareto-optimal
  configuration for the same result quality.

All three are vectorised selections over one
:class:`~repro.core.evalspace.EvaluatedSpace`;
:class:`PlanningSpace` is a thin (space, metric) view whose queries run
on the space's numpy columns.

:func:`cheapest_fleet` extends the same inverse-query discipline to the
*serving* axis: candidate routed fleets
(:class:`~repro.serving.fleet.FleetSpec`) are evaluated through the
content-keyed fleet cache and filtered by availability and tail
latency, exactly the way the batch queries filter the evaluation
space.
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.simulator import CloudSimulator, SimulationResult
from repro.core.evalspace import EvaluatedSpace, SpaceSpec, evaluate
from repro.core.pareto import pareto_indices
from repro.errors import InfeasibleError
from repro.pruning.schedule import DegreeOfPruning

__all__ = [
    "PlanningSpace",
    "cheapest_fleet",
    "min_budget_for",
    "min_deadline_for",
    "iso_accuracy_frontier",
]


@dataclass(frozen=True, eq=False)
class PlanningSpace:
    """An evaluated (degree x configuration) space to plan over."""

    space: EvaluatedSpace
    metric: str = "top5"

    @classmethod
    def evaluate(
        cls,
        simulator: CloudSimulator,
        degrees: Sequence[DegreeOfPruning],
        configurations: Sequence[ResourceConfiguration],
        images: int,
        metric: str = "top5",
    ) -> "PlanningSpace":
        """Evaluate a fresh grid and wrap it for planning queries."""
        evaluated = evaluate(
            SpaceSpec.from_simulator(
                simulator, degrees, configurations, images
            )
        )
        return cls(space=evaluated, metric=metric)

    # ------------------------------------------------------------------
    @property
    def results(self) -> tuple[SimulationResult, ...]:
        """The underlying per-point simulation records."""
        return self.space.results

    def _accurate_enough(self, target: float) -> np.ndarray:
        """Indices of rows at or above the target accuracy."""
        return np.flatnonzero(self.space.accuracy(self.metric) >= target)

    def reachable_accuracy(self) -> float:
        """Best accuracy anywhere in the space (no constraints)."""
        return float(self.space.accuracy(self.metric).max())


def _min_budget_for(
    space: PlanningSpace,
    target_accuracy: float,
    deadline_s: float,
) -> SimulationResult:
    """Cheapest configuration reaching ``target_accuracy`` in time."""
    idx = space._accurate_enough(target_accuracy)
    idx = idx[space.space.time_s[idx] <= deadline_s]
    if idx.size == 0:
        raise InfeasibleError(
            f"no configuration reaches {target_accuracy}% "
            f"{space.metric} within {deadline_s:.0f}s"
        )
    # lexsort is stable: min by (cost, time), first occurrence on ties
    order = np.lexsort((space.space.time_s[idx], space.space.cost[idx]))
    return space.results[idx[order[0]]]


def _min_deadline_for(
    space: PlanningSpace,
    target_accuracy: float,
    budget: float,
) -> SimulationResult:
    """Fastest configuration reaching ``target_accuracy`` on budget."""
    idx = space._accurate_enough(target_accuracy)
    idx = idx[space.space.cost[idx] <= budget]
    if idx.size == 0:
        raise InfeasibleError(
            f"no configuration reaches {target_accuracy}% "
            f"{space.metric} within ${budget:.2f}"
        )
    order = np.lexsort((space.space.cost[idx], space.space.time_s[idx]))
    return space.results[idx[order[0]]]


def _iso_accuracy_frontier(
    space: PlanningSpace, target_accuracy: float
) -> list[SimulationResult]:
    """The (time, cost) Pareto curve at one accuracy target.

    Points are mutually non-dominated in (time, cost) among all
    configurations meeting the accuracy bar; walking the curve trades
    money for completion time at constant result quality.
    """
    idx = space._accurate_enough(target_accuracy)
    if idx.size == 0:
        raise InfeasibleError(
            f"no configuration reaches {target_accuracy}% {space.metric}"
        )
    # reuse the 2-D filter with accuracy := -time (maximise -time)
    local = pareto_indices(
        -space.space.time_s[idx], space.space.cost[idx]
    )
    return [space.results[i] for i in idx[local]]


def _cheapest_fleet(
    candidates: Sequence,
    workload,
    *,
    availability: float = 0.999,
    p99_s: float | None = None,
):
    """Cheapest candidate fleet meeting availability A and p99 L.

    Each candidate (a :class:`~repro.serving.fleet.FleetSpec`) is
    evaluated under ``workload`` through the content-keyed fleet cache
    — repeated planner queries over overlapping candidate sets pay for
    each simulation once per process.  Feasible fleets serve at least
    ``availability`` of the offered stream and (when ``p99_s`` is set)
    keep fleet-wide p99 latency at or below it; the cheapest by run
    cost wins, declaration order breaking ties.  Returns
    ``(spec, report)``; raises
    :class:`~repro.errors.InfeasibleError` when no candidate
    qualifies.
    """
    from repro.serving.fleet import evaluate_fleet

    candidates = tuple(candidates)
    if not candidates:
        raise InfeasibleError("no candidate fleets to choose from")
    best: tuple | None = None
    for spec in candidates:
        report = evaluate_fleet(spec, workload)
        if report.availability < availability:
            continue
        if p99_s is not None:
            p99 = report.p99
            if not np.isfinite(p99) or p99 > p99_s:
                continue
        if best is None or report.cost < best[1].cost:
            best = (spec, report)
    if best is None:
        constraint = f"availability >= {availability:.3f}"
        if p99_s is not None:
            constraint += f" and p99 <= {p99_s:.3f}s"
        raise InfeasibleError(
            f"none of the {len(candidates)} candidate fleets meets "
            f"{constraint}"
        )
    return best


# ----------------------------------------------------------------------
# deprecated free-function shims
# ----------------------------------------------------------------------
def _deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.core.planner.{name} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def min_budget_for(
    space: PlanningSpace,
    target_accuracy: float,
    deadline_s: float,
) -> SimulationResult:
    """Deprecated shim for :func:`repro.api.plan` (``deadline_h`` set).

    Delegates unchanged; new code builds a
    :class:`repro.api.PlanRequest` instead.
    """
    _deprecated("min_budget_for", "repro.api.plan")
    return _min_budget_for(space, target_accuracy, deadline_s)


def min_deadline_for(
    space: PlanningSpace,
    target_accuracy: float,
    budget: float,
) -> SimulationResult:
    """Deprecated shim for :func:`repro.api.plan` (``budget`` set)."""
    _deprecated("min_deadline_for", "repro.api.plan")
    return _min_deadline_for(space, target_accuracy, budget)


def iso_accuracy_frontier(
    space: PlanningSpace, target_accuracy: float
) -> list[SimulationResult]:
    """Deprecated shim for :func:`repro.api.plan` (no constraints)."""
    _deprecated("iso_accuracy_frontier", "repro.api.plan")
    return _iso_accuracy_frontier(space, target_accuracy)


def cheapest_fleet(
    candidates: Sequence,
    workload,
    *,
    availability: float = 0.999,
    p99_s: float | None = None,
):
    """Deprecated shim for :func:`repro.api.select_cheapest_fleet`."""
    _deprecated("cheapest_fleet", "repro.api.select_cheapest_fleet")
    return _cheapest_fleet(
        candidates, workload, availability=availability, p99_s=p99_s
    )

"""Benchmark: Figure 5 — parallel inference saturation on a K80.

Paper: total time falls with parallelism and saturates around 300.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig5_parallel_inference


def test_fig5_parallel_inference(benchmark):
    result = benchmark(fig5_parallel_inference.run)
    assert np.all(np.diff(result.caffenet_s) <= 1e-9)
    assert 200 <= result.caffenet_knee <= 400
    assert result.saturation_ratio("caffenet") < 0.12

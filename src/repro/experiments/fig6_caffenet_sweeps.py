"""Figure 6: Caffenet per-layer pruning sweeps (time, Top-1, Top-5).

Paper results reproduced here:

* near-linear time decrease for all five layers; conv2 strongest
  (19 -> 14 min), conv1 weakest (19 -> 16.6 min);
* Observation 1 (sweet spots): accuracy flat until a per-layer knee
  (conv1 at 30%, others at 50%), then a gradual drop;
* Observation 2: conv1's accuracy collapses to 0% Top-5 at 90% while
  other layers bottom out near 25%, and the impact ordering does not
  follow the layers' parameter counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration.caffenet import (
    caffenet_accuracy_model,
    caffenet_time_model,
)
from repro.cloud.catalog import instance_type
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.instance import CloudInstance
from repro.cloud.simulator import CloudSimulator
from repro.cnn.models import CAFFENET_CONV_LAYERS
from repro.core.evalspace import SpaceSpec, evaluate
from repro.core.sweet_spot import SweetSpotRegion, find_sweet_spot
from repro.experiments.report import format_table
from repro.obs import get_metrics, get_tracer
from repro.pruning.base import PruneSpec
from repro.pruning.schedule import DEFAULT_RATIOS

__all__ = ["LayerSweep", "Fig6Result", "run", "render", "sweep_layer"]


@dataclass(frozen=True)
class LayerSweep:
    """One subplot: a single layer's (time, top1, top5) response."""

    layer: str
    ratios: tuple[float, ...]
    time_min: tuple[float, ...]
    top1: tuple[float, ...]
    top5: tuple[float, ...]
    sweet_spot: SweetSpotRegion


def sweep_layer(
    simulator: CloudSimulator,
    layer: str,
    images: int = 50_000,
    ratios: tuple[float, ...] = DEFAULT_RATIOS,
    instance: str = "p2.xlarge",
) -> LayerSweep:
    """Single-layer sweep on one reference instance.

    The sweep is a (|ratios| x 1 instance) grid through the evaluation
    core, so repeated sweeps (Figure 7 reuses this, as do the examples)
    share one evaluation via the content-keyed space cache.
    """
    config = ResourceConfiguration([CloudInstance(instance_type(instance))])
    get_metrics().counter("pruning.sweep_points").inc(len(ratios))
    with get_tracer().span(
        "pruning.sweep", layer=layer, points=len(ratios)
    ):
        space = evaluate(
            SpaceSpec.from_simulator(
                simulator,
                [PruneSpec({layer: r}) for r in ratios],
                [config],
                images,
            )
        )
    times = (space.time_s / 60.0).tolist()
    top1s = space.top1.tolist()
    top5s = space.top5.tolist()
    region = find_sweet_spot(layer, ratios, top5s, times)
    return LayerSweep(
        layer=layer,
        ratios=tuple(ratios),
        time_min=tuple(times),
        top1=tuple(top1s),
        top5=tuple(top5s),
        sweet_spot=region,
    )


@dataclass(frozen=True)
class Fig6Result:
    sweeps: tuple[LayerSweep, ...]

    def sweep(self, layer: str) -> LayerSweep:
        for s in self.sweeps:
            if s.layer == layer:
                return s
        raise KeyError(layer)


def run(images: int = 50_000) -> Fig6Result:
    simulator = CloudSimulator(
        caffenet_time_model(), caffenet_accuracy_model()
    )
    return Fig6Result(
        sweeps=tuple(
            sweep_layer(simulator, layer, images=images)
            for layer in CAFFENET_CONV_LAYERS
        )
    )


def render(result: Fig6Result | None = None) -> str:
    result = result or run()
    blocks = []
    for sweep in result.sweeps:
        rows = [
            (f"{r * 100:.0f}%", f"{t:.2f}", f"{a1:.1f}", f"{a5:.1f}")
            for r, t, a1, a5 in zip(
                sweep.ratios, sweep.time_min, sweep.top1, sweep.top5
            )
        ]
        table = format_table(
            ["Prune", "Time (min)", "Top-1 (%)", "Top-5 (%)"], rows
        )
        blocks.append(
            f"== {sweep.layer} (last sweet spot: "
            f"{sweep.sweet_spot.last_sweet_spot * 100:.0f}%, saving "
            f"{sweep.sweet_spot.time_reduction * 100:.1f}% time) ==\n"
            + table
        )
    return "\n\n".join(blocks)

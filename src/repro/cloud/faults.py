"""Fault model for cloud capacity: preemptions, slowdowns, retries.

The paper's Eq. 1-4 assume a perfectly reliable fleet, but real EC2
capacity is not: spot instances are reclaimed with two minutes' notice,
replacements boot slowly, and contended hosts run slow (the tail
behaviour Perseus and Scavenger build their cost models around).  This
module is the single description of that unreliability — a
:class:`FaultPlan` — consumed by both serving simulators:

* :class:`Preemption` — a worker (or instance) is killed at ``at_s``
  and, optionally, comes back ``recover_after_s`` later.  In-flight
  batches on preempted capacity are cancelled and their requests
  requeued, each burning one unit of its **retry budget**; a request
  that exhausts the budget is dropped.
* :class:`Slowdown` — a window during which batches dispatched on a
  worker take ``factor``× their nominal service time (noisy-neighbour
  contention).
* ``timeout_s`` — a request still queued this long after arrival is
  dropped (the client has given up; serving it would be wasted work).

Plans are plain data: they can be written by hand for unit tests or
sampled from exponential failure/recovery processes with
:meth:`FaultPlan.sample`.  An all-zero plan (``FaultPlan.none()``) is
the reliable-fleet special case and must leave simulator output
byte-identical to running with no plan at all — the invariant the
fault tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Preemption", "Slowdown", "FaultPlan"]


@dataclass(frozen=True)
class Preemption:
    """One capacity loss event.

    Attributes
    ----------
    target:
        Which worker (static fleet) or live instance (elastic fleet)
        is hit, taken modulo the pool size at the moment the event
        fires — so hand-written plans stay valid for any fleet width.
    at_s:
        Simulation time of the preemption.
    recover_after_s:
        Seconds until the same worker returns to service, or ``None``
        for a permanent loss (a spot reclaim; elastic fleets replace
        it with a fresh launch instead).
    """

    target: int
    at_s: float
    recover_after_s: float | None = None

    def __post_init__(self) -> None:
        if self.target < 0:
            raise ConfigurationError("preemption target must be >= 0")
        if self.at_s < 0:
            raise ConfigurationError("preemption time must be >= 0")
        if self.recover_after_s is not None and self.recover_after_s <= 0:
            raise ConfigurationError("recovery delay must be positive")


@dataclass(frozen=True)
class Slowdown:
    """A contention window: batches started on ``target`` between
    ``start_s`` and ``start_s + duration_s`` run ``factor``× slower."""

    target: int
    start_s: float
    duration_s: float
    factor: float

    def __post_init__(self) -> None:
        if self.target < 0:
            raise ConfigurationError("slowdown target must be >= 0")
        if self.start_s < 0 or self.duration_s <= 0:
            raise ConfigurationError("bad slowdown window")
        if self.factor < 1.0:
            raise ConfigurationError("slowdown factor must be >= 1")

    def active(self, now: float) -> bool:
        return self.start_s <= now < self.start_s + self.duration_s


@dataclass(frozen=True)
class FaultPlan:
    """The complete fault schedule plus the resilience policy knobs.

    Attributes
    ----------
    preemptions, slowdowns:
        The scheduled fault events (may be empty).
    retry_budget:
        How many times a single request may be requeued after losing
        its worker before it counts as dropped.  ``0`` means any
        preempted in-flight request is lost.
    timeout_s:
        Queueing deadline: a request still undispatched this long
        after arrival is dropped.  ``None`` disables the deadline.
    """

    preemptions: tuple[Preemption, ...] = ()
    slowdowns: tuple[Slowdown, ...] = ()
    retry_budget: int = 2
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.retry_budget < 0:
            raise ConfigurationError("retry budget must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError("timeout must be positive")
        # normalise list inputs so hand-written plans hash/compare
        object.__setattr__(self, "preemptions", tuple(self.preemptions))
        object.__setattr__(self, "slowdowns", tuple(self.slowdowns))

    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> FaultPlan:
        """The reliable fleet: no faults, no deadline."""
        return cls()

    @property
    def is_zero(self) -> bool:
        """True when the plan cannot perturb a simulation."""
        return (
            not self.preemptions
            and not self.slowdowns
            and self.timeout_s is None
        )

    def slowdown_factor(self, target: int, now: float) -> float:
        """Service-time multiplier for a batch started on ``target``
        at ``now`` (product of all active windows; 1.0 when clear)."""
        factor = 1.0
        for s in self.slowdowns:
            if s.target == target and s.active(now):
                factor *= s.factor
        return factor

    # ------------------------------------------------------------------
    @classmethod
    def sample(
        cls,
        *,
        duration_s: float,
        workers: int,
        mtbf_s: float | None = None,
        recovery_s: float | None = 15.0,
        slow_every_s: float | None = None,
        slow_duration_s: float = 10.0,
        slow_factor: float = 2.0,
        retry_budget: int = 2,
        timeout_s: float | None = None,
        seed: int = 0,
    ) -> FaultPlan:
        """Draw a plan from exponential failure/contention processes.

        Each of ``workers`` fails as a Poisson process with mean time
        between failures ``mtbf_s`` (``None`` disables preemptions) and
        recovers after ``recovery_s`` seconds (``None`` = permanent).
        Independently, each worker enters ``slow_factor``× contention
        windows of ``slow_duration_s`` at mean interval ``slow_every_s``.
        Deterministic for a fixed ``seed``.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if workers < 1:
            raise ConfigurationError("need at least one worker")
        if mtbf_s is not None and mtbf_s <= 0:
            raise ConfigurationError("mtbf must be positive")
        if slow_every_s is not None and slow_every_s <= 0:
            raise ConfigurationError("slowdown interval must be positive")
        rng = np.random.default_rng(seed)
        preemptions: list[Preemption] = []
        slowdowns: list[Slowdown] = []
        for worker in range(workers):
            if mtbf_s is not None:
                t = float(rng.exponential(mtbf_s))
                while t < duration_s:
                    preemptions.append(
                        Preemption(worker, t, recovery_s)
                    )
                    if recovery_s is None:
                        break  # permanently gone: no further failures
                    t += recovery_s + float(rng.exponential(mtbf_s))
            if slow_every_s is not None:
                t = float(rng.exponential(slow_every_s))
                while t < duration_s:
                    slowdowns.append(
                        Slowdown(worker, t, slow_duration_s, slow_factor)
                    )
                    t += slow_duration_s + float(
                        rng.exponential(slow_every_s)
                    )
        preemptions.sort(key=lambda p: (p.at_s, p.target))
        slowdowns.sort(key=lambda s: (s.start_s, s.target))
        return cls(
            preemptions=tuple(preemptions),
            slowdowns=tuple(slowdowns),
            retry_budget=retry_budget,
            timeout_s=timeout_s,
        )

"""Shared fixtures.

Heavy networks (Caffenet, Googlenet) are built once per session with
constant weights — tests that need real weights build their own.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnn import build_caffenet, build_googlenet, build_small_cnn
from repro.cnn.datasets import make_classification_data


@pytest.fixture(scope="session")
def caffenet_const():
    """Caffenet with constant weights (cost-model studies)."""
    return build_caffenet(init="const")


@pytest.fixture(scope="session")
def googlenet_const():
    """Googlenet with constant weights (cost-model studies)."""
    return build_googlenet(init="const")


@pytest.fixture(scope="session")
def caffenet_random():
    """Caffenet with He-initialised weights (pruning-rank studies)."""
    return build_caffenet(seed=7)


@pytest.fixture()
def small_cnn():
    """Fresh small CNN per test (tests mutate weights)."""
    return build_small_cnn(seed=3)


@pytest.fixture(scope="session")
def tiny_data():
    """Small synthetic dataset for quick evaluation tests."""
    return make_classification_data(n=60, num_classes=5, size=16, seed=11)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)

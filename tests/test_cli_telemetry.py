"""CLI telemetry surface: export flags, ``metrics`` and ``bench``."""

from __future__ import annotations

import json

from repro.cli import main


def _read_jsonl(path) -> list[dict]:
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestExperimentsTelemetryFlags:
    def test_trace_metrics_and_event_log(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.prom"
        log = tmp_path / "ev.jsonl"
        code = main(
            [
                "experiments",
                "table1",
                "--manifest",
                str(tmp_path / "manifest.json"),
                "--trace-out",
                str(trace),
                "--metrics-out",
                str(metrics),
                "--log-json",
                str(log),
            ]
        )
        assert code == 0
        doc = json.loads(trace.read_text())
        assert any(
            e["ph"] == "X" and e["name"] == "experiment"
            for e in doc["traceEvents"]
        )
        text = metrics.read_text()
        assert "repro_engine_artefact_s_count" in text
        assert text.endswith("# EOF\n")
        events = _read_jsonl(log)
        assert events[0]["schema"] == "repro.events/v1"
        kinds = [e.get("kind") for e in events]
        for expected in (
            "run.start",
            "experiment.start",
            "experiment.end",
            "run.end",
            "log.close",
        ):
            assert expected in kinds, expected

    def test_metrics_out_json_flavour(self, tmp_path):
        out = tmp_path / "m.json"
        code = main(
            [
                "experiments",
                "table1",
                "--manifest",
                str(tmp_path / "manifest.json"),
                "--metrics-out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.metrics/v1"


class TestServeTelemetryFlags:
    def test_faulty_serve_emits_alerts_and_exports(
        self, tmp_path, capsys
    ):
        metrics = tmp_path / "serve.prom"
        log = tmp_path / "serve.jsonl"
        code = main(
            [
                "serve",
                "--instances",
                "p2.xlarge",
                "--rate",
                "120",
                "--duration",
                "30",
                "--faults",
                "10",
                "--fault-recovery",
                "5",
                "--request-timeout",
                "2",
                "--slo",
                "0.5",
                "--metrics-out",
                str(metrics),
                "--log-json",
                str(log),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry :" in out
        assert "SLO alert" in out  # faults at this load must page
        text = metrics.read_text()
        assert "repro_serving_latency_p99_s" in text
        assert "repro_serving_availability" in text
        kinds = {e.get("kind") for e in _read_jsonl(log)}
        assert "slo.alert" in kinds

    def test_clean_serve_has_histogram_no_alerts(self, capsys):
        code = main(
            [
                "serve",
                "--instances",
                "p2.8xlarge",
                "--rate",
                "50",
                "--duration",
                "10",
                "--slo",
                "5.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry :" in out
        assert "SLO alert" not in out


class TestTraceChromeOut:
    def test_gantt_also_exports(self, tmp_path, capsys):
        out = tmp_path / "gantt.json"
        code = main(
            [
                "trace",
                "--instances",
                "p2.xlarge",
                "p2.8xlarge",
                "--images",
                "200000",
                "--chrome-out",
                str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert any(
            e["name"] == "compute" for e in doc["traceEvents"]
        )


class TestMetricsCommand:
    def test_openmetrics_to_stdout(self, capsys):
        code = main(["metrics", "table1"])
        assert code == 0
        out = capsys.readouterr().out
        assert 'artefact="table1"' in out
        assert out.endswith("# EOF\n")

    def test_json_to_file(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        code = main(
            ["metrics", "table1", "--format", "json", "--output", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["table1"]["schema"] == "repro.metrics/v1"

    def test_unknown_artefact_exit_2(self, capsys):
        assert main(["metrics", "nope"]) == 2


class TestBenchCommand:
    def test_record_then_check(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--record",
                "--repeats",
                "1",
                "--only",
                "allocation.greedy",
                "--root",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "BENCH_1.json").exists()
        code = main(
            [
                "bench",
                "--check",
                "--repeats",
                "1",
                "--only",
                "allocation.greedy",
                "--root",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no regressions" in out

    def test_check_without_baseline_exit_2(self, tmp_path, capsys):
        code = main(["bench", "--check", "--root", str(tmp_path)])
        assert code == 2

    def test_plain_run_prints_suite(self, capsys):
        code = main(
            ["bench", "--repeats", "1", "--only", "allocation.greedy"]
        )
        assert code == 0
        assert "allocation.greedy" in capsys.readouterr().out

    def test_check_fails_on_injected_slowdown(self, tmp_path, capsys):
        """End-to-end: a slower suite must turn the gate red."""
        import repro.obs.bench as bench_mod

        main(
            [
                "bench",
                "--record",
                "--repeats",
                "1",
                "--only",
                "allocation.greedy",
                "--root",
                str(tmp_path),
            ]
        )
        original = bench_mod.SCENARIOS["allocation.greedy"]

        def slowed() -> None:
            import time

            original()
            time.sleep(0.2)

        bench_mod.SCENARIOS["allocation.greedy"] = slowed
        try:
            code = main(
                [
                    "bench",
                    "--check",
                    "--repeats",
                    "1",
                    "--tolerance",
                    "0.5",
                    "--only",
                    "allocation.greedy",
                    "--root",
                    str(tmp_path),
                ]
            )
        finally:
            bench_mod.SCENARIOS["allocation.greedy"] = original
        assert code == 1
        assert "SLOW" in capsys.readouterr().out

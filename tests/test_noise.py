"""Tests for the measurement-noise model and the min-of-N protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import caffenet_time_model
from repro.errors import MeasurementError
from repro.perf.device import K80
from repro.perf.noise import NoisyTimeModel, estimator_errors, min_of_n
from repro.pruning import PruneSpec


@pytest.fixture(scope="module")
def clean():
    return caffenet_time_model()


class TestNoisyTimeModel:
    def test_noise_only_slows(self, clean):
        noisy = NoisyTimeModel(clean, spread=0.1, seed=1)
        truth = clean.inference_time(PruneSpec.unpruned(), 50_000, K80)
        for _ in range(50):
            t = noisy.inference_time(PruneSpec.unpruned(), 50_000, K80)
            assert t > truth

    def test_zero_spread_is_clean(self, clean):
        noisy = NoisyTimeModel(clean, spread=0.0)
        truth = clean.inference_time(PruneSpec.unpruned(), 50_000, K80)
        assert noisy.inference_time(
            PruneSpec.unpruned(), 50_000, K80
        ) == pytest.approx(truth)

    def test_deterministic_replay(self, clean):
        a = NoisyTimeModel(clean, spread=0.1, seed=7)
        b = NoisyTimeModel(clean, spread=0.1, seed=7)
        spec = PruneSpec.unpruned()
        assert a.inference_time(spec, 1000, K80) == b.inference_time(
            spec, 1000, K80
        )

    def test_negative_spread_rejected(self, clean):
        with pytest.raises(MeasurementError):
            NoisyTimeModel(clean, spread=-0.1)

    def test_single_inference_noisy(self, clean):
        noisy = NoisyTimeModel(clean, spread=0.2, seed=3)
        assert noisy.single_inference(PruneSpec.unpruned(), K80) > 0.09


class TestMinOfN:
    def test_returns_minimum(self):
        values = iter([3.0, 1.0, 2.0])
        assert min_of_n(lambda: next(values), 3) == 1.0

    def test_rejects_zero(self):
        with pytest.raises(MeasurementError):
            min_of_n(lambda: 1.0, 0)


class TestProtocolJustification:
    """The paper's min-of-3 protocol beats single-run and mean-of-3
    under asymmetric cloud noise — the reason Section 3.3 uses it."""

    def test_min_estimator_most_accurate(self, clean):
        noisy = NoisyTimeModel(clean, spread=0.08, sigma=1.0, seed=11)
        errors = estimator_errors(
            noisy, PruneSpec.unpruned(), 50_000, K80, trials=150
        )
        assert errors["min"] < errors["single"]
        assert errors["min"] < errors["mean"]

    def test_more_runs_tighter_min(self, clean):
        spec = PruneSpec.unpruned()
        truth = clean.inference_time(spec, 50_000, K80)
        rng_seeds = range(30)
        err3, err9 = [], []
        for seed in rng_seeds:
            noisy = NoisyTimeModel(clean, spread=0.1, seed=seed)
            runs = [
                noisy.inference_time(spec, 50_000, K80) for _ in range(9)
            ]
            err3.append(min(runs[:3]) - truth)
            err9.append(min(runs) - truth)
        assert np.mean(err9) <= np.mean(err3)

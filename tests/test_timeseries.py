"""Windowed streaming aggregation + anomaly detection.

Detector edge cases the ISSUE pins: a constant series never pages, a
single window produces no verdict, and the cold start is NaN-free even
when early windows are empty or carry non-finite statistics.  The
pulse test pins the headline contract — a step that starts and ends
produces exactly one ``anomaly.raise``/``anomaly.resolve`` pair.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import EventBus
from repro.obs.timeseries import (
    AnomalyDetector,
    AnomalyPolicy,
    TelemetryPipeline,
    WindowSnapshot,
    WindowedSeries,
)


def _window(value: float, index: int = 0, count: int = 10, **over):
    fields = {
        "metric": "m",
        "index": index,
        "start_s": float(index),
        "count": count,
        "mean": value,
        "p50": value,
        "p95": value,
        "p99": value,
    }
    fields.update(over)
    return WindowSnapshot(**fields)


class TestWindowedSeries:
    def test_windows_close_when_a_later_one_opens(self):
        series = WindowedSeries("lat", window_s=1.0)
        series.observe(0.2, 1.0)
        series.observe(0.8, 3.0)
        assert series.closed == 0
        series.observe(1.1, 5.0)  # rolls window 0 closed
        assert series.closed == 1
        (first,) = series.windows
        assert first.index == 0 and first.count == 2
        assert first.mean == pytest.approx(2.0)

    def test_late_observations_fold_into_the_open_window(self):
        series = WindowedSeries("lat", window_s=1.0)
        series.observe(5.5, 1.0)
        series.observe(0.1, 9.0)  # straggler from long ago
        series.flush()
        (only,) = series.windows
        assert only.index == 5
        assert only.count == 2  # absorbed, not dropped or reopened

    def test_flush_closes_only_nonempty(self):
        series = WindowedSeries("lat", window_s=1.0)
        series.flush()
        assert series.closed == 0
        series.observe(0.0, 1.0)
        series.flush()
        series.flush()  # idempotent
        assert series.closed == 1

    def test_keep_bounds_history_but_not_the_count(self):
        series = WindowedSeries("lat", window_s=1.0, keep=3)
        for w in range(6):
            series.observe(float(w), 1.0)
        series.flush()
        assert series.closed == 6
        assert [w.index for w in series.windows] == [3, 4, 5]
        assert [w.index for w in series.recent(2)] == [4, 5]

    def test_subscribers_see_each_close_once(self):
        series = WindowedSeries("lat", window_s=1.0)
        seen = []
        series.subscribe(seen.append)
        for w in range(3):
            series.observe(float(w), 1.0)
        series.flush()
        assert [w.index for w in seen] == [0, 1, 2]

    def test_unknown_stat_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            _window(1.0).stat("p999")

    def test_bad_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            WindowedSeries("x", window_s=0.0)
        with pytest.raises(ConfigurationError):
            WindowedSeries("x", keep=0)


class TestAnomalyPolicy:
    def test_hysteresis_gap_required(self):
        with pytest.raises(ConfigurationError):
            AnomalyPolicy(threshold=2.0, resolve=2.0)

    def test_bad_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            AnomalyPolicy(alpha=0.0)


class TestAnomalyDetector:
    def _detector(self, **policy):
        policy.setdefault("min_windows", 3)
        return AnomalyDetector(
            "m", AnomalyPolicy(**policy), bus=EventBus()
        )

    def test_constant_series_never_pages(self):
        detector = self._detector()
        for i in range(200):
            z = detector.observe_window(_window(5.0, i))
        assert detector.events == []
        assert z == 0.0  # sigma floored, not 0/0

    def test_single_window_is_quiet(self):
        detector = self._detector()
        assert detector.observe_window(_window(5.0, 0)) is None
        assert detector.events == []
        assert detector.baseline == 5.0

    def test_cold_start_skips_empty_and_nan_windows(self):
        detector = self._detector()
        assert detector.observe_window(_window(1.0, 0, count=0)) is None
        nan = float("nan")
        assert detector.observe_window(_window(nan, 1)) is None
        assert detector.windows_seen == 0
        assert detector.baseline is None
        # a real window then seeds cleanly — nothing NaN leaked in
        detector.observe_window(_window(5.0, 2))
        assert math.isfinite(detector.baseline)

    def test_pulse_step_is_exactly_one_pair(self):
        detector = self._detector()
        values = [1.0] * 10 + [10.0] * 10 + [1.0] * 10
        for i, v in enumerate(values):
            detector.observe_window(_window(v, i))
        kinds = [e["kind"] for e in detector.events]
        assert kinds == ["anomaly.raise", "anomaly.resolve"]
        assert detector.pairs == 1
        assert not detector.active
        resolve = detector.events[1]
        assert resolve["windows_active"] == 10

    def test_baseline_freezes_while_active(self):
        detector = self._detector()
        for i in range(10):
            detector.observe_window(_window(1.0, i))
        frozen = detector.baseline
        for i in range(10, 60):
            detector.observe_window(_window(10.0, i))
        assert detector.active  # a *sustained* fault stays raised
        assert detector.baseline == frozen  # and cannot launder itself

    def test_events_reach_the_bus(self):
        bus = EventBus()
        received = []
        bus.subscribe(received.append)
        detector = AnomalyDetector(
            "m", AnomalyPolicy(min_windows=3), bus=bus
        )
        for i, v in enumerate([1.0] * 8 + [50.0] * 4 + [1.0] * 4):
            detector.observe_window(_window(v, i))
        kinds = [e["kind"] for e in received]
        assert kinds == ["anomaly.raise", "anomaly.resolve"]
        assert received[0]["metric"] == "m"
        assert received[0]["z"] >= 4.0

    def test_state_is_json_ready(self):
        detector = self._detector()
        detector.observe_window(_window(2.0, 0))
        state = detector.state()
        assert state["metric"] == "m"
        assert state["active"] is False
        assert state["windows_seen"] == 1


class TestTelemetryPipeline:
    def test_watch_is_get_or_create(self):
        pipeline = TelemetryPipeline(window_s=1.0, bus=EventBus())
        a = pipeline.watch("lat", AnomalyPolicy())
        b = pipeline.watch("lat")
        assert a is b
        assert set(pipeline.detectors) == {"lat"}

    def test_status_shape(self):
        pipeline = TelemetryPipeline(window_s=1.0, bus=EventBus())
        pipeline.watch("lat", AnomalyPolicy())
        pipeline.watch("cost")
        for w in range(4):
            pipeline.observe("lat", w + 0.5, 0.01)
            pipeline.observe("cost", w + 0.5, 2.0)
        pipeline.flush()
        status = pipeline.status(recent=2)
        assert status["window_s"] == 1.0
        assert set(status["metrics"]) == {"cost", "lat"}
        lat = status["metrics"]["lat"]
        assert lat["closed"] == 4
        assert len(lat["windows"]) == 2
        assert lat["detector"]["metric"] == "lat"
        assert status["metrics"]["cost"]["detector"] is None
        assert status["anomalies"] == []

    def test_active_anomalies_surface(self):
        pipeline = TelemetryPipeline(window_s=1.0, bus=EventBus())
        pipeline.watch("lat", AnomalyPolicy(min_windows=3))
        for w, v in enumerate([1.0] * 8 + [100.0] * 3):
            pipeline.observe("lat", w + 0.5, v)
        pipeline.flush()
        (active,) = pipeline.active_anomalies()
        assert active["metric"] == "lat"
        events = pipeline.anomaly_events()
        assert [e["kind"] for e in events] == ["anomaly.raise"]

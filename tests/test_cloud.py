"""Tests for the EC2 substrate: catalog, pricing, configurations, simulator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import caffenet_accuracy_model, caffenet_time_model
from repro.cloud import (
    CloudInstance,
    CloudSimulator,
    EC2_CATALOG,
    G3_TYPES,
    P2_TYPES,
    ResourceConfiguration,
    billed_cost,
    billed_seconds,
    instance_type,
)
from repro.errors import ConfigurationError
from repro.pruning import PruneSpec


@pytest.fixture(scope="module")
def sim():
    return CloudSimulator(caffenet_time_model(), caffenet_accuracy_model())


class TestCatalog:
    """The paper's Table 3, row by row."""

    @pytest.mark.parametrize(
        "name,vcpus,gpus,mem,gpumem,price,gpu_name",
        [
            ("p2.xlarge", 4, 1, 61, 12, 0.90, "NVIDIA K80"),
            ("p2.8xlarge", 32, 8, 488, 96, 7.20, "NVIDIA K80"),
            ("p2.16xlarge", 64, 16, 732, 192, 14.40, "NVIDIA K80"),
            ("g3.4xlarge", 16, 1, 122, 8, 1.14, "NVIDIA M60"),
            ("g3.8xlarge", 32, 2, 244, 16, 2.28, "NVIDIA M60"),
            ("g3.16xlarge", 64, 4, 488, 32, 4.56, "NVIDIA M60"),
        ],
    )
    def test_table3_row(self, name, vcpus, gpus, mem, gpumem, price, gpu_name):
        t = instance_type(name)
        assert (t.vcpus, t.gpus, t.memory_gb) == (vcpus, gpus, mem)
        assert t.gpu_memory_gb == gpumem
        assert t.price_per_hour == price
        assert t.gpu.name == gpu_name

    def test_six_types_two_categories(self):
        assert len(EC2_CATALOG) == 6
        assert len(P2_TYPES) == 3 and len(G3_TYPES) == 3

    def test_per_gpu_price_constant_within_category(self):
        p2_prices = {t.price_per_gpu_hour for t in P2_TYPES}
        g3_prices = {t.price_per_gpu_hour for t in G3_TYPES}
        assert p2_prices == {0.90}
        assert g3_prices == {1.14}

    def test_unknown_type_raises(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            instance_type("p9.超large")


class TestPricing:
    def test_rounds_up_to_next_second(self):
        assert billed_seconds(0.2) == 1
        assert billed_seconds(59.01) == 60
        assert billed_seconds(60.0) == 60

    def test_cost_is_prorated_hourly(self):
        t = instance_type("p2.xlarge")
        assert billed_cost(t, 3600.0) == pytest.approx(0.90)
        assert billed_cost(t, 1800.0) == pytest.approx(0.45)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            billed_seconds(-1.0)

    @given(st.floats(0.0, 10_000.0))
    @settings(max_examples=40, deadline=None)
    def test_billing_never_undercharges(self, seconds):
        t = instance_type("g3.4xlarge")
        exact = seconds * t.price_per_hour / 3600.0
        assert billed_cost(t, seconds) >= exact - 1e-12


class TestCloudInstance:
    def test_defaults_to_all_gpus(self):
        inst = CloudInstance(instance_type("p2.8xlarge"))
        assert inst.gpus_used == 8

    def test_single_gpu_mode(self):
        inst = CloudInstance(instance_type("p2.8xlarge"), gpus_used=1)
        assert inst.gpus_used == 1

    def test_too_many_gpus_rejected(self):
        with pytest.raises(ConfigurationError):
            CloudInstance(instance_type("p2.xlarge"), gpus_used=2)

    def test_more_gpus_faster(self):
        tm = caffenet_time_model()
        spec = PruneSpec.unpruned()
        one = CloudInstance(instance_type("p2.8xlarge"), gpus_used=1)
        all8 = CloudInstance(instance_type("p2.8xlarge"), gpus_used=8)
        assert all8.inference_time(tm, spec, 50_000) < one.inference_time(
            tm, spec, 50_000
        )

    def test_zero_images_zero_time(self):
        tm = caffenet_time_model()
        inst = CloudInstance(instance_type("p2.xlarge"))
        assert inst.inference_time(tm, PruneSpec.unpruned(), 0) == 0.0


class TestResourceConfiguration:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceConfiguration([])

    def test_total_price_sums(self):
        cfg = ResourceConfiguration(
            [
                CloudInstance(instance_type("p2.xlarge")),
                CloudInstance(instance_type("g3.4xlarge")),
            ]
        )
        assert cfg.total_price_per_hour == pytest.approx(0.90 + 1.14)

    def test_even_split_eq4(self):
        cfg = ResourceConfiguration(
            [CloudInstance(instance_type("p2.xlarge")) for _ in range(3)]
        )
        assert cfg.split_workload(10) == [4, 3, 3]
        assert sum(cfg.split_workload(10)) == 10

    def test_proportional_split_favours_fast_devices(self):
        tm = caffenet_time_model()
        cfg = ResourceConfiguration(
            [
                CloudInstance(instance_type("p2.xlarge")),  # 1 K80
                CloudInstance(instance_type("g3.4xlarge")),  # 1 M60 (2x)
            ]
        )
        alloc = cfg.split_workload_proportional(
            9000, tm, PruneSpec.unpruned()
        )
        assert sum(alloc) == 9000
        assert alloc[1] > alloc[0]  # M60 gets the bigger share

    def test_makespan_is_max_not_sum(self):
        tm = caffenet_time_model()
        single = ResourceConfiguration(
            [CloudInstance(instance_type("p2.xlarge"))]
        )
        double = ResourceConfiguration(
            [CloudInstance(instance_type("p2.xlarge")) for _ in range(2)]
        )
        t1 = single.makespan(tm, PruneSpec.unpruned(), 50_000)
        t2 = double.makespan(tm, PruneSpec.unpruned(), 50_000)
        assert t2 == pytest.approx(t1 / 2, rel=0.05)

    def test_cost_eq1_bills_all_instances_for_makespan(self):
        tm = caffenet_time_model()
        # one fast g3 + one slow p2: both are billed until the slow one ends
        cfg = ResourceConfiguration(
            [
                CloudInstance(instance_type("p2.xlarge")),
                CloudInstance(instance_type("g3.4xlarge")),
            ]
        )
        t, c = cfg.evaluate(tm, PruneSpec.unpruned(), 50_000)
        assert c == pytest.approx((0.90 + 1.14) * -(-t // 1) / 3600.0)

    def test_proportional_split_never_slower(self):
        tm = caffenet_time_model()
        cfg = ResourceConfiguration(
            [
                CloudInstance(instance_type("p2.xlarge")),
                CloudInstance(instance_type("g3.16xlarge")),
            ]
        )
        spec = PruneSpec.unpruned()
        even = cfg.makespan(tm, spec, 100_000)
        prop = cfg.makespan(tm, spec, 100_000, proportional_split=True)
        assert prop <= even

    def test_label(self):
        cfg = ResourceConfiguration(
            [
                CloudInstance(instance_type("p2.xlarge")),
                CloudInstance(instance_type("p2.xlarge")),
                CloudInstance(instance_type("g3.4xlarge")),
            ]
        )
        assert cfg.label() == "1xg3.4xlarge+2xp2.xlarge"


class TestSimulator:
    def test_result_fields(self, sim):
        cfg = ResourceConfiguration(
            [CloudInstance(instance_type("p2.xlarge"))]
        )
        r = sim.run(PruneSpec.unpruned(), cfg, 50_000)
        assert r.time_s / 60 == pytest.approx(19.0, rel=1e-6)
        assert r.cost == pytest.approx(19.0 / 60 * 0.90, rel=0.01)
        assert r.accuracy.top5 == pytest.approx(80.0)

    def test_tar_car_definitions(self, sim):
        cfg = ResourceConfiguration(
            [CloudInstance(instance_type("p2.xlarge"))]
        )
        r = sim.run(PruneSpec.unpruned(), cfg, 50_000)
        assert r.tar("top5") == pytest.approx(r.time_hours / 0.80)
        assert r.car("top5") == pytest.approx(r.cost / 0.80)

    def test_within_constraints(self, sim):
        cfg = ResourceConfiguration(
            [CloudInstance(instance_type("p2.xlarge"))]
        )
        r = sim.run(PruneSpec.unpruned(), cfg, 50_000)
        assert r.within(deadline_s=None, budget=None)
        assert r.within(deadline_s=r.time_s + 1, budget=r.cost + 1)
        assert not r.within(deadline_s=r.time_s - 1, budget=None)
        assert not r.within(deadline_s=None, budget=r.cost / 2)

    def test_pruning_reduces_time_and_cost(self, sim):
        cfg = ResourceConfiguration(
            [CloudInstance(instance_type("p2.xlarge"))]
        )
        base = sim.run(PruneSpec.unpruned(), cfg, 50_000)
        pruned = sim.run(PruneSpec({"conv2": 0.5}), cfg, 50_000)
        assert pruned.time_s < base.time_s
        assert pruned.cost < base.cost
        assert pruned.accuracy.top5 == base.accuracy.top5  # sweet spot

    def test_mismatched_models_rejected(self):
        from repro.calibration import googlenet_accuracy_model

        with pytest.raises(ConfigurationError, match="mismatch"):
            CloudSimulator(caffenet_time_model(), googlenet_accuracy_model())

    def test_sweep_is_cross_product_and_deprecated(self, sim):
        cfgs = [
            ResourceConfiguration([CloudInstance(instance_type(n))])
            for n in ("p2.xlarge", "g3.4xlarge")
        ]
        specs = [PruneSpec.unpruned(), PruneSpec({"conv1": 0.2})]
        with pytest.warns(DeprecationWarning, match="evalspace"):
            results = sim.sweep(specs, cfgs, 10_000)
        assert len(results) == 4
        # the shim delegates to the evaluation core, same row order
        expected = [
            sim.run(spec, cfg, 10_000) for spec in specs for cfg in cfgs
        ]
        assert [(r.spec, r.configuration) for r in results] == [
            (r.spec, r.configuration) for r in expected
        ]
        assert [r.time_s for r in results] == [r.time_s for r in expected]

    def test_zero_images_rejected(self, sim):
        cfg = ResourceConfiguration(
            [CloudInstance(instance_type("p2.xlarge"))]
        )
        with pytest.raises(ConfigurationError):
            sim.run(PruneSpec.unpruned(), cfg, 0)

"""Tests for the CLI ``serve`` subcommand."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestServeCommand:
    def test_poisson_serve(self, capsys):
        code = main(
            [
                "serve",
                "--instances",
                "p2.8xlarge",
                "--rate",
                "100",
                "--duration",
                "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p99" in out and "utilisation" in out

    def test_pruned_serve_reports_accuracy(self, capsys):
        code = main(
            [
                "serve",
                "--instances",
                "p2.8xlarge",
                "--spec",
                "conv1=0.3,conv2=0.5",
                "--rate",
                "100",
                "--duration",
                "10",
            ]
        )
        assert code == 0
        assert "top5 70.0%" in capsys.readouterr().out

    def test_uniform_arrival(self, capsys):
        code = main(
            [
                "serve",
                "--instances",
                "g3.8xlarge",
                "--arrival",
                "uniform",
                "--rate",
                "50",
                "--duration",
                "10",
            ]
        )
        assert code == 0
        assert "served    : 500 requests" in capsys.readouterr().out

    def test_bursty_arrival(self, capsys):
        code = main(
            [
                "serve",
                "--instances",
                "p2.8xlarge",
                "--arrival",
                "bursty",
                "--rate",
                "150",
                "--duration",
                "20",
                "--seed",
                "7",
            ]
        )
        assert code == 0

    def test_unknown_instance_fails_cleanly(self, capsys):
        code = main(
            ["serve", "--instances", "x9.gigantic", "--rate", "10"]
        )
        assert code == 1
        assert "unknown" in capsys.readouterr().err

    def test_histogram_and_slo_flags(self, capsys):
        code = main(
            [
                "serve",
                "--instances",
                "p2.8xlarge",
                "--rate",
                "100",
                "--duration",
                "10",
                "--histogram",
                "--slo",
                "2.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p50" in out and "miss rate" in out

    def test_multi_instance_fleet(self, capsys):
        code = main(
            [
                "serve",
                "--instances",
                "p2.8xlarge",
                "p2.8xlarge",
                "--rate",
                "200",
                "--duration",
                "10",
            ]
        )
        assert code == 0
        assert "16 GPUs" in capsys.readouterr().out

    def test_missing_instances_is_a_usage_error(self, capsys):
        code = main(["serve", "--rate", "10"])
        assert code == 2
        assert "--instances" in capsys.readouterr().err


class TestServeFleetCommand:
    def test_tiered_fleet_end_to_end(self, capsys):
        code = main(
            [
                "serve",
                "--fleet",
                "--replica",
                "p2.8xlarge",
                "--replica",
                "2xp2.xlarge:conv1=0.3,conv2=0.5",
                "--routing",
                "tiered",
                "--floors",
                "0=0.7,75=0.3",
                "--rate",
                "100",
                "--duration",
                "20",
                "--slo",
                "1.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 replicas, tiered routing" in out
        assert "r1-p2.8xlarge" in out
        assert "r2-p2.xlarge-pruned" in out
        assert "SLO burn" in out

    def test_admission_control_sheds_overload(self, capsys):
        code = main(
            [
                "serve",
                "--fleet",
                "--replica",
                "p2.xlarge:conv1=0.3,conv2=0.5",
                "--rate",
                "120",
                "--duration",
                "20",
                "--admission-rate",
                "40",
                "--admission-burst",
                "20",
                "--queue-limit",
                "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "admission control" in out
        assert " shed" in out and " 0 shed" not in out

    def test_fleet_without_replicas_is_a_usage_error(self, capsys):
        code = main(["serve", "--fleet", "--rate", "10"])
        assert code == 2
        assert "--replica" in capsys.readouterr().err

    def test_unknown_replica_type_fails_cleanly(self, capsys):
        code = main(
            ["serve", "--fleet", "--replica", "x9.gigantic", "--rate", "10"]
        )
        assert code == 1
        assert "unknown" in capsys.readouterr().err

    def test_malformed_floors_fail_cleanly(self, capsys):
        code = main(
            [
                "serve",
                "--fleet",
                "--replica",
                "p2.xlarge",
                "--floors",
                "banana",
                "--rate",
                "10",
            ]
        )
        assert code != 0

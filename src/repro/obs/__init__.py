"""repro.obs — lightweight, dependency-free observability.

Building blocks (see ``docs/observability.md`` for schemas):

* :class:`Tracer` — nestable spans with wall/CPU time, tags and parent
  links; the queryable record of *where* a run spent its time.
* :class:`MetricsRegistry` — process-local counters, gauges and timers
  (with percentile summaries); the record of *how much* work happened
  (events dispatched, batches formed, model evaluations, ...).
* :class:`RunManifest` — per-artefact timing/status/cache provenance of
  an experiment-engine run, written as JSON under ``results/``.
* :class:`EventBus` (:func:`get_event_bus`) — process-wide structured
  events (span open/close, counter deltas, experiment lifecycle, SLO
  alerts), with :class:`JsonlEventLog` as the file subscriber.
* :mod:`repro.obs.export` — Chrome-trace, OpenMetrics and flat-JSON
  exporters over the snapshot forms.
* :mod:`repro.obs.telemetry` — per-request serving telemetry (bucketed
  latency histograms, queue gauges, sliding-window SLO monitors).
* :mod:`repro.obs.bench` — the ``BENCH_<n>.json`` performance
  trajectory recorder and its regression gate.

Library code never takes a tracer or registry as a parameter; it calls
:func:`get_tracer` / :func:`get_metrics`, which resolve to the current
*scope*.  The default scope is a disabled tracer (spans are no-ops, so
instrumented hot paths cost almost nothing) plus a live registry.  The
experiment engine swaps in a fresh, enabled pair around each artefact
via :func:`scoped_observability`, so every artefact's trace and metric
snapshot is isolated — and picklable back from worker processes.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.context import (
    TRACE_HEADER,
    TraceContext,
    activate,
    current_trace,
    new_trace_id,
)
from repro.obs.events import EventBus, JsonlEventLog, get_event_bus
from repro.obs.manifest import ArtefactRecord, RunManifest, environment_info
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, Timer, percentile
from repro.obs.timeseries import (
    AnomalyDetector,
    AnomalyPolicy,
    TelemetryPipeline,
    WindowSnapshot,
    WindowedSeries,
)
from repro.obs.tracer import Span, Tracer

__all__ = [
    "AnomalyDetector",
    "AnomalyPolicy",
    "ArtefactRecord",
    "Counter",
    "EventBus",
    "Gauge",
    "JsonlEventLog",
    "MetricsRegistry",
    "RunManifest",
    "Span",
    "TelemetryPipeline",
    "TRACE_HEADER",
    "Timer",
    "TraceContext",
    "Tracer",
    "WindowSnapshot",
    "WindowedSeries",
    "activate",
    "current_trace",
    "environment_info",
    "get_event_bus",
    "get_metrics",
    "get_tracer",
    "new_trace_id",
    "percentile",
    "scoped_observability",
]

#: Default scope: tracing off (no-op spans, no unbounded growth in long
#: sessions), metrics on (counters are O(1) memory).
_DEFAULT_TRACER = Tracer(enabled=False)
_DEFAULT_METRICS = MetricsRegistry()

_current_tracer: Tracer = _DEFAULT_TRACER
_current_metrics: MetricsRegistry = _DEFAULT_METRICS


def get_tracer() -> Tracer:
    """The tracer of the current observability scope."""
    return _current_tracer


def get_metrics() -> MetricsRegistry:
    """The metrics registry of the current observability scope."""
    return _current_metrics


@contextmanager
def scoped_observability(
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
):
    """Route :func:`get_tracer`/:func:`get_metrics` to the given pair.

    Scopes nest; on exit the previous pair is restored.  Passing
    ``None`` for either keeps the current one.
    """
    global _current_tracer, _current_metrics
    previous = (_current_tracer, _current_metrics)
    if tracer is not None:
        _current_tracer = tracer
    if metrics is not None:
        _current_metrics = metrics
    try:
        yield _current_tracer, _current_metrics
    finally:
        _current_tracer, _current_metrics = previous

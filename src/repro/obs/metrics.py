"""Counters, gauges and timers: the *how much work* half of repro.obs.

Everything is process-local and dependency-free.  Timers keep raw
samples (capped — see :attr:`Timer.max_samples`) so percentile
summaries are exact for the runs we instrument, and the whole registry
snapshots to a plain JSON-ready dict.
"""

from __future__ import annotations

import math
import threading
from collections.abc import Iterable, Sequence

from repro.obs.events import get_event_bus

__all__ = ["Counter", "Gauge", "Timer", "MetricsRegistry", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (numpy's default method).

    ``q`` is in [0, 100]; returns ``nan`` for an empty sequence and
    the value itself for a single sample (every quantile of one
    observation is that observation).
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = (len(ordered) - 1) * q / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


class Counter:
    """Monotonically increasing integer count.

    Each increment is also offered to the process-wide event bus as a
    ``counter`` event (name, delta, new value) — a single truthiness
    check when nothing is subscribed, so hot loops stay hot.

    Increments are atomic under a per-counter lock: the threaded
    planning service increments shared counters from many request
    threads, and a lost update would make the bench suite's
    exact-counter gate flaky.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> int:
        with self._lock:
            self.value = value = self.value + n
        bus = get_event_bus()
        if bus.active:
            bus.emit("counter", name=self.name, delta=n, value=value)
        return value


class Gauge:
    """Last-write-wins numeric value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> float:
        self.value = float(value)
        bus = get_event_bus()
        if bus.active:
            bus.emit("gauge", name=self.name, value=self.value)
        return self.value


class Timer:
    """Sample distribution with percentile summaries.

    Despite the name, any non-negative quantity can be observed (batch
    widths, queue depths); durations in seconds are the common case.
    Raw samples are kept up to ``max_samples``; beyond that, new samples
    still update count/total/max but are not retained for percentiles
    (``summary()['truncated']`` reports how many were shed).

    Edge cases the exporters rely on: with **zero** samples every
    statistic (mean/max/p50/p90/p99) is ``nan`` — never an exception —
    and the text exposition omits the quantile samples while keeping
    ``_count``/``_sum``; with **one** sample every percentile equals
    that sample.
    """

    __slots__ = ("name", "max_samples", "count", "total", "_max", "_samples")

    def __init__(self, name: str, max_samples: int = 100_000) -> None:
        self.name = name
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self._max = float("-inf")
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value > self._max:
            self._max = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @property
    def max(self) -> float:
        return self._max if self.count else float("nan")

    def percentile(self, q: float) -> float:
        return percentile(self._samples, q)

    def summary(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "truncated": self.count - len(self._samples),
        }


class MetricsRegistry:
    """Get-or-create home for named counters, gauges and timers.

    Creation is race-safe: concurrent first touches of one name settle
    on a single instrument (``setdefault`` under a registry lock), so
    no increment lands on a discarded duplicate.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge(name))

    def timer(self, name: str) -> Timer:
        try:
            return self._timers[name]
        except KeyError:
            with self._lock:
                return self._timers.setdefault(name, Timer(name))

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, object]]:
        """JSON-ready view of every metric's current state."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "timers": {
                name: t.summary() for name, t in sorted(self._timers.items())
            },
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()

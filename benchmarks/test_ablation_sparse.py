"""Ablation A: sparse CSR vs dense GEMM — where does sparsity pay off?

DESIGN.md design-choice #2: the paper runs pruned models on a
sparse-matrix Caffe fork.  Sparse formats only beat dense GEMM below a
density threshold; these benchmarks measure both sides of the crossover
on fc-layer-sized matrices and verify the sparse engine's numerical
equivalence on a real pruned network.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.cnn import build_small_cnn
from repro.cnn.layers import DTYPE
from repro.pruning import L1FilterPruner, PruneSpec
from repro.pruning.sparse import SparseExecutor

ROWS, COLS, BATCH = 2048, 2048, 64


def _matrices(density: float):
    rng = np.random.default_rng(0)
    w = rng.standard_normal((ROWS, COLS)).astype(DTYPE)
    w *= rng.random((ROWS, COLS)) < density
    x = rng.standard_normal((COLS, BATCH)).astype(DTYPE)
    return w, sparse.csr_matrix(w), x


@pytest.mark.parametrize("density", [0.05, 0.5])
def test_dense_gemm(benchmark, density):
    w, _, x = _matrices(density)
    out = benchmark(lambda: w @ x)
    assert out.shape == (ROWS, BATCH)


@pytest.mark.parametrize("density", [0.05, 0.5])
def test_sparse_gemm(benchmark, density):
    _, ws, x = _matrices(density)
    out = benchmark(lambda: ws @ x)
    assert out.shape == (ROWS, BATCH)


def test_sparse_wins_when_very_sparse(benchmark):
    """At 5% density CSR should beat dense GEMM on this shape."""
    import time

    w, ws, x = _matrices(0.05)

    def race():
        t0 = time.perf_counter()
        w @ x
        dense_t = time.perf_counter() - t0
        t0 = time.perf_counter()
        ws @ x
        sparse_t = time.perf_counter() - t0
        return dense_t, sparse_t

    dense_t, sparse_t = benchmark.pedantic(race, rounds=3, iterations=1)
    assert sparse_t < dense_t


def test_sparse_network_equivalence(benchmark):
    """The CSR execution path returns the dense network's outputs."""
    net = build_small_cnn(seed=3)
    pruned = L1FilterPruner().apply(
        net, PruneSpec({"conv1": 0.5, "conv2": 0.5})
    )
    executor = SparseExecutor(pruned)
    x = np.random.default_rng(1).standard_normal((8, 1, 16, 16)).astype(
        DTYPE
    )
    out = benchmark(executor.forward, x)
    np.testing.assert_allclose(
        out, pruned.forward(x), rtol=1e-4, atol=1e-5
    )

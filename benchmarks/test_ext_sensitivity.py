"""Benchmark: extension — calibration sensitivity sweep.

Re-derives the headline conclusions under perturbed fitted constants;
the assertion is the robustness verdict itself.
"""

from __future__ import annotations

from repro.experiments import ext_sensitivity


def test_ext_sensitivity(benchmark):
    study = benchmark(ext_sensitivity.run)
    assert study.all_robust
    assert len(study.rows) >= 12

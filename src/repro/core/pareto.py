"""Pareto-frontier filtering over (accuracy, objective) points.

The paper's "Pareto optimization" stage (Figure 2) filters the feasible
configuration set down to the configurations for which no other feasible
configuration has both higher accuracy and lower time (or cost).  That is
a classic 2-D Pareto front with one maximised dimension (accuracy) and
one minimised (time or cost); :func:`pareto_indices` computes it in
O(n log n) with a sort + running minimum, fully vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Sequence, TypeVar

import numpy as np

__all__ = ["pareto_indices", "pareto_front", "ParetoPoint"]

T = TypeVar("T")


@dataclass(frozen=True)
class ParetoPoint(Generic[T]):
    """One Pareto-optimal point with its originating payload."""

    accuracy: float
    objective: float
    payload: T


def pareto_indices(
    accuracies: Sequence[float], objectives: Sequence[float]
) -> np.ndarray:
    """Indices of Pareto-optimal points (maximise accuracy, minimise objective).

    A point is dominated when some other point has accuracy >= and
    objective <= with at least one strict inequality.  Among duplicates
    (identical accuracy and objective) the first occurrence is kept.
    Returned indices are sorted by descending accuracy.
    """
    acc = np.asarray(accuracies, dtype=float)
    obj = np.asarray(objectives, dtype=float)
    if acc.shape != obj.shape or acc.ndim != 1:
        raise ValueError("accuracies and objectives must be equal-length 1-D")
    if acc.size == 0:
        return np.empty(0, dtype=np.intp)
    # sort by accuracy desc, then objective asc, then index asc (stability)
    order = np.lexsort((np.arange(acc.size), obj, -acc))
    keep: list[int] = []
    best_obj = np.inf
    for idx in order:
        # every earlier point in the scan has accuracy >= this one (ties
        # ordered by objective), so this point survives iff it strictly
        # improves the running-best objective.
        if obj[idx] < best_obj:
            keep.append(int(idx))
            best_obj = obj[idx]
    return np.asarray(keep, dtype=np.intp)


def pareto_front(
    points: Sequence[tuple[float, float, T]]
) -> list[ParetoPoint[T]]:
    """Pareto filter over ``(accuracy, objective, payload)`` triples.

    Returns :class:`ParetoPoint` records ordered by descending accuracy.
    """
    if not points:
        return []
    acc = [p[0] for p in points]
    obj = [p[1] for p in points]
    idx = pareto_indices(acc, obj)
    return [
        ParetoPoint(accuracy=acc[i], objective=obj[i], payload=points[i][2])
        for i in idx
    ]

"""Tests for serving post-hoc metrics and the fig2 pipeline artefact."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import caffenet_accuracy_model, caffenet_time_model
from repro.cloud import CloudInstance, ResourceConfiguration, instance_type
from repro.pruning import PruneSpec
from repro.serving import BatchPolicy, ServingSimulator, poisson_arrivals
from repro.serving.metrics import (
    latency_histogram,
    render_histogram,
    slo_headroom,
    throughput_series,
)


@pytest.fixture(scope="module")
def run_pair():
    arrivals = poisson_arrivals(150.0, 30.0, seed=21)
    simulator = ServingSimulator(
        caffenet_time_model(),
        caffenet_accuracy_model(),
        ResourceConfiguration([CloudInstance(instance_type("p2.8xlarge"))]),
        PruneSpec.unpruned(),
        BatchPolicy(max_batch=32, max_wait_s=0.05),
    )
    return arrivals, simulator.run(arrivals)


class TestThroughputSeries:
    def test_conservation(self, run_pair):
        arrivals, report = run_pair
        _, offered, completed = throughput_series(arrivals, report)
        assert offered.sum() == pytest.approx(arrivals.size)
        assert completed.sum() == pytest.approx(arrivals.size)

    def test_completions_lag_offers(self, run_pair):
        arrivals, report = run_pair
        bins, offered, completed = throughput_series(
            arrivals, report, bin_s=1.0
        )
        # cumulative completions can never exceed cumulative offers
        assert np.all(
            np.cumsum(completed) <= np.cumsum(offered) + 1e-9
        )

    def test_bin_validation(self, run_pair):
        arrivals, report = run_pair
        with pytest.raises(ValueError):
            throughput_series(arrivals, report, bin_s=0.0)


class TestHistogram:
    def test_counts_cover_all_requests(self, run_pair):
        _, report = run_pair
        _, counts = latency_histogram(report, bins=10)
        assert counts.sum() == report.requests

    def test_render_contains_percentiles(self, run_pair):
        _, report = run_pair
        text = render_histogram(report)
        assert "p50" in text and "p99" in text and "#" in text

    def test_bins_validation(self, run_pair):
        _, report = run_pair
        with pytest.raises(ValueError):
            latency_histogram(report, bins=0)


class TestHeadroom:
    def test_fields_consistent(self, run_pair):
        _, report = run_pair
        slo = report.p99 * 2
        headroom = slo_headroom(report, slo)
        assert headroom["p99_over_slo"] == pytest.approx(0.5)
        assert headroom["margin_s"] > 0
        assert headroom["miss_rate"] <= 0.01

    def test_violation_detected(self, run_pair):
        _, report = run_pair
        headroom = slo_headroom(report, report.p50 / 2)
        assert headroom["p99_over_slo"] > 1.0
        assert headroom["margin_s"] < 0
        assert headroom["miss_rate"] > 0.5

    def test_validation(self, run_pair):
        _, report = run_pair
        with pytest.raises(ValueError):
            slo_headroom(report, 0.0)


class TestFig2Artefact:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import fig2_pipeline

        return fig2_pipeline.run()

    def test_characterization_anchors(self, result):
        ch = result.characterization
        assert ch.single_inference_s == pytest.approx(0.09)
        assert 200 <= ch.saturation_batch <= 400

    def test_measurements_cover_both_layers(self, result):
        labels = {r.label for r in result.measurements}
        assert "conv1@90" in labels and "conv2@90" in labels
        assert "nonpruned" in labels

    def test_five_pareto_points_like_the_paper(self, result):
        # the paper reports five Pareto-optimal configurations per
        # metric in its studies; this sweep reproduces that count
        assert result.n_pareto_time == 5
        assert result.n_pareto_cost == 5

    def test_feasible_subset(self, result):
        assert 0 < result.n_feasible < result.n_points

    def test_render(self, result):
        from repro.experiments import fig2_pipeline

        text = fig2_pipeline.render(result)
        assert "stage 1" in text and "stage 3" in text

"""Extension: what Eq. 4's even split costs at configuration-space scale.

The paper distributes workload evenly across resources (Eq. 4), which on
heterogeneous configurations leaves the fast instances idle while the
slowest finishes.  The per-configuration gap is measured by Ablation C;
this experiment measures the *systemic* effect on a mixed p2+g3 space:

* the **cost**-accuracy frontier is unaffected — cost-optimal
  configurations are single instances, where the split is irrelevant
  (and why the paper's p2-only studies never noticed);
* the **time**-accuracy frontier (under the $300 budget) is strictly
  better with a capacity-proportional split: heterogeneous mixes become
  feasible and the best-accuracy point gets ~25% faster, quantified by
  hypervolume and additive epsilon.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.calibration.caffenet import (
    caffenet_accuracy_model,
    caffenet_time_model,
)
from repro.cloud.catalog import instance_type
from repro.core.config_space import enumerate_configurations
from repro.core.evalspace import SpaceSpec, evaluate
from repro.core.frontier import additive_epsilon, hypervolume
from repro.experiments.report import format_kv, format_table
from repro.pruning.schedule import caffenet_variant_set

__all__ = ["SplitStudy", "run", "render"]

IMAGES = 20_000_000
BUDGET = 300.0
#: hypervolume reference: zero accuracy, 10-hour time axis
TIME_REF_H = 10.0


@dataclass(frozen=True)
class SplitStudy:
    even_front: tuple
    proportional_front: tuple
    even_feasible: int
    proportional_feasible: int
    even_hypervolume: float
    proportional_hypervolume: float
    even_epsilon_vs_proportional: float

    @property
    def hypervolume_gain(self) -> float:
        """Relative time-frontier improvement from the proportional split."""
        return (
            self.proportional_hypervolume / self.even_hypervolume - 1.0
        )

    @property
    def best_accuracy_speedup(self) -> float:
        """Makespan ratio (even / proportional) at the best accuracy."""
        best_even = self.even_front[0]
        best_prop = self.proportional_front[0]
        return best_even.time_hours / best_prop.time_hours


def _front(proportional: bool):
    types = [
        instance_type(n)
        for n in ("p2.xlarge", "p2.8xlarge", "g3.8xlarge", "g3.16xlarge")
    ]
    space = evaluate(
        SpaceSpec.build(
            caffenet_time_model(),
            caffenet_accuracy_model(),
            caffenet_variant_set(count=30),
            enumerate_configurations(types, max_per_type=2),
            IMAGES,
            proportional_split=proportional,
        )
    )
    front = space.front("top1", "time", budget=BUDGET)
    return front, int(space.feasible_mask(budget=BUDGET).sum())


@lru_cache(maxsize=1)
def run() -> SplitStudy:
    even, n_even = _front(proportional=False)
    proportional, n_prop = _front(proportional=True)

    def as_points(front):
        return [(r.accuracy.top1, r.time_hours) for r in front]

    even_hv = hypervolume(as_points(even), 0.0, TIME_REF_H)
    prop_hv = hypervolume(as_points(proportional), 0.0, TIME_REF_H)
    eps = additive_epsilon(as_points(even), as_points(proportional))
    return SplitStudy(
        even_front=even,
        proportional_front=proportional,
        even_feasible=n_even,
        proportional_feasible=n_prop,
        even_hypervolume=even_hv,
        proportional_hypervolume=prop_hv,
        even_epsilon_vs_proportional=eps,
    )


def render(result: SplitStudy | None = None) -> str:
    result = result or run()
    summary = format_kv(
        [
            ("feasible (even split)", result.even_feasible),
            ("feasible (proportional)", result.proportional_feasible),
            ("even-split hypervolume", f"{result.even_hypervolume:.1f}"),
            (
                "proportional hypervolume",
                f"{result.proportional_hypervolume:.1f}",
            ),
            ("frontier gain", f"{result.hypervolume_gain * 100:.1f}%"),
            (
                "speedup at best accuracy",
                f"{result.best_accuracy_speedup:.2f}x",
            ),
            (
                "even front's epsilon (hours)",
                f"{result.even_epsilon_vs_proportional:.2f}",
            ),
        ]
    )
    rows = [
        (
            name,
            r.spec.label()[:36],
            r.configuration.label(),
            f"{r.accuracy.top1:.1f}",
            f"{r.time_hours:.2f}",
        )
        for name, front in (
            ("even", result.even_front[:3]),
            ("proportional", result.proportional_front[:3]),
        )
        for r in front
    ]
    return (
        summary
        + "\n\ntime-accuracy frontier heads:\n"
        + format_table(
            ["Split", "Degree", "Configuration", "Top-1", "Time (h)"],
            rows,
        )
    )

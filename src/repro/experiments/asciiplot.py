"""Minimal ASCII scatter/line plots.

No plotting stack is available offline, but several of the paper's
figures (4, 5, 9, 10) are easier to eyeball as plots than as columns.
These renderers draw into a fixed character grid; they are used by the
experiment ``render()`` functions and the examples, and are precise
enough to show knees, plateaus and Pareto frontiers.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["scatter", "line", "multi_line"]

_MARKERS = "xo*+#@"


def _grid(width: int, height: int) -> list[list[str]]:
    return [[" "] * width for _ in range(height)]


def _scale(
    values: np.ndarray, lo: float, hi: float, steps: int
) -> np.ndarray:
    if hi <= lo:
        return np.zeros(len(values), dtype=int)
    pos = (values - lo) / (hi - lo) * (steps - 1)
    return np.clip(np.round(pos).astype(int), 0, steps - 1)


def _render(
    grid: list[list[str]],
    xlo: float,
    xhi: float,
    ylo: float,
    yhi: float,
    xlabel: str,
    ylabel: str,
    title: str,
) -> str:
    height = len(grid)
    width = len(grid[0])
    lines = []
    if title:
        lines.append(title.center(width + 10))
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            label = f"{yhi:>9.3g}"
        elif row_idx == height - 1:
            label = f"{ylo:>9.3g}"
        else:
            label = " " * 9
        lines.append(f"{label} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    xaxis = f"{xlo:<.3g}".ljust(width - 8) + f"{xhi:>.3g}"
    lines.append(" " * 11 + xaxis)
    if xlabel or ylabel:
        lines.append(" " * 11 + f"x: {xlabel}   y: {ylabel}".strip())
    return "\n".join(lines)


def scatter(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 18,
    marker: str = "x",
    xlabel: str = "",
    ylabel: str = "",
    title: str = "",
    highlight: Sequence[int] = (),
) -> str:
    """Scatter plot; indices in ``highlight`` are drawn with ``*``."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size == 0 or x.shape != y.shape:
        raise ValueError("xs and ys must be equal-length and non-empty")
    grid = _grid(width, height)
    cols = _scale(x, x.min(), x.max(), width)
    rows = _scale(y, y.min(), y.max(), height)
    highlight_set = set(highlight)
    for i, (c, r) in enumerate(zip(cols, rows)):
        grid[height - 1 - r][c] = "*" if i in highlight_set else marker
    return _render(
        grid, x.min(), x.max(), y.min(), y.max(), xlabel, ylabel, title
    )


def line(
    xs: Sequence[float],
    ys: Sequence[float],
    **kwargs,
) -> str:
    """Single-series line plot (dense x-interpolation of a scatter)."""
    return multi_line([("", list(xs), list(ys))], **kwargs)


def multi_line(
    series: Sequence[tuple[str, Sequence[float], Sequence[float]]],
    width: int = 60,
    height: int = 18,
    xlabel: str = "",
    ylabel: str = "",
    title: str = "",
) -> str:
    """Overlay several (name, xs, ys) series with distinct markers."""
    if not series:
        raise ValueError("need at least one series")
    all_x = np.concatenate([np.asarray(s[1], dtype=float) for s in series])
    all_y = np.concatenate([np.asarray(s[2], dtype=float) for s in series])
    xlo, xhi = float(all_x.min()), float(all_x.max())
    ylo, yhi = float(all_y.min()), float(all_y.max())
    grid = _grid(width, height)
    for idx, (_name, xs, ys) in enumerate(series):
        marker = _MARKERS[idx % len(_MARKERS)]
        x = np.asarray(xs, dtype=float)
        y = np.asarray(ys, dtype=float)
        # densify straight segments so lines read as lines
        xd, yd = [], []
        for a in range(len(x) - 1):
            steps = max(2, width // max(1, len(x) - 1))
            xd.extend(np.linspace(x[a], x[a + 1], steps, endpoint=False))
            yd.extend(np.linspace(y[a], y[a + 1], steps, endpoint=False))
        xd.append(x[-1])
        yd.append(y[-1])
        cols = _scale(np.asarray(xd), xlo, xhi, width)
        rows = _scale(np.asarray(yd), ylo, yhi, height)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = marker
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, (name, _, _) in enumerate(series)
        if name
    )
    body = _render(grid, xlo, xhi, ylo, yhi, xlabel, ylabel, title)
    return body + ("\n" + " " * 11 + legend if legend else "")

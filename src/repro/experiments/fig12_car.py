"""Figure 12: Caffenet CAR across the six EC2 resource types.

Paper setup (Section 4.5.2): Caffenet with conv1 and conv2 pruned 20%,
run on each of the six instance types, once using all GPUs and once
using a single GPU.  Paper findings:

* CAR is approximately constant *within* a resource category (per-GPU
  pricing is flat within p2 and within g3);
* CAR differs *across* categories — p2 ~= $0.57 vs g3 ~= $0.35 per unit
  accuracy with all GPUs — making g3 the cost-efficient choice.

Our absolute CAR values inherit the calibrated 19-minute anchor; the
category-flatness and the p2/g3 ratio (0.57/0.35 ~= 1.63) are the
reproduction targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration.caffenet import (
    caffenet_accuracy_model,
    caffenet_time_model,
)
from repro.cloud.catalog import EC2_CATALOG
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.instance import CloudInstance
from repro.core.evalspace import SpaceSpec, evaluate
from repro.experiments.report import format_table
from repro.pruning.base import PruneSpec

__all__ = ["Fig12Row", "Fig12Result", "run", "compute", "render", "FIG12_SPEC"]

#: Section 4.5.2: first two convolution layers pruned by 20%.
FIG12_SPEC = PruneSpec({"conv1": 0.2, "conv2": 0.2})


@dataclass(frozen=True)
class Fig12Row:
    instance: str
    category: str
    car_all_gpus_top1: float
    car_all_gpus_top5: float
    car_one_gpu_top1: float
    car_one_gpu_top5: float


@dataclass(frozen=True)
class Fig12Result:
    rows: tuple[Fig12Row, ...]

    def category_mean(self, category: str, mode: str = "all") -> float:
        """Mean Top-1 CAR of one category (the bar height of Figure 12)."""
        cars = [
            r.car_all_gpus_top1 if mode == "all" else r.car_one_gpu_top1
            for r in self.rows
            if r.category == category
        ]
        return sum(cars) / len(cars)

    def category_ratio(self, mode: str = "all") -> float:
        """p2 CAR / g3 CAR — the paper's ~0.57/0.35 ~= 1.63."""
        return self.category_mean("p2", mode) / self.category_mean(
            "g3", mode
        )

    def within_category_spread(self, category: str) -> float:
        """Relative spread of all-GPU CAR within one category."""
        cars = [
            r.car_all_gpus_top1
            for r in self.rows
            if r.category == category
        ]
        return (max(cars) - min(cars)) / min(cars)


def run(images: int = 50_000) -> Fig12Result:
    # one degree x (all-GPU, one-GPU) configurations per instance type,
    # interleaved so row 2i is all-GPU and row 2i+1 is single-GPU
    configurations = []
    for itype in EC2_CATALOG:
        configurations.append(
            ResourceConfiguration([CloudInstance(itype)])
        )
        configurations.append(
            ResourceConfiguration([CloudInstance(itype, gpus_used=1)])
        )
    space = evaluate(
        SpaceSpec.build(
            caffenet_time_model(),
            caffenet_accuracy_model(),
            [FIG12_SPEC],
            configurations,
            images,
        )
    )
    car1 = space.car("top1")
    car5 = space.car("top5")
    return Fig12Result(
        rows=tuple(
            Fig12Row(
                instance=itype.name,
                category=itype.category,
                car_all_gpus_top1=float(car1[2 * i]),
                car_all_gpus_top5=float(car5[2 * i]),
                car_one_gpu_top1=float(car1[2 * i + 1]),
                car_one_gpu_top5=float(car5[2 * i + 1]),
            )
            for i, itype in enumerate(EC2_CATALOG)
        )
    )


def compute(images: int = 50_000) -> dict:
    """Structured data for Figure 12 (CAR per resource type)."""
    result = run(images)
    return {
        "images": images,
        "spec": FIG12_SPEC.label(),
        "rows": [
            {
                "instance": r.instance,
                "category": r.category,
                "car_all_gpus_top1": r.car_all_gpus_top1,
                "car_all_gpus_top5": r.car_all_gpus_top5,
                "car_one_gpu_top1": r.car_one_gpu_top1,
                "car_one_gpu_top5": r.car_one_gpu_top5,
            }
            for r in result.rows
        ],
    }


def _category_ratio(rows: list[dict]) -> float:
    """p2 CAR / g3 CAR from row dicts (same arithmetic as the dataclass)."""

    def mean(category: str) -> float:
        cars = [
            r["car_all_gpus_top1"]
            for r in rows
            if r["category"] == category
        ]
        return sum(cars) / len(cars)

    return mean("p2") / mean("g3")


def render(data: dict | Fig12Result | None = None) -> str:
    if data is None:
        data = compute()
    elif isinstance(data, Fig12Result):
        data = {
            "rows": [
                {
                    "instance": r.instance,
                    "category": r.category,
                    "car_all_gpus_top1": r.car_all_gpus_top1,
                    "car_all_gpus_top5": r.car_all_gpus_top5,
                    "car_one_gpu_top1": r.car_one_gpu_top1,
                    "car_one_gpu_top5": r.car_one_gpu_top5,
                }
                for r in data.rows
            ]
        }
    rows = data["rows"]
    table = format_table(
        [
            "Resource type",
            "CAR all-GPU (top1)",
            "CAR all-GPU (top5)",
            "CAR 1-GPU (top1)",
            "CAR 1-GPU (top5)",
        ],
        [
            (
                r["instance"],
                f"{r['car_all_gpus_top1']:.3f}",
                f"{r['car_all_gpus_top5']:.3f}",
                f"{r['car_one_gpu_top1']:.3f}",
                f"{r['car_one_gpu_top5']:.3f}",
            )
            for r in rows
        ],
    )
    return (
        table
        + f"\np2/g3 CAR ratio (all GPUs): "
        f"{_category_ratio(rows):.2f} (paper: 0.57/0.35 = 1.63)"
    )

"""Tests for frontier-comparison metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frontier import additive_epsilon, coverage, hypervolume


FRONT = [(0.9, 10.0), (0.7, 5.0), (0.5, 2.0)]


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume([(0.5, 2.0)], 0.0, 10.0) == pytest.approx(
            0.5 * 8.0
        )

    def test_staircase_area(self):
        hv = hypervolume(FRONT, 0.0, 12.0)
        # strips: 0.9*(12-10) + 0.7*(10-5) + 0.5*(5-2)
        assert hv == pytest.approx(0.9 * 2 + 0.7 * 5 + 0.5 * 3)

    def test_dominated_points_ignored(self):
        with_dominated = FRONT + [(0.6, 9.0)]  # dominated by (0.7, 5)
        assert hypervolume(with_dominated, 0.0, 12.0) == pytest.approx(
            hypervolume(FRONT, 0.0, 12.0)
        )

    def test_better_front_bigger_volume(self):
        better = [(0.9, 8.0), (0.7, 4.0), (0.5, 1.0)]
        assert hypervolume(better, 0.0, 12.0) > hypervolume(
            FRONT, 0.0, 12.0
        )

    def test_bad_reference_rejected(self):
        with pytest.raises(ValueError):
            hypervolume(FRONT, 0.6, 12.0)
        with pytest.raises(ValueError):
            hypervolume(FRONT, 0.0, 5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hypervolume([], 0.0, 1.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(0.1, 1.0), st.floats(0.1, 10.0)
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_volume_bounded_by_rectangle(self, points):
        hv = hypervolume(points, 0.0, 11.0)
        assert 0.0 <= hv <= 1.0 * 11.0


class TestCoverage:
    def test_self_coverage_is_one(self):
        assert coverage(FRONT, FRONT) == 1.0

    def test_dominating_front_covers(self):
        better = [(0.95, 9.0), (0.75, 4.0), (0.55, 1.0)]
        assert coverage(FRONT, better) == 1.0
        assert coverage(better, FRONT) == 0.0

    def test_partial_coverage(self):
        other = [(0.9, 10.0), (0.4, 1.0)]  # covers first, not middle
        assert coverage(FRONT, other) == pytest.approx(1 / 3)


class TestAdditiveEpsilon:
    def test_zero_for_identical(self):
        assert additive_epsilon(FRONT, FRONT) == 0.0

    def test_zero_when_approx_dominates(self):
        better = [(0.95, 9.0), (0.75, 4.0), (0.55, 1.0)]
        assert additive_epsilon(better, FRONT) == 0.0

    def test_gap_measured_in_objective_units(self):
        worse = [(0.9, 11.0), (0.7, 6.0), (0.5, 3.0)]
        assert additive_epsilon(worse, FRONT) == pytest.approx(1.0)

    def test_accuracy_gap_counts_too(self):
        approx = [(0.8, 10.0)]
        reference = [(0.9, 10.0)]
        assert additive_epsilon(approx, reference) == pytest.approx(0.1)

    @given(
        st.lists(
            st.tuples(st.floats(0, 1), st.floats(0.1, 10)),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_epsilon_nonnegative_and_self_zero(self, points):
        assert additive_epsilon(points, points) == 0.0


class TestOnRealStudies:
    def test_greedy_frontier_quality_vs_brute(self):
        """The allocation quality gap, quantified: on the Fig-10 space
        the (exhaustively computed) cost frontier covers itself and has
        positive hypervolume."""
        from repro.experiments.fig10_cost_pareto import run

        study = run().top1
        front = [
            (r.accuracy.top1, r.cost) for r in study.front
        ]
        hv = hypervolume(front, 0.0, 300.0)
        assert hv > 0
        assert coverage(front, front) == 1.0

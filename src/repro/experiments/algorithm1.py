"""Algorithm 1 study: greedy TAR/CAR allocation vs exhaustive search.

The paper claims configuration-space exploration is O(2^|G|) while the
TAR/CAR-guided greedy runs in O(|G| log |G|), and that the heuristic
picks efficient configurations.  This experiment measures both claims:

* *complexity*: model-evaluation counts of greedy vs brute force as the
  resource pool grows;
* *quality*: accuracy (and cost gap) of the greedy pick vs the true
  optimum on pools small enough to search exhaustively.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.calibration.caffenet import (
    caffenet_accuracy_model,
    caffenet_time_model,
)
from repro.cloud.catalog import EC2_CATALOG
from repro.cloud.instance import CloudInstance
from repro.cloud.simulator import CloudSimulator
from repro.core.allocation import brute_force_allocate, greedy_allocate
from repro.experiments.report import format_table
from repro.pruning.base import PruneSpec
from repro.pruning.schedule import DegreeOfPruning

__all__ = ["Algorithm1Row", "Algorithm1Result", "run", "compute", "render"]


def _default_degrees() -> list[DegreeOfPruning]:
    return [
        DegreeOfPruning.of(PruneSpec.unpruned()),
        DegreeOfPruning.of(PruneSpec({"conv1": 0.2, "conv2": 0.3})),
        DegreeOfPruning.of(PruneSpec({"conv1": 0.3, "conv2": 0.5})),
        DegreeOfPruning.of(
            PruneSpec(
                {
                    "conv1": 0.3,
                    "conv2": 0.5,
                    "conv3": 0.5,
                    "conv4": 0.5,
                    "conv5": 0.5,
                }
            )
        ),
    ]


def _resource_pool(size: int) -> list[CloudInstance]:
    """A pool of ``size`` instances cycling through the catalog."""
    return [
        CloudInstance(EC2_CATALOG[i % len(EC2_CATALOG)])
        for i in range(size)
    ]


@dataclass(frozen=True)
class Algorithm1Row:
    pool_size: int
    greedy_evals: int
    brute_evals: int
    greedy_seconds: float
    brute_seconds: float
    greedy_accuracy: float
    brute_accuracy: float
    greedy_cost: float
    brute_cost: float

    @property
    def accuracy_gap(self) -> float:
        return self.brute_accuracy - self.greedy_accuracy

    @property
    def speedup(self) -> float:
        """Measured wall-clock ratio (machine-dependent; see
        :attr:`eval_speedup` for the deterministic complexity claim)."""
        return self.brute_seconds / max(self.greedy_seconds, 1e-12)

    @property
    def eval_speedup(self) -> float:
        """Model-evaluation ratio — the paper's O(2^|G|) vs
        O(|G| log |G|) claim, independent of the host machine."""
        return self.brute_evals / max(self.greedy_evals, 1)


@dataclass(frozen=True)
class Algorithm1Result:
    rows: tuple[Algorithm1Row, ...]
    images: int
    deadline_s: float
    budget: float


def run(
    pool_sizes: tuple[int, ...] = (4, 6, 8, 10, 12),
    images: int = 200_000,
    deadline_s: float = 2 * 3600.0,
    budget: float = 15.0,
) -> Algorithm1Result:
    simulator = CloudSimulator(
        caffenet_time_model(), caffenet_accuracy_model()
    )
    degrees = _default_degrees()
    rows = []
    for size in pool_sizes:
        pool = _resource_pool(size)
        t0 = time.perf_counter()
        greedy = greedy_allocate(
            degrees, pool, simulator, images, deadline_s, budget
        )
        t_greedy = time.perf_counter() - t0
        t0 = time.perf_counter()
        brute = brute_force_allocate(
            degrees, pool, simulator, images, deadline_s, budget
        )
        t_brute = time.perf_counter() - t0
        rows.append(
            Algorithm1Row(
                pool_size=size,
                greedy_evals=greedy.evaluations,
                brute_evals=brute.evaluations,
                greedy_seconds=t_greedy,
                brute_seconds=t_brute,
                greedy_accuracy=greedy.accuracy_top5,
                brute_accuracy=brute.accuracy_top5,
                greedy_cost=greedy.result.cost,
                brute_cost=brute.result.cost,
            )
        )
    return Algorithm1Result(
        rows=tuple(rows),
        images=images,
        deadline_s=deadline_s,
        budget=budget,
    )


def compute(
    pool_sizes: tuple[int, ...] = (4, 6, 8, 10, 12),
    images: int = 200_000,
    deadline_s: float = 2 * 3600.0,
    budget: float = 15.0,
) -> dict:
    """Structured data for the Algorithm 1 complexity/quality study."""
    result = run(pool_sizes, images, deadline_s, budget)
    return {
        "images": result.images,
        "deadline_s": result.deadline_s,
        "budget": result.budget,
        "rows": [
            {
                "pool_size": r.pool_size,
                "greedy_evals": r.greedy_evals,
                "brute_evals": r.brute_evals,
                "greedy_seconds": r.greedy_seconds,
                "brute_seconds": r.brute_seconds,
                "greedy_accuracy": r.greedy_accuracy,
                "brute_accuracy": r.brute_accuracy,
                "greedy_cost": r.greedy_cost,
                "brute_cost": r.brute_cost,
                "eval_speedup": r.eval_speedup,
            }
            for r in result.rows
        ],
    }


def render(data: dict | Algorithm1Result | None = None) -> str:
    if data is None:
        data = compute()
    elif isinstance(data, Algorithm1Result):
        data = {
            "rows": [
                {
                    "pool_size": r.pool_size,
                    "greedy_evals": r.greedy_evals,
                    "brute_evals": r.brute_evals,
                    "greedy_accuracy": r.greedy_accuracy,
                    "brute_accuracy": r.brute_accuracy,
                    "greedy_cost": r.greedy_cost,
                    "brute_cost": r.brute_cost,
                    "eval_speedup": r.eval_speedup,
                }
                for r in data.rows
            ]
        }
    table = format_table(
        [
            "|G|",
            "greedy evals",
            "brute evals",
            "greedy acc",
            "brute acc",
            "greedy $",
            "brute $",
            "evals speedup",
        ],
        [
            (
                r["pool_size"],
                r["greedy_evals"],
                r["brute_evals"],
                f"{r['greedy_accuracy']:.1f}",
                f"{r['brute_accuracy']:.1f}",
                f"{r['greedy_cost']:.2f}",
                f"{r['brute_cost']:.2f}",
                f"{r['eval_speedup']:.1f}x",
            )
            for r in data["rows"]
        ],
    )
    return table

"""Integration: the experiment registry regenerates every artefact."""

from __future__ import annotations

import pytest

from repro.experiments.runner import EXPERIMENTS, run_all

FAST_ARTEFACTS = (
    "table1",
    "table3",
    "fig4",
    "fig5",
    "fig8",
    "fig11",
    "fig12",
)


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        for artefact in (
            ["table1", "table3"]
            + [f"fig{i}" for i in range(3, 13)]
            + ["algorithm1"]
        ):
            assert artefact in EXPERIMENTS, artefact

    def test_twelve_extensions_registered(self):
        extensions = [a for a in EXPERIMENTS if a.startswith("ext-")]
        assert len(extensions) >= 12

    def test_titles_unique_and_nonempty(self):
        titles = [title for title, _ in EXPERIMENTS.values()]
        assert all(titles)
        assert len(set(titles)) == len(titles)


class TestRunAll:
    def test_fast_subset_renders(self):
        outputs = run_all(FAST_ARTEFACTS)
        assert {o.artefact for o in outputs} == set(FAST_ARTEFACTS)
        for output in outputs:
            assert output.text.strip()
            assert output.title

    def test_selection_order_follows_registry(self):
        outputs = run_all(("fig5", "fig4"))
        assert [o.artefact for o in outputs] == ["fig4", "fig5"]

    @pytest.mark.slow
    def test_every_artefact_renders(self):
        outputs = run_all()
        assert len(outputs) == len(EXPERIMENTS)
        for output in outputs:
            assert len(output.text) > 50, output.artefact

"""Saving and loading network weights (.npz).

A practical library necessity the paper's workflow implies: pruned /
fine-tuned model variants ("degrees of pruning") need to be stored and
shipped to cloud instances.  Weights are keyed ``{layer}.weights`` /
``{layer}.bias`` in a compressed archive; loading validates both
coverage and shapes so a checkpoint can never be silently applied to
the wrong architecture.
"""

from __future__ import annotations

import os

import numpy as np

from repro.cnn.network import Network
from repro.errors import ShapeError

__all__ = ["save_weights", "load_weights", "state_dict", "load_state_dict"]


def state_dict(network: Network) -> dict[str, np.ndarray]:
    """All learnable arrays keyed by ``{layer}.{weights|bias}``."""
    out: dict[str, np.ndarray] = {}
    for layer in network.weighted_layers():
        out[f"{layer.name}.weights"] = layer.weights
        out[f"{layer.name}.bias"] = layer.bias
    return out


def load_state_dict(
    network: Network, state: dict[str, np.ndarray]
) -> None:
    """Copy arrays into the network in place, validating shapes."""
    expected = state_dict(network)
    missing = sorted(set(expected) - set(state))
    if missing:
        raise ShapeError(f"checkpoint missing arrays: {missing}")
    extra = sorted(set(state) - set(expected))
    if extra:
        raise ShapeError(f"checkpoint has unknown arrays: {extra}")
    for key, target in expected.items():
        source = np.asarray(state[key])
        if source.shape != target.shape:
            raise ShapeError(
                f"{key}: checkpoint shape {source.shape} != "
                f"network shape {target.shape}"
            )
        target[...] = source.astype(target.dtype, copy=False)


def save_weights(network: Network, path: str | os.PathLike) -> None:
    """Write all weights to a compressed ``.npz`` archive."""
    np.savez_compressed(path, **state_dict(network))


def load_weights(network: Network, path: str | os.PathLike) -> None:
    """Load an archive written by :func:`save_weights` in place."""
    with np.load(path) as archive:
        load_state_dict(network, dict(archive.items()))

"""Figure 3: Caffenet execution-time distribution across CNN layers.

Paper result: conv1 51%, conv2 16%, conv3 9%, conv4 10%, conv5 7% of
inference time; fully-connected and auxiliary layers make up the small
remainder.

We regenerate the distribution from the roofline latency model *fitted
to the paper's measured shares* (the measurement-driven calibration
step), then verify two model-independent structural claims on the raw
engine stats: convolutions dominate, and the fc layers are cheap despite
holding >90% of the parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration.caffenet import CAFFENET_TIME_SHARES
from repro.cnn.models import CAFFENET_CONV_LAYERS, build_caffenet
from repro.cnn.network import Network
from repro.experiments.report import format_table
from repro.perf.device import K80
from repro.perf.latency import RooflineLatencyModel, fit_layer_scales

__all__ = ["Fig3Result", "run", "render"]


@dataclass(frozen=True)
class Fig3Result:
    """Layer time shares (model) plus structural cross-checks (engine)."""

    shares: dict[str, float]
    conv_share: float
    fc_share: float
    fc_param_fraction: float


def run(network: Network | None = None) -> Fig3Result:
    """Regenerate the Figure 3 distribution."""
    network = network or build_caffenet(init="const")
    base = RooflineLatencyModel(K80)
    scales = fit_layer_scales(network, base, CAFFENET_TIME_SHARES)
    fitted = RooflineLatencyModel(K80, layer_scales=scales)
    dist = fitted.time_distribution(network)

    conv_share = sum(dist[l] for l in CAFFENET_CONV_LAYERS)
    fc_share = sum(dist[l] for l in ("fc1", "fc2", "fc3"))
    params = {
        name: stats.params for name, stats in network.layer_stats().items()
    }
    total_params = sum(params.values())
    fc_params = params["fc1"] + params["fc2"] + params["fc3"]
    return Fig3Result(
        shares=dist,
        conv_share=conv_share,
        fc_share=fc_share,
        fc_param_fraction=fc_params / total_params,
    )


def render(result: Fig3Result | None = None) -> str:
    result = result or run()
    interesting = [
        (layer, f"{share * 100:.1f}%")
        for layer, share in result.shares.items()
        if share >= 0.005
    ]
    table = format_table(["Layer", "Time share"], interesting)
    summary = (
        f"\nconvolutions: {result.conv_share * 100:.1f}% of time"
        f" | fc layers: {result.fc_share * 100:.1f}% of time"
        f" but {result.fc_param_fraction * 100:.1f}% of parameters"
    )
    return table + summary

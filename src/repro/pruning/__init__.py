"""Pruning: the paper's accuracy-tuning knob.

The paper varies CNN inference accuracy with the L1-norm filter pruning of
Li et al. 2016 [17], executed on a sparse-matrix Caffe fork [31].  This
subpackage provides:

* :class:`~repro.pruning.base.PruneSpec` — a "degree of pruning" *p* in the
  paper's set *P*: per-layer prune ratios;
* :class:`~repro.pruning.l1_filter.L1FilterPruner` — whole-filter removal
  ranked by L1 norm, with optional propagation of the removed feature maps
  into the successor layer's input channels;
* :class:`~repro.pruning.magnitude.MagnitudePruner` — element-wise
  magnitude pruning (baseline comparator);
* :mod:`~repro.pruning.schedule` — sweep/grid generators producing the
  degrees-of-pruning sets behind Figures 4, 6-11;
* :mod:`~repro.pruning.sparse` — CSR sparse-compute path standing in for
  the sparse Caffe fork, with the density crossover study.
"""

from repro.pruning.base import PruneSpec, Pruner
from repro.pruning.l1_filter import L1FilterPruner
from repro.pruning.magnitude import MagnitudePruner
from repro.pruning.quantization import QuantizationTuner
from repro.pruning.schedule import (
    DegreeOfPruning,
    multi_layer_grid,
    single_layer_sweep,
    uniform_sweep,
)
from repro.pruning.sparse import SparseExecutor
from repro.pruning.weight_sharing import WeightSharingTuner

__all__ = [
    "DegreeOfPruning",
    "L1FilterPruner",
    "MagnitudePruner",
    "PruneSpec",
    "Pruner",
    "QuantizationTuner",
    "SparseExecutor",
    "WeightSharingTuner",
    "multi_layer_grid",
    "single_layer_sweep",
    "uniform_sweep",
]

"""The live planning service: ``repro.api`` over HTTP.

Two layers, split so tests and the in-process load generator can skip
the socket entirely:

* :class:`PlanningService` — transport-agnostic request dispatch.
  ``dispatch(method, path, body)`` maps a route to an API operation,
  serialises the typed response, and turns :class:`ApiError` into the
  versioned error body at its canonical HTTP status.  An optional
  in-flight limit sheds excess concurrency with ``503 overloaded``
  *before* any evaluation work starts.
* :class:`PlanningServer` — a stdlib ``ThreadingHTTPServer`` wrapper
  that binds a :class:`PlanningService` to a host/port, optionally
  installs a dedicated metrics registry for its lifetime (so
  ``GET /v1/metrics`` scrapes only service traffic), and runs in a
  daemon thread (``start()``/``close()``, or use it as a context
  manager).

Routes (all bodies JSON, schema ``repro.api/v1``):

========================  =====================================
``POST /v1/plan``         :func:`repro.api.plan`
``POST /v1/fleet/evaluate``  :func:`repro.api.evaluate_fleets`
``POST /v1/fleet/cheapest``  :func:`repro.api.cheapest_fleets`
``GET /v1/healthz``       liveness, uptime, inflight, cache occupancy
``GET /v1/metrics``       OpenMetrics exposition of the scope
``GET /v1/status``        windowed live metrics + active anomalies
========================  =====================================

Every planning answer is served from the process-wide content-keyed
caches, so a repeated query is a cache hit no matter which client
asked first.

Observability: each request runs inside a request-scoped
:class:`~repro.obs.context.TraceContext` (created fresh, or parsed
from the client's ``X-Repro-Trace`` header) under a
``service.request`` span, emits a structured ``service.access`` event
on the :class:`~repro.obs.events.EventBus` (method, path, status,
latency, trace id — the structured replacement for the silenced
stdlib access log), and feeds the :class:`ServiceMonitor`'s windowed
streaming aggregators, whose anomaly state ``GET /v1/status`` serves.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.api import (
    API_SCHEMA,
    ApiError,
    FleetRequest,
    PlanRequest,
    cheapest_fleets,
    evaluate_fleets,
    plan,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    get_event_bus,
    get_metrics,
    get_tracer,
    scoped_observability,
)
from repro.obs.context import TRACE_HEADER, TraceContext, activate, new_trace_id
from repro.obs.timeseries import AnomalyPolicy, TelemetryPipeline

__all__ = ["PlanningServer", "PlanningService", "ServiceMonitor"]

_JSON = "application/json"
_OPENMETRICS = "text/plain; version=0.0.4; charset=utf-8"


class ServiceMonitor:
    """Windowed live telemetry + anomaly detection for one service.

    Per planning request the service records latency, HTTP status
    (shed / error rates) and the answered plan's cost into fixed-width
    :class:`~repro.obs.timeseries.WindowedSeries`; once per window it
    samples the evaluation-cache hit ratio from the counter deltas.
    Each series feeds an edge-triggered
    :class:`~repro.obs.timeseries.AnomalyDetector`, so a spot-price
    step, a latency regression or a shed storm raises exactly one
    ``anomaly.raise`` event on the bus (and one ``anomaly.resolve``
    when it clears).  :meth:`status` is the ``/v1/status`` payload.

    ``clock`` is injectable for tests; stream time is seconds since
    construction.
    """

    #: metric name -> (statistic watched, detector policy).  Latency
    #: carries a 50ms absolute sigma floor so scheduler jitter on a
    #: busy host cannot page a sub-millisecond control plane.
    POLICIES: dict[str, AnomalyPolicy] = {
        "latency_s": AnomalyPolicy(
            stat="p99", rel_floor=0.25, min_sigma=0.05
        ),
        "cost": AnomalyPolicy(stat="mean"),
        "shed_rate": AnomalyPolicy(stat="mean", min_sigma=0.02),
        "error_rate": AnomalyPolicy(stat="mean", min_sigma=0.02),
        "cache_hit_ratio": AnomalyPolicy(stat="mean", min_sigma=0.02),
    }

    def __init__(
        self,
        *,
        window_s: float = 1.0,
        keep: int = 600,
        clock=time.monotonic,
    ) -> None:
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self.pipeline = TelemetryPipeline(window_s=window_s, keep=keep)
        for name, policy in self.POLICIES.items():
            self.pipeline.watch(name, policy)
        self._cache_window: int | None = None
        self._cache_last = (0, 0)

    # ------------------------------------------------------------------
    def now(self) -> float:
        """Stream time: seconds since the monitor was built."""
        return self._clock() - self._epoch

    def record(self, latency_s: float, status: int) -> None:
        """Feed one completed planning request."""
        t = self.now()
        with self._lock:
            self.pipeline.observe("latency_s", t, latency_s)
            self.pipeline.observe(
                "shed_rate", t, 1.0 if status == 503 else 0.0
            )
            self.pipeline.observe(
                "error_rate",
                t,
                0.0 if status in (200, 422) else 1.0,
            )
            self._sample_cache(t)

    def observe_cost(self, cost: float) -> None:
        """Feed one answered plan's headline cost (dollars)."""
        cost = float(cost)
        if not math.isfinite(cost):
            return
        t = self.now()
        with self._lock:
            self.pipeline.observe("cost", t, cost)

    def _sample_cache(self, t: float) -> None:
        """Once per window: hit ratio over the counter delta."""
        window = int(t // self.pipeline.window_s)
        registry = get_metrics()
        hits = registry.counter("evalspace.cache_hits").value
        misses = registry.counter("evalspace.cache_misses").value
        if self._cache_window is None:
            self._cache_window = window
            self._cache_last = (hits, misses)
            return
        if window <= self._cache_window:
            return
        d_hits = hits - self._cache_last[0]
        d_misses = misses - self._cache_last[1]
        total = d_hits + d_misses
        if total > 0:
            self.pipeline.observe("cache_hit_ratio", t, d_hits / total)
        self._cache_window = window
        self._cache_last = (hits, misses)

    # ------------------------------------------------------------------
    def status(self, recent: int = 5) -> dict:
        """JSON-ready live view (recent windows + anomaly state)."""
        with self._lock:
            return self.pipeline.status(recent)

    def active_anomalies(self) -> list[dict]:
        """Detectors currently raising."""
        with self._lock:
            return self.pipeline.active_anomalies()


class PlanningService:
    """Transport-agnostic dispatch of the ``/v1`` control-plane routes.

    Parameters
    ----------
    max_inflight:
        Upper bound on concurrently dispatched planning requests;
        excess requests are rejected immediately with ``503``
        (``overloaded``).  ``None`` disables the limit; ``0`` rejects
        every planning request (useful to test the error path
        deterministically).  ``healthz``/``metrics`` are exempt so the
        service stays observable under overload.
    """

    def __init__(
        self,
        *,
        max_inflight: int | None = None,
        monitor: ServiceMonitor | None = None,
    ) -> None:
        if max_inflight is not None and max_inflight < 0:
            raise ApiError(
                "invalid_request",
                f"max_inflight must be >= 0, got {max_inflight}",
            )
        self.max_inflight = max_inflight
        self.monitor = monitor if monitor is not None else ServiceMonitor()
        self._inflight = 0
        self._served = 0
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._plan_routes = {
            "/v1/plan": (PlanRequest, plan),
            "/v1/fleet/evaluate": (FleetRequest, evaluate_fleets),
            "/v1/fleet/cheapest": (FleetRequest, cheapest_fleets),
        }

    # ------------------------------------------------------------------
    def dispatch(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers=None,
    ) -> tuple[int, str, bytes]:
        """Answer one request; returns ``(status, content_type, body)``.

        Never raises: every failure becomes a serialised
        :class:`ApiError` body at its mapped status.

        ``headers`` is any mapping with ``.get`` (the stdlib handler
        passes its ``email.message.Message``); when it carries an
        ``X-Repro-Trace`` header the request joins that trace,
        otherwise a fresh trace id is minted.  Either way the route
        runs under a ``service.request`` span inside the activated
        context — which is what stitches handler/evalspace spans on
        *this* worker thread to the remote client's trace.
        """
        path = path.partition("?")[0].rstrip("/") or "/"
        raw = headers.get(TRACE_HEADER) if headers is not None else None
        context = TraceContext.from_header(raw)
        if context is None:
            context = TraceContext(new_trace_id())
        started = time.perf_counter()
        with activate(context), get_tracer().span(
            "service.request", method=method, path=path
        ) as span:
            try:
                if path == "/v1/healthz":
                    result = self._expect(method, "GET", self._healthz)
                elif path == "/v1/metrics":
                    result = self._expect(method, "GET", self._metrics)
                elif path == "/v1/status":
                    result = self._expect(method, "GET", self._status)
                elif path in self._plan_routes:
                    result = self._expect(
                        method, "POST", lambda: self._planning(path, body)
                    )
                else:
                    raise ApiError("not_found", f"no route {path!r}")
            except ApiError as exc:
                result = self._error(exc)
            except Exception as exc:  # pragma: no cover - defensive
                result = self._error(ApiError.from_exception(exc))
            status = result[0]
            if span is not None:
                span.tags["status"] = status
        latency_s = time.perf_counter() - started
        with self._lock:
            self._served += 1
        if path in self._plan_routes:
            self.monitor.record(latency_s, status)
        bus = get_event_bus()
        if bus.active:
            bus.emit(
                "service.access",
                method=method,
                path=path,
                status=status,
                latency_s=round(latency_s, 6),
                trace_id=context.trace_id,
            )
        return result

    # ------------------------------------------------------------------
    def _expect(self, method: str, expected: str, handler):
        if method != expected:
            raise ApiError(
                "invalid_request",
                f"use {expected} for this route, not {method}",
                http_status=405,
            )
        return handler()

    def _error(self, exc: ApiError) -> tuple[int, str, bytes]:
        get_metrics().counter("service.errors").inc()
        payload = json.dumps(exc.to_dict(), sort_keys=True).encode("utf-8")
        return exc.http_status, _JSON, payload

    def _healthz(self) -> tuple[int, str, bytes]:
        from repro.core.evalspace import space_cache_info
        from repro.serving.fleet import fleet_cache_info

        with self._lock:
            inflight, served = self._inflight, self._served
        payload = {
            "schema": API_SCHEMA,
            "status": "ok",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "inflight": inflight,
            "served": served,
            "space_cache": space_cache_info(),
            "fleet_cache": fleet_cache_info(),
        }
        return 200, _JSON, json.dumps(payload, sort_keys=True).encode("utf-8")

    def _status(self) -> tuple[int, str, bytes]:
        payload = {
            "schema": API_SCHEMA,
            "uptime_s": round(time.monotonic() - self._started, 3),
            **self.monitor.status(),
        }
        return 200, _JSON, json.dumps(payload, sort_keys=True).encode("utf-8")

    def _metrics(self) -> tuple[int, str, bytes]:
        from repro.obs.export import prometheus_text

        text = prometheus_text(get_metrics().snapshot())
        return 200, _OPENMETRICS, text.encode("utf-8")

    def _planning(self, path: str, body: bytes) -> tuple[int, str, bytes]:
        request_cls, handler = self._plan_routes[path]
        with self._admitted():
            get_metrics().counter("service.requests").inc()
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, ValueError):
                raise ApiError(
                    "invalid_request", "request body is not valid JSON"
                ) from None
            response = handler(request_cls.from_dict(payload))
            points = getattr(response, "points", ())
            if points:
                # the answered plan's headline cost feeds the monitor's
                # cost series (a spot-price step shows up here first)
                self.monitor.observe_cost(points[0].cost)
            out = json.dumps(response.to_dict(), sort_keys=True)
            return 200, _JSON, out.encode("utf-8")

    # ------------------------------------------------------------------
    def _admitted(self):
        """Context manager holding one in-flight slot (or shedding)."""
        from contextlib import contextmanager

        @contextmanager
        def _slot():
            if self.max_inflight is not None:
                with self._lock:
                    if self._inflight >= self.max_inflight:
                        get_metrics().counter("service.rejected").inc()
                        raise ApiError(
                            "overloaded",
                            f"{self._inflight} requests in flight "
                            f"(limit {self.max_inflight}); retry later",
                        )
                    self._inflight += 1
            try:
                yield
            finally:
                if self.max_inflight is not None:
                    with self._lock:
                        self._inflight -= 1

        return _slot()


class _Handler(BaseHTTPRequestHandler):
    """Socket-facing shim: reads the body, defers to the service."""

    server_version = "repro-planning/1"
    protocol_version = "HTTP/1.1"

    def _handle(self) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        body = self.rfile.read(length) if length else b""
        status, content_type, payload = self.server.service.dispatch(
            self.command, self.path, body, headers=self.headers
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    do_GET = _handle
    do_POST = _handle

    def log_message(self, format: str, *args) -> None:
        """Silence the stdlib's unstructured stderr access log.

        The service publishes ``service.access`` events on the
        :class:`~repro.obs.events.EventBus` instead — same facts
        (method, path, status) plus latency and trace id, consumable
        by ``repro tail`` and any JSONL event log.
        """


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # socketserver's default listen backlog of 5 drops (RST) bursty
    # open-loop connects long before the service itself is saturated
    request_queue_size = 128
    service: PlanningService


class PlanningServer:
    """A :class:`PlanningService` bound to a TCP port.

    Parameters
    ----------
    host, port:
        Bind address; port ``0`` picks a free one (see :attr:`url`).
    max_inflight:
        Passed to :class:`PlanningService`.
    registry:
        Optional :class:`~repro.obs.MetricsRegistry` installed as the
        observability scope for the server's lifetime, so
        ``GET /v1/metrics`` exposes only traffic served since start.
        ``None`` leaves the ambient scope in place.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int | None = 64,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.service = PlanningService(max_inflight=max_inflight)
        self._http = _Server((host, port), _Handler)
        self._http.service = self.service
        self._registry = registry
        self._scope = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """Bound host address."""
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        """Bound TCP port (resolved when constructed with port 0)."""
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should target."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def start(self) -> "PlanningServer":
        """Serve in a daemon thread; returns self for chaining."""
        if self._thread is not None:
            return self
        if self._registry is not None:
            self._scope = scoped_observability(
                Tracer(enabled=False), self._registry
            )
            self._scope.__enter__()
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-planning-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI foreground mode)."""
        if self._registry is not None:
            with scoped_observability(
                Tracer(enabled=False), self._registry
            ):
                self._http.serve_forever()
        else:
            self._http.serve_forever()

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is not None:
            self._http.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._http.server_close()
        if self._scope is not None:
            self._scope.__exit__(None, None, None)
            self._scope = None

    def __enter__(self) -> "PlanningServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Tests for the reactive autoscaler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import caffenet_accuracy_model, caffenet_time_model
from repro.cloud import instance_type
from repro.errors import ConfigurationError
from repro.pruning import PruneSpec
from repro.serving import BatchPolicy, poisson_arrivals
from repro.serving.autoscaler import (
    AutoscalePolicy,
    AutoscalingSimulator,
)


def _simulator(
    min_instances: int = 1,
    max_instances: int = 6,
    boot_delay_s: float = 10.0,
    spec: PruneSpec | None = None,
) -> AutoscalingSimulator:
    return AutoscalingSimulator(
        caffenet_time_model(),
        caffenet_accuracy_model(),
        instance_type("p2.8xlarge"),
        spec or PruneSpec.unpruned(),
        BatchPolicy(max_batch=32, max_wait_s=0.05),
        AutoscalePolicy(
            interval_s=10.0,
            min_instances=min_instances,
            max_instances=max_instances,
            boot_delay_s=boot_delay_s,
        ),
    )


def _surge(seed: int = 1) -> np.ndarray:
    quiet = poisson_arrivals(80.0, 60.0, seed=seed)
    heavy = 60.0 + poisson_arrivals(800.0, 60.0, seed=seed + 1)
    tail = 120.0 + poisson_arrivals(80.0, 60.0, seed=seed + 2)
    return np.concatenate([quiet, heavy, tail])


class TestAutoscalePolicy:
    def test_threshold_order_enforced(self):
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(scale_out_above=0.3, scale_in_below=0.5)

    def test_instance_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(min_instances=5, max_instances=2)

    def test_timing_validated(self):
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(interval_s=0.0)


class TestAutoscalingSimulator:
    def test_all_requests_served(self):
        arrivals = poisson_arrivals(100.0, 30.0, seed=0)
        report = _simulator().run(arrivals)
        assert report.requests == arrivals.size
        assert np.all(report.latencies_s > 0)

    def test_scales_out_under_surge(self):
        report = _simulator().run(_surge())
        assert report.peak_instances > 1

    def test_scales_back_in_after_surge(self):
        report = _simulator().run(_surge())
        final_fleet = report.fleet_timeline[-1][1]
        assert final_fleet < report.peak_instances

    def test_respects_max_instances(self):
        report = _simulator(max_instances=3).run(_surge())
        assert report.peak_instances <= 3

    def test_never_below_min_instances(self):
        report = _simulator(min_instances=2).run(_surge())
        assert min(n for _, n in report.fleet_timeline) >= 2

    def test_cheaper_than_peak_static_billing(self):
        report = _simulator().run(_surge())
        peak_static = (
            report.peak_instances
            * instance_type("p2.8xlarge").price_per_hour
            * report.duration_s
            / 3600.0
        )
        assert report.cost < peak_static

    def test_mean_fleet_below_peak(self):
        report = _simulator().run(_surge())
        assert report.mean_instances < report.peak_instances

    def test_boot_delay_worsens_surge_latency(self):
        fast = _simulator(boot_delay_s=0.0).run(_surge())
        slow = _simulator(boot_delay_s=60.0).run(_surge())
        assert slow.p99 >= fast.p99

    def test_pruned_model_cheaper_and_faster(self):
        arrivals = _surge(seed=9)
        base = _simulator().run(arrivals)
        pruned = _simulator(
            spec=PruneSpec({"conv1": 0.3, "conv2": 0.5})
        ).run(arrivals)
        assert pruned.cost < base.cost
        assert pruned.p99 <= base.p99

    def test_rejects_bad_arrivals(self):
        sim = _simulator()
        with pytest.raises(ConfigurationError):
            sim.run(np.array([]))
        with pytest.raises(ConfigurationError):
            sim.run(np.array([2.0, 1.0]))

    def test_deterministic(self):
        arrivals = _surge(seed=11)
        a = _simulator().run(arrivals)
        b = _simulator().run(arrivals)
        np.testing.assert_array_equal(a.latencies_s, b.latencies_s)
        assert a.cost == b.cost


class TestAutoscaleStudy:
    @pytest.fixture(scope="class")
    def study(self):
        from repro.experiments import ext_autoscale

        ext_autoscale.run.cache_clear()
        return ext_autoscale.run(
            base_rate=80.0, surge_rate=700.0, phase_s=60.0, peak_fleet=6
        )

    def test_autoscaling_cuts_cost(self, study):
        static = study.row("static peak fleet")
        auto = study.row("autoscaled, unpruned")
        assert auto.cost < 0.7 * static.cost

    def test_pruning_helps_the_autoscaled_fleet(self, study):
        auto = study.row("autoscaled, unpruned")
        pruned = study.row("autoscaled, conv1-2 pruned")
        assert pruned.cost < auto.cost
        assert pruned.p99_s <= auto.p99_s

    def test_static_has_best_latency(self, study):
        static = study.row("static peak fleet")
        assert static.p99_s == min(r.p99_s for r in study.rows)

    def test_render(self, study):
        from repro.experiments import ext_autoscale

        assert "static peak fleet" in ext_autoscale.render(study)

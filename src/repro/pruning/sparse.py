"""CSR sparse execution path — stand-in for the sparse Caffe fork [31].

The paper runs pruned models on "an extended version of Caffe framework
for efficient sparse matrix computation".  Here the same role is played by
SciPy CSR matrices: a pruned layer's weight matrix is converted once, and
the layer's GEMM becomes a sparse-dense product.  :class:`SparseExecutor`
wraps a network and runs its weighted layers through this path, which lets
tests assert numerical equivalence with the dense engine and lets the
sparse-crossover ablation measure at what density sparse wins.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import sparse

from repro.cnn.conv import ConvLayer, im2col
from repro.cnn.dense import DenseLayer
from repro.cnn.inception import InceptionModule
from repro.cnn.layers import DTYPE
from repro.cnn.network import Network

__all__ = ["SparseExecutor", "sparse_vs_dense_time", "layer_density_profile"]


class SparseExecutor:
    """Run a network with CSR weights for its conv/dense layers.

    Weight matrices are converted to CSR lazily on first use and cached;
    call :meth:`invalidate` after mutating weights (e.g. re-pruning).
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self._cache: dict[str, list[sparse.csr_matrix]] = {}

    def invalidate(self) -> None:
        """Drop cached CSR matrices (weights changed)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    def _csr_for_conv(self, layer: ConvLayer) -> list[sparse.csr_matrix]:
        if layer.name not in self._cache:
            ocg = layer.out_channels // layer.groups
            mats = []
            for gi in range(layer.groups):
                wmat = layer.weights[gi * ocg : (gi + 1) * ocg].reshape(
                    ocg, -1
                )
                mats.append(sparse.csr_matrix(wmat))
            self._cache[layer.name] = mats
        return self._cache[layer.name]

    def _csr_for_dense(self, layer: DenseLayer) -> list[sparse.csr_matrix]:
        if layer.name not in self._cache:
            self._cache[layer.name] = [sparse.csr_matrix(layer.weights)]
        return self._cache[layer.name]

    # ------------------------------------------------------------------
    def _conv_forward(self, layer: ConvLayer, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        out_c, out_h, out_w = layer.output_shape((c, h, w))
        g = layer.groups
        icg = layer.in_channels // g
        ocg = layer.out_channels // g
        mats = self._csr_for_conv(layer)
        out = np.empty((n, out_c, out_h * out_w), dtype=DTYPE)
        for gi in range(g):
            xs = x[:, gi * icg : (gi + 1) * icg]
            cols, _, _ = im2col(xs, layer.kernel, layer.stride, layer.pad)
            # CSR @ dense must be 2-D: fold batch into the column axis.
            folded = cols.transpose(1, 0, 2).reshape(cols.shape[1], -1)
            prod = mats[gi] @ folded  # (ocg, n*hw)
            out[:, gi * ocg : (gi + 1) * ocg] = (
                prod.reshape(ocg, n, -1).transpose(1, 0, 2)
            )
        out += layer.bias[None, :, None]
        return out.reshape(n, out_c, out_h, out_w)

    def _dense_forward(self, layer: DenseLayer, x: np.ndarray) -> np.ndarray:
        (mat,) = self._csr_for_dense(layer)
        return np.asarray((mat @ x.T).T) + layer.bias

    def _inception_forward(
        self, module: InceptionModule, x: np.ndarray
    ) -> np.ndarray:
        """Inception module with every inner convolution on CSR."""
        relu = module._relu.forward
        conv = self._conv_forward
        y1 = relu(conv(module.b1, x))
        y2 = relu(conv(module.b2, relu(conv(module.b2_reduce, x))))
        y3 = relu(conv(module.b3, relu(conv(module.b3_reduce, x))))
        y4 = relu(conv(module.b4, module.pool.forward(x)))
        return module._concat.forward([y1, y2, y3, y4])

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Full-network inference using the sparse path where applicable."""
        for layer in self.network.layers:
            if isinstance(layer, ConvLayer):
                x = self._conv_forward(layer, x)
            elif isinstance(layer, DenseLayer):
                x = self._dense_forward(layer, x)
            elif isinstance(layer, InceptionModule):
                x = self._inception_forward(layer, x)
            else:
                x = layer.forward(x)
        return x


def sparse_vs_dense_time(
    rows: int,
    cols: int,
    density: float,
    batch: int = 64,
    repeats: int = 3,
    seed: int = 0,
) -> tuple[float, float]:
    """Wall-clock seconds for one (rows x cols) GEMM, dense vs CSR.

    Returns ``(dense_seconds, sparse_seconds)``, each the minimum of
    ``repeats`` runs — the paper's own measurement protocol (Section 3.3).
    Used by the sparse-crossover ablation to locate the density below
    which the sparse library pays off.
    """
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((rows, cols)).astype(DTYPE)
    mask = rng.random((rows, cols)) < density
    w *= mask
    x = rng.standard_normal((cols, batch)).astype(DTYPE)
    ws = sparse.csr_matrix(w)

    def best(fn) -> float:
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    return best(lambda: w @ x), best(lambda: ws @ x)


def layer_density_profile(network: Network) -> dict[str, float]:
    """Density of every weighted layer — sparsity introspection helper."""
    return {
        layer.name: layer.density() for layer in network.weighted_layers()
    }

"""Frozen, schema-versioned request/response types of the public API.

Every way into the planner — the ``python -m repro plan`` CLI, the
:mod:`repro.service` HTTP control plane, library callers, the load
generator — speaks these types.  They are deliberately boring:

* **requests** (:class:`PlanRequest`, :class:`FleetRequest` and its
  parts) are frozen dataclasses that validate on construction and
  round-trip losslessly through ``to_dict``/``from_dict``, so a JSON
  body over HTTP and a keyword call in a notebook build the *same*
  object and therefore hit the same content-keyed caches;
* **responses** (:class:`PlanResponse`, :class:`FleetResponse`) carry
  plain-data views plus, for library callers, the rich simulation
  objects they were built from; ``PlanResponse.render()`` reproduces
  the historical CLI text byte-for-byte;
* **errors** (:class:`ApiError`) give every failure a stable machine
  code and a canonical HTTP status, mapped from the library exception
  hierarchy by :meth:`ApiError.from_exception`.

The schema string ``repro.api/v1`` stamps every serialised payload;
compatible extensions add optional fields, incompatible ones bump the
version.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

from repro.errors import (
    ConfigurationError,
    InfeasibleError,
    PruningError,
    ReproError,
    UnknownArtefactError,
)

if TYPE_CHECKING:
    from repro.cloud.simulator import SimulationResult
    from repro.serving.fleet import FleetSpec, FleetWorkload
    from repro.serving.router import FleetReport

__all__ = [
    "API_SCHEMA",
    "ERROR_STATUS",
    "ApiError",
    "FleetDesign",
    "FleetReplica",
    "FleetRequest",
    "FleetResponse",
    "FleetView",
    "PlanPoint",
    "PlanRequest",
    "PlanResponse",
    "ReplicaView",
]

API_SCHEMA = "repro.api/v1"

#: stable error code -> canonical HTTP status.  Codes are part of the
#: v1 contract: clients may switch on them, so they never change
#: meaning; new failure modes get new codes.
ERROR_STATUS: dict[str, int] = {
    "invalid_request": 400,
    "unknown_model": 404,
    "unknown_artefact": 404,
    "not_found": 404,
    "infeasible": 422,
    "overloaded": 503,
    "internal": 500,
}

_KNOWN_MODELS = ("caffenet", "googlenet")
_KNOWN_METRICS = ("top1", "top5")


class ApiError(ReproError):
    """A failure with a stable machine code and HTTP status.

    ``code`` is one of the :data:`ERROR_STATUS` keys; ``http_status``
    defaults to the canonical status for the code.  The message is the
    human-readable reason, ``detail`` an optional structured payload.
    """

    def __init__(
        self,
        code: str,
        message: str,
        *,
        http_status: int | None = None,
        detail: object = None,
    ) -> None:
        if code not in ERROR_STATUS:
            raise ValueError(f"unknown ApiError code {code!r}")
        super().__init__(message)
        self.code = code
        self.http_status = (
            ERROR_STATUS[code] if http_status is None else http_status
        )
        self.detail = detail

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The serialised error body every transport returns."""
        error: dict = {"code": self.code, "message": str(self)}
        if self.detail is not None:
            error["detail"] = self.detail
        return {"schema": API_SCHEMA, "error": error}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ApiError":
        """Rebuild an error a server serialised (client side)."""
        error = payload.get("error")
        if not isinstance(error, Mapping) or "code" not in error:
            raise ValueError(f"not an {API_SCHEMA} error body: {payload!r}")
        code = error["code"]
        if code not in ERROR_STATUS:
            code = "internal"
        return cls(
            code,
            str(error.get("message", "")),
            detail=error.get("detail"),
        )

    @classmethod
    def from_exception(cls, exc: Exception) -> "ApiError":
        """Map a library exception onto the stable code space.

        ``ApiError`` passes through; the planner's
        :class:`~repro.errors.InfeasibleError` becomes ``infeasible``
        (422), :class:`~repro.errors.UnknownArtefactError` becomes
        ``unknown_artefact`` (404), other validation errors become
        ``invalid_request`` (400) and anything unexpected is
        ``internal`` (500).
        """
        if isinstance(exc, cls):
            return exc
        if isinstance(exc, InfeasibleError):
            return cls("infeasible", str(exc))
        if isinstance(exc, UnknownArtefactError):
            return cls("unknown_artefact", str(exc))
        if isinstance(exc, (ConfigurationError, PruningError, ReproError)):
            return cls("invalid_request", str(exc))
        return cls("internal", f"{type(exc).__name__}: {exc}")


# ----------------------------------------------------------------------
# shared (de)serialisation helpers
# ----------------------------------------------------------------------
def _require_mapping(payload: object, what: str) -> Mapping:
    if not isinstance(payload, Mapping):
        raise ApiError(
            "invalid_request",
            f"{what} must be a JSON object, got {type(payload).__name__}",
        )
    return payload


def _check_schema(payload: Mapping, what: str) -> None:
    schema = payload.get("schema")
    if schema is not None and schema != API_SCHEMA:
        raise ApiError(
            "invalid_request",
            f"{what} carries schema {schema!r}; this server speaks "
            f"{API_SCHEMA}",
        )


def _reject_unknown_keys(
    payload: Mapping, allowed: Sequence[str], what: str
) -> None:
    unknown = sorted(set(payload) - {*allowed, "schema"})
    if unknown:
        raise ApiError(
            "invalid_request",
            f"{what} has unknown fields {unknown}; "
            f"allowed: {sorted(allowed)}",
        )


def _number(value: object, what: str, *, optional: bool = False):
    if value is None and optional:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ApiError(
            "invalid_request",
            f"{what} must be a number, got {value!r}",
        )
    return float(value)


def _json_float(value: float) -> float | None:
    """JSON has no NaN/inf; non-finite floats serialise as ``null``."""
    return float(value) if math.isfinite(value) else None


def _from_json_float(value: object) -> float:
    return float("nan") if value is None else float(value)


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanRequest:
    """One inverse planning query over the evaluation grid.

    ``deadline_h`` set — cheapest budget inside the deadline (and, if
    ``budget`` is also set, a feasibility check against it);
    ``budget`` alone — fastest deadline on the budget; neither — the
    full iso-accuracy (time, cost) frontier.  ``catalog`` optionally
    restricts the grid to a subset of instance-type names (default:
    the full EC2 catalog).
    """

    target: float
    model: str = "caffenet"
    metric: str = "top5"
    deadline_h: float | None = None
    budget: float | None = None
    images: int = 20_000_000
    instances_per_type: int = 2
    catalog: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.model not in _KNOWN_MODELS:
            raise ApiError(
                "unknown_model",
                f"unknown model {self.model!r}; "
                f"available: {list(_KNOWN_MODELS)}",
            )
        if self.metric not in _KNOWN_METRICS:
            raise ApiError(
                "invalid_request",
                f"metric must be one of {list(_KNOWN_METRICS)}, "
                f"got {self.metric!r}",
            )
        if not isinstance(self.target, (int, float)) or isinstance(
            self.target, bool
        ):
            raise ApiError(
                "invalid_request",
                f"target must be a number, got {self.target!r}",
            )
        if not 0.0 < float(self.target) <= 100.0:
            raise ApiError(
                "invalid_request",
                f"target accuracy must be in (0, 100], got {self.target}",
            )
        for name in ("deadline_h", "budget"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ApiError(
                    "invalid_request",
                    f"{name} must be positive, got {value}",
                )
        if self.images < 1:
            raise ApiError(
                "invalid_request", f"images must be >= 1, got {self.images}"
            )
        if self.instances_per_type < 1:
            raise ApiError(
                "invalid_request",
                f"instances_per_type must be >= 1, "
                f"got {self.instances_per_type}",
            )
        if self.catalog is not None:
            object.__setattr__(
                self, "catalog", tuple(str(n) for n in self.catalog)
            )
            if not self.catalog:
                raise ApiError(
                    "invalid_request", "catalog must not be empty"
                )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The JSON body of this request."""
        out: dict = {
            "schema": API_SCHEMA,
            "model": self.model,
            "target": self.target,
            "metric": self.metric,
            "deadline_h": self.deadline_h,
            "budget": self.budget,
            "images": self.images,
            "instances_per_type": self.instances_per_type,
        }
        if self.catalog is not None:
            out["catalog"] = list(self.catalog)
        return out

    @classmethod
    def from_dict(cls, payload: object) -> "PlanRequest":
        """Validate and build from a decoded JSON body."""
        payload = _require_mapping(payload, "plan request")
        _check_schema(payload, "plan request")
        _reject_unknown_keys(
            payload,
            [f.name for f in fields(cls)],
            "plan request",
        )
        if "target" not in payload:
            raise ApiError(
                "invalid_request", "plan request needs a 'target' field"
            )
        catalog = payload.get("catalog")
        if catalog is not None:
            if not isinstance(catalog, Sequence) or isinstance(
                catalog, (str, bytes)
            ):
                raise ApiError(
                    "invalid_request",
                    "catalog must be a list of instance-type names",
                )
            catalog = tuple(str(n) for n in catalog)
        images = payload.get("images", 20_000_000)
        ipt = payload.get("instances_per_type", 2)
        if isinstance(images, bool) or not isinstance(images, int):
            raise ApiError(
                "invalid_request", f"images must be an integer, got {images!r}"
            )
        if isinstance(ipt, bool) or not isinstance(ipt, int):
            raise ApiError(
                "invalid_request",
                f"instances_per_type must be an integer, got {ipt!r}",
            )
        return cls(
            target=_number(payload["target"], "target"),
            model=str(payload.get("model", "caffenet")),
            metric=str(payload.get("metric", "top5")),
            deadline_h=_number(
                payload.get("deadline_h"), "deadline_h", optional=True
            ),
            budget=_number(payload.get("budget"), "budget", optional=True),
            images=images,
            instances_per_type=ipt,
            catalog=catalog,
        )

    def cache_key(self) -> tuple:
        """Content identity (used by tests and memoising callers)."""
        return (
            self.model,
            float(self.target),
            self.metric,
            self.deadline_h,
            self.budget,
            self.images,
            self.instances_per_type,
            self.catalog,
        )


@dataclass(frozen=True)
class PlanPoint:
    """One grid point a planning answer names (a plain-data view)."""

    spec: str
    configuration: str
    time_s: float
    cost: float
    top1: float
    top5: float

    @classmethod
    def from_result(cls, result: "SimulationResult") -> "PlanPoint":
        """Project a rich simulation record onto the wire view."""
        return cls(
            spec=result.spec.label(),
            configuration=result.configuration.label(),
            time_s=float(result.time_s),
            cost=float(result.cost),
            top1=float(result.accuracy.top1),
            top5=float(result.accuracy.top5),
        )

    @property
    def time_h(self) -> float:
        """Completion time in hours."""
        return self.time_s / 3600.0

    def to_dict(self) -> dict:
        """The JSON form of this point."""
        return {
            "spec": self.spec,
            "configuration": self.configuration,
            "time_s": self.time_s,
            "cost": self.cost,
            "top1": self.top1,
            "top5": self.top5,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "PlanPoint":
        """Rebuild a point from its JSON form."""
        payload = _require_mapping(payload, "plan point")
        return cls(
            spec=str(payload["spec"]),
            configuration=str(payload["configuration"]),
            time_s=float(payload["time_s"]),
            cost=float(payload["cost"]),
            top1=float(payload["top1"]),
            top5=float(payload["top5"]),
        )


@dataclass(frozen=True)
class PlanResponse:
    """The answer to one :class:`PlanRequest`.

    ``kind`` is ``min_budget`` / ``min_deadline`` / ``frontier``;
    ``points`` holds one point for the scalar queries and the full
    fastest-first curve for the frontier.  ``render()`` reproduces the
    historical ``repro plan`` output byte-for-byte.
    """

    kind: str
    request: PlanRequest
    points: tuple[PlanPoint, ...]

    @property
    def best(self) -> PlanPoint:
        """The headline point (the only one for scalar queries)."""
        return self.points[0]

    # ------------------------------------------------------------------
    def _show(self, p: PlanPoint) -> list[str]:
        return [
            f"degree of pruning : {p.spec}",
            f"configuration     : {p.configuration}",
            f"time              : {p.time_h:.2f} h",
            f"cost              : ${p.cost:.2f}",
            f"accuracy          : top1 {p.top1:.1f}% / "
            f"top5 {p.top5:.1f}%",
        ]

    def render(self) -> str:
        """The CLI text of this answer (no trailing newline)."""
        r = self.request
        if self.kind == "min_budget":
            lines = [
                f"minimum budget for {r.target:g}% {r.metric} "
                f"within {r.deadline_h:g}h:"
            ]
            lines.extend(self._show(self.best))
        elif self.kind == "min_deadline":
            lines = [
                f"minimum deadline for {r.target:g}% {r.metric} "
                f"within ${r.budget:.2f}:"
            ]
            lines.extend(self._show(self.best))
        else:
            lines = [
                f"iso-accuracy frontier at {r.target:g}% {r.metric} "
                f"({len(self.points)} points, fastest first):"
            ]
            lines.extend(
                f"  {p.time_h:7.2f} h  ${p.cost:8.2f}  "
                f"{p.spec}  on  {p.configuration}"
                for p in self.points
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """The JSON body of this response."""
        return {
            "schema": API_SCHEMA,
            "kind": self.kind,
            "request": self.request.to_dict(),
            "points": [p.to_dict() for p in self.points],
        }

    @classmethod
    def from_dict(cls, payload: object) -> "PlanResponse":
        """Rebuild a response from its JSON body (client side)."""
        payload = _require_mapping(payload, "plan response")
        _check_schema(payload, "plan response")
        return cls(
            kind=str(payload["kind"]),
            request=PlanRequest.from_dict(payload["request"]),
            points=tuple(
                PlanPoint.from_dict(p) for p in payload["points"]
            ),
        )


# ----------------------------------------------------------------------
# fleets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetReplica:
    """One replica of a declarative fleet design (JSON-able).

    ``spec`` holds the degree of pruning as ``layer -> ratio``
    (canonicalised to a sorted tuple so the dataclass hashes).
    """

    instance_type: str
    count: int = 1
    spec: tuple[tuple[str, float], ...] = ()
    name: str | None = None
    weight: float | None = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ApiError(
                "invalid_request",
                f"replica count must be >= 1, got {self.count}",
            )
        if isinstance(self.spec, Mapping):
            object.__setattr__(
                self,
                "spec",
                tuple(sorted((str(k), float(v)) for k, v in self.spec.items())),
            )
        else:
            object.__setattr__(
                self,
                "spec",
                tuple(sorted((str(k), float(v)) for k, v in self.spec)),
            )

    def to_dict(self) -> dict:
        """The JSON form of this replica."""
        out: dict = {
            "instance_type": self.instance_type,
            "count": self.count,
            "spec": {k: v for k, v in self.spec},
        }
        if self.name is not None:
            out["name"] = self.name
        if self.weight is not None:
            out["weight"] = self.weight
        return out

    @classmethod
    def from_dict(cls, payload: object) -> "FleetReplica":
        """Validate and build from a decoded JSON object."""
        payload = _require_mapping(payload, "fleet replica")
        _reject_unknown_keys(
            payload, [f.name for f in fields(cls)], "fleet replica"
        )
        if "instance_type" not in payload:
            raise ApiError(
                "invalid_request",
                "fleet replica needs an 'instance_type' field",
            )
        spec = payload.get("spec", ())
        if not isinstance(spec, (Mapping, Sequence)) or isinstance(
            spec, (str, bytes)
        ):
            raise ApiError(
                "invalid_request",
                "replica spec must be a {layer: ratio} object",
            )
        count = payload.get("count", 1)
        if isinstance(count, bool) or not isinstance(count, int):
            raise ApiError(
                "invalid_request",
                f"replica count must be an integer, got {count!r}",
            )
        return cls(
            instance_type=str(payload["instance_type"]),
            count=count,
            spec=spec if isinstance(spec, Mapping) else tuple(spec),
            name=(
                None
                if payload.get("name") is None
                else str(payload["name"])
            ),
            weight=_number(
                payload.get("weight"), "replica weight", optional=True
            ),
        )


@dataclass(frozen=True)
class FleetDesign:
    """A whole candidate fleet: replicas + routing + admission.

    The JSON-able counterpart of
    :class:`repro.serving.fleet.FleetSpec`; the handler layer binds it
    to a model pair to build the spec it evaluates.
    """

    replicas: tuple[FleetReplica, ...]
    name: str | None = None
    routing: str = "round-robin"
    admission_rate_per_s: float | None = None
    admission_burst: int = 32
    queue_limit: float | None = None
    max_batch: int = 32
    max_wait_s: float = 0.05

    def __post_init__(self) -> None:
        object.__setattr__(self, "replicas", tuple(self.replicas))
        if not self.replicas:
            raise ApiError(
                "invalid_request", "fleet design needs >= 1 replica"
            )

    def label(self, index: int) -> str:
        """This design's display name (``fleet-<n>`` when unnamed)."""
        return self.name if self.name is not None else f"fleet-{index + 1}"

    def to_dict(self) -> dict:
        """The JSON form of this design."""
        out: dict = {
            "replicas": [r.to_dict() for r in self.replicas],
            "routing": self.routing,
            "max_batch": self.max_batch,
            "max_wait_s": self.max_wait_s,
        }
        if self.name is not None:
            out["name"] = self.name
        if self.admission_rate_per_s is not None:
            out["admission_rate_per_s"] = self.admission_rate_per_s
            out["admission_burst"] = self.admission_burst
        if self.queue_limit is not None:
            out["queue_limit"] = self.queue_limit
        return out

    @classmethod
    def from_dict(cls, payload: object) -> "FleetDesign":
        """Validate and build from a decoded JSON object."""
        payload = _require_mapping(payload, "fleet design")
        _reject_unknown_keys(
            payload, [f.name for f in fields(cls)], "fleet design"
        )
        replicas = payload.get("replicas")
        if not isinstance(replicas, Sequence) or isinstance(
            replicas, (str, bytes)
        ):
            raise ApiError(
                "invalid_request",
                "fleet design needs a 'replicas' list",
            )
        burst = payload.get("admission_burst", 32)
        if isinstance(burst, bool) or not isinstance(burst, int):
            raise ApiError(
                "invalid_request",
                f"admission_burst must be an integer, got {burst!r}",
            )
        return cls(
            replicas=tuple(FleetReplica.from_dict(r) for r in replicas),
            name=(
                None
                if payload.get("name") is None
                else str(payload["name"])
            ),
            routing=str(payload.get("routing", "round-robin")),
            admission_rate_per_s=_number(
                payload.get("admission_rate_per_s"),
                "admission_rate_per_s",
                optional=True,
            ),
            admission_burst=burst,
            queue_limit=_number(
                payload.get("queue_limit"), "queue_limit", optional=True
            ),
            max_batch=int(payload.get("max_batch", 32)),
            max_wait_s=float(payload.get("max_wait_s", 0.05)),
        )


@dataclass(frozen=True)
class FleetRequest:
    """Evaluate (or pick the cheapest of) candidate fleet designs.

    ``workload`` uses the same fields as
    :class:`repro.serving.fleet.FleetWorkload`; ``availability`` and
    ``p99_s`` are the feasibility constraints of the *cheapest* query
    and are ignored by plain evaluation.
    """

    designs: tuple[FleetDesign, ...]
    rate_per_s: float
    duration_s: float
    model: str = "caffenet"
    arrival: str = "poisson"
    seed: int = 0
    floors: tuple[tuple[float, float], ...] = ()
    availability: float = 0.999
    p99_s: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "designs", tuple(self.designs))
        object.__setattr__(
            self,
            "floors",
            tuple((float(f), float(w)) for f, w in self.floors),
        )
        if self.model not in _KNOWN_MODELS:
            raise ApiError(
                "unknown_model",
                f"unknown model {self.model!r}; "
                f"available: {list(_KNOWN_MODELS)}",
            )
        if not self.designs:
            raise ApiError(
                "invalid_request", "fleet request needs >= 1 design"
            )
        if self.rate_per_s <= 0 or self.duration_s <= 0:
            raise ApiError(
                "invalid_request",
                "workload rate and duration must be positive",
            )

    def workload(self) -> "FleetWorkload":
        """The reproducible offered load this request describes."""
        from repro.serving.fleet import FleetWorkload

        try:
            return FleetWorkload(
                self.rate_per_s,
                self.duration_s,
                arrival=self.arrival,
                seed=self.seed,
                floors=self.floors,
            )
        except ReproError as exc:
            raise ApiError.from_exception(exc) from exc

    def to_dict(self) -> dict:
        """The JSON body of this request."""
        return {
            "schema": API_SCHEMA,
            "model": self.model,
            "designs": [d.to_dict() for d in self.designs],
            "rate_per_s": self.rate_per_s,
            "duration_s": self.duration_s,
            "arrival": self.arrival,
            "seed": self.seed,
            "floors": [list(f) for f in self.floors],
            "availability": self.availability,
            "p99_s": self.p99_s,
        }

    @classmethod
    def from_dict(cls, payload: object) -> "FleetRequest":
        """Validate and build from a decoded JSON body."""
        payload = _require_mapping(payload, "fleet request")
        _check_schema(payload, "fleet request")
        _reject_unknown_keys(
            payload, [f.name for f in fields(cls)], "fleet request"
        )
        designs = payload.get("designs")
        if not isinstance(designs, Sequence) or isinstance(
            designs, (str, bytes)
        ):
            raise ApiError(
                "invalid_request", "fleet request needs a 'designs' list"
            )
        for name in ("rate_per_s", "duration_s"):
            if name not in payload:
                raise ApiError(
                    "invalid_request",
                    f"fleet request needs a {name!r} field",
                )
        floors = payload.get("floors", ())
        if not isinstance(floors, Sequence) or isinstance(
            floors, (str, bytes)
        ):
            raise ApiError(
                "invalid_request",
                "floors must be a list of [floor, fraction] pairs",
            )
        seed = payload.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ApiError(
                "invalid_request", f"seed must be an integer, got {seed!r}"
            )
        try:
            floor_pairs = tuple(
                (float(f), float(w)) for f, w in floors
            )
        except (TypeError, ValueError):
            raise ApiError(
                "invalid_request",
                "floors must be a list of [floor, fraction] pairs",
            ) from None
        return cls(
            designs=tuple(FleetDesign.from_dict(d) for d in designs),
            rate_per_s=_number(payload["rate_per_s"], "rate_per_s"),
            duration_s=_number(payload["duration_s"], "duration_s"),
            model=str(payload.get("model", "caffenet")),
            arrival=str(payload.get("arrival", "poisson")),
            seed=seed,
            floors=floor_pairs,
            availability=_number(
                payload.get("availability", 0.999), "availability"
            ),
            p99_s=_number(payload.get("p99_s"), "p99_s", optional=True),
        )


@dataclass(frozen=True)
class ReplicaView:
    """One replica's slice of a fleet evaluation (plain data)."""

    name: str
    served: int
    dropped: int
    cost: float
    p99_s: float
    top5: float

    def to_dict(self) -> dict:
        """The JSON form of this view."""
        return {
            "name": self.name,
            "served": self.served,
            "dropped": self.dropped,
            "cost": self.cost,
            "p99_s": _json_float(self.p99_s),
            "top5": self.top5,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ReplicaView":
        """Rebuild a view from its JSON form."""
        return cls(
            name=str(payload["name"]),
            served=int(payload["served"]),
            dropped=int(payload["dropped"]),
            cost=float(payload["cost"]),
            p99_s=_from_json_float(payload.get("p99_s")),
            top5=float(payload["top5"]),
        )


@dataclass(frozen=True)
class FleetView:
    """One design's fleet-wide outcome (plain data)."""

    name: str
    offered: int
    shed: int
    served: int
    dropped: int
    availability: float
    goodput: float
    cost: float
    hourly_rate: float
    p50_s: float
    p99_s: float
    replicas: tuple[ReplicaView, ...]

    @classmethod
    def from_report(
        cls, name: str, spec: "FleetSpec", report: "FleetReport"
    ) -> "FleetView":
        """Project a rich :class:`FleetReport` onto the wire view."""
        replicas = []
        for outcome in report.outcomes:
            accuracy = spec.accuracy_model.accuracy(outcome.spec.spec)
            p99 = (
                outcome.report.latency_percentile(99)
                if outcome.report is not None
                else float("nan")
            )
            replicas.append(
                ReplicaView(
                    name=outcome.spec.name,
                    served=outcome.served,
                    dropped=outcome.dropped,
                    cost=float(outcome.cost),
                    p99_s=float(p99),
                    top5=float(accuracy.top5),
                )
            )
        return cls(
            name=name,
            offered=report.offered,
            shed=report.shed,
            served=report.served,
            dropped=report.dropped,
            availability=float(report.availability),
            goodput=float(report.goodput),
            cost=float(report.cost),
            hourly_rate=float(spec.hourly_rate),
            p50_s=float(report.latency_percentile(50)),
            p99_s=float(report.latency_percentile(99)),
            replicas=tuple(replicas),
        )

    def to_dict(self) -> dict:
        """The JSON form of this view."""
        return {
            "name": self.name,
            "offered": self.offered,
            "shed": self.shed,
            "served": self.served,
            "dropped": self.dropped,
            "availability": self.availability,
            "goodput": self.goodput,
            "cost": self.cost,
            "hourly_rate": self.hourly_rate,
            "p50_s": _json_float(self.p50_s),
            "p99_s": _json_float(self.p99_s),
            "replicas": [r.to_dict() for r in self.replicas],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FleetView":
        """Rebuild a view from its JSON form."""
        payload = _require_mapping(payload, "fleet view")
        return cls(
            name=str(payload["name"]),
            offered=int(payload["offered"]),
            shed=int(payload["shed"]),
            served=int(payload["served"]),
            dropped=int(payload["dropped"]),
            availability=float(payload["availability"]),
            goodput=float(payload["goodput"]),
            cost=float(payload["cost"]),
            hourly_rate=float(payload["hourly_rate"]),
            p50_s=_from_json_float(payload.get("p50_s")),
            p99_s=_from_json_float(payload.get("p99_s")),
            replicas=tuple(
                ReplicaView.from_dict(r) for r in payload["replicas"]
            ),
        )


@dataclass(frozen=True)
class FleetResponse:
    """The answer to one :class:`FleetRequest`.

    ``kind`` is ``evaluate`` (one view per design, request order) or
    ``cheapest`` (``chosen`` names the winner; views still cover every
    design so callers can see *why*).  ``reports`` carries the rich
    :class:`FleetReport` objects for in-process callers; it is never
    serialised.
    """

    kind: str
    views: tuple[FleetView, ...]
    chosen: str | None = None
    reports: tuple = field(
        default=(), repr=False, compare=False
    )

    def view(self, name: str) -> FleetView:
        """The view of the design named ``name``."""
        for v in self.views:
            if v.name == name:
                return v
        raise KeyError(name)

    def to_dict(self) -> dict:
        """The JSON body of this response (rich reports excluded)."""
        out: dict = {
            "schema": API_SCHEMA,
            "kind": self.kind,
            "views": [v.to_dict() for v in self.views],
        }
        if self.chosen is not None:
            out["chosen"] = self.chosen
        return out

    @classmethod
    def from_dict(cls, payload: object) -> "FleetResponse":
        """Rebuild a response from its JSON body (client side)."""
        payload = _require_mapping(payload, "fleet response")
        _check_schema(payload, "fleet response")
        return cls(
            kind=str(payload["kind"]),
            views=tuple(
                FleetView.from_dict(v) for v in payload["views"]
            ),
            chosen=(
                None
                if payload.get("chosen") is None
                else str(payload["chosen"])
            ),
        )

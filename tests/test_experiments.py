"""Integration tests: every regenerated table/figure matches the paper's
published shape (see EXPERIMENTS.md for the full paper-vs-measured log).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    fig3_time_distribution,
    fig4_single_inference,
    fig5_parallel_inference,
    fig6_caffenet_sweeps,
    fig7_googlenet_sweeps,
    fig8_multilayer,
    fig11_tar,
    fig12_car,
    tables,
)


class TestTable1:
    def test_rows_match_paper(self):
        rows = {r.layer: r for r in tables.table1_caffenet_layers()}
        assert rows["conv1"].size == "55x55x96"
        assert rows["conv1"].filter_size == "11x11x3"
        assert rows["conv2"].size == "27x27x256"
        assert rows["conv2"].filter_size == "5x5x48"
        assert rows["conv3"].filter_size == "3x3x256"
        assert rows["conv4"].filter_size == "3x3x192"
        assert rows["conv5"].size == "13x13x256"
        assert rows["fc1"].size == "4096"
        assert rows["fc3"].size == "1000"

    def test_render_contains_all_layers(self):
        text = tables.render_table1()
        for layer in ("input", "conv1", "conv5", "fc3"):
            assert layer in text


class TestTable3:
    def test_six_rows(self):
        assert len(tables.table3_catalog_rows()) == 6

    def test_render(self):
        text = tables.render_table3()
        assert "p2.16xlarge" in text and "14.4" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3_time_distribution.run()

    def test_shares_match_paper(self, result):
        # conv1 51%, conv2 16%, conv3 9%, conv4 10%, conv5 7%
        assert result.shares["conv1"] == pytest.approx(0.51, abs=0.01)
        assert result.shares["conv2"] == pytest.approx(0.16, abs=0.01)
        assert result.shares["conv3"] == pytest.approx(0.09, abs=0.01)
        assert result.shares["conv4"] == pytest.approx(0.10, abs=0.01)
        assert result.shares["conv5"] == pytest.approx(0.07, abs=0.01)

    def test_convs_dominate(self, result):
        assert result.conv_share > 0.90

    def test_fc_cheap_but_parameter_heavy(self, result):
        assert result.fc_share < 0.10
        assert result.fc_param_fraction > 0.90

    def test_render(self, result):
        assert "conv1" in fig3_time_distribution.render(result)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4_single_inference.run()

    def test_caffenet_endpoints(self, result):
        assert result.caffenet_s[0] == pytest.approx(0.09)
        assert result.caffenet_s[-1] == pytest.approx(0.05, rel=0.02)

    def test_googlenet_endpoints(self, result):
        assert result.googlenet_s[0] == pytest.approx(0.16)
        assert result.googlenet_s[-1] == pytest.approx(0.10, rel=0.02)

    def test_monotone_nonincreasing(self, result):
        for series in (result.caffenet_s, result.googlenet_s):
            diffs = np.diff(series)
            assert np.all(diffs <= 1e-12)

    def test_reductions_match_paper_claims(self, result):
        # "drops by about half" / "about one third"
        assert result.caffenet_reduction == pytest.approx(0.44, abs=0.03)
        assert result.googlenet_reduction == pytest.approx(0.375, abs=0.03)


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5_parallel_inference.run()

    def test_monotone_decreasing(self, result):
        assert np.all(np.diff(result.caffenet_s) <= 1e-9)

    def test_saturation_around_300(self, result):
        assert 200 <= result.caffenet_knee <= 400
        # past the knee only marginal improvement remains
        assert result.saturation_ratio("caffenet") < 0.12

    def test_caffenet_floor_near_19_minutes(self, result):
        # saturated total for 50k images approaches the Figure 6 baseline
        assert result.caffenet_s[-1] == pytest.approx(19 * 60, rel=0.05)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_caffenet_sweeps.run()

    def test_five_sweeps(self, result):
        assert len(result.sweeps) == 5

    def test_conv2_strongest_time_reduction(self, result):
        ends = {s.layer: s.time_min[-1] for s in result.sweeps}
        assert min(ends, key=ends.get) == "conv2"
        assert ends["conv2"] == pytest.approx(14.0, rel=0.01)
        assert ends["conv1"] == pytest.approx(16.6, rel=0.01)

    def test_sweet_spots_match_paper(self, result):
        assert result.sweep("conv1").sweet_spot.last_sweet_spot == 0.3
        for layer in ("conv2", "conv3", "conv4", "conv5"):
            assert result.sweep(layer).sweet_spot.last_sweet_spot == 0.5

    def test_conv1_top5_collapses(self, result):
        assert result.sweep("conv1").top5[-1] == 0.0

    def test_others_bottom_near_25(self, result):
        for layer in ("conv2", "conv3", "conv4", "conv5"):
            assert result.sweep(layer).top5[-1] == pytest.approx(25.0)

    def test_observation2_impact_not_by_params(self, result):
        """conv4 has the most compute ops but conv1/conv2 dominate both
        accuracy impact and time impact (the paper's Observation 2)."""
        time_savings = {
            s.layer: s.time_min[0] - s.time_min[-1] for s in result.sweeps
        }
        acc_drop = {s.layer: s.top5[0] - s.top5[-1] for s in result.sweeps}
        assert time_savings["conv4"] < time_savings["conv2"]
        assert acc_drop["conv4"] < acc_drop["conv1"]

    def test_times_near_linear(self, result):
        for sweep in result.sweeps:
            ys = np.array(sweep.time_min)
            xs = np.array(sweep.ratios)
            fit = np.polyfit(xs, ys, 1)
            resid = ys - np.polyval(fit, xs)
            assert np.abs(resid).max() < 0.05  # minutes


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7_googlenet_sweeps.run()

    def test_six_selected_layers(self, result):
        assert len(result.sweeps) == 6

    def test_accuracy_flat_until_60(self, result):
        for sweep in result.sweeps:
            assert sweep.sweet_spot.last_sweet_spot >= 0.6 - 1e-9

    def test_conv2_3x3_strongest(self, result):
        ends = {s.layer: s.time_min[-1] for s in result.sweeps}
        assert min(ends, key=ends.get) == "conv2-3x3"
        assert ends["conv2-3x3"] == pytest.approx(9.0, rel=0.01)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8_multilayer.run()

    def test_three_rows_match_paper(self, result):
        non = result.row("nonpruned")
        c12 = result.row("conv1-2")
        allc = result.row("all-conv")
        assert non.time_min == pytest.approx(19.0, rel=1e-6)
        assert non.top5 == pytest.approx(80.0)
        assert c12.time_min == pytest.approx(13.0, rel=0.05)
        assert c12.top5 == pytest.approx(70.0, abs=1.0)
        assert allc.time_min == pytest.approx(11.0, rel=0.08)
        assert allc.top5 == pytest.approx(62.0, abs=3.0)

    def test_ordering(self, result):
        times = [r.time_min for r in result.rows]
        accs = [r.top5 for r in result.rows]
        assert times == sorted(times, reverse=True)
        assert accs == sorted(accs, reverse=True)

    def test_headline_half_time_tenth_accuracy(self, result):
        """Abstract: 'halve inference cost and time with one-tenth
        reduction in accuracy' — conv1-2 costs ~1/8 accuracy for ~1/3
        time; all-conv reaches ~45% time saving."""
        assert result.time_reduction_all_conv > 0.40
        assert result.top5_drop_conv1_2 == pytest.approx(10.0, abs=1.5)


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_tar.run()

    def test_grid_size(self, result):
        assert len(result.points) == 5 * 6

    def test_tar_identifies_fastest_at_given_accuracy(self, result):
        # among equal-accuracy points, lowest TAR = lowest time
        by_acc: dict[float, list] = {}
        for p in result.points:
            by_acc.setdefault(round(p.top5, 3), []).append(p)
        for group in by_acc.values():
            if len(group) < 2:
                continue
            best_tar = min(group, key=lambda p: p.tar_top5)
            best_time = min(group, key=lambda p: p.time_min)
            assert best_tar.label == best_time.label

    def test_tar_range_matches_paper_scale(self, result):
        # Figure 11 labels TAR values in the 0.29-0.52 decade
        tars = [p.tar_top5 for p in result.points]
        assert 0.25 < min(tars) < max(tars) < 0.60


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_car.run()

    def test_car_flat_within_categories(self, result):
        assert result.within_category_spread("p2") < 0.05
        assert result.within_category_spread("g3") < 0.05

    def test_category_ratio_matches_paper(self, result):
        # paper: 0.57 (p2) vs 0.35 (g3) => ratio ~1.63
        assert result.category_ratio("all") == pytest.approx(1.63, abs=0.07)

    def test_g3_cheaper_per_accuracy(self, result):
        assert result.category_mean("g3") < result.category_mean("p2")

    def test_single_gpu_wastes_money_on_big_instances(self, result):
        rows = {r.instance: r for r in result.rows}
        assert (
            rows["p2.16xlarge"].car_one_gpu_top1
            > 10 * rows["p2.16xlarge"].car_all_gpus_top1
        )
        # on single-GPU instances both modes coincide
        assert rows["p2.xlarge"].car_one_gpu_top1 == pytest.approx(
            rows["p2.xlarge"].car_all_gpus_top1
        )

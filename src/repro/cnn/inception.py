"""GoogLeNet inception module (Szegedy et al. 2015).

Each module runs four parallel branches over the same input and
concatenates their channel outputs:

1. ``1x1``                    — pointwise convolution
2. ``3x3-reduce`` -> ``3x3``  — bottlenecked 3x3 convolution
3. ``5x5-reduce`` -> ``5x5``  — bottlenecked 5x5 convolution
4. ``pool`` -> ``pool-proj``  — 3x3 max pool + pointwise projection

The paper prunes individual inner convolutions (its Figure 7 uses names
like ``inception-3a-3x3``); sub-layers here are named
``{module}-{branch}`` so those identifiers resolve directly.
"""

from __future__ import annotations

import numpy as np

from repro.cnn.activations import ReLU
from repro.cnn.conv import ConvLayer
from repro.cnn.layers import Layer, LayerStats, WeightedLayer
from repro.cnn.normalization import Concat
from repro.cnn.pooling import MaxPool

__all__ = ["InceptionModule"]


class InceptionModule(Layer):
    """Four-branch inception block.

    Parameters
    ----------
    name:
        Module name, e.g. ``"inception-3a"``.
    in_channels:
        Channels of the incoming feature map.
    n1x1, n3x3red, n3x3, n5x5red, n5x5, pool_proj:
        Output channel counts for each inner convolution, in the order
        used by the GoogLeNet paper's Table 1.
    rng:
        Weight-initialisation source shared by all inner convolutions.
    """

    def __init__(
        self,
        name: str,
        in_channels: int,
        n1x1: int,
        n3x3red: int,
        n3x3: int,
        n5x5red: int,
        n5x5: int,
        pool_proj: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.b1 = ConvLayer(f"{name}-1x1", in_channels, n1x1, 1, rng=rng)
        self.b2_reduce = ConvLayer(
            f"{name}-3x3-reduce", in_channels, n3x3red, 1, rng=rng
        )
        self.b2 = ConvLayer(f"{name}-3x3", n3x3red, n3x3, 3, pad=1, rng=rng)
        self.b3_reduce = ConvLayer(
            f"{name}-5x5-reduce", in_channels, n5x5red, 1, rng=rng
        )
        self.b3 = ConvLayer(f"{name}-5x5", n5x5red, n5x5, 5, pad=2, rng=rng)
        self.pool = MaxPool(f"{name}-pool", kernel=3, stride=1, pad=1)
        self.b4 = ConvLayer(
            f"{name}-pool-proj", in_channels, pool_proj, 1, rng=rng
        )
        self._relu = ReLU(f"{name}-relu")
        self._concat = Concat(f"{name}-concat")
        self.out_channels = n1x1 + n3x3 + n5x5 + pool_proj

    # ------------------------------------------------------------------
    def conv_layers(self) -> list[ConvLayer]:
        """All prunable inner convolutions, in branch order."""
        return [
            self.b1,
            self.b2_reduce,
            self.b2,
            self.b3_reduce,
            self.b3,
            self.b4,
        ]

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        _, h, w = input_shape
        return (self.out_channels, h, w)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._require_rank(x, 4)
        relu = self._relu.forward
        y1 = relu(self.b1.forward(x))
        y2 = relu(self.b2.forward(relu(self.b2_reduce.forward(x))))
        y3 = relu(self.b3.forward(relu(self.b3_reduce.forward(x))))
        y4 = relu(self.b4.forward(self.pool.forward(x)))
        return self._concat.forward([y1, y2, y3, y4])

    # ------------------------------------------------------------------
    def _branch_stats(
        self, input_shape: tuple[int, ...], effective: bool
    ) -> LayerStats:
        def cost(layer: WeightedLayer, shape: tuple[int, ...]) -> LayerStats:
            return (
                layer.effective_stats(shape)
                if effective
                else layer.stats(shape)
            )

        total = cost(self.b1, input_shape)
        s2 = self.b2_reduce.output_shape(input_shape)
        total += cost(self.b2_reduce, input_shape) + cost(self.b2, s2)
        s3 = self.b3_reduce.output_shape(input_shape)
        total += cost(self.b3_reduce, input_shape) + cost(self.b3, s3)
        total += self.pool.stats(input_shape)
        total += cost(self.b4, input_shape)
        return total

    def stats(self, input_shape: tuple[int, ...]) -> LayerStats:
        return self._branch_stats(input_shape, effective=False)

    def effective_stats(self, input_shape: tuple[int, ...]) -> LayerStats:
        """Sparsity-aware cost over all inner convolutions."""
        return self._branch_stats(input_shape, effective=True)

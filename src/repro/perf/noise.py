"""Cloud measurement noise and the min-of-N protocol.

The paper's Section 3.3: "To minimize the measurement error, we run each
experiment three times and record the minimum time measurement."  That
protocol is a response to the *asymmetric* noise of virtualised cloud
GPUs: interference, multi-tenancy and host jitter only ever make a run
*slower* than the clean execution, never faster — so the minimum of a
few runs is a far better estimator of the underlying time than the mean.

:class:`NoisyTimeModel` wraps a calibrated time model and adds seeded
multiplicative lognormal slowdown per query, letting the repo *test*
the paper's protocol: estimator error of min-of-3 vs single-run vs
mean-of-3 (``tests/test_noise.py``), and letting pipelines be exercised
under realistic measurement conditions.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import MeasurementError
from repro.perf.device import GPUDevice
from repro.perf.latency import CalibratedTimeModel
from repro.pruning.base import PruneSpec

__all__ = ["NoisyTimeModel", "min_of_n", "estimator_errors"]


class NoisyTimeModel:
    """A calibrated time model with seeded cloud-interference noise.

    Every query is slowed by an independent factor ``1 + X`` where
    ``X ~ LogNormal(mu, sigma)`` shifted to be non-negative — runs are
    only ever slower than the clean model, matching the asymmetry of
    real cloud interference.

    Parameters
    ----------
    base:
        The clean calibrated model.
    spread:
        Median relative slowdown (e.g. 0.05 = 5%); heavier tails come
        with larger ``sigma``.
    sigma:
        Lognormal shape; larger = occasional much-slower outliers.
    seed:
        Noise stream seed (deterministic replay).
    """

    def __init__(
        self,
        base: CalibratedTimeModel,
        spread: float = 0.05,
        sigma: float = 0.8,
        seed: int = 0,
    ) -> None:
        if spread < 0:
            raise MeasurementError("spread must be non-negative")
        self.base = base
        self.spread = spread
        self.sigma = sigma
        self._rng = np.random.default_rng(seed)

    def _slowdown(self) -> float:
        if self.spread == 0:
            return 1.0
        # lognormal with median `spread`, strictly positive
        x = self._rng.lognormal(mean=np.log(self.spread), sigma=self.sigma)
        return 1.0 + x

    # ------------------------------------------------------------------
    def inference_time(
        self,
        spec: PruneSpec,
        images: int,
        device: GPUDevice,
        batch: int | None = None,
    ) -> float:
        """One noisy measurement of a batched inference run."""
        clean = self.base.inference_time(spec, images, device, batch)
        return clean * self._slowdown()

    def single_inference(self, spec: PruneSpec, device: GPUDevice) -> float:
        return self.base.single_inference(spec, device) * self._slowdown()


def min_of_n(measure: Callable[[], float], n: int = 3) -> float:
    """The paper's protocol: repeat ``n`` times, keep the minimum."""
    if n < 1:
        raise MeasurementError("need at least one run")
    return min(measure() for _ in range(n))


def estimator_errors(
    noisy: NoisyTimeModel,
    spec: PruneSpec,
    images: int,
    device: GPUDevice,
    trials: int = 200,
    runs_per_trial: int = 3,
) -> dict[str, float]:
    """Mean absolute relative error of three estimators vs ground truth.

    Returns errors for ``single`` (one run), ``mean`` (mean of N) and
    ``min`` (the paper's min of N) over ``trials`` repetitions.
    """
    truth = noisy.base.inference_time(spec, images, device)
    err = {"single": 0.0, "mean": 0.0, "min": 0.0}
    for _ in range(trials):
        runs = [
            noisy.inference_time(spec, images, device)
            for _ in range(runs_per_trial)
        ]
        err["single"] += abs(runs[0] - truth) / truth
        err["mean"] += abs(float(np.mean(runs)) - truth) / truth
        err["min"] += abs(min(runs) - truth) / truth
    return {k: v / trials for k, v in err.items()}

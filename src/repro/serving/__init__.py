"""Discrete-event online-serving simulator.

The paper's introduction motivates the cost-accuracy trade with
*near-real-time* image filtering (350 M uploads/day on a social
platform), but its evaluation only covers offline batch jobs.  This
subpackage extends the reproduction to the motivating scenario: requests
arrive continuously, a batcher packs them, GPU workers serve them with
batch-size-dependent latency from the calibrated models, and the report
gives latency percentiles, deadline-miss rate, utilisation and
per-second-billed cost.  Both simulators optionally run under a
:class:`repro.cloud.faults.FaultPlan` — preemptions, slowdowns, retry
budgets and request timeouts — yielding goodput and availability on top
of the cost-accuracy axes.

* :mod:`repro.serving.events`   — the event queue;
* :mod:`repro.serving.arrivals` — Poisson / uniform / bursty arrivals;
* :mod:`repro.serving.batcher`  — batch-forming policy;
* :mod:`repro.serving.simulator`— the event loop + report;
* :mod:`repro.serving.autoscaler` — the elastic fleet;
* :mod:`repro.serving.router`   — fleet-scale routing + admission
  control over N heterogeneous replicas (see docs/serving.md);
* :mod:`repro.serving.fleet`    — declarative ``FleetSpec`` with the
  content-keyed evaluation cache behind the fleet planner query;
* :mod:`repro.serving.metrics`  — post-hoc views incl. availability.
"""

from repro.cloud.faults import FaultPlan, Preemption, Slowdown
from repro.obs.telemetry import ServingTelemetry, SloPolicy
from repro.serving.arrivals import (
    bursty_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.serving.autoscaler import (
    AutoscalePolicy,
    AutoscaleReport,
    AutoscalingSimulator,
)
from repro.serving.batcher import BatchPolicy
from repro.serving.fleet import (
    FleetSpec,
    FleetWorkload,
    evaluate_fleet,
)
from repro.serving.router import (
    ROUTING_POLICIES,
    AdmissionPolicy,
    FleetReport,
    FleetRouter,
    FleetTelemetry,
    ReplicaSpec,
    fluid_backlog_trajectory,
)
from repro.serving.simulator import ServingReport, ServingSimulator

__all__ = [
    "AdmissionPolicy",
    "AutoscalePolicy",
    "AutoscaleReport",
    "AutoscalingSimulator",
    "BatchPolicy",
    "FaultPlan",
    "FleetReport",
    "FleetRouter",
    "FleetSpec",
    "FleetTelemetry",
    "FleetWorkload",
    "Preemption",
    "ROUTING_POLICIES",
    "ReplicaSpec",
    "ServingReport",
    "ServingSimulator",
    "ServingTelemetry",
    "SloPolicy",
    "Slowdown",
    "bursty_arrivals",
    "evaluate_fleet",
    "fluid_backlog_trajectory",
    "poisson_arrivals",
    "uniform_arrivals",
]

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``catalog``
    Print the EC2 instance catalog (Table 3).
``experiments [id ...] [--jobs N] [--format text|json] [--no-cache]``
    Regenerate all (or selected) paper artefacts, optionally in
    parallel; ``--format json`` emits structured results plus the run
    manifest.
``report [id ...] [--output PATH]``
    Build the Markdown experiment report from structured results.
``sweep --model M --layer L``
    Single-layer pruning sweep: time / Top-1 / Top-5 per ratio.
``allocate --images N --deadline H --budget D``
    Run Algorithm 1 over the degrees ladder and the full catalog.
``simulate --spec conv1=0.3,conv2=0.5 --instances p2.xlarge ...``
    Evaluate one (degree of pruning, configuration) pair.
``plan --target 78 [--deadline H] [--budget D]``
    Inverse planning over the evaluation space: cheapest budget for a
    deadline, fastest deadline for a budget, or the full iso-accuracy
    (time, cost) frontier when neither constraint is given.  Routed
    through :mod:`repro.api` (the same typed surface the HTTP service
    exposes).
``service [--host H] [--port P] [--max-inflight N] [--log-json PATH]``
    Serve the versioned planning API over HTTP in the foreground:
    ``POST /v1/plan``, ``POST /v1/fleet/evaluate``,
    ``POST /v1/fleet/cheapest``, ``GET /v1/healthz``,
    ``GET /v1/metrics`` (OpenMetrics), ``GET /v1/status`` (windowed
    live metrics + anomaly state).  ``--log-json`` appends every
    structured event — per-request ``service.access`` lines included —
    to a JSONL file ``repro tail`` can follow.
``loadgen [--url URL] [--rate R] [--duration S | --requests N]``
    Replay a seeded open-loop planning-query mixture against a running
    service (``--url``) or an in-process dispatcher (no sockets), and
    report throughput, latency percentiles and cache hit ratio.
    ``--soak`` switches to the sustained harness: the trace runs in
    fixed windows (``--window``) through streaming anomaly detectors,
    optionally perturbed mid-run (``--inject
    price-step|fault-plan|latency``), and exits non-zero unless the
    :class:`~repro.service.loadgen.SoakReport` comes back clean
    (``--windows-out`` dumps every closed window as JSON).
``tail PATH [--follow] [--kind K ...] [--trace ID] [--limit N]``
    Pretty-follow a ``repro.events/v1`` JSONL event log: filter by
    event kind prefixes and/or trace id, optionally waiting for new
    events like ``tail -f``.
``metrics [id ...] [--format openmetrics|json] [--output PATH]``
    Run artefacts (uncached) and export their metric snapshots as
    Prometheus/OpenMetrics text or flat JSON.
``bench [--record | --check] [--tolerance F] [--warn-ratio F] [--fail-ratio F]``
    Performance-trajectory recorder: run the bench suite, append a
    ``BENCH_<n>.json`` snapshot (``--record``), or gate against the
    latest snapshot (``--check``, non-zero exit on regression;
    wall-time drift past ``--warn-ratio`` — against the latest or the
    first record — is surfaced as a warning, and ``--fail-ratio``
    turns the first-record comparison into a hard gate; baselines
    from different hardware demote wall gates to warnings).
``serve --instances p2.xlarge ... [--faults MTBF] [--slo S]``
    Online-serving simulation: latency percentiles, utilisation,
    cost, fault/goodput accounting and streaming telemetry.
``serve --fleet --replica [Nx]ITYPE[:SPEC] ... [--routing P]``
    Route requests across N heterogeneous replicas (round-robin /
    jsq / weighted / tiered / adaptive, ``--adaptive`` as shorthand)
    with optional admission control (``--admission-rate`` /
    ``--admission-burst``/``--queue-limit``/``--degrade-limit``) and
    per-request accuracy floors and deadlines (``--floors``,
    ``--deadlines``).
``trace --instances p2.xlarge ... [--images N] [--chrome-out PATH]``
    Per-instance execution trace of one batch job (ASCII Gantt,
    optionally Chrome trace-event JSON).
``export DIRECTORY [id ...]``
    Write all (or selected) artefacts as txt/json/csv files.

``experiments``, ``serve`` and ``trace`` take telemetry flags:
``--trace-out`` (Chrome trace-event JSON, loads at ui.perfetto.dev),
``--metrics-out`` (OpenMetrics text, or flat JSON for ``.json`` paths)
and ``--log-json`` (JSONL structured-event log).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def _parse_spec(text: str):
    """Parse ``conv1=0.3,conv2=0.5`` into a PruneSpec."""
    from repro.pruning.base import PruneSpec

    if not text or text == "none":
        return PruneSpec.unpruned()
    ratios = {}
    for part in text.split(","):
        if "=" not in part:
            raise argparse.ArgumentTypeError(
                f"expected layer=ratio, got {part!r}"
            )
        layer, _, value = part.partition("=")
        try:
            ratios[layer.strip()] = float(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad ratio {value!r} for layer {layer!r}"
            ) from None
    return PruneSpec(ratios)


def _models(name: str):
    from repro.calibration import (
        caffenet_accuracy_model,
        caffenet_time_model,
        googlenet_accuracy_model,
        googlenet_time_model,
    )

    if name == "caffenet":
        return caffenet_time_model(), caffenet_accuracy_model()
    if name == "googlenet":
        return googlenet_time_model(), googlenet_accuracy_model()
    raise argparse.ArgumentTypeError(f"unknown model {name!r}")


def _add_telemetry_flags(
    parser: argparse.ArgumentParser, *, trace: bool = True
) -> None:
    """The shared ``--trace-out/--metrics-out/--log-json`` trio."""
    if trace:
        parser.add_argument(
            "--trace-out",
            metavar="PATH",
            help="write a Chrome trace-event JSON (ui.perfetto.dev)",
        )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help=(
            "write the metric snapshot as OpenMetrics text "
            "(flat JSON when PATH ends in .json)"
        ),
    )
    parser.add_argument(
        "--log-json",
        metavar="PATH",
        help="append structured events (JSONL, repro.events/v1)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Cost-accuracy performance of cloud applications "
            "(ICPP Workshops 2020 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("catalog", help="print the EC2 catalog (Table 3)")

    p_exp = sub.add_parser(
        "experiments", help="regenerate paper tables/figures"
    )
    p_exp.add_argument(
        "ids", nargs="*", help="artefact ids (default: all)"
    )
    p_exp.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1: serial)",
    )
    p_exp.add_argument(
        "--format",
        dest="fmt",
        default="text",
        choices=["text", "json"],
        help="text renders tables; json emits structured data + manifest",
    )
    p_exp.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute even when a cached result matches",
    )
    p_exp.add_argument(
        "--manifest",
        metavar="PATH",
        help="where to write the run manifest "
        "(default results/run_manifest.json)",
    )
    _add_telemetry_flags(p_exp)

    p_report = sub.add_parser(
        "report", help="Markdown report from structured results"
    )
    p_report.add_argument(
        "ids", nargs="*", help="artefact ids (default: all)"
    )
    p_report.add_argument(
        "--output", metavar="PATH", help="write to PATH instead of stdout"
    )
    p_report.add_argument(
        "--jobs", type=int, default=1, metavar="N"
    )

    p_sweep = sub.add_parser("sweep", help="single-layer pruning sweep")
    p_sweep.add_argument(
        "--model", default="caffenet", choices=["caffenet", "googlenet"]
    )
    p_sweep.add_argument("--layer", required=True)
    p_sweep.add_argument("--images", type=int, default=50_000)

    p_alloc = sub.add_parser(
        "allocate", help="Algorithm 1 over the full catalog"
    )
    p_alloc.add_argument(
        "--model", default="caffenet", choices=["caffenet", "googlenet"]
    )
    p_alloc.add_argument("--images", type=int, required=True)
    p_alloc.add_argument(
        "--deadline", type=float, required=True, help="hours"
    )
    p_alloc.add_argument(
        "--budget", type=float, required=True, help="dollars"
    )
    p_alloc.add_argument(
        "--instances-per-type", type=int, default=3
    )

    p_sim = sub.add_parser(
        "simulate", help="evaluate one (spec, configuration) pair"
    )
    p_sim.add_argument(
        "--model", default="caffenet", choices=["caffenet", "googlenet"]
    )
    p_sim.add_argument(
        "--spec",
        type=_parse_spec,
        default="none",
        help="layer=ratio[,layer=ratio...] or 'none'",
    )
    p_sim.add_argument(
        "--instances",
        nargs="+",
        required=True,
        help="instance type names, repeated for multiples",
    )
    p_sim.add_argument("--images", type=int, default=50_000)

    p_plan = sub.add_parser(
        "plan", help="inverse planning: budget/deadline for a target accuracy"
    )
    p_plan.add_argument(
        "--model", default="caffenet", choices=["caffenet", "googlenet"]
    )
    p_plan.add_argument(
        "--target",
        type=float,
        required=True,
        help="target accuracy in percent",
    )
    p_plan.add_argument(
        "--metric", default="top5", choices=["top1", "top5"]
    )
    p_plan.add_argument(
        "--deadline", type=float, help="deadline in hours (-> min budget)"
    )
    p_plan.add_argument(
        "--budget", type=float, help="budget in dollars (-> min deadline)"
    )
    p_plan.add_argument("--images", type=int, default=20_000_000)
    p_plan.add_argument("--instances-per-type", type=int, default=2)

    p_service = sub.add_parser(
        "service", help="serve the versioned planning API over HTTP"
    )
    p_service.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    p_service.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port (0 picks a free one; default 8765)",
    )
    p_service.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help="shed planning requests beyond N in flight with 503 "
        "(default 64)",
    )
    p_service.add_argument(
        "--log-json",
        metavar="PATH",
        help="append structured events (access log, anomalies; "
        "JSONL, repro.events/v1)",
    )

    p_load = sub.add_parser(
        "loadgen",
        help="open-loop load harness for the planning service",
    )
    p_load.add_argument(
        "--url",
        metavar="URL",
        help="base URL of a running service (default: dispatch "
        "in-process, no sockets)",
    )
    p_load.add_argument(
        "--rate", type=float, default=500.0, help="offered req/s"
    )
    volume = p_load.add_mutually_exclusive_group()
    volume.add_argument(
        "--duration", type=float, help="trace length in seconds"
    )
    volume.add_argument(
        "--requests", type=int, help="exact request count instead"
    )
    p_load.add_argument(
        "--arrival",
        default="uniform",
        choices=["poisson", "uniform", "bursty"],
    )
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument(
        "--model", default="caffenet", choices=["caffenet", "googlenet"]
    )
    p_load.add_argument("--images", type=int, default=20_000_000)
    p_load.add_argument("--instances-per-type", type=int, default=2)
    p_load.add_argument(
        "--catalog",
        nargs="+",
        metavar="ITYPE",
        help="restrict the grid to these instance types "
        "(default: the full EC2 catalog)",
    )
    p_load.add_argument(
        "--workers",
        type=int,
        default=32,
        metavar="N",
        help="client-side concurrency (default 32)",
    )
    p_load.add_argument(
        "--json",
        action="store_true",
        help="machine-readable summary instead of text",
    )
    p_load.add_argument(
        "--soak",
        action="store_true",
        help="sustained soak: windowed streaming detectors + drift "
        "verdicts (exit 1 unless the report comes back clean)",
    )
    p_load.add_argument(
        "--window",
        type=float,
        default=1.0,
        metavar="S",
        help="soak window width in seconds (default 1.0)",
    )
    p_load.add_argument(
        "--inject",
        choices=["price-step", "fault-plan", "latency"],
        help="perturb the middle third of the soak: a 3x cost step, "
        "a mixture the service rejects, or +250ms latency",
    )
    p_load.add_argument(
        "--windows-out",
        metavar="PATH",
        help="write every closed soak window as a JSON array",
    )
    p_load.add_argument(
        "--log-json",
        metavar="PATH",
        help="append structured events (anomaly raise/resolve; "
        "JSONL, repro.events/v1)",
    )

    p_tail = sub.add_parser(
        "tail",
        help="follow a JSONL event log (repro.events/v1)",
    )
    p_tail.add_argument("path", help="JSONL event-log file")
    p_tail.add_argument(
        "--follow",
        "-f",
        action="store_true",
        help="keep waiting for new events (ctrl-c to stop)",
    )
    p_tail.add_argument(
        "--kind",
        action="append",
        metavar="PREFIX",
        help="only events whose kind starts with PREFIX "
        "(repeatable, e.g. --kind anomaly --kind service.access)",
    )
    p_tail.add_argument(
        "--trace",
        metavar="ID",
        help="only events carrying this trace id",
    )
    p_tail.add_argument(
        "--limit",
        type=int,
        metavar="N",
        help="stop after N matching events",
    )

    p_serve = sub.add_parser(
        "serve", help="online-serving simulation (latency percentiles)"
    )
    p_serve.add_argument(
        "--model", default="caffenet", choices=["caffenet", "googlenet"]
    )
    p_serve.add_argument(
        "--spec", type=_parse_spec, default="none"
    )
    p_serve.add_argument(
        "--instances",
        nargs="+",
        help="instance types of the (single-endpoint) fleet",
    )
    p_serve.add_argument("--rate", type=float, default=200.0, help="req/s")
    p_serve.add_argument("--duration", type=float, default=60.0, help="s")
    p_serve.add_argument(
        "--arrival",
        default="poisson",
        choices=["poisson", "uniform", "bursty"],
    )
    p_serve.add_argument("--max-batch", type=int, default=32)
    p_serve.add_argument("--max-wait", type=float, default=0.05)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--histogram",
        action="store_true",
        help="also print the latency histogram",
    )
    p_serve.add_argument(
        "--slo", type=float, help="report headroom against a p99 SLO (s)"
    )
    p_serve.add_argument(
        "--faults",
        type=float,
        metavar="MTBF_S",
        help=(
            "inject seeded worker preemptions with this mean time "
            "between failures (seconds)"
        ),
    )
    p_serve.add_argument(
        "--fault-recovery",
        type=float,
        default=15.0,
        help="seconds a preempted worker takes to return (default 15)",
    )
    p_serve.add_argument(
        "--retry-budget",
        type=int,
        default=2,
        help="requeues allowed per request before it is dropped",
    )
    p_serve.add_argument(
        "--request-timeout",
        type=float,
        help="drop requests still queued this long after arrival (s)",
    )
    p_serve.add_argument(
        "--spot",
        action="store_true",
        help="bill the fleet at the EC2 spot discount",
    )
    p_serve.add_argument(
        "--fleet",
        action="store_true",
        help=(
            "route across a heterogeneous replica fleet "
            "(use --replica; --instances/--spec are ignored)"
        ),
    )
    p_serve.add_argument(
        "--replica",
        action="append",
        metavar="[Nx]ITYPE[:SPEC]",
        help=(
            "add a fleet replica: N instances of ITYPE serving SPEC "
            "(e.g. 2xp2.xlarge:conv1=0.3,conv2=0.5); repeatable"
        ),
    )
    p_serve.add_argument(
        "--routing",
        default="round-robin",
        choices=["round-robin", "jsq", "weighted", "tiered", "adaptive"],
        help="fleet routing policy",
    )
    p_serve.add_argument(
        "--adaptive",
        action="store_true",
        help=(
            "shorthand for --routing adaptive: pick an accuracy tier "
            "per request from its deadline, floor, and backlog"
        ),
    )
    p_serve.add_argument(
        "--floors",
        metavar="TOP5=FRAC,...",
        help=(
            "per-request Top-5 accuracy floor mixture for tiered/"
            "adaptive routing, e.g. 0=0.7,75=0.3"
        ),
    )
    p_serve.add_argument(
        "--deadlines",
        metavar="SECONDS=FRAC,...",
        help=(
            "per-request latency deadline mixture for adaptive "
            "routing, e.g. 0.5=0.8,2=0.2"
        ),
    )
    p_serve.add_argument(
        "--admission-rate",
        type=float,
        help="token-bucket admission rate (req/s); omit for no limit",
    )
    p_serve.add_argument(
        "--admission-burst",
        type=int,
        default=32,
        help="token-bucket burst size (default 32)",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=float,
        help="shed arrivals when the fleet backlog exceeds this depth",
    )
    p_serve.add_argument(
        "--degrade-limit",
        type=float,
        help=(
            "waive accuracy floors (serve degraded instead of "
            "shedding) past this fleet backlog depth"
        ),
    )
    _add_telemetry_flags(p_serve)

    p_trace = sub.add_parser(
        "trace", help="per-instance execution trace of a batch job"
    )
    p_trace.add_argument(
        "--model", default="caffenet", choices=["caffenet", "googlenet"]
    )
    p_trace.add_argument("--spec", type=_parse_spec, default="none")
    p_trace.add_argument("--instances", nargs="+", required=True)
    p_trace.add_argument("--images", type=int, default=1_000_000)
    p_trace.add_argument(
        "--proportional",
        action="store_true",
        help="capacity-proportional split instead of the paper's Eq. 4",
    )
    p_trace.add_argument(
        "--chrome-out",
        metavar="PATH",
        help="also write the gantt as Chrome trace-event JSON",
    )

    p_export = sub.add_parser(
        "export", help="write all artefacts as txt/json/csv"
    )
    p_export.add_argument("directory")
    p_export.add_argument("ids", nargs="*", help="artefact subset")

    p_metrics = sub.add_parser(
        "metrics", help="export artefact metric snapshots"
    )
    p_metrics.add_argument(
        "ids", nargs="*", help="artefact ids (default: all)"
    )
    p_metrics.add_argument(
        "--format",
        dest="fmt",
        default="openmetrics",
        choices=["openmetrics", "json"],
        help="OpenMetrics text exposition or flat JSON",
    )
    p_metrics.add_argument(
        "--output", metavar="PATH", help="write to PATH instead of stdout"
    )
    p_metrics.add_argument("--jobs", type=int, default=1, metavar="N")

    p_bench = sub.add_parser(
        "bench", help="performance-trajectory recorder / regression gate"
    )
    mode = p_bench.add_mutually_exclusive_group()
    mode.add_argument(
        "--record",
        action="store_true",
        help="append the next BENCH_<n>.json snapshot",
    )
    mode.add_argument(
        "--check",
        action="store_true",
        help="gate against the latest snapshot (non-zero exit on "
        "regression)",
    )
    p_bench.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        metavar="F",
        help="allowed fractional wall-time slowdown for --check "
        "(default 0.5 = +50%%; counters must match exactly)",
    )
    p_bench.add_argument(
        "--warn-ratio",
        type=float,
        default=1.5,
        metavar="F",
        help="warn (without failing) when --check wall time exceeds "
        "F times the latest record, or F times the first record on "
        "the trajectory (default 1.5)",
    )
    p_bench.add_argument(
        "--fail-ratio",
        type=float,
        default=None,
        metavar="F",
        help="hard-fail --check when wall time exceeds F times the "
        "FIRST record on the trajectory (bounds cumulative creep the "
        "per-step tolerance cannot; demoted to a warning when the "
        "baseline came from different hardware)",
    )
    p_bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="wall time is the min over N runs (default 3, the "
        "paper's min-of-3 protocol)",
    )
    p_bench.add_argument(
        "--only",
        nargs="+",
        metavar="SCENARIO",
        help="scenario subset (default: the full suite)",
    )
    p_bench.add_argument(
        "--root",
        default=".",
        metavar="DIR",
        help="directory holding BENCH_<n>.json files (default: cwd)",
    )
    return parser


def _cmd_catalog() -> int:
    from repro.experiments.tables import render_table3

    print(render_table3())
    return 0


def _run_selection(ids: Sequence[str], jobs: int, use_cache: bool, manifest_path=None):
    """Run the selection through the engine; exit code 2 on unknown ids."""
    from repro.errors import UnknownArtefactError
    from repro.experiments.engine import run_experiments

    try:
        return run_experiments(
            tuple(ids) or None,
            jobs=jobs,
            use_cache=use_cache,
            manifest_path=manifest_path,
        )
    except UnknownArtefactError as exc:
        print(str(exc), file=sys.stderr)
        return None


def _maybe_event_log(path):
    """A :class:`JsonlEventLog` for ``path``, or a no-op context."""
    from contextlib import nullcontext

    if path is None:
        return nullcontext()
    from repro.obs import JsonlEventLog

    return JsonlEventLog(path)


def _write_metrics(path, snapshots, *, label: str = "artefact") -> None:
    """Write metric snapshots to ``path``.

    ``.json`` paths get the flat-JSON schema; anything else gets
    OpenMetrics text (one labelled series per snapshot when there are
    several).
    """
    import json
    from pathlib import Path

    from repro.obs.export import (
        metrics_json,
        prometheus_text,
        prometheus_text_multi,
    )

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".json":
        payload = {name: metrics_json(s) for name, s in snapshots.items()}
        if len(payload) == 1:
            payload = next(iter(payload.values()))
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    elif len(snapshots) == 1:
        path.write_text(prometheus_text(next(iter(snapshots.values()))))
    else:
        path.write_text(prometheus_text_multi(snapshots, label=label))


def _cmd_experiments(args: argparse.Namespace) -> int:
    import json

    # cached results carry no trace or metrics, so exporting implies
    # recomputation
    use_cache = not args.no_cache
    if args.trace_out or args.metrics_out:
        use_cache = False
    with _maybe_event_log(args.log_json):
        run = _run_selection(
            args.ids, args.jobs, use_cache, args.manifest
        )
    if run is None:
        return 2
    if args.trace_out:
        from repro.obs.export import merge_chrome_traces, write_chrome_trace

        write_chrome_trace(
            args.trace_out,
            merge_chrome_traces(
                {r.artefact: r.trace for r in run.results}
            ),
        )
        print(f"trace   -> {args.trace_out}", file=sys.stderr)
    if args.metrics_out:
        _write_metrics(
            args.metrics_out,
            {r.artefact: r.metrics for r in run.results},
        )
        print(f"metrics -> {args.metrics_out}", file=sys.stderr)
    if args.fmt == "json":
        payload = {
            "manifest": run.manifest.to_dict(),
            "results": [
                {
                    "artefact": r.artefact,
                    "title": r.title,
                    "category": r.category,
                    "status": r.status,
                    "data": r.data,
                    "text": r.text,
                    "error": r.error,
                }
                for r in run.results
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for output in run.results:
            print(f"\n=== {output.artefact}: {output.title} ===")
            if output.status == "error":
                print(f"ERROR:\n{output.error}", file=sys.stderr)
            else:
                print(output.text)
    return 1 if run.manifest.errors else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.report import build_markdown_report

    run = _run_selection(args.ids, args.jobs, use_cache=True)
    if run is None:
        return 2
    text = build_markdown_report(run.results, run.manifest)
    if args.output:
        Path(args.output).write_text(text)
        print(args.output)
    else:
        print(text)
    return 1 if run.manifest.errors else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.cloud.simulator import CloudSimulator
    from repro.experiments.fig6_caffenet_sweeps import sweep_layer
    from repro.experiments.report import format_table

    time_model, accuracy_model = _models(args.model)
    simulator = CloudSimulator(time_model, accuracy_model)
    sweep = sweep_layer(simulator, args.layer, images=args.images)
    print(
        format_table(
            ["Prune", "Time (min)", "Top-1 (%)", "Top-5 (%)"],
            [
                (f"{r * 100:.0f}%", f"{t:.2f}", f"{a1:.1f}", f"{a5:.1f}")
                for r, t, a1, a5 in zip(
                    sweep.ratios, sweep.time_min, sweep.top1, sweep.top5
                )
            ],
        )
    )
    print(
        f"last sweet spot: {sweep.sweet_spot.last_sweet_spot * 100:.0f}% "
        f"({sweep.sweet_spot.time_reduction * 100:.1f}% time saved)"
    )
    return 0


def _cmd_allocate(args: argparse.Namespace) -> int:
    from repro.cloud.catalog import EC2_CATALOG
    from repro.cloud.instance import CloudInstance
    from repro.cloud.simulator import CloudSimulator
    from repro.core.allocation import greedy_allocate
    from repro.errors import InfeasibleError
    from repro.experiments.algorithm1 import _default_degrees

    time_model, accuracy_model = _models(args.model)
    simulator = CloudSimulator(time_model, accuracy_model)
    pool = [
        CloudInstance(itype)
        for itype in EC2_CATALOG
        for _ in range(args.instances_per_type)
    ]
    degrees = _default_degrees() if args.model == "caffenet" else None
    if degrees is None:
        from repro.experiments.ext_googlenet_pareto import (
            googlenet_variant_set,
        )

        degrees = googlenet_variant_set()
    try:
        allocation = greedy_allocate(
            degrees,
            pool,
            simulator,
            images=args.images,
            deadline_s=args.deadline * 3600.0,
            budget=args.budget,
        )
    except InfeasibleError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 1
    r = allocation.result
    print(f"degree of pruning : {r.spec.label()}")
    print(f"configuration     : {r.configuration.label()}")
    print(f"time              : {r.time_s / 3600.0:.2f} h")
    print(f"cost              : ${r.cost:.2f}")
    print(f"accuracy          : top1 {r.accuracy.top1:.1f}% / top5 {r.accuracy.top5:.1f}%")
    print(f"TAR / CAR (top5)  : {r.tar():.3f} / {r.car():.3f}")
    print(f"model evaluations : {allocation.evaluations}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.cloud.catalog import instance_type
    from repro.cloud.configuration import ResourceConfiguration
    from repro.cloud.instance import CloudInstance
    from repro.core.evalspace import SpaceSpec, evaluate

    time_model, accuracy_model = _models(args.model)
    config = ResourceConfiguration(
        [CloudInstance(instance_type(n)) for n in args.instances]
    )
    # a 1x1 grid: repeated invocations hit the evaluation-space cache
    space = evaluate(
        SpaceSpec.build(
            time_model, accuracy_model, [args.spec], [config], args.images
        )
    )
    r = space.results[0]
    print(f"spec      : {r.spec.label()}")
    print(f"config    : {r.configuration.label()}")
    print(f"time      : {r.time_s:.1f} s ({r.time_s / 60.0:.2f} min)")
    print(f"cost      : ${r.cost:.4f}")
    print(f"accuracy  : top1 {r.accuracy.top1:.1f}% / top5 {r.accuracy.top5:.1f}%")
    print(f"TAR (top5): {r.tar():.4f} h | CAR (top5): ${r.car():.4f}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro import api

    request = api.PlanRequest(
        target=args.target,
        model=args.model,
        metric=args.metric,
        deadline_h=args.deadline,
        budget=args.budget,
        images=args.images,
        instances_per_type=args.instances_per_type,
    )
    try:
        response = api.plan(request)
    except api.ApiError as exc:
        if exc.code == "infeasible":
            print(f"infeasible: {exc}", file=sys.stderr)
            return 1
        raise
    print(response.render())
    return 0


def _cmd_service(args: argparse.Namespace) -> int:
    from repro.obs import MetricsRegistry
    from repro.service import PlanningServer

    server = PlanningServer(
        args.host,
        args.port,
        max_inflight=args.max_inflight,
        registry=MetricsRegistry(),
    )
    print(f"serving on {server.url} (ctrl-c to stop)", file=sys.stderr)
    try:
        with _maybe_event_log(args.log_json):
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _soak_injection(preset: str | None, mixture):
    """Build the :class:`SoakInjection` a ``--inject`` preset names."""
    from dataclasses import replace

    from repro.service import SoakInjection

    if preset is None:
        return None
    if preset == "price-step":
        return SoakInjection(cost_scale=3.0)
    if preset == "fault-plan":
        # a catalog only the server can reject: every pulse request
        # comes back 4xx, stepping the error rate
        return SoakInjection(
            mixture=replace(mixture, catalog=("injected-fault",))
        )
    return SoakInjection(extra_latency_s=0.25)


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from repro.service import (
        HttpTarget,
        InProcessTarget,
        PlanMixture,
        run_load,
        run_soak,
    )

    mixture = PlanMixture(
        model=args.model,
        images=args.images,
        instances_per_type=args.instances_per_type,
        catalog=tuple(args.catalog) if args.catalog else None,
        seed=args.seed,
    )
    target = HttpTarget(args.url) if args.url else InProcessTarget()
    duration = args.duration
    if duration is None and args.requests is None:
        duration = 5.0
    if args.soak:
        if duration is None:
            duration = args.requests / args.rate
        with _maybe_event_log(args.log_json):
            soak = run_soak(
                target,
                mixture,
                rate_per_s=args.rate,
                duration_s=duration,
                window_s=args.window,
                arrival=args.arrival,
                seed=args.seed,
                inject=_soak_injection(args.inject, mixture),
                max_workers=args.workers,
            )
        if args.windows_out:
            from pathlib import Path

            path = Path(args.windows_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(soak.window_rows(), indent=2, sort_keys=True)
            )
            print(f"windows -> {args.windows_out}", file=sys.stderr)
        if args.json:
            print(json.dumps(soak.summary(), indent=2, sort_keys=True))
        else:
            print(soak.render())
        return 0 if soak.ok else 1
    with _maybe_event_log(args.log_json):
        report = run_load(
            target,
            mixture,
            rate_per_s=args.rate,
            duration_s=duration,
            n_requests=args.requests,
            arrival=args.arrival,
            seed=args.seed,
            max_workers=args.workers,
        )
    if args.json:
        print(json.dumps(report.summary(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def _tail_matches(event: dict, kinds, trace_id) -> bool:
    """Does one decoded event pass the ``repro tail`` filters?"""
    kind = str(event.get("kind", ""))
    if kinds and not any(kind.startswith(k) for k in kinds):
        return False
    if trace_id is not None and event.get("trace_id") != trace_id:
        return False
    return True


def _cmd_tail(args: argparse.Namespace) -> int:
    import json
    import time
    from pathlib import Path

    path = Path(args.path)
    if not path.exists():
        print(f"error: no such file {args.path!r}", file=sys.stderr)
        return 2
    kinds = tuple(args.kind or ())
    shown = 0
    try:
        with path.open("r") as handle:
            while True:
                line = handle.readline()
                if not line:
                    if not args.follow:
                        break
                    time.sleep(0.2)
                    continue
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(event, dict):
                    continue
                if not _tail_matches(event, kinds, args.trace):
                    continue
                print(json.dumps(event, sort_keys=True))
                shown += 1
                if args.limit is not None and shown >= args.limit:
                    break
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.fleet:
        return _cmd_serve_fleet(args)
    from repro.cloud.catalog import instance_type
    from repro.cloud.configuration import ResourceConfiguration
    from repro.cloud.instance import CloudInstance
    from repro.serving import (
        BatchPolicy,
        ServingSimulator,
        bursty_arrivals,
        poisson_arrivals,
        uniform_arrivals,
    )

    if not args.instances:
        print("serve needs --instances (or --fleet)", file=sys.stderr)
        return 2
    time_model, accuracy_model = _models(args.model)
    config = ResourceConfiguration(
        [CloudInstance(instance_type(n)) for n in args.instances]
    )
    generator = {
        "poisson": poisson_arrivals,
        "uniform": uniform_arrivals,
        "bursty": bursty_arrivals,
    }[args.arrival]
    kwargs = {"seed": args.seed} if args.arrival != "uniform" else {}
    arrivals = generator(args.rate, args.duration, **kwargs)
    plan = None
    if args.faults is not None or args.request_timeout is not None:
        from repro.cloud.faults import FaultPlan

        if args.faults is not None:
            plan = FaultPlan.sample(
                duration_s=args.duration,
                workers=config.total_gpus,
                mtbf_s=args.faults,
                recovery_s=args.fault_recovery,
                retry_budget=args.retry_budget,
                timeout_s=args.request_timeout,
                seed=args.seed,
            )
        else:
            plan = FaultPlan(
                retry_budget=args.retry_budget,
                timeout_s=args.request_timeout,
            )
    hourly_rate = None
    if args.spot:
        from repro.cloud.pricing import spot_rate

        hourly_rate = spot_rate(config.total_price_per_hour)
    simulator = ServingSimulator(
        time_model,
        accuracy_model,
        config,
        args.spec,
        BatchPolicy(max_batch=args.max_batch, max_wait_s=args.max_wait),
        hourly_rate=hourly_rate,
    )
    from repro.obs import MetricsRegistry, Tracer, scoped_observability
    from repro.obs.telemetry import ServingTelemetry, SloPolicy

    telemetry = ServingTelemetry(
        SloPolicy(latency_slo_s=args.slo) if args.slo is not None else None
    )
    tracer = Tracer(enabled=bool(args.trace_out))
    registry = MetricsRegistry()
    with scoped_observability(tracer, registry):
        with _maybe_event_log(args.log_json):
            report = simulator.run(arrivals, plan, telemetry=telemetry)
    if plan is None:
        print(f"served    : {report.requests} requests in {report.duration_s:.1f}s")
    else:
        print(f"served    : {report.served}/{report.requests} requests in {report.duration_s:.1f}s")
    print(f"latency   : p50 {report.p50:.3f}s  p99 {report.p99:.3f}s  mean {report.mean_latency:.3f}s")
    print(f"batching  : mean width {report.mean_batch:.1f}")
    print(f"fleet     : {report.worker_count} GPUs at {report.utilisation:.0%} utilisation")
    print(f"cost      : ${report.cost:.4f}" + (" (spot)" if args.spot else ""))
    print(f"accuracy  : top5 {report.accuracy.top5:.1f}%")
    if plan is not None:
        print(
            f"faults    : {report.preempted} preemptions, "
            f"{report.retries} retries, {report.dropped} dropped "
            f"(availability {report.availability:.1%}, "
            f"goodput {report.goodput:.1f} req/s)"
        )
    if args.histogram:
        from repro.serving.metrics import render_histogram

        print(render_histogram(report))
    if args.slo is not None:
        from repro.serving.metrics import slo_headroom

        headroom = slo_headroom(report, args.slo)
        print(
            f"SLO {args.slo:.2f}s: miss rate {headroom['miss_rate']:.1%}, "
            f"margin {headroom['margin_s']:+.2f}s"
        )
    hist = telemetry.latency
    print(
        f"telemetry : p50 {hist.p50:.3f}s  p95 {hist.p95:.3f}s  "
        f"p99 {hist.p99:.3f}s  (streaming histogram, "
        f"{hist.count} samples)"
    )
    print(
        f"            queue depth peak {telemetry.queue_depth.max:.0f}, "
        f"batch occupancy mean {telemetry.batch_occupancy.mean:.0%}"
    )
    for alert in telemetry.alerts:
        state = "FIRING" if alert["kind"] == "slo.alert" else "resolved"
        print(
            f"SLO alert : [{state}] {alert['slo']} "
            f"burn {alert['burn_rate']:.1f}x at t={alert['at_s']:.1f}s"
        )
    if args.trace_out:
        from repro.obs.export import chrome_trace, write_chrome_trace

        write_chrome_trace(args.trace_out, chrome_trace(tracer))
        print(f"trace   -> {args.trace_out}", file=sys.stderr)
    if args.metrics_out:
        _write_metrics(args.metrics_out, {"serve": registry.snapshot()})
        print(f"metrics -> {args.metrics_out}", file=sys.stderr)
    return 0


def _parse_replica(entry: str, index: int):
    """Parse one ``[Nx]ITYPE[:SPEC]`` replica description."""
    import re

    from repro.cloud.catalog import instance_type
    from repro.cloud.configuration import ResourceConfiguration
    from repro.cloud.instance import CloudInstance

    count = 1
    match = re.match(r"^(\d+)x(.+)$", entry)
    if match:
        count, entry = int(match.group(1)), match.group(2)
    itype_name, _, spec_text = entry.partition(":")
    spec = _parse_spec(spec_text or "none")
    itype = instance_type(itype_name)
    configuration = ResourceConfiguration(
        [CloudInstance(itype) for _ in range(count)]
    )
    name = f"r{index + 1}-{itype_name}" + (
        "-pruned" if spec.ratios else ""
    )
    return name, configuration, spec


def _parse_floors(text: str):
    """Parse ``0=0.7,75=0.3`` into a floor-mixture tuple."""
    from repro.errors import ConfigurationError

    floors = []
    for part in text.split(","):
        floor, _, fraction = part.partition("=")
        if not fraction:
            raise ConfigurationError(
                f"--floors expects TOP5=FRACTION pairs, got {part!r}"
            )
        try:
            floors.append((float(floor), float(fraction)))
        except ValueError:
            raise ConfigurationError(
                f"--floors expects numeric TOP5=FRACTION pairs, got {part!r}"
            ) from None
    return tuple(floors)


def _parse_deadlines(text: str):
    """Parse ``0.5=0.8,2=0.2`` into a deadline-mixture tuple."""
    from repro.errors import ConfigurationError

    deadlines = []
    for part in text.split(","):
        deadline, _, fraction = part.partition("=")
        if not fraction:
            raise ConfigurationError(
                "--deadlines expects SECONDS=FRACTION pairs, "
                f"got {part!r}"
            )
        try:
            deadlines.append((float(deadline), float(fraction)))
        except ValueError:
            raise ConfigurationError(
                "--deadlines expects numeric SECONDS=FRACTION pairs, "
                f"got {part!r}"
            ) from None
    return tuple(deadlines)


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    from repro.serving import (
        AdmissionPolicy,
        BatchPolicy,
        FleetRouter,
        FleetTelemetry,
        FleetWorkload,
        ReplicaSpec,
        SloPolicy,
    )

    if not args.replica:
        print(
            "serve --fleet needs at least one --replica", file=sys.stderr
        )
        return 2
    time_model, accuracy_model = _models(args.model)
    policy = BatchPolicy(
        max_batch=args.max_batch, max_wait_s=args.max_wait
    )
    replicas = []
    for i, entry in enumerate(args.replica):
        name, configuration, spec = _parse_replica(entry, i)
        plan = None
        if args.faults is not None or args.request_timeout is not None:
            from repro.cloud.faults import FaultPlan

            if args.faults is not None:
                plan = FaultPlan.sample(
                    duration_s=args.duration,
                    workers=configuration.total_gpus,
                    mtbf_s=args.faults,
                    recovery_s=args.fault_recovery,
                    retry_budget=args.retry_budget,
                    timeout_s=args.request_timeout,
                    seed=args.seed + i,
                )
            else:
                plan = FaultPlan(
                    retry_budget=args.retry_budget,
                    timeout_s=args.request_timeout,
                )
        hourly_rate = None
        if args.spot:
            from repro.cloud.pricing import spot_rate

            hourly_rate = spot_rate(configuration.total_price_per_hour)
        replicas.append(
            ReplicaSpec(
                name=name,
                configuration=configuration,
                spec=spec,
                policy=policy,
                faults=plan,
                hourly_rate=hourly_rate,
            )
        )
    admission = None
    if (
        args.admission_rate is not None
        or args.queue_limit is not None
        or args.degrade_limit is not None
    ):
        admission = AdmissionPolicy(
            rate_per_s=args.admission_rate,
            burst=args.admission_burst,
            queue_limit=args.queue_limit,
            degrade_limit=args.degrade_limit,
        )
    routing = "adaptive" if args.adaptive else args.routing
    workload = FleetWorkload(
        args.rate,
        args.duration,
        arrival=args.arrival,
        seed=args.seed,
        floors=_parse_floors(args.floors) if args.floors else (),
        deadlines=(
            _parse_deadlines(args.deadlines) if args.deadlines else ()
        ),
    )
    arrivals = workload.arrivals()
    floors = workload.accuracy_floors(arrivals.size)
    deadlines = workload.deadlines_s(arrivals.size)
    router = FleetRouter(
        time_model,
        accuracy_model,
        replicas,
        routing=routing,
        admission=admission,
    )
    from repro.obs import MetricsRegistry, Tracer, scoped_observability

    telemetry = FleetTelemetry(
        SloPolicy(latency_slo_s=args.slo) if args.slo is not None else None
    )
    tracer = Tracer(enabled=bool(args.trace_out))
    registry = MetricsRegistry()
    with scoped_observability(tracer, registry):
        with _maybe_event_log(args.log_json):
            report = router.run(
                arrivals,
                floors=floors,
                deadlines=deadlines,
                telemetry=telemetry,
            )
    print(
        f"fleet     : {len(replicas)} replicas, "
        f"{routing} routing"
        + (" + admission control" if admission is not None else "")
    )
    print(
        f"served    : {report.served}/{report.offered} requests in "
        f"{report.duration_s:.1f}s "
        f"({report.shed} shed, {report.dropped - report.shed} dropped)"
    )
    if report.degraded:
        print(
            f"degraded  : {report.degraded} requests served below "
            f"their accuracy floor "
            f"(goodput-at-accuracy "
            f"{report.goodput_at_accuracy:.1f} req/s)"
        )
    print(
        f"latency   : p50 {report.p50:.3f}s  p99 {report.p99:.3f}s"
    )
    print(
        f"cost      : ${report.cost:.4f}"
        + (" (spot)" if args.spot else "")
        + f"  (availability {report.availability:.1%}, "
        f"goodput {report.goodput:.1f} req/s)"
    )
    for outcome in report.outcomes:
        accuracy = router.accuracy(outcome.spec.name)
        if outcome.report is None:
            print(
                f"  {outcome.spec.name:<24} idle "
                f"(${outcome.cost:.4f} for the makespan)"
            )
            continue
        print(
            f"  {outcome.spec.name:<24} {outcome.served:>6} served  "
            f"p99 {outcome.report.latency_percentile(99):.3f}s  "
            f"top5 {accuracy.top5:.1f}%  ${outcome.cost:.4f}"
        )
    aggregate = telemetry.aggregate_latency
    if aggregate.count:
        print(
            f"telemetry : p50 {aggregate.p50:.3f}s  "
            f"p95 {aggregate.p95:.3f}s  p99 {aggregate.p99:.3f}s  "
            f"({aggregate.count} samples across "
            f"{len(telemetry.per_replica)} replicas)"
        )
    if args.slo is not None:
        burn = report.burn_rates(SloPolicy(latency_slo_s=args.slo))
        print(
            f"SLO burn  : availability {burn['availability']:.2f}x  "
            f"latency {burn['latency']:.2f}x  "
            f"({telemetry.alerts_fired} alerts fired)"
        )
    if args.trace_out:
        from repro.obs.export import chrome_trace, write_chrome_trace

        write_chrome_trace(args.trace_out, chrome_trace(tracer))
        print(f"trace   -> {args.trace_out}", file=sys.stderr)
    if args.metrics_out:
        _write_metrics(args.metrics_out, {"serve": registry.snapshot()})
        print(f"metrics -> {args.metrics_out}", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.cloud.catalog import instance_type
    from repro.cloud.configuration import ResourceConfiguration
    from repro.cloud.instance import CloudInstance
    from repro.cloud.trace import render_gantt, trace_job

    time_model, _ = _models(args.model)
    config = ResourceConfiguration(
        [CloudInstance(instance_type(n)) for n in args.instances]
    )
    trace = trace_job(
        time_model,
        args.spec,
        config,
        args.images,
        proportional_split=args.proportional,
    )
    print(render_gantt(trace))
    if args.chrome_out:
        from repro.obs.export import (
            chrome_trace_from_job,
            write_chrome_trace,
        )

        write_chrome_trace(args.chrome_out, chrome_trace_from_job(trace))
        print(f"trace   -> {args.chrome_out}", file=sys.stderr)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.engine import REGISTRY
    from repro.experiments.export import export_all

    bad = [i for i in args.ids if i not in REGISTRY]
    if bad:
        print(
            f"unknown artefacts {bad}; available: {sorted(REGISTRY)}",
            file=sys.stderr,
        )
        return 2
    for path in export_all(args.directory, tuple(args.ids) or None):
        print(path)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import (
        metrics_json,
        prometheus_text_multi,
    )

    # cached results carry empty snapshots, so always recompute
    run = _run_selection(args.ids, args.jobs, use_cache=False)
    if run is None:
        return 2
    snapshots = {r.artefact: r.metrics for r in run.results}
    if args.fmt == "json":
        text = json.dumps(
            {name: metrics_json(s) for name, s in snapshots.items()},
            indent=2,
            sort_keys=True,
        )
    else:
        text = prometheus_text_multi(snapshots)
    if args.output:
        from pathlib import Path

        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text if text.endswith("\n") else text + "\n")
        print(args.output)
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 1 if run.manifest.errors else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import bench

    only = tuple(args.only) if args.only else None
    if args.check:
        try:
            report = bench.check(
                args.root,
                tolerance=args.tolerance,
                warn_ratio=args.warn_ratio,
                fail_ratio=args.fail_ratio,
                repeats=args.repeats,
                only=only,
            )
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"baseline: BENCH_{report.baseline_index}.json "
            f"(tolerance +{report.tolerance:.0%} wall, counters exact)"
        )
        for line in report.lines:
            print(line)
        for warning in report.warnings:
            print(f"WARN: {warning}", file=sys.stderr)
        if not report.ok:
            print(
                f"FAIL: {len(report.failures)} regression(s)",
                file=sys.stderr,
            )
            return 1
        print("ok: no regressions")
        return 0
    if args.record:
        path = bench.record(args.root, repeats=args.repeats, only=only)
        for entry in bench.BenchRecord.read(path).entries:
            print(
                f"{entry.name:<20s} {entry.wall_s * 1e3:8.1f} ms  "
                f"{sum(entry.counters.values()):>8d} ops"
            )
        print(path)
        return 0
    for entry in bench.run_suite(repeats=args.repeats, only=only):
        print(
            f"{entry.name:<20s} {entry.wall_s * 1e3:8.1f} ms  "
            f"{sum(entry.counters.values()):>8d} ops"
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "catalog":
            return _cmd_catalog()
        if args.command == "experiments":
            return _cmd_experiments(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "allocate":
            return _cmd_allocate(args)
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "plan":
            return _cmd_plan(args)
        if args.command == "service":
            return _cmd_service(args)
        if args.command == "loadgen":
            return _cmd_loadgen(args)
        if args.command == "tail":
            return _cmd_tail(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "export":
            return _cmd_export(args)
        if args.command == "metrics":
            return _cmd_metrics(args)
        if args.command == "bench":
            return _cmd_bench(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Tests for the CSR sparse execution path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnn import build_small_cnn
from repro.pruning import L1FilterPruner, MagnitudePruner, PruneSpec
from repro.pruning.sparse import (
    SparseExecutor,
    layer_density_profile,
    sparse_vs_dense_time,
)


class TestSparseExecutor:
    def test_matches_dense_unpruned(self, small_cnn, rng):
        x = rng.standard_normal((3, 1, 16, 16)).astype(np.float32)
        sparse_out = SparseExecutor(small_cnn).forward(x)
        np.testing.assert_allclose(
            sparse_out, small_cnn.forward(x), rtol=1e-4, atol=1e-5
        )

    def test_matches_dense_after_filter_pruning(self, small_cnn, rng):
        pruned = L1FilterPruner().apply(
            small_cnn, PruneSpec({"conv1": 0.5, "conv2": 0.25})
        )
        x = rng.standard_normal((2, 1, 16, 16)).astype(np.float32)
        np.testing.assert_allclose(
            SparseExecutor(pruned).forward(x),
            pruned.forward(x),
            rtol=1e-4,
            atol=1e-5,
        )

    def test_matches_dense_after_magnitude_pruning(self, small_cnn, rng):
        pruned = MagnitudePruner().apply(
            small_cnn, PruneSpec({"fc1": 0.8, "conv2": 0.6})
        )
        x = rng.standard_normal((2, 1, 16, 16)).astype(np.float32)
        np.testing.assert_allclose(
            SparseExecutor(pruned).forward(x),
            pruned.forward(x),
            rtol=1e-4,
            atol=1e-5,
        )

    def test_grouped_conv_sparse_path(self, rng):
        from repro.cnn.conv import ConvLayer
        from repro.cnn.network import Network

        net = Network(
            "g",
            (4, 6, 6),
            [ConvLayer("c", 4, 6, kernel=3, pad=1, groups=2, rng=rng)],
        )
        x = rng.standard_normal((2, 4, 6, 6)).astype(np.float32)
        np.testing.assert_allclose(
            SparseExecutor(net).forward(x),
            net.forward(x),
            rtol=1e-4,
            atol=1e-5,
        )

    def test_invalidate_after_repruning(self, small_cnn, rng):
        x = rng.standard_normal((1, 1, 16, 16)).astype(np.float32)
        executor = SparseExecutor(small_cnn)
        executor.forward(x)  # populate cache
        MagnitudePruner().apply(
            small_cnn, PruneSpec({"conv1": 0.9}), inplace=True
        )
        executor.invalidate()
        np.testing.assert_allclose(
            executor.forward(x), small_cnn.forward(x), rtol=1e-4, atol=1e-5
        )


class TestSparseTiming:
    def test_returns_positive_times(self):
        dense_t, sparse_t = sparse_vs_dense_time(
            64, 64, density=0.1, batch=8, repeats=1
        )
        assert dense_t > 0 and sparse_t > 0

    def test_very_sparse_wins_at_scale(self):
        # at 1% density on a large matrix, CSR should beat dense GEMM
        dense_t, sparse_t = sparse_vs_dense_time(
            2048, 2048, density=0.01, batch=32, repeats=3
        )
        assert sparse_t < dense_t


class TestDensityProfile:
    def test_profile_after_pruning(self, small_cnn):
        L1FilterPruner(propagate=False).apply(
            small_cnn, PruneSpec({"conv1": 0.5}), inplace=True
        )
        profile = layer_density_profile(small_cnn)
        assert profile["conv1"] == pytest.approx(0.5, abs=0.05)
        assert profile["fc2"] == 1.0

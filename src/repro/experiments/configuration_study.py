"""Shared machinery for the Figure 9/10 configuration-space studies.

The paper's setup (Section 4.3.2): 60 Caffenet variants pruned in
different degrees, a resource space of the three p2 instance types with
up to three instances each (63 non-empty multisets), inferring one
million images.  Figure 9 filters by a 10-hour deadline; Figure 10 by a
$300 budget.  Both then Pareto-filter the feasible set.

Evaluating the 3 780-point space once and reusing it for both figures
mirrors the paper's single model run feeding both filters.

Workload-size note: the paper states one million images, but under its
*own* measured throughput (19 min per 50 k images on one K80, Figure 6)
that workload finishes in 6.3 h for $5.70 on a single p2.xlarge — the
10-hour deadline and $300 budget would bind nothing, and the paper's
published Pareto ranges (3-5 h, $69-119) are unreachable by 15-20x.
We scale the workload to 20 million images, the size at which the
paper's constraints actually shape the feasible region the way its
Figures 9-10 show (single-instance runs blow the deadline; the largest
configurations blow the budget; Pareto costs land in the ~$100 decade).
EXPERIMENTS.md records this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.calibration.caffenet import (
    caffenet_accuracy_model,
    caffenet_time_model,
)
from repro.cloud.catalog import P2_TYPES
from repro.cloud.simulator import SimulationResult
from repro.core.config_space import enumerate_configurations
from repro.core.evalspace import EvaluatedSpace, SpaceSpec, evaluate
from repro.obs import get_tracer
from repro.pruning.schedule import caffenet_variant_set

__all__ = [
    "STUDY_IMAGES",
    "STUDY_DEADLINE_S",
    "STUDY_BUDGET",
    "ParetoStudy",
    "study_space",
    "evaluate_space",
    "pareto_study",
]

#: Workload size — scaled 20x from the paper's stated one million so the
#: deadline/budget constraints bind (see module docstring).
STUDY_IMAGES = 20_000_000
#: Figure 9: ten-hour deadline.
STUDY_DEADLINE_S = 10 * 3600.0
#: Figure 10: $300 budget.
STUDY_BUDGET = 300.0


@lru_cache(maxsize=1)
def study_space() -> EvaluatedSpace:
    """The evaluated (60 degrees x 63 p2 configurations) study grid.

    Delegates to :mod:`repro.core.evalspace`: the content-keyed cache
    there shares the evaluation with any other consumer asking for the
    same grid (planner workloads, benchmarks), while this ``lru_cache``
    pins the study's own view for cheap repeated access.
    """
    degrees = caffenet_variant_set()
    configurations = enumerate_configurations(P2_TYPES, max_per_type=3)
    with get_tracer().span(
        "pareto.evaluate_space",
        degrees=len(degrees),
        configurations=len(configurations),
    ):
        return evaluate(
            SpaceSpec.build(
                caffenet_time_model(),
                caffenet_accuracy_model(),
                degrees,
                configurations,
                STUDY_IMAGES,
            )
        )


def evaluate_space() -> tuple[SimulationResult, ...]:
    """All (60 x 63) rows in degree-major order (stable identity)."""
    return study_space().results


@dataclass(frozen=True)
class ParetoStudy:
    """One filtered-and-Pareto-optimised view of the space."""

    objective: str  # "time" or "cost"
    metric: str  # "top1" or "top5"
    total_points: int
    feasible: tuple[SimulationResult, ...]
    front: tuple[SimulationResult, ...]

    # ------------------------------------------------------------------
    @property
    def n_feasible(self) -> int:
        return len(self.feasible)

    @property
    def n_pareto(self) -> int:
        return len(self.front)

    def _objective_of(self, result: SimulationResult) -> float:
        return (
            result.time_hours if self.objective == "time" else result.cost
        )

    @property
    def accuracy_range(self) -> tuple[float, float]:
        accs = [r.accuracy.get(self.metric) for r in self.front]
        return min(accs), max(accs)

    @property
    def objective_range(self) -> tuple[float, float]:
        objs = [self._objective_of(r) for r in self.front]
        return min(objs), max(objs)

    def saving_at_best_accuracy(self) -> float:
        """Fractional saving of the best-accuracy Pareto point vs the
        worst feasible configuration achieving the same accuracy —
        the paper's "-50% time / -55% cost" headline quantity."""
        best = max(
            self.front, key=lambda r: r.accuracy.get(self.metric)
        )
        best_acc = best.accuracy.get(self.metric)
        peers = [
            self._objective_of(r)
            for r in self.feasible
            if abs(r.accuracy.get(self.metric) - best_acc) < 1e-9
        ]
        worst = max(peers)
        return 1.0 - self._objective_of(best) / worst


def pareto_study(
    objective: str,
    metric: str,
    deadline_s: float | None = None,
    budget: float | None = None,
) -> ParetoStudy:
    """Filter the cached space by constraints and Pareto-optimise.

    A thin view: feasibility and the Pareto filter are the vectorised
    :class:`EvaluatedSpace` queries; only the selected rows materialise.
    """
    space = study_space()
    return ParetoStudy(
        objective=objective,
        metric=metric,
        total_points=len(space),
        feasible=space.feasible(deadline_s, budget),
        front=space.front(metric, objective, deadline_s, budget),
    )

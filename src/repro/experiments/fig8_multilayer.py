"""Figure 8: Caffenet multi-layer pruning at the sweet spots.

Paper results (Observation 3):

| configuration | time | Top-5 |
|---|---|---|
| nonpruned | 19 min | 80% |
| conv1-2 (conv1@30 + conv2@50) | 13 min | 70% |
| all-conv (all five at last sweet spots) | 11 min | 62% |

Combining sweet spots is super-additive in time saved, but the layer
*dependency* costs accuracy that the individual sweeps hide — the
headline "inference time halved for one-tenth accuracy drop".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration.caffenet import (
    CAFFENET_SWEET_SPOTS,
    caffenet_accuracy_model,
    caffenet_time_model,
)
from repro.cloud.catalog import instance_type
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.instance import CloudInstance
from repro.core.evalspace import SpaceSpec, evaluate
from repro.experiments.report import format_table
from repro.pruning.base import PruneSpec

__all__ = ["Fig8Row", "Fig8Result", "run", "render", "FIG8_CONFIGS"]

#: The three prune configurations of Figure 8.
FIG8_CONFIGS: dict[str, PruneSpec] = {
    "nonpruned": PruneSpec.unpruned(),
    "conv1-2": PruneSpec(
        {
            "conv1": CAFFENET_SWEET_SPOTS["conv1"],
            "conv2": CAFFENET_SWEET_SPOTS["conv2"],
        }
    ),
    "all-conv": PruneSpec(dict(CAFFENET_SWEET_SPOTS)),
}


@dataclass(frozen=True)
class Fig8Row:
    name: str
    time_min: float
    top1: float
    top5: float


@dataclass(frozen=True)
class Fig8Result:
    rows: tuple[Fig8Row, ...]

    def row(self, name: str) -> Fig8Row:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)

    @property
    def time_reduction_all_conv(self) -> float:
        return 1.0 - self.row("all-conv").time_min / self.row(
            "nonpruned"
        ).time_min

    @property
    def top5_drop_conv1_2(self) -> float:
        return self.row("nonpruned").top5 - self.row("conv1-2").top5


def run(images: int = 50_000) -> Fig8Result:
    space = evaluate(
        SpaceSpec.build(
            caffenet_time_model(),
            caffenet_accuracy_model(),
            FIG8_CONFIGS.values(),
            [ResourceConfiguration([CloudInstance(instance_type("p2.xlarge"))])],
            images,
        )
    )
    return Fig8Result(
        rows=tuple(
            Fig8Row(
                name=name,
                time_min=res.time_s / 60.0,
                top1=res.accuracy.top1,
                top5=res.accuracy.top5,
            )
            for name, res in zip(FIG8_CONFIGS, space.results)
        )
    )


def render(result: Fig8Result | None = None) -> str:
    result = result or run()
    table = format_table(
        ["Prune configuration", "Time (min)", "Top-1 (%)", "Top-5 (%)"],
        [
            (r.name, f"{r.time_min:.2f}", f"{r.top1:.1f}", f"{r.top5:.1f}")
            for r in result.rows
        ],
    )
    return (
        table
        + f"\nall-conv time reduction: "
        f"{result.time_reduction_all_conv * 100:.0f}%"
        f" | conv1-2 Top-5 drop: {result.top5_drop_conv1_2:.1f} points"
    )

"""Tests for the strong-scaling analysis."""

from __future__ import annotations

import pytest

from repro.calibration import caffenet_accuracy_model, caffenet_time_model
from repro.cloud import instance_type
from repro.core.scaling import strong_scaling
from repro.errors import ConfigurationError
from repro.experiments import ext_scaling


class TestStrongScaling:
    @pytest.fixture(scope="class")
    def study(self):
        return strong_scaling(
            caffenet_time_model(),
            caffenet_accuracy_model(),
            instance_type("p2.xlarge"),
            images=50_000,
            instance_counts=(1, 2, 4, 16, 64, 256),
        )

    def test_baseline_point(self, study):
        p1 = study.point(1)
        assert p1.speedup == 1.0
        assert p1.efficiency == 1.0
        assert p1.cost_inflation == 0.0
        assert p1.time_s == pytest.approx(19 * 60, rel=1e-6)

    def test_speedup_monotone(self, study):
        speedups = [p.speedup for p in study.points]
        assert speedups == sorted(speedups)

    def test_efficiency_never_exceeds_one(self, study):
        for p in study.points:
            assert p.efficiency <= 1.0 + 1e-9

    def test_efficiency_decays_below_saturation(self, study):
        # 50 k images over 256 GPUs = ~195 parallel inferences each,
        # below the ~300 saturation knee: efficiency must suffer
        assert study.point(256).efficiency < study.point(4).efficiency

    def test_cost_inflation_tracks_inefficiency(self, study):
        p = study.point(256)
        assert p.cost_inflation > 0.0
        # parallel inefficiency is a lower bound on the cost inflation;
        # per-second ceil billing of many short-lived instances adds a
        # further quantisation premium on top
        assert p.cost_inflation >= (1.0 / p.efficiency - 1.0) - 1e-9
        assert p.cost_inflation < 0.6

    def test_rejects_empty_workload(self):
        with pytest.raises(ConfigurationError):
            strong_scaling(
                caffenet_time_model(),
                caffenet_accuracy_model(),
                instance_type("p2.xlarge"),
                images=0,
            )

    def test_experiment_render(self):
        text = ext_scaling.render(
            ext_scaling.run(counts=(1, 2, 4, 128, 512))
        )
        assert "parallel efficiency" in text

    def test_max_efficient_instances(self, study):
        n = study.max_efficient_instances(0.9)
        assert study.point(1).efficiency >= 0.9
        assert n >= 1

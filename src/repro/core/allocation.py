"""Resource allocation: the paper's Algorithm 1 and its brute-force baseline.

Algorithm 1 (Section 4.5.3) finds a resource configuration achieving the
best possible accuracy within a time deadline T' and cost budget C':

1. sort the degrees of pruning *P* by accuracy descending, breaking ties
   by TAR ascending;
2. for each degree, sort the available resources *G* by CAR ascending
   and add them greedily (cheapest accuracy first), re-distributing the
   workload after each addition, until the (T, C) estimate fits both
   constraints;
3. the first fit wins — the highest-accuracy degree that fits at all.

Exhaustive search over resource subsets is O(2^|G|) per degree; the
greedy is O(|G| log |G|) (the sort dominates).  Both are implemented so
the complexity claim and the solution-quality gap can be measured
(``benchmarks/test_algorithm1.py``).
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.instance import CloudInstance
from repro.cloud.simulator import CloudSimulator, SimulationResult
from repro.core.evalspace import SpaceSpec, evaluate
from repro.errors import InfeasibleError
from repro.obs import get_metrics, get_tracer
from repro.pruning.schedule import DegreeOfPruning

__all__ = ["AllocationResult", "greedy_allocate", "brute_force_allocate"]


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of a resource-allocation search.

    ``evaluations`` counts (configuration, degree) model evaluations —
    the complexity measure the Algorithm 1 benchmark compares.
    """

    result: SimulationResult
    evaluations: int

    @property
    def accuracy_top1(self) -> float:
        """Modelled Top-1 accuracy of the chosen degree."""
        return self.result.accuracy.top1

    @property
    def accuracy_top5(self) -> float:
        """Modelled Top-5 accuracy of the chosen degree."""
        return self.result.accuracy.top5


def _sorted_degrees(
    degrees: Sequence[DegreeOfPruning],
    simulator: CloudSimulator,
    reference: CloudInstance,
    images: int,
    metric: str,
) -> list[tuple[DegreeOfPruning, float, float]]:
    """Degrees with (accuracy, reference TAR), sorted per Algorithm 1.

    The (|P| x 1 reference configuration) grid is one
    :class:`~repro.core.evalspace.EvaluatedSpace`; its vectorised TAR
    column already maps zero-accuracy degrees to ``inf`` (such a degree
    can never win the sort).
    """
    space = evaluate(
        SpaceSpec.from_simulator(
            simulator,
            degrees,
            [ResourceConfiguration([reference])],
            images,
        )
    )
    rows = list(
        zip(
            degrees,
            space.accuracy(metric).tolist(),
            space.tar(metric).tolist(),
        )
    )
    rows.sort(key=lambda row: (-row[1], row[2]))
    return rows


def _ranked_by_car(
    simulator: CloudSimulator,
    resources: Sequence[CloudInstance],
    degree: DegreeOfPruning,
    images: int,
    metric: str,
) -> list[CloudInstance]:
    """Resources sorted by solo-instance CAR ascending (Algorithm 1 line 6).

    One (1 degree x |G| single-instance configurations) grid through the
    evaluation core; the stable argsort preserves the original order on
    CAR ties, matching the historical ``sorted``-by-key behaviour.
    """
    space = evaluate(
        SpaceSpec.from_simulator(
            simulator,
            [degree],
            [ResourceConfiguration([inst]) for inst in resources],
            images,
        )
    )
    order = np.argsort(space.car(metric), kind="stable")
    return [resources[i] for i in order]


def greedy_allocate(
    degrees: Sequence[DegreeOfPruning],
    resources: Sequence[CloudInstance],
    simulator: CloudSimulator,
    images: int,
    deadline_s: float,
    budget: float,
    metric: str = "top5",
    reference: CloudInstance | None = None,
) -> AllocationResult:
    """Algorithm 1: TAR/CAR-guided polynomial-time allocation.

    Raises :class:`InfeasibleError` when no (degree, prefix-of-G)
    combination satisfies both constraints — the algorithm's line 14.
    """
    if not degrees or not resources:
        raise InfeasibleError("empty degrees or resource set")
    reference = reference or resources[0]
    with get_tracer().span(
        "allocation.greedy",
        degrees=len(degrees),
        resources=len(resources),
    ) as span:
        evaluations = 0
        ordered = _sorted_degrees(
            degrees, simulator, reference, images, metric
        )
        evaluations += len(ordered)
        try:
            for degree, _acc, _tar in ordered:
                ranked = _ranked_by_car(
                    simulator, resources, degree, images, metric
                )
                evaluations += len(ranked)
                chosen: list[CloudInstance] = []
                for instance in ranked:
                    chosen.append(instance)  # add resource with lowest CAR
                    sim = simulator.run(
                        degree.spec, ResourceConfiguration(chosen), images
                    )
                    evaluations += 1
                    if sim.within(deadline_s, budget):
                        return AllocationResult(
                            result=sim, evaluations=evaluations
                        )
            raise InfeasibleError(
                f"no feasible allocation within T'={deadline_s}s, "
                f"C'=${budget} (searched {len(ordered)} degrees x "
                f"{len(resources)} resources)"
            )
        finally:
            get_metrics().counter("allocation.greedy_evaluations").inc(
                evaluations
            )
            if span is not None:
                span.tags["evaluations"] = evaluations


def brute_force_allocate(
    degrees: Sequence[DegreeOfPruning],
    resources: Sequence[CloudInstance],
    simulator: CloudSimulator,
    images: int,
    deadline_s: float,
    budget: float,
    metric: str = "top5",
) -> AllocationResult:
    """Exhaustive O(2^|G|) baseline: best accuracy, then lowest cost.

    Enumerates every non-empty subset of ``resources`` for every degree
    of pruning, keeping the feasible result with the highest accuracy
    (ties broken by lower cost, then lower time).
    """
    if not degrees or not resources:
        raise InfeasibleError("empty degrees or resource set")
    best: SimulationResult | None = None
    evaluations = 0
    with get_tracer().span(
        "allocation.brute_force",
        degrees=len(degrees),
        resources=len(resources),
    ) as span:
        for degree in degrees:
            for r in range(1, len(resources) + 1):
                for subset in itertools.combinations(resources, r):
                    sim = simulator.run(
                        degree.spec, ResourceConfiguration(subset), images
                    )
                    evaluations += 1
                    if not sim.within(deadline_s, budget):
                        continue
                    if best is None or _better(sim, best, metric):
                        best = sim
        get_metrics().counter("allocation.brute_evaluations").inc(
            evaluations
        )
        if span is not None:
            span.tags["evaluations"] = evaluations
    if best is None:
        raise InfeasibleError(
            f"no feasible allocation within T'={deadline_s}s, C'=${budget}"
        )
    return AllocationResult(result=best, evaluations=evaluations)


def _better(a: SimulationResult, b: SimulationResult, metric: str) -> bool:
    """Is ``a`` preferable to ``b``? Accuracy desc, cost asc, time asc."""
    ka = (-a.accuracy.get(metric), a.cost, a.time_s)
    kb = (-b.accuracy.get(metric), b.cost, b.time_s)
    return ka < kb

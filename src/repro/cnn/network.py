"""Sequential network container with per-layer cost and timing hooks.

A :class:`Network` is an ordered list of layers plus a fixed input shape.
Beyond running inference it provides the two views the paper's methodology
needs:

* :meth:`layer_stats` / :meth:`total_stats` — the per-layer FLOP/byte
  breakdown behind the execution-time distribution study (Figure 3);
* :meth:`forward_timed` — wall-clock per-layer timing of the *real* NumPy
  execution, used by tests and the small-CNN demos.

Layer lookup (:meth:`layer`, :meth:`weighted_layers`) resolves inception
inner convolutions by their flat names (``inception-3a-3x3``), which is how
pruning specs address Googlenet layers.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Iterator

import numpy as np

from repro.cnn.inception import InceptionModule
from repro.cnn.layers import Layer, LayerStats, WeightedLayer
from repro.errors import ShapeError

__all__ = ["Network"]


class Network:
    """An ordered stack of layers with a fixed input shape.

    Parameters
    ----------
    name:
        Model name (``"caffenet"``, ``"googlenet"``, ...).
    input_shape:
        Per-sample input shape, e.g. ``(3, 224, 224)``.
    layers:
        Layers in execution order.  Names must be unique, including the
        inner convolutions of inception modules.
    """

    def __init__(
        self,
        name: str,
        input_shape: tuple[int, ...],
        layers: Iterable[Layer],
    ) -> None:
        self.name = name
        self.input_shape = tuple(input_shape)
        self.layers: list[Layer] = list(layers)
        self._by_name: dict[str, Layer] = {}
        for layer in self._iter_addressable():
            if layer.name in self._by_name:
                raise ShapeError(
                    f"duplicate layer name {layer.name!r} in network {name!r}"
                )
            self._by_name[layer.name] = layer
        # validate shape propagation eagerly so bad architectures fail
        # at construction, not mid-inference.
        self._shapes = self._propagate_shapes()

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _iter_addressable(self) -> Iterator[Layer]:
        for layer in self.layers:
            yield layer
            if isinstance(layer, InceptionModule):
                yield from layer.conv_layers()

    def layer(self, name: str) -> Layer:
        """Look up any layer (or inception inner conv) by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"network {self.name!r} has no layer {name!r}; "
                f"known: {sorted(self._by_name)}"
            ) from None

    def layer_names(self) -> list[str]:
        """Names of all addressable layers, in execution order."""
        return [layer.name for layer in self._iter_addressable()]

    def weighted_layers(self) -> list[WeightedLayer]:
        """All prunable layers (convolutions and dense layers)."""
        return [
            layer
            for layer in self._iter_addressable()
            if isinstance(layer, WeightedLayer)
            and not isinstance(layer, InceptionModule)
        ]

    def conv_layer_names(self) -> list[str]:
        """Names of convolution layers only (the paper prunes only these)."""
        from repro.cnn.conv import ConvLayer

        return [
            layer.name
            for layer in self._iter_addressable()
            if isinstance(layer, ConvLayer)
        ]

    # ------------------------------------------------------------------
    # shapes
    # ------------------------------------------------------------------
    def _propagate_shapes(self) -> list[tuple[int, ...]]:
        shapes = [self.input_shape]
        for layer in self.layers:
            shapes.append(layer.output_shape(shapes[-1]))
        return shapes

    def input_shape_of(self, layer_name: str) -> tuple[int, ...]:
        """Input shape seen by a *top-level* layer."""
        for i, layer in enumerate(self.layers):
            if layer.name == layer_name:
                return self._shapes[i]
        raise KeyError(f"no top-level layer {layer_name!r}")

    @property
    def output_shape(self) -> tuple[int, ...]:
        return self._shapes[-1]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run inference on a batch; returns the final activation."""
        if tuple(x.shape[1:]) != self.input_shape:
            raise ShapeError(
                f"network {self.name!r} expects input {self.input_shape}, "
                f"got {tuple(x.shape[1:])}"
            )
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def forward_timed(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, dict[str, float]]:
        """Run inference, returning per-top-level-layer wall-clock seconds."""
        timings: dict[str, float] = {}
        for layer in self.layers:
            start = time.perf_counter()
            x = layer.forward(x)
            timings[layer.name] = time.perf_counter() - start
        return x, timings

    def predict_topk(self, x: np.ndarray, k: int = 5) -> np.ndarray:
        """Class indices of the ``k`` highest scores, best first: ``(n, k)``."""
        scores = self.forward(x)
        if scores.ndim != 2:
            scores = scores.reshape(scores.shape[0], -1)
        part = np.argpartition(scores, -k, axis=1)[:, -k:]
        order = np.argsort(
            np.take_along_axis(scores, part, axis=1), axis=1
        )[:, ::-1]
        return np.take_along_axis(part, order, axis=1)

    # ------------------------------------------------------------------
    # cost accounting
    # ------------------------------------------------------------------
    def layer_stats(self, effective: bool = False) -> dict[str, LayerStats]:
        """Per-top-level-layer cost at batch size 1.

        With ``effective=True``, zeroed (pruned) weights are discounted,
        modelling execution on the sparse compute library.
        """
        out: dict[str, LayerStats] = {}
        for i, layer in enumerate(self.layers):
            shape = self._shapes[i]
            if effective and isinstance(
                layer, (WeightedLayer, InceptionModule)
            ):
                out[layer.name] = layer.effective_stats(shape)
            else:
                out[layer.name] = layer.stats(shape)
        return out

    def total_stats(self, effective: bool = False) -> LayerStats:
        """Whole-network cost at batch size 1."""
        total: LayerStats | None = None
        for stats in self.layer_stats(effective=effective).values():
            total = stats if total is None else total + stats
        assert total is not None, "network has no layers"
        return total

    def total_params(self) -> int:
        """Learnable parameter count across all weighted layers."""
        return sum(
            layer.weights.size + layer.bias.size
            for layer in self.weighted_layers()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Network {self.name!r}: {len(self.layers)} layers, "
            f"input {self.input_shape}>"
        )

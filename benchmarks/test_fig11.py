"""Benchmark: Figure 11 — TAR over the conv1 x conv2 sweet-spot grid.

Paper: 5 x 6 degrees; for a given accuracy the lowest-TAR degree is the
fastest; TAR labels live in the 0.3-0.5 decade.
"""

from __future__ import annotations

from repro.experiments import fig11_tar


def test_fig11_tar_grid(benchmark):
    result = benchmark(fig11_tar.run)
    assert len(result.points) == 30
    tars = [p.tar_top5 for p in result.points]
    assert 0.25 < min(tars) < max(tars) < 0.60
    best = result.best_by_tar("top5")
    assert best.tar_top5 == min(tars)
